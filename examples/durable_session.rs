//! A durable streaming session: every ingested batch is teed to a
//! write-ahead log before the engine sees it, checkpoints bound replay
//! time, and a killed process resumes bit-identically from the log.
//!
//! ```sh
//! # Self-contained demo (records, "crashes", recovers, compares):
//! cargo run --release --example durable_session
//!
//! # Crash drill (what the CI smoke job does):
//! cargo run --release --example durable_session -- --run /tmp/demo.wal
//! cargo run --release --example durable_session -- --run /tmp/demo.wal --slow-ms 200 &
//! kill -9 <pid mid-stream>
//! cargo run --release --example durable_session -- --recover /tmp/demo.wal
//! # release-hash printed by --recover equals the uninterrupted run's.
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::geo::GriddedDataset;
use retrasyn::prelude::*;
use std::path::{Path, PathBuf};
use std::time::Duration;

const SEED: u64 = 42;
const USERS: usize = 300;
const HORIZON: u64 = 60;
const CKPT_EVERY: u64 = 10;

fn dataset() -> GriddedDataset {
    RandomWalkConfig { users: USERS, timestamps: HORIZON, churn: 0.06, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(SEED))
        .discretize(&Grid::unit(6))
}

fn engine() -> RetraSyn {
    let config = RetraSynConfig::new(1.0, 10).with_lambda(12.0).with_compaction(50_000);
    RetraSyn::population_division(config, Grid::unit(6), SEED)
}

/// FNV-1a over the released database — a stable identity for "these two
/// sessions produced the same output, bit for bit".
fn release_hash(db: &GriddedDataset) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(db.horizon());
    eat(db.num_streams() as u64);
    for s in db.iter() {
        eat(s.id);
        eat(s.start);
        eat(s.cells.len() as u64);
        for &c in s.cells {
            eat(c.index() as u64);
        }
    }
    h
}

/// Record a fresh session into `wal`, one fsynced batch per timestamp,
/// checkpointing every [`CKPT_EVERY`] timestamps. `slow_ms` throttles the
/// stream so an outside observer can `kill -9` mid-flight.
fn run(wal: &Path, slow_ms: u64) {
    let gridded = dataset();
    let mut engine = engine();
    let writer = WalWriter::create(wal, SEED, engine.fingerprint(), FsyncPolicy::EveryBatch)
        .expect("create WAL");
    let ckpt = Checkpointer::new(wal, CKPT_EVERY);
    let mut source = WalSource::tee(TimelineSource::from_gridded(&gridded), writer);
    while let Some(batch) = source.next_batch() {
        let t = engine.next_timestamp();
        let outcome = engine.step(t, batch);
        ckpt.maybe_save(&engine).expect("write checkpoint");
        println!("t={t:>2}  active={:>4}  (durable)", outcome.active);
        if slow_ms > 0 {
            std::thread::sleep(Duration::from_millis(slow_ms));
        }
    }
    let (_, mut writer) = source.into_parts();
    writer.sync().expect("final sync");
    finish(&mut engine);
}

/// Rebuild the session from `wal` (checkpoint + replay), then continue the
/// interrupted stream to the horizon and release.
fn recover(wal: &Path) {
    let gridded = dataset();
    let mut engine = engine();
    let recovery = engine.recover(wal).expect("recover session");
    println!(
        "recovered: resumed_from={} replayed={} truncated={} checkpoint={:?}",
        recovery.resumed_from, recovery.replayed, recovery.truncated, recovery.checkpoint
    );

    // Continue where the crash left off, still logging durably.
    let contents = WalContents::read(wal).expect("reread WAL");
    let writer =
        WalWriter::reopen(&contents, wal, FsyncPolicy::EveryBatch).expect("reopen WAL for append");
    let ckpt = Checkpointer::new(wal, CKPT_EVERY);
    let mut timeline = TimelineSource::from_gridded(&gridded);
    for _ in 0..recovery.next_timestamp() {
        timeline.next_batch(); // already ingested before the crash
    }
    let mut source = WalSource::tee(timeline, writer);
    while let Some(batch) = source.next_batch() {
        let t = engine.next_timestamp();
        let outcome = engine.step(t, batch);
        ckpt.maybe_save(&engine).expect("write checkpoint");
        println!("t={t:>2}  active={:>4}  (resumed)", outcome.active);
    }
    let (_, mut writer) = source.into_parts();
    writer.sync().expect("final sync");
    finish(&mut engine);
}

fn finish(engine: &mut RetraSyn) {
    let released = engine.release();
    engine.ledger().verify().expect("w-event accounting holds");
    let stats = engine.compaction_stats();
    println!("compaction: runs={} frozen_cells={}", stats.runs, stats.frozen_cells);
    println!("release-hash: {:016x}", release_hash(&released));
}

/// Self-contained demo: record, tear the log mid-record (a simulated
/// crash), recover, continue, and show the hash matches the clean run.
fn demo() {
    let wal = std::env::temp_dir().join(format!("retrasyn-durable-{}.wal", std::process::id()));
    let gridded = dataset();

    println!("== clean run (no crash) ==");
    let mut clean = engine();
    let expected = {
        let mut source = TimelineSource::from_gridded(&gridded);
        while let Some(batch) = source.next_batch() {
            clean.step(clean.next_timestamp(), batch);
        }
        clean.release()
    };
    println!("release-hash: {:016x}", release_hash(&expected));

    println!("\n== durable run, killed after 37 timestamps + a torn final record ==");
    let mut doomed = engine();
    let writer = WalWriter::create(&wal, SEED, doomed.fingerprint(), FsyncPolicy::EveryBatch)
        .expect("create WAL");
    let ckpt = Checkpointer::new(&wal, CKPT_EVERY);
    let mut source = WalSource::tee(TimelineSource::from_gridded(&gridded), writer);
    for _ in 0..37 {
        let batch = source.next_batch().expect("within horizon");
        doomed.step(doomed.next_timestamp(), batch);
        ckpt.maybe_save(&doomed).expect("checkpoint");
    }
    drop(doomed); // the "process" dies here
    let bytes = std::fs::read(&wal).expect("read WAL");
    std::fs::write(&wal, &bytes[..bytes.len() - 9]).expect("tear the tail");

    println!("\n== recovery ==");
    let mut revived = engine();
    let recovery = revived.recover(&wal).expect("recover");
    println!(
        "resumed_from={} replayed={} truncated={} checkpoint={:?}",
        recovery.resumed_from, recovery.replayed, recovery.truncated, recovery.checkpoint
    );
    assert!(recovery.truncated, "the torn record must be detected");

    // Continue to the horizon and compare against the clean session.
    let contents = WalContents::read(&wal).expect("reread");
    let writer = WalWriter::reopen(&contents, &wal, FsyncPolicy::EveryBatch).expect("reopen");
    let mut timeline = TimelineSource::from_gridded(&gridded);
    for _ in 0..recovery.next_timestamp() {
        timeline.next_batch();
    }
    let mut source = WalSource::tee(timeline, writer);
    while let Some(batch) = source.next_batch() {
        revived.step(revived.next_timestamp(), batch);
    }
    let resumed = revived.release();
    assert_eq!(resumed, expected, "recovery must be bit-identical");
    println!("release-hash: {:016x}  (bit-identical to the clean run)", release_hash(&resumed));

    let _ = std::fs::remove_file(&wal);
    let _ = std::fs::remove_file(Checkpointer::sidecar(&wal));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<(&str, PathBuf)> = None;
    let mut slow_ms = 0u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--run" => {
                mode = Some(("run", PathBuf::from(args.get(i + 1).expect("--run <wal>"))));
                i += 2;
            }
            "--recover" => {
                mode = Some(("recover", PathBuf::from(args.get(i + 1).expect("--recover <wal>"))));
                i += 2;
            }
            "--slow-ms" => {
                slow_ms = args.get(i + 1).expect("--slow-ms <n>").parse().expect("integer");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    match mode {
        None => demo(),
        Some(("run", wal)) => run(&wal, slow_ms),
        Some(("recover", wal)) => recover(&wal),
        Some(_) => unreachable!(),
    }
}
