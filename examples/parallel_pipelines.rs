//! Parallel pipelines: sharded LDP collection + sharded synthesis.
//!
//! ```sh
//! cargo run --release --example parallel_pipelines
//! ```
//!
//! Runs the same private stream twice — sequential and with both worker
//! pools enabled (`collection_threads` shards the per-user OUE
//! perturb→tally round, `synthesis_threads` shards the synthesis step) —
//! and demonstrates the determinism contract: a fixed `(seed, threads)`
//! pair is bit-identical run to run, while the pooled random stream
//! diverges from the sequential one. The blocked counter-based kernel
//! (`CollectionKernel::Blocked`) goes further: its collection draws are
//! addressed, not streamed, so its output is bit-identical *across*
//! collection thread counts.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::prelude::*;

fn run(dataset: &StreamDataset, grid: &Grid, threads: usize) -> retrasyn::geo::GriddedDataset {
    // Exact per-user reports so the per-user collection kernel (not the
    // aggregate binomial shortcut) is what the collection pool shards.
    let config = RetraSynConfig::new(1.0, 10)
        .with_lambda(15.0)
        .per_user_reports()
        .with_collection_threads(threads)
        .with_synthesis_threads(threads);
    let mut engine = RetraSyn::population_division(config, grid.clone(), 42);
    let synthetic = engine.run(dataset);
    engine.ledger().verify().expect("w-event LDP accounting holds");
    let report = engine.timing_report();
    println!(
        "threads={threads}: streams={} user_side={:.4}ms/ts synthesis={:.4}ms/ts",
        synthetic.num_streams(),
        1e3 * report.user_side,
        1e3 * report.synthesis,
    );
    synthetic
}

/// The blocked-kernel run varies *only* the collection thread count
/// (synthesis stays sequential) to isolate the kernel's contract.
fn run_blocked(
    dataset: &StreamDataset,
    grid: &Grid,
    collection_threads: usize,
) -> retrasyn::geo::GriddedDataset {
    let config = RetraSynConfig::new(1.0, 10)
        .with_lambda(15.0)
        .per_user_reports()
        .with_collection_kernel(CollectionKernel::Blocked)
        .with_collection_threads(collection_threads);
    let mut engine = RetraSyn::population_division(config, grid.clone(), 42);
    let synthetic = engine.run(dataset);
    engine.ledger().verify().expect("w-event LDP accounting holds");
    println!(
        "blocked collection_threads={collection_threads}: streams={} user_side={:.4}ms/ts",
        synthetic.num_streams(),
        1e3 * engine.timing_report().user_side,
    );
    synthetic
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let dataset =
        RandomWalkConfig { users: 3000, timestamps: 40, ..Default::default() }.generate(&mut rng);
    let grid = Grid::unit(8);

    let sequential = run(&dataset, &grid, 1);
    let pooled = run(&dataset, &grid, 4);
    let pooled_again = run(&dataset, &grid, 4);

    assert!(pooled.iter().eq(pooled_again.iter()), "fixed (seed, threads) must be bit-identical");
    println!("determinism: threads=4 reruns are bit-identical");
    assert!(
        !sequential.iter().eq(pooled.iter()),
        "the pooled random stream should diverge from the sequential one"
    );
    println!("divergence : pooled stream differs from sequential (pools engaged)");

    // The blocked counter-based kernel addresses every collection draw by
    // (key, reporter row, position), so sharding cannot change the bits:
    // the pooled round equals the unsharded one exactly.
    let blocked_seq = run_blocked(&dataset, &grid, 1);
    let blocked_pooled = run_blocked(&dataset, &grid, 4);
    assert!(
        blocked_seq.iter().eq(blocked_pooled.iter()),
        "blocked kernel must be bit-identical across collection thread counts"
    );
    println!("invariance : blocked kernel is bit-identical at 1 and 4 collection threads");
    assert!(
        !blocked_seq.iter().eq(sequential.iter()),
        "the blocked kernel draws a different random stream than the sequential kernel"
    );
    println!("kernels    : blocked stream differs from sequential (kernel engaged)");
}
