//! Quickstart: private real-time synthesis of a small trajectory stream.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a random-walk stream, runs RetraSyn with population division
//! under w-event LDP, verifies the privacy ledger, and prints utility
//! metrics of the released synthetic database.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::prelude::*;

fn main() {
    // 1. A workload: 500 users walking for 60 timestamps with churn.
    let mut rng = StdRng::seed_from_u64(7);
    let dataset =
        RandomWalkConfig { users: 500, timestamps: 60, ..Default::default() }.generate(&mut rng);
    let grid = Grid::unit(6);
    let stats = dataset.stats(&grid);
    println!("original : {stats}");

    // 2. Configure RetraSyn: eps = 1 over any window of w = 10 timestamps.
    let config = RetraSynConfig::new(1.0, 10).with_lambda(stats.avg_length);

    // 3. Run the private streaming pipeline end to end.
    let mut engine = RetraSyn::population_division(config, grid.clone(), 42);
    let synthetic = engine.run(&dataset);
    println!("synthetic: {}", synthetic.stats());

    // 4. The accounting ledger proves the w-event guarantee held.
    engine.ledger().verify().expect("w-event eps-LDP accounting");
    println!(
        "privacy  : w-event {}-LDP verified over {} user reports",
        engine.ledger().eps_total(),
        engine.ledger().total_user_reports()
    );

    // 5. Evaluate the release against the original stream.
    let suite = MetricSuite::new(SuiteConfig { phi: 10, ..Default::default() });
    let orig = dataset.discretize(&grid);
    let report = suite.evaluate(&orig, &synthetic);
    println!("utility  : {report}");
}
