//! Historical data release on network-constrained traffic — comparing
//! RetraSyn with an LDP-IDS baseline on the trajectory-level metrics that
//! only a synthesis framework with enter/quit modelling can preserve
//! (paper §V-B "Historical Metrics" and Table III's bottom rows).
//!
//! ```sh
//! cargo run --release --example historical_release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::core::BaselineKind;
use retrasyn::metrics::{kendall, length, trip};
use retrasyn::prelude::*;

fn main() {
    // Brinkhoff-style network traffic (a small Oldenburg).
    let mut rng = StdRng::seed_from_u64(3);
    let dataset = BrinkhoffConfig {
        initial_objects: 800,
        new_per_ts: 40,
        timestamps: 120,
        ..Default::default()
    }
    .generate(&mut rng);
    let grid = Grid::unit(6);
    let orig = dataset.discretize(&grid);
    println!("original: {}", orig.stats());

    // RetraSyn with population division.
    let config = RetraSynConfig::new(1.0, 20).with_lambda(orig.avg_length());
    let mut engine = RetraSyn::population_division(config, grid.clone(), 17);
    let retrasyn_release = engine.run_gridded(&orig);
    engine.ledger().verify().expect("w-event accounting");

    // LDP-IDS (LPA) with the same budget, adapted as in the paper.
    let mut baseline = LdpIds::new(BaselineKind::Lpa, LdpIdsConfig::new(1.0, 20), grid, 17);
    let baseline_release = baseline.run_gridded(&orig);
    baseline.ledger().verify().expect("baseline accounting");

    println!("\ntrajectory-level utility (entire traces, not slices):");
    println!("{:<14} {:>10} {:>10} {:>12}", "method", "kendall", "trip_err", "length_err");
    for (name, syn) in [("RetraSynp", &retrasyn_release), ("LPA", &baseline_release)] {
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>12.4}",
            name,
            kendall::kendall_tau(&orig, syn),
            trip::trip_error(&orig, syn),
            length::length_error(&orig, syn, 20),
        );
    }
    println!(
        "\nNote the baseline's length error ≈ ln 2 = 0.6931: without \
         quitting events its synthetic trajectories never terminate, so the \
         travel-distance distributions have disjoint support (Table III)."
    );
}
