//! Persist a private release to disk, reload it, and run downstream
//! analytics — demonstrating that the synthetic database is a durable,
//! reusable artifact: every analysis below is post-processing (Theorem 2)
//! and costs no additional privacy budget.
//!
//! ```sh
//! cargo run --release --example release_analytics
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::geo::io;
use retrasyn::metrics::analytics;
use retrasyn::prelude::*;

fn main() {
    // Produce a private release of a day of taxi traffic.
    let mut rng = StdRng::seed_from_u64(31);
    let dataset =
        TDriveConfig { taxis: 900, timestamps: 144, ..Default::default() }.generate(&mut rng);
    let grid = Grid::unit(6);
    let orig = dataset.discretize(&grid);
    let config = RetraSynConfig::new(1.0, 20).with_lambda(orig.avg_length());
    let mut engine = RetraSyn::population_division(config, grid.clone(), 8);
    let release = engine.run_gridded(&orig);
    engine.ledger().verify().expect("w-event accounting");

    // Persist and reload (simple text format, no extra dependencies).
    let path = std::env::temp_dir().join("retrasyn_release.txt");
    io::save_gridded(&release, &path).expect("save release");
    let reloaded = io::load_gridded(&path).expect("load release");
    println!(
        "release: {} streams, {} bytes at {}",
        reloaded.num_streams(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        path.display()
    );

    // Downstream analytics on the reloaded release — all privacy-free.
    let top = analytics::top_k_trips(&reloaded, 3);
    println!("\ntop trips (start cell -> end cell: count):");
    for ((a, b), count) in top {
        println!("  cell{:<3} -> cell{:<3}: {count}", a.0, b.0);
    }

    let centre: Vec<_> =
        [(2u16, 2u16), (3, 2), (2, 3), (3, 3)].iter().map(|&(x, y)| grid.cell_at(x, y)).collect();
    let suburb: Vec<_> =
        [(0u16, 4u16), (1, 4), (0, 5), (1, 5)].iter().map(|&(x, y)| grid.cell_at(x, y)).collect();
    let inbound = analytics::flow_series(&reloaded, &suburb, &centre);
    let peak = inbound.iter().enumerate().max_by_key(|&(_, c)| *c).unwrap();
    println!("\nsuburb -> centre commuter flow peaks at t={} ({} moves)", peak.0, peak.1);

    println!("mean dwell time: {:.2} timestamps", analytics::mean_dwell_time(&reloaded));
    let rg = analytics::radius_of_gyration(&reloaded);
    let mean_rg = rg.iter().sum::<f64>() / rg.len().max(1) as f64;
    println!("mean radius of gyration: {mean_rg:.4}");

    let profile = analytics::periodic_occupancy(&reloaded, &centre, 12);
    println!("\ncentre occupancy by 2h-of-day slot: {profile:.1?}");

    std::fs::remove_file(&path).ok();
}
