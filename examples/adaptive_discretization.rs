//! Adaptive discretization: fit a density-adaptive quad grid to a skewed
//! workload, compile it into a [`Topology`], and run the same private
//! synthesis pipeline on it as on the equivalent fine uniform grid.
//!
//! ```sh
//! cargo run --release --example adaptive_discretization
//! ```
//!
//! The quad grid refines only where the population actually is, so it
//! reaches the fine grid's resolution in the hot areas with a fraction of
//! the cells — which shrinks the LDP transition domain every user reports
//! over — while the occupancy-JSD of the released database stays
//! comparable.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::metrics::density::density_error;
use retrasyn::prelude::*;

/// Maximum quad refinement depth; the equivalent fine uniform grid is
/// `2^DEPTH` × `2^DEPTH`.
const DEPTH: u8 = 6;

fn main() {
    // 1. A skewed workload: objects follow a road network, so density
    //    concentrates along highways and popular blocks.
    let mut rng = StdRng::seed_from_u64(11);
    let dataset =
        BrinkhoffConfig { timestamps: 80, ..BrinkhoffConfig::default() }.generate(&mut rng);
    println!("workload : {} streams over {} timestamps", dataset.trajectories().len(), 80);

    // 2. Fit the quad grid to a public density sample (here: the first
    //    few timestamps; a deployment would use a first collection round
    //    or public map data). Regions with more than `cap` sample points
    //    split, down to `DEPTH`.
    let sample: Vec<Point> =
        (0..5).flat_map(|t| dataset.active_points(t).map(|(_, p)| *p)).collect();
    let quad = QuadGrid::fit(BoundingBox::unit(), &sample, 12, DEPTH);
    let fine = UniformGrid::unit(1 << DEPTH);

    // 3. Both spaces compile into the same flat `Topology` the whole
    //    pipeline runs on; the engine never knows which one it got.
    let (quad_cells, quad_err) = run(&dataset, quad.compile());
    let (fine_cells, fine_err) = run(&dataset, fine.compile());
    println!("uniform  : {fine_cells:5} cells, occupancy-JSD {fine_err:.4}");
    println!("quad     : {quad_cells:5} cells, occupancy-JSD {quad_err:.4}");

    assert!(
        quad_cells * 2 < fine_cells,
        "adaptive grid should need far fewer cells ({quad_cells} vs {fine_cells})"
    );
    assert!(
        quad_err < fine_err * 1.25,
        "quad utility should stay comparable (JSD {quad_err:.4} vs {fine_err:.4})"
    );
    println!(
        "=> {:.0}% of the cells at comparable utility",
        100.0 * quad_cells as f64 / fine_cells as f64
    );
}

/// Run RetraSyn (population division) on one discretization and measure
/// the released database's mean per-timestamp occupancy-JSD.
fn run(dataset: &StreamDataset, topology: Topology) -> (usize, f64) {
    let orig = dataset.discretize(&topology);
    let config = RetraSynConfig::new(1.0, 10).with_lambda(orig.avg_length().max(1.0));
    let mut engine = RetraSyn::population_division(config, topology, 42);
    let syn = engine.run(dataset);
    engine.ledger().verify().expect("w-event eps-LDP accounting");
    (engine.topology().num_cells(), density_error(&orig, &syn))
}
