//! A hardened live session: a flaky producer feeds malformed batches
//! through a deadline-guarded channel, a [`ValidatedSource`] quarantines
//! everything the engine must never see, and a [`Supervisor`] keeps the
//! session durable — retrying crashed steps from the WAL and poisoning
//! batches that crash every replay.
//!
//! ```sh
//! cargo run --release --example supervised_session
//! ```
//!
//! The ingestion stack, bottom to top:
//!
//! 1. [`ChannelSource`] with a deadline: a stalled producer yields empty
//!    heartbeat batches instead of wedging the engine.
//! 2. [`ValidatedSource`]: out-of-domain cells, non-adjacent moves,
//!    duplicate reporters and lifecycle violations are diverted to a
//!    bounded quarantine with per-reason counters.
//! 3. [`Supervisor`]: every step runs under `catch_unwind` with the batch
//!    already durable in the WAL; a crash rolls the batch back, rebuilds
//!    the engine from the log, and retries.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::geo::{EventTimeline, TransitionState};
use retrasyn::prelude::*;
use std::thread;
use std::time::Duration;

fn main() {
    // A recorded stream, replayed as if it arrived from an untrusted
    // producer that occasionally corrupts what it sends.
    let mut rng = StdRng::seed_from_u64(11);
    let dataset =
        RandomWalkConfig { users: 400, timestamps: 40, churn: 0.08, ..Default::default() }
            .generate(&mut rng);
    let grid = Grid::unit(5);
    let gridded = dataset.discretize(&grid);
    let timeline = EventTimeline::build(&gridded);
    let num_cells = grid.num_cells() as u32;

    let config = RetraSynConfig::new(1.0, 10).with_lambda(gridded.avg_length());
    let engine = RetraSyn::population_division(config, grid.clone(), 23);
    let topology = engine.topology().clone();

    // --- The flaky producer -------------------------------------------
    let (tx, source) = ChannelSource::bounded(4);
    let producer_batches: Vec<Vec<UserEvent>> =
        (0..timeline.horizon()).map(|t| timeline.at(t).to_vec()).collect();
    let producer = thread::spawn(move || {
        for (t, mut batch) in producer_batches.into_iter().enumerate() {
            // Every 7th batch is corrupted: a report from a cell that does
            // not exist and a movement teleporting across the grid.
            if t % 7 == 3 {
                batch.push(UserEvent {
                    user: 900_000 + t as u64,
                    state: TransitionState::Enter(CellId(num_cells + 17)),
                });
                batch.push(UserEvent {
                    user: 900_100 + t as u64,
                    state: TransitionState::Move { from: CellId(0), to: CellId(num_cells - 1) },
                });
            }
            if tx.send(batch).is_err() {
                return;
            }
            // One mid-stream stall, longer than the consumer's deadline.
            if t == 20 {
                thread::sleep(Duration::from_millis(60));
            }
        }
    });

    // --- The hardened ingestion stack ---------------------------------
    let guarded = source.with_deadline(Duration::from_millis(25), StallPolicy::Heartbeat);
    let mut validated = ValidatedSource::new(guarded, topology, IngestPolicy::DropEvents);

    let wal_path = std::env::temp_dir()
        .join(format!("retrasyn-supervised-example-{}.wal", std::process::id()));
    let mut supervisor = Supervisor::create(engine, &wal_path, 23, FsyncPolicy::EveryN(8))
        .expect("create supervised session")
        .with_checkpoints(10);

    while let Some(batch) = validated.next_batch() {
        match supervisor.step(batch).expect("supervision machinery") {
            StepVerdict::Stepped(outcome) => {
                if outcome.t.is_multiple_of(10) {
                    println!(
                        "t={:2}  active={:4}  finished={:4}",
                        outcome.t, outcome.active, outcome.finished
                    );
                }
            }
            StepVerdict::Recovered { outcome, attempts, .. } => {
                println!("t={:2}  recovered after {attempts} attempts", outcome.t);
            }
            StepVerdict::Poisoned { t, attempts, fault } => {
                println!("t={t:2}  POISONED after {attempts} attempts: {fault}");
            }
        }
    }

    let released = supervisor.release().expect("release supervised session");
    println!(
        "released     : {} streams over {} timestamps",
        released.num_streams(),
        released.horizon()
    );

    // --- What the stack absorbed --------------------------------------
    let ingest = *validated.stats();
    println!(
        "ingest       : {} events in, {} passed, {} quarantined ({} out-of-domain, {} non-adjacent)",
        ingest.events,
        ingest.passed,
        ingest.diverted(),
        ingest.out_of_domain,
        ingest.non_adjacent_moves,
    );
    let stalls = validated.inner().stalls();
    println!("stalls       : {stalls} heartbeat batch(es) synthesized for a stalled producer");
    let sup = *supervisor.stats();
    println!(
        "supervisor   : {} steps, {} recovered, {} poisoned, {} checkpoints",
        sup.steps, sup.recovered, sup.poisoned, sup.checkpoints
    );

    producer.join().expect("producer thread");
    assert!(ingest.diverted() > 0, "the corrupted batches must have been screened");
    assert!(stalls > 0, "the stall must have been absorbed as a heartbeat");
    assert_eq!(sup.poisoned, 0, "screened input never poisons the engine");

    // The WAL now holds exactly the screened session: a fresh engine
    // replays it to a bit-identical database.
    let config = RetraSynConfig::new(1.0, 10).with_lambda(gridded.avg_length());
    let mut replayed = RetraSyn::population_division(config, grid, 23);
    replayed.recover(&wal_path).expect("replay the supervised WAL");
    assert_eq!(replayed.release(), released, "WAL replay is bit-identical");
    println!("durability   : WAL replay reproduced the released database bit-identically");

    let _ = std::fs::remove_file(&wal_path);
    let _ = std::fs::remove_file(Checkpointer::sidecar(&wal_path));
    let _ = std::fs::remove_file(Supervisor::<RetraSyn>::poison_sidecar(&wal_path));
}
