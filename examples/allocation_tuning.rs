//! Choosing an allocation strategy (paper §III-E and Fig. 3): Adaptive vs
//! Uniform vs Sample vs one-random-report-per-window, on a stream whose
//! dynamics shift abruptly halfway through.
//!
//! ```sh
//! cargo run --release --example allocation_tuning
//! ```
//!
//! The regime-shift workload is exactly the situation the adaptive
//! allocator targets: spending evenly wastes budget while the stream is
//! static and under-spends right after the shift.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::core::AllocationKind;
use retrasyn::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let dataset = RegimeShiftConfig { users: 1200, timestamps: 80, shift_at: 40, step: 0.05 }
        .generate(&mut rng);
    let grid = Grid::unit(6);
    let orig = dataset.discretize(&grid);
    println!("regime-shift stream: {}", orig.stats());
    println!("(flow flips from eastward to southward at t = 40)\n");

    let suite = MetricSuite::new(SuiteConfig { phi: 10, ..Default::default() });
    println!(
        "{:<14} {:>14} {:>14} {:>12}",
        "allocation", "density_err", "transition_err", "kendall"
    );
    for kind in [
        AllocationKind::Adaptive,
        AllocationKind::Uniform,
        AllocationKind::Sample,
        AllocationKind::RandomReport,
    ] {
        let config =
            RetraSynConfig::new(1.0, 10).with_lambda(orig.avg_length()).with_allocation(kind);
        let mut engine = RetraSyn::population_division(config, grid.clone(), 5);
        let syn = engine.run_gridded(&orig);
        engine.ledger().verify().expect("w-event accounting");
        let r = suite.evaluate(&orig, &syn);
        println!(
            "{:<14} {:>14.4} {:>14.4} {:>12.4}",
            format!("{kind:?}"),
            r.density_error,
            r.transition_error,
            r.kendall_tau
        );
    }
}
