//! A live streaming session: the engine consumes event batches from a
//! bounded channel fed by a producer thread — no dataset is ever
//! materialized on the consumer side — and answers per-timestamp queries
//! from the borrowed `snapshot()` between steps.
//!
//! ```sh
//! cargo run --release --example live_session
//! ```
//!
//! Demonstrates the three pillars of the session API:
//!
//! 1. **Pluggable ingestion** ([`EventSource`]): the same engine code is
//!    driven first by a [`ChannelSource`] (live producer thread with
//!    back-pressure), then — after a `reset()` — by an [`IterSource`] over
//!    the recorded batches, producing a bit-identical release.
//! 2. **Per-timestamp observation**: `snapshot()` is a borrowed, zero-copy
//!    view of the evolving synthetic database; reading it is
//!    post-processing with no privacy cost.
//! 3. **Non-consuming release**: `release()` hands out the accumulated
//!    database and the engine object survives for the next session.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::geo::EventTimeline;
use retrasyn::prelude::*;
use std::thread;

fn main() {
    // The "real world": a recorded stream we replay as if it arrived live.
    let mut rng = StdRng::seed_from_u64(5);
    let dataset =
        RandomWalkConfig { users: 800, timestamps: 50, churn: 0.08, ..Default::default() }
            .generate(&mut rng);
    let grid = Grid::unit(5);
    let gridded = dataset.discretize(&grid);
    let timeline = EventTimeline::build(&gridded);
    let batches: Vec<Vec<UserEvent>> =
        (0..timeline.horizon()).map(|t| timeline.at(t).to_vec()).collect();

    let config = RetraSynConfig::new(1.0, 10).with_lambda(gridded.avg_length());
    let mut engine = RetraSyn::population_division(config, grid.clone(), 23);

    // --- Session 1: a producer thread feeds a bounded channel. ---------
    // Capacity 4 ⇒ the producer back-pressures when the engine lags.
    let (tx, mut source) = ChannelSource::bounded(4);
    let producer_batches = batches.clone();
    let producer = thread::spawn(move || {
        for batch in producer_batches {
            if tx.send(batch).is_err() {
                return; // consumer hung up
            }
        }
        // Dropping the sender ends the stream.
    });

    let mut scratch = Vec::new();
    while let Some(batch) = source.next_batch() {
        let outcome = engine.step(engine.next_timestamp(), batch);
        // Live queries between steps, straight off the borrowed view.
        let snapshot = engine.snapshot();
        if outcome.t.is_multiple_of(10) {
            // Longest live synthetic trajectory right now (zero-copy walk
            // of the arena chains, newest cell first).
            let longest = snapshot.live().map(|s| s.len()).max().unwrap_or(0);
            snapshot.occupancy_into(grid.num_cells(), &mut scratch);
            let occupied = scratch.iter().filter(|&&c| c > 0).count();
            println!(
                "t={:2}  active={:4}  finished={:4}  longest-live={:2}  occupied-cells={}",
                outcome.t, outcome.active, outcome.finished, longest, occupied
            );
        }
    }
    producer.join().expect("producer thread");

    let live_release = engine.release();
    engine.ledger().verify().expect("w-event accounting (live)");
    println!("live session : {} streams released", live_release.num_streams());

    // --- Session 2: same engine object, reset, iterator-backed feed. ---
    engine.reset();
    let replay = engine.drive(IterSource::new(batches.into_iter()));
    engine.ledger().verify().expect("w-event accounting (replay)");
    println!("replay       : {} streams released", replay.num_streams());

    // Same seed, same events ⇒ bit-identical synthetic database, no matter
    // which source delivered the batches.
    assert_eq!(live_release, replay, "channel and iterator sessions must agree");
    println!("determinism  : channel-fed and iterator-fed sessions are bit-identical");
}
