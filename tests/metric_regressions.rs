//! Metric regression tests on frozen hand-built fixtures: each metric is
//! pinned to an analytically derived value so refactors cannot silently
//! change metric semantics.

use retrasyn::geo::{CellId, Grid, GriddedDataset, GriddedStream};
use retrasyn::metrics::{
    density, divergence, hotspot, kendall, length, pattern, query, transition, trip,
};
use retrasyn::prelude::TransitionTable;
use std::f64::consts::LN_2;

/// Original: two streams — A marches east along y=0 for 4 cells; B sits
/// still at (3,3) for 4 timestamps.
fn orig(grid: &Grid) -> GriddedDataset {
    GriddedDataset::from_streams(
        grid.clone(),
        vec![
            GriddedStream { id: 0, start: 0, cells: (0..4).map(|x| grid.cell_at(x, 0)).collect() },
            GriddedStream { id: 1, start: 0, cells: vec![grid.cell_at(3, 3); 4] },
        ],
        4,
    )
}

/// Synthetic: A is reproduced exactly; B is displaced to (0,3).
fn syn(grid: &Grid) -> GriddedDataset {
    GriddedDataset::from_streams(
        grid.clone(),
        vec![
            GriddedStream { id: 0, start: 0, cells: (0..4).map(|x| grid.cell_at(x, 0)).collect() },
            GriddedStream { id: 1, start: 0, cells: vec![grid.cell_at(0, 3); 4] },
        ],
        4,
    )
}

#[test]
fn density_error_pinned() {
    let grid = Grid::unit(4);
    // Per timestamp: orig = {cell_x0: 1, (3,3): 1}, syn = {cell_x0: 1,
    // (0,3): 1}. Each timestamp: two half-mass cells, one shared.
    // JSD = 0.5*[0.5 ln(0.5/0.25)]*2 ... = 0.5*ln2 per side? Analytic:
    // p = [.5,.5,0], q = [.5,0,.5], m = [.5,.25,.25]:
    // KL(p||m) = .5 ln1 + .5 ln2 = .3466; same for q; JSD = .3466.
    let expected = 0.5 * LN_2;
    let e = density::density_error(&orig(&grid), &syn(&grid));
    assert!((e - expected).abs() < 1e-9, "e={e}");
}

#[test]
fn transition_error_pinned() {
    let grid = Grid::unit(4);
    let table = TransitionTable::new(&grid);
    // Moves per ts: orig {east-step, stay@(3,3)}, syn {east-step,
    // stay@(0,3)} — same structure as density: JSD = 0.5 ln 2.
    let e = transition::transition_error(&orig(&grid), &syn(&grid), &table);
    assert!((e - 0.5 * LN_2).abs() < 1e-9, "e={e}");
}

#[test]
fn trip_error_pinned() {
    let grid = Grid::unit(4);
    // Trips: orig {(0,0)->(3,0), (3,3)->(3,3)}, syn {(0,0)->(3,0),
    // (0,3)->(0,3)}: half the mass disjoint -> JSD = 0.5 ln 2.
    let e = trip::trip_error(&orig(&grid), &syn(&grid));
    assert!((e - 0.5 * LN_2).abs() < 1e-9, "e={e}");
}

#[test]
fn length_error_pinned_zero() {
    let grid = Grid::unit(4);
    // Travel distances identical (3 hops and 0 hops on both sides).
    let e = length::length_error(&orig(&grid), &syn(&grid), 10);
    assert!(e < 1e-12, "e={e}");
}

#[test]
fn kendall_tau_pinned() {
    let grid = Grid::unit(2);
    // Popularity: orig counts [3,2,1,0] over cells 0..3; syn [0,1,2,3].
    let build = |counts: [usize; 4]| {
        let mut streams = Vec::new();
        let mut id = 0;
        for (cell, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                streams.push(GriddedStream { id, start: 0, cells: vec![CellId(cell as u32)] });
                id += 1;
            }
        }
        GriddedDataset::from_streams(grid.clone(), streams, 1)
    };
    let tau = kendall::kendall_tau(&build([3, 2, 1, 0]), &build([0, 1, 2, 3]));
    assert!((tau + 1.0).abs() < 1e-12, "tau={tau}");
}

#[test]
fn query_error_pinned() {
    let grid = Grid::unit(4);
    let o = orig(&grid);
    let s = syn(&grid);
    // Query the (3,3) cell across all 4 timestamps: orig = 4, syn = 0.
    let q = query::RangeQuery { x0: 3, x1: 3, y0: 3, y1: 3, t0: 0, t1: 3 };
    let e = query::query_error(&o, &s, &[q], 0.0001);
    assert!((e - 1.0).abs() < 1e-12, "e={e}");
    // Query covering everything: totals equal -> error 0.
    let all = query::RangeQuery { x0: 0, x1: 3, y0: 0, y1: 3, t0: 0, t1: 3 };
    assert_eq!(query::query_error(&o, &s, &[all], 0.0001), 0.0);
}

#[test]
fn hotspot_ndcg_pinned() {
    let grid = Grid::unit(4);
    let o = orig(&grid);
    // Perfect synthetic: NDCG 1.
    let r = hotspot::TimeRange { t0: 0, t1: 3 };
    assert!((hotspot::hotspot_ndcg(&o, &o, &[r], 2) - 1.0).abs() < 1e-12);
}

#[test]
fn pattern_f1_pinned() {
    let grid = Grid::unit(4);
    let o = orig(&grid);
    let s = syn(&grid);
    let r = hotspot::TimeRange { t0: 0, t1: 3 };
    // Patterns of length 2: orig has 3 east-pairs + 3 (3,3) self-pairs =
    // 4 distinct (3 east + 1 self); syn replaces the self-pattern location.
    // With N large enough both sets have 4 patterns, 3 shared: F1 = 3/4.
    let f1 = pattern::pattern_f1(&o, &s, &[r], 100, 2);
    assert!((f1 - 0.75).abs() < 1e-12, "f1={f1}");
}

#[test]
fn jsd_reference_values() {
    // Spot-check against independently computed values.
    let p = [0.5, 0.5];
    let q = [0.9, 0.1];
    // m = [0.7, 0.3]; JSD = 0.5(0.5 ln(5/7) + 0.5 ln(5/3))
    //                     + 0.5(0.9 ln(9/7) + 0.1 ln(1/3)).
    let expected = 0.5 * (0.5 * (0.5f64 / 0.7).ln() + 0.5 * (0.5f64 / 0.3).ln())
        + 0.5 * (0.9 * (0.9f64 / 0.7).ln() + 0.1 * (0.1f64 / 0.3).ln());
    let d = divergence::jsd(&p, &q);
    assert!((d - expected).abs() < 1e-12, "d={d} expected={expected}");
}
