//! Privacy accounting integration tests: the w-event ε-LDP invariant
//! (Theorem 3) is verified at runtime for every engine, division, and
//! allocation strategy, under adversarially chosen parameters.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::core::{AllocationKind, BaselineKind, Division};
use retrasyn::ldp::WEventLedger;
use retrasyn::prelude::*;

fn churny_dataset(seed: u64, timestamps: u64) -> StreamDataset {
    // High churn stresses the registry/recycling logic.
    RandomWalkConfig { users: 250, timestamps, churn: 0.15, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(seed))
}

#[test]
fn retrasyn_invariant_across_window_sizes() {
    let ds = churny_dataset(1, 60);
    for w in [1usize, 2, 5, 13, 60, 100] {
        for division in [Division::Budget, Division::Population] {
            let config = RetraSynConfig::new(1.0, w).with_lambda(10.0);
            let mut engine = RetraSyn::new(config, Grid::unit(4), division, 3);
            let _ = engine.run(&ds);
            engine.ledger().verify().unwrap_or_else(|e| panic!("w={w} {division:?}: {e}"));
        }
    }
}

#[test]
fn retrasyn_invariant_across_allocations_and_budgets() {
    let ds = churny_dataset(2, 50);
    for eps in [0.1, 0.5, 2.0, 8.0] {
        for kind in [AllocationKind::Adaptive, AllocationKind::Uniform, AllocationKind::Sample] {
            for division in [Division::Budget, Division::Population] {
                let config = RetraSynConfig::new(eps, 7).with_lambda(10.0).with_allocation(kind);
                let mut engine = RetraSyn::new(config, Grid::unit(4), division, 5);
                let _ = engine.run(&ds);
                engine
                    .ledger()
                    .verify()
                    .unwrap_or_else(|e| panic!("eps={eps} {kind:?} {division:?}: {e}"));
            }
        }
        // RandomReport (population-only).
        let config = RetraSynConfig::new(eps, 7)
            .with_lambda(10.0)
            .with_allocation(AllocationKind::RandomReport);
        let mut engine = RetraSyn::population_division(config, Grid::unit(4), 5);
        let _ = engine.run(&ds);
        engine.ledger().verify().unwrap_or_else(|e| panic!("eps={eps} random: {e}"));
    }
}

#[test]
fn baselines_invariant_across_parameters() {
    let ds = churny_dataset(3, 50);
    for kind in BaselineKind::ALL {
        for w in [2usize, 5, 10, 25] {
            for eps in [0.5, 1.0, 2.0] {
                let mut engine = LdpIds::new(kind, LdpIdsConfig::new(eps, w), Grid::unit(4), 7);
                let _ = engine.run(&ds);
                engine
                    .ledger()
                    .verify()
                    .unwrap_or_else(|e| panic!("{} w={w} eps={eps}: {e}", kind.name()));
            }
        }
    }
}

#[test]
fn population_division_spends_full_eps_per_report_at_most_once_per_window() {
    let ds = churny_dataset(4, 40);
    let w = 6;
    let config = RetraSynConfig::new(1.0, w).with_lambda(10.0);
    let mut engine = RetraSyn::population_division(config, Grid::unit(4), 11);
    let _ = engine.run(&ds);
    // verify() already checks spacing; also confirm reports actually
    // happened (the mechanism is not vacuously private).
    assert!(engine.ledger().total_user_reports() > 50);
}

#[test]
fn budget_division_window_spend_stays_within_eps() {
    let ds = churny_dataset(5, 45);
    let eps = 1.3;
    let w = 9;
    let config = RetraSynConfig::new(eps, w).with_lambda(10.0);
    let mut engine = RetraSyn::budget_division(config, Grid::unit(4), 13);
    let _ = engine.run(&ds);
    for t in 0..45 {
        let spend = engine.ledger().window_spend(t);
        assert!(spend <= eps + 1e-9, "window ending at {t} spends {spend}");
    }
}

#[test]
fn ledger_detects_violations() {
    // The accounting itself must be falsifiable.
    let mut ledger = WEventLedger::new(1.0, 3);
    ledger.record_budget(0, 0.6);
    ledger.record_budget(1, 0.6);
    assert!(ledger.verify().is_err());

    let mut ledger = WEventLedger::new(1.0, 5);
    ledger.record_user_report(1, 2);
    ledger.record_user_report(1, 4);
    assert!(ledger.verify().is_err());
}

#[test]
fn sequential_composition_helper() {
    use retrasyn::ldp::PrivacyBudget;
    let parts: Vec<PrivacyBudget> = (0..5).map(|_| PrivacyBudget::new(0.2).unwrap()).collect();
    assert!((PrivacyBudget::compose(&parts) - 1.0).abs() < 1e-12);
}
