//! Fault-injection harness: crash the durable pipeline at arbitrary byte
//! offsets, flip bits, corrupt checkpoints mid-write — recovery must
//! always yield either a bit-identical prefix of the original session or
//! a clean, descriptive error. Never a panic, a hang, or silently wrong
//! output. Also proves the epoch-compaction memory bound is transparent:
//! a low high-water mark over a 10k-timestamp stream keeps resident arena
//! cells O(live population) with a bit-identical release.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::geo::TransitionState;
use retrasyn::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("retrasyn-fault-{}-{tag}-{n}.wal", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(Checkpointer::sidecar(path));
}

const HORIZON: usize = 18;

fn dataset() -> retrasyn::geo::GriddedDataset {
    RandomWalkConfig { users: 40, timestamps: HORIZON as u64, churn: 0.1, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(5))
        .discretize(&Grid::unit(5))
}

fn engine() -> RetraSyn {
    let config = RetraSynConfig::new(1.0, 5).with_lambda(10.0);
    RetraSyn::population_division(config, Grid::unit(5), 13)
}

/// Write the full session's WAL and return its bytes.
fn record_session(path: &PathBuf) -> Vec<u8> {
    let gridded = dataset();
    let mut e = engine();
    let writer =
        WalWriter::create(path, 13, e.fingerprint(), FsyncPolicy::EveryBatch).expect("create WAL");
    let mut source = WalSource::tee(TimelineSource::from_gridded(&gridded), writer);
    while let Some(batch) = source.next_batch() {
        e.step(e.next_timestamp(), batch);
    }
    let (_, mut writer) = source.into_parts();
    writer.sync().expect("sync");
    std::fs::read(path).expect("read WAL back")
}

/// Reference releases for every prefix length 0..=HORIZON: the release a
/// bit-identical recovery of an n-timestamp prefix must equal.
fn prefix_references() -> Vec<retrasyn::geo::GriddedDataset> {
    let gridded = dataset();
    (0..=HORIZON)
        .map(|n| {
            let mut e = engine();
            let mut source = TimelineSource::from_gridded(&gridded);
            for _ in 0..n {
                let batch = source.next_batch().expect("within horizon");
                e.step(e.next_timestamp(), batch);
            }
            e.release()
        })
        .collect()
}

#[test]
fn kill_at_arbitrary_byte_offsets_recovers_prefix_or_errors() {
    let path = temp_path("kill");
    let full = record_session(&path);
    let refs = prefix_references();

    // Every cut length in the last two records, plus a stride sample of
    // the whole file (exhaustive parse-level truncation is covered by the
    // wal unit tests; this drives the full recover pipeline).
    let tail_start = full.len().saturating_sub(2 * (4 + 12 + 4 + 40 * 13));
    let cuts: Vec<usize> = (0..full.len()).filter(|&c| c >= tail_start || c % 97 == 0).collect();
    for cut in cuts {
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let mut e = engine();
        match e.recover(&path) {
            Ok(recovery) => {
                let n = recovery.next_timestamp() as usize;
                assert!(n <= HORIZON, "cut={cut}: recovered past the horizon");
                if !recovery.truncated && n < HORIZON {
                    // Only a cut landing exactly on a record boundary is
                    // indistinguishable from a shorter session; anything
                    // else must be reported as a truncation.
                    let contents = WalContents::read(&path).expect("reparse");
                    assert_eq!(contents.valid_len, cut as u64, "cut={cut}: lost data unreported");
                }
                assert_eq!(e.release(), refs[n], "cut={cut}: prefix not bit-identical");
            }
            Err(e) => {
                // Only header damage is a hard error, and it must say why.
                assert!(cut < 28, "cut={cut}: record damage must truncate, not fail");
                assert!(!e.to_string().is_empty());
            }
        }
    }
    cleanup(&path);
}

#[test]
fn bit_flips_never_panic_and_never_silently_corrupt() {
    let path = temp_path("flip");
    let full = record_session(&path);
    let refs = prefix_references();

    let offsets: Vec<usize> = (0..full.len()).filter(|&o| o % 61 == 0).collect();
    for offset in offsets {
        for bit in [0u8, 5] {
            let mut corrupted = full.clone();
            corrupted[offset] ^= 1 << bit;
            std::fs::write(&path, &corrupted).expect("write corrupted");
            let mut e = engine();
            match e.recover(&path) {
                Ok(recovery) => {
                    // A flip that still recovers must have been confined to
                    // the discarded tail: the result is an exact prefix.
                    let n = recovery.next_timestamp() as usize;
                    assert_eq!(
                        e.release(),
                        refs[n],
                        "offset={offset} bit={bit}: silently wrong recovery"
                    );
                }
                Err(err) => {
                    assert!(!err.to_string().is_empty(), "offset={offset}: silent error");
                }
            }
        }
    }
    cleanup(&path);
}

#[test]
fn crash_mid_checkpoint_leaves_recovery_intact() {
    let gridded = dataset();
    let path = temp_path("midckpt");
    let mut original = engine();
    let writer = WalWriter::create(&path, 13, original.fingerprint(), FsyncPolicy::EveryBatch)
        .expect("create WAL");
    let ckpt = Checkpointer::new(&path, 6);
    let mut source = WalSource::tee(TimelineSource::from_gridded(&gridded), writer);
    while let Some(batch) = source.next_batch() {
        original.step(original.next_timestamp(), batch);
        ckpt.maybe_save(&original).expect("checkpoint");
    }
    let (_, mut writer) = source.into_parts();
    writer.sync().expect("sync");
    let expected = original.release();

    // Crash scenario A: the atomic-rename tmp file survives next to a
    // good checkpoint. It must simply be ignored.
    let sidecar = Checkpointer::sidecar(&path);
    let mut tmp = sidecar.as_os_str().to_os_string();
    tmp.push(".tmp");
    std::fs::write(PathBuf::from(tmp), b"half-written checkpoint garbage").expect("tmp litter");
    let mut e = engine();
    let recovery = e.recover(&path).expect("recover with tmp litter");
    assert!(matches!(recovery.checkpoint, CheckpointUse::Restored { .. }));
    assert_eq!(e.release(), expected);

    // Crash scenario B: the checkpoint itself is torn (truncated bytes) —
    // recovery reports it and falls back to full replay, same result.
    let good = std::fs::read(&sidecar).expect("read sidecar");
    for keep in [0usize, 7, 20, good.len() / 2, good.len() - 1] {
        std::fs::write(&sidecar, &good[..keep.min(good.len())]).expect("tear sidecar");
        let mut e = engine();
        let recovery = e.recover(&path).expect("recover past torn checkpoint");
        assert!(
            matches!(recovery.checkpoint, CheckpointUse::Ignored { .. }),
            "keep={keep}: torn checkpoint not reported"
        );
        assert_eq!(recovery.resumed_from, 0);
        assert_eq!(e.release(), expected, "keep={keep}");
    }

    // Crash scenario C: checkpoint claims timestamps the (torn) WAL does
    // not have. Recovery must ignore it rather than resume into the void.
    std::fs::write(&sidecar, &good).expect("restore sidecar");
    let full = std::fs::read(&path).expect("read WAL");
    std::fs::write(&path, &full[..full.len() - 10]).expect("tear WAL tail");
    let wal_now = WalContents::read(&path).expect("parse torn WAL");
    if (wal_now.batches.len() as u64) < 18 {
        let mut e = engine();
        let recovery = e.recover(&path).expect("recover torn WAL with ahead checkpoint");
        let n = recovery.next_timestamp() as usize;
        match recovery.checkpoint {
            CheckpointUse::Restored { at } => assert!(at <= n as u64),
            CheckpointUse::Ignored { ref reason } => assert!(!reason.is_empty()),
            CheckpointUse::None => panic!("sidecar exists but was not considered"),
        }
        assert_eq!(e.release(), prefix_references()[n]);
    }
    cleanup(&path);
}

// ---------------------------------------------------------------------------
// Supervisor drills: injected engine crashes mid-step.

/// Wraps [`RetraSyn`], injecting panics on demand: a *transient* fault
/// fires at one timestamp a bounded number of times (the retry after
/// recovery succeeds); a *poison* fault fires whenever the batch carries a
/// marker reporter (every replay of that batch crashes, so the supervisor
/// must quarantine it). Both fire before the inner engine is touched, so a
/// recovery replay of the durable prefix never re-trips them.
struct FaultyEngine {
    inner: RetraSyn,
    fault_at: u64,
    transient_remaining: std::cell::Cell<u32>,
    poison_user: Option<u64>,
}

impl FaultyEngine {
    fn transient(inner: RetraSyn, fault_at: u64) -> Self {
        FaultyEngine {
            inner,
            fault_at,
            transient_remaining: std::cell::Cell::new(1),
            poison_user: None,
        }
    }

    fn poisoned_by(inner: RetraSyn, user: u64) -> Self {
        FaultyEngine {
            inner,
            fault_at: u64::MAX,
            transient_remaining: std::cell::Cell::new(0),
            poison_user: Some(user),
        }
    }
}

impl StreamingEngine for FaultyEngine {
    fn topology(&self) -> &std::sync::Arc<Topology> {
        self.inner.topology()
    }
    fn next_timestamp(&self) -> u64 {
        self.inner.next_timestamp()
    }
    fn try_step(
        &mut self,
        t: u64,
        events: &[UserEvent],
    ) -> Result<StepOutcome, retrasyn::core::SessionError> {
        if t == self.fault_at && self.transient_remaining.get() > 0 {
            self.transient_remaining.set(self.transient_remaining.get() - 1);
            panic!("injected transient fault at t={t}");
        }
        if let Some(user) = self.poison_user {
            if events.iter().any(|e| e.user == user) {
                panic!("injected poison batch at t={t}");
            }
        }
        self.inner.try_step(t, events)
    }
    fn snapshot(&self) -> SnapshotView<'_> {
        self.inner.snapshot()
    }
    fn try_release(
        &mut self,
    ) -> Result<retrasyn::geo::GriddedDataset, retrasyn::core::SessionError> {
        self.inner.try_release()
    }
    fn ledger(&self) -> &WEventLedger {
        self.inner.ledger()
    }
    fn reset(&mut self) {
        self.inner.reset()
    }
    fn fingerprint(&self) -> u64 {
        self.inner.fingerprint()
    }
    fn checkpoint_bytes(&self) -> Option<Vec<u8>> {
        self.inner.checkpoint_bytes()
    }
    fn restore_checkpoint(&mut self, payload: &[u8]) -> Result<(), String> {
        self.inner.restore_checkpoint(payload)
    }
}

fn cleanup_supervised(path: &PathBuf) {
    cleanup(path);
    let _ = std::fs::remove_file(Supervisor::<RetraSyn>::poison_sidecar(path));
}

#[test]
fn transient_step_panic_recovers_bit_identical() {
    let gridded = dataset();
    let expected = engine().run_gridded(&gridded);

    // A crash at the very first step, mid-stream, and at the last step —
    // each with and without checkpoint sidecars in the replay path.
    for fault_at in [0, 7, HORIZON as u64 - 1] {
        for ckpt_every in [None, Some(3)] {
            let path = temp_path("transient");
            let faulty = FaultyEngine::transient(engine(), fault_at);
            let mut sup = Supervisor::create(faulty, &path, 13, FsyncPolicy::EveryBatch)
                .expect("create supervisor");
            if let Some(every) = ckpt_every {
                sup = sup.with_checkpoints(every);
            }
            let released = sup
                .drive(TimelineSource::from_gridded(&gridded))
                .expect("supervised drive survives the injected crash");
            assert_eq!(
                released, expected,
                "fault_at={fault_at} ckpt={ckpt_every:?}: recovery not bit-identical"
            );
            let stats = *sup.stats();
            assert_eq!(stats.recovered, 1, "fault_at={fault_at}: exactly one recovery");
            assert_eq!(stats.poisoned, 0);
            assert_eq!(stats.steps, HORIZON as u64);
            if ckpt_every.is_some() {
                assert!(stats.checkpoints > 0, "checkpoint interval never fired");
            }
            assert!(
                !sup.poison_path().exists(),
                "a recovered transient fault must not be quarantined"
            );
            cleanup_supervised(&path);
        }
    }
}

#[test]
fn poison_batch_is_quarantined_once_and_session_continues() {
    const POISON_USER: u64 = 999_999;
    const POISON_AT: usize = 5;
    let gridded = dataset();
    let expected = engine().run_gridded(&gridded);

    // Splice a deterministic poison batch into the stream: semantically
    // valid (it passes every ingest check), but the engine crashes on it —
    // and on every crash-replay of it. The supervisor must give up after
    // max_attempts, quarantine it, and deliver the session the stream
    // would have produced without it.
    let timeline = EventTimeline::build(&gridded);
    let mut batches: Vec<Vec<UserEvent>> =
        (0..HORIZON as u64).map(|t| timeline.at(t).to_vec()).collect();
    batches.insert(
        POISON_AT,
        vec![UserEvent { user: POISON_USER, state: TransitionState::Enter(CellId(0)) }],
    );

    let path = temp_path("poison");
    let faulty = FaultyEngine::poisoned_by(engine(), POISON_USER);
    let mut sup =
        Supervisor::create(faulty, &path, 13, FsyncPolicy::EveryBatch).expect("create supervisor");
    let released =
        sup.drive(IterSource::new(batches.into_iter())).expect("session continues past poison");
    assert_eq!(released, expected, "poisoned session must equal the stream minus the batch");

    let stats = *sup.stats();
    assert_eq!(stats.poisoned, 1, "the poison batch is quarantined exactly once");
    assert_eq!(stats.recovered, 0, "no attempt at the poison batch ever succeeds");
    assert_eq!(stats.steps, HORIZON as u64);

    // The sidecar records exactly one quarantine with the right shape.
    let sidecar = std::fs::read_to_string(sup.poison_path()).expect("poison sidecar exists");
    let lines: Vec<&str> = sidecar.lines().collect();
    assert_eq!(lines.len(), 1, "exactly one poison record: {lines:?}");
    assert!(
        lines[0].starts_with(&format!("t={POISON_AT} attempts=2 events=1 fault=")),
        "malformed poison record: {}",
        lines[0]
    );
    assert!(lines[0].contains("injected poison batch"), "fault message lost: {}", lines[0]);

    // The WAL holds only the batches that actually entered the session:
    // replaying it into a fresh engine reproduces the same release.
    let mut replayed = engine();
    let recovery = replayed.recover(&path).expect("replay the poisoned session's WAL");
    assert_eq!(recovery.next_timestamp(), HORIZON as u64);
    assert_eq!(replayed.release(), expected);
    cleanup_supervised(&path);
}

#[test]
fn compaction_bounds_resident_cells_over_long_stream() {
    const T: u64 = 10_000;
    const MARK: usize = 4_000;
    let gridded = RandomWalkConfig { users: 50, timestamps: T, churn: 0.05, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(23))
        .discretize(&Grid::unit(5));
    let config = RetraSynConfig::new(1.0, 5).with_lambda(10.0);
    let mut plain = RetraSyn::population_division(config.clone(), Grid::unit(5), 3);
    let mut compacting =
        RetraSyn::population_division(config.with_compaction(MARK), Grid::unit(5), 3);

    // Compaction is operational only: it must not change the session
    // identity (a WAL recorded by one must replay into the other).
    assert_eq!(plain.fingerprint(), compacting.fingerprint());

    let mut source = TimelineSource::from_gridded(&gridded);
    let mut max_resident = 0usize;
    while let Some(batch) = source.next_batch() {
        let t = compacting.next_timestamp();
        let a = compacting.step(t, batch);
        let b = plain.step(t, batch);
        assert_eq!(a, b, "step outcomes diverged at t={t}");
        let resident = compacting.resident_cells();
        max_resident = max_resident.max(resident);
        // The bound: mark plus at most one step's growth (live streams
        // each gain one cell per step; finished rows freeze on trigger).
        assert!(
            resident <= MARK + 2 * a.active + 64,
            "t={t}: resident {resident} cells blew past the high-water mark {MARK}"
        );
        if t.is_multiple_of(1000) {
            // The live view is served transparently across live + frozen.
            assert_eq!(
                compacting.snapshot().occupancy(25),
                plain.snapshot().occupancy(25),
                "snapshot diverged at t={t}"
            );
        }
    }
    let stats = compacting.compaction_stats();
    assert!(stats.runs > 0, "the mark was never hit in 10k timestamps");
    assert_eq!(stats.overflows, 0, "live population alone exceeded the mark");
    assert!(stats.frozen_cells > 0);

    // The memory bound is real: the uncompacted engine holds every cell
    // ever synthesized, the compacted one only O(live + mark).
    let uncompacted = plain.resident_cells();
    assert!(
        uncompacted > 4 * max_resident,
        "compaction saved nothing: {uncompacted} vs max {max_resident}"
    );

    // And it is invisible in the output: bit-identical releases.
    assert_eq!(compacting.release(), plain.release());
}
