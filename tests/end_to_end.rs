//! End-to-end integration tests: generators → discretization → private
//! engines → metrics, across all methods.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::core::{BaselineKind, Division};
use retrasyn::prelude::*;

fn small_taxi() -> StreamDataset {
    TDriveConfig { taxis: 400, timestamps: 80, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(1))
}

fn small_network() -> StreamDataset {
    BrinkhoffConfig { initial_objects: 400, new_per_ts: 20, timestamps: 60, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(2))
}

#[test]
fn retrasyn_full_pipeline_on_taxi_data() {
    let ds = small_taxi();
    let grid = Grid::unit(5);
    let orig = ds.discretize(&grid);
    let config = RetraSynConfig::new(1.0, 10).with_lambda(orig.avg_length());
    let mut engine = RetraSyn::population_division(config, grid, 7);
    let syn = engine.run_gridded(&orig);
    engine.ledger().verify().expect("w-event invariant");

    assert_eq!(syn.horizon(), orig.horizon());
    // Synthetic size tracks the real one at every timestamp.
    for t in (0..orig.horizon()).step_by(7) {
        assert_eq!(syn.active_count(t), orig.active_count(t), "t={t}");
    }
    // Movement respects grid adjacency everywhere.
    for s in syn.iter() {
        for w in s.cells.windows(2) {
            assert!(syn.topology().are_adjacent(w[0], w[1]));
        }
    }
}

#[test]
fn retrasyn_beats_uninformed_control() {
    // A synthetic database from a *zero-information* model (uniform walks
    // of the right size) is what RetraSyn must outperform to be useful.
    let ds = TDriveConfig { taxis: 1200, timestamps: 80, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(77));
    let grid = Grid::unit(5);
    let orig = ds.discretize(&grid);

    let config = RetraSynConfig::new(2.0, 10).with_lambda(orig.avg_length());
    let mut engine = RetraSyn::population_division(config, grid.clone(), 3);
    let informed = engine.run_gridded(&orig);

    // Control: same engine but with a privacy budget so small the model
    // never learns anything real.
    let control_config = RetraSynConfig::new(0.01, 10).with_lambda(orig.avg_length());
    let mut control_engine = RetraSyn::population_division(control_config, grid, 3);
    let control = control_engine.run_gridded(&orig);

    let suite = MetricSuite::new(SuiteConfig { phi: 10, ..Default::default() });
    let informed_report = suite.evaluate(&orig, &informed);
    let control_report = suite.evaluate(&orig, &control);
    assert!(
        informed_report.query_error < control_report.query_error,
        "query: {} vs control {}",
        informed_report.query_error,
        control_report.query_error
    );
    assert!(
        informed_report.trip_error < control_report.trip_error,
        "trip: {} vs control {}",
        informed_report.trip_error,
        control_report.trip_error
    );
    assert!(
        informed_report.hotspot_ndcg > control_report.hotspot_ndcg,
        "ndcg: {} vs control {}",
        informed_report.hotspot_ndcg,
        control_report.hotspot_ndcg
    );
}

#[test]
fn baselines_length_error_is_ln2() {
    // The paper's Table III constant: baselines never terminate synthetic
    // trajectories, so their travel-distance support is disjoint from the
    // real one.
    let ds = small_network();
    let grid = Grid::unit(5);
    let orig = ds.discretize(&grid);
    for kind in BaselineKind::ALL {
        let mut engine = LdpIds::new(kind, LdpIdsConfig::new(1.0, 10), grid.clone(), 5);
        let syn = engine.run_gridded(&orig);
        let err = retrasyn::metrics::length::length_error(&orig, &syn, 20);
        assert!((err - std::f64::consts::LN_2).abs() < 1e-6, "{}: length error {err}", kind.name());
    }
}

#[test]
fn retrasyn_dominates_baselines_on_trajectory_metrics() {
    let ds = small_network();
    let grid = Grid::unit(5);
    let orig = ds.discretize(&grid);

    let config = RetraSynConfig::new(1.0, 10).with_lambda(orig.avg_length());
    let mut engine = RetraSyn::population_division(config, grid.clone(), 9);
    let ours = engine.run_gridded(&orig);

    let mut baseline = LdpIds::new(BaselineKind::Lpd, LdpIdsConfig::new(1.0, 10), grid, 9);
    let theirs = baseline.run_gridded(&orig);

    let trip_ours = retrasyn::metrics::trip::trip_error(&orig, &ours);
    let trip_theirs = retrasyn::metrics::trip::trip_error(&orig, &theirs);
    assert!(trip_ours < trip_theirs, "trip: {trip_ours} vs {trip_theirs}");

    let len_ours = retrasyn::metrics::length::length_error(&orig, &ours, 20);
    let len_theirs = retrasyn::metrics::length::length_error(&orig, &theirs, 20);
    assert!(len_ours < len_theirs, "length: {len_ours} vs {len_theirs}");
}

#[test]
fn noeq_ablation_degrades_trajectory_metrics_only() {
    // Table IV: NoEQ keeps global metrics close but collapses the length
    // distribution (ln 2).
    let ds = small_taxi();
    let grid = Grid::unit(5);
    let orig = ds.discretize(&grid);

    let full_config = RetraSynConfig::new(1.5, 10).with_lambda(orig.avg_length());
    let mut full = RetraSyn::population_division(full_config, grid.clone(), 21);
    let full_syn = full.run_gridded(&orig);

    let noeq_config = RetraSynConfig::new(1.5, 10).with_lambda(orig.avg_length()).no_eq();
    let mut noeq = RetraSyn::population_division(noeq_config, grid, 21);
    let noeq_syn = noeq.run_gridded(&orig);

    let full_len = retrasyn::metrics::length::length_error(&orig, &full_syn, 20);
    let noeq_len = retrasyn::metrics::length::length_error(&orig, &noeq_syn, 20);
    assert!((noeq_len - std::f64::consts::LN_2).abs() < 1e-6, "NoEQ length {noeq_len}");
    assert!(full_len < 0.5, "full RetraSyn length error {full_len}");
}

#[test]
fn budget_and_population_divisions_both_work_on_all_generators() {
    for (name, ds) in [("taxi", small_taxi()), ("network", small_network())] {
        let grid = Grid::unit(4);
        let orig = ds.discretize(&grid);
        for division in [Division::Budget, Division::Population] {
            let config = RetraSynConfig::new(1.0, 8).with_lambda(orig.avg_length());
            let mut engine = RetraSyn::new(config, grid.clone(), division, 13);
            let syn = engine.run_gridded(&orig);
            assert!(!syn.is_empty(), "{name}/{division:?}");
            engine.ledger().verify().unwrap_or_else(|e| panic!("{name}/{division:?}: {e}"));
        }
    }
}

#[test]
fn per_user_report_mode_matches_aggregate_statistically() {
    // The exact per-user simulation and the binomial aggregate path must
    // produce statistically equivalent releases (both within a loose bound
    // of the original data).
    let ds = small_taxi();
    let grid = Grid::unit(4);
    let orig = ds.discretize(&grid);
    let suite = MetricSuite::new(SuiteConfig { phi: 10, ..Default::default() });

    let agg_config = RetraSynConfig::new(2.0, 8).with_lambda(orig.avg_length());
    let mut agg = RetraSyn::population_division(agg_config, grid.clone(), 31);
    let agg_report = suite.evaluate(&orig, &agg.run_gridded(&orig));

    let pu_config = RetraSynConfig::new(2.0, 8).with_lambda(orig.avg_length()).per_user_reports();
    let mut pu = RetraSyn::population_division(pu_config, grid, 31);
    let pu_report = suite.evaluate(&orig, &pu.run_gridded(&orig));

    assert!(
        (agg_report.density_error - pu_report.density_error).abs() < 0.1,
        "density: {} vs {}",
        agg_report.density_error,
        pu_report.density_error
    );
    assert!(
        (agg_report.transition_error - pu_report.transition_error).abs() < 0.1,
        "transition: {} vs {}",
        agg_report.transition_error,
        pu_report.transition_error
    );
}
