//! Reproducibility: the whole pipeline — generation, discretization,
//! engines, metric workloads — is a pure function of its seeds.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn::core::{BaselineKind, Division};
use retrasyn::prelude::*;

fn generate(seed: u64) -> StreamDataset {
    TDriveConfig { taxis: 200, timestamps: 50, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(seed))
}

#[test]
fn generators_are_deterministic() {
    let a = generate(5);
    let b = generate(5);
    assert_eq!(a.trajectories().len(), b.trajectories().len());
    for (x, y) in a.trajectories().iter().zip(b.trajectories()) {
        assert_eq!(x, y);
    }
    let c = generate(6);
    assert!(
        !(a.trajectories().len() == c.trajectories().len() && a.trajectories() == c.trajectories()),
        "different seeds should differ"
    );
}

#[test]
fn discretization_is_deterministic() {
    let ds = generate(7);
    let grid = Grid::unit(7);
    let a = ds.discretize(&grid);
    let b = ds.discretize(&grid);
    assert_eq!(a, b);
}

#[test]
fn retrasyn_release_is_deterministic() {
    let ds = generate(8);
    let grid = Grid::unit(5);
    let orig = ds.discretize(&grid);
    let release = |seed: u64| {
        let config = RetraSynConfig::new(1.0, 8).with_lambda(orig.avg_length());
        let mut engine = RetraSyn::population_division(config, grid.clone(), seed);
        engine.run_gridded(&orig)
    };
    let a = release(99);
    let b = release(99);
    assert_eq!(a, b);
}

#[test]
fn baseline_release_is_deterministic() {
    let ds = generate(9);
    let grid = Grid::unit(5);
    let orig = ds.discretize(&grid);
    let release = |seed: u64| {
        let mut engine =
            LdpIds::new(BaselineKind::Lba, LdpIdsConfig::new(1.0, 8), grid.clone(), seed);
        engine.run_gridded(&orig)
    };
    assert_eq!(release(4), release(4));
}

#[test]
fn metric_evaluation_is_deterministic() {
    let ds = generate(10);
    let grid = Grid::unit(5);
    let orig = ds.discretize(&grid);
    let config = RetraSynConfig::new(1.0, 8).with_lambda(orig.avg_length());
    let mut engine = RetraSyn::new(config, grid.clone(), Division::Budget, 2);
    let syn = engine.run_gridded(&orig);
    let suite = MetricSuite::new(SuiteConfig { phi: 5, ..Default::default() });
    let a = suite.evaluate(&orig, &syn);
    let b = suite.evaluate(&orig, &syn);
    assert_eq!(a, b);
}

#[test]
fn pooled_parallel_engine_release_is_deterministic() {
    // The fully sharded synthesis path (fused quit+extend in workers,
    // two-phase parallel shrink): a fixed (seed, threads) pair must yield
    // an identical release run-to-run, and threads = 1 must match the
    // sequential path exactly. 12k taxis keep the active population
    // (~4k/step) above the pool's MIN_PARALLEL threshold so the pooled
    // path actually engages, and the real population's churn drives both
    // shrinking and growing steps through the pool.
    let ds = TDriveConfig { taxis: 12_000, timestamps: 12, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(12));
    let grid = Grid::unit(5);
    let orig = ds.discretize(&grid);
    let release = |threads: usize| {
        let config = RetraSynConfig::new(1.0, 6)
            .with_lambda(orig.avg_length())
            .with_synthesis_threads(threads);
        let mut engine = RetraSyn::population_division(config, grid.clone(), 77);
        engine.run_gridded(&orig)
    };
    let a = release(3);
    let b = release(3);
    assert_eq!(a, b, "same (seed, threads) must reproduce");
    let c = release(1);
    let d = release(1);
    assert_eq!(c, d);
    // The pooled path consumes a different RNG stream than the sequential
    // one; divergence proves the pool actually engaged.
    assert_ne!(a, c, "pooled path did not engage");
}

#[test]
fn pooled_engine_release_deterministic_under_shrink_heavy_churn() {
    // High churn retires many real streams per step, so the synthetic
    // target repeatedly drops and the pooled two-phase shrink selection
    // (per-shard Efraimidis–Spirakis keys + global cut) runs on the
    // critical path. The release must still be bit-identical per
    // (seed, threads).
    let ds = RandomWalkConfig { users: 9_000, timestamps: 15, churn: 0.2, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(18));
    let grid = Grid::unit(5);
    let orig = ds.discretize(&grid);
    let release = |threads: usize| {
        let config = RetraSynConfig::new(1.0, 6)
            .with_lambda(orig.avg_length())
            .with_synthesis_threads(threads);
        let mut engine = RetraSyn::population_division(config, grid.clone(), 55);
        engine.run_gridded(&orig)
    };
    assert_eq!(release(4), release(4));
    assert_eq!(release(1), release(1));
}

#[test]
fn engine_seed_isolation_from_dataset_seed() {
    // Same data, different engine seeds -> different synthetic noise;
    // same engine seed -> identical output regardless of when it runs.
    let ds = generate(11);
    let grid = Grid::unit(5);
    let orig = ds.discretize(&grid);
    let run = |seed: u64| {
        let config = RetraSynConfig::new(1.0, 8).with_lambda(orig.avg_length());
        let mut engine = RetraSyn::population_division(config, grid.clone(), seed);
        engine.run_gridded(&orig)
    };
    let a1 = run(1);
    let a2 = run(1);
    let b = run(2);
    assert_eq!(a1, a2);
    assert_ne!(a1, b);
}
