//! Trip error: JSD between (start, end) trip distributions (paper §V-B,
//! "Trip error… use JSD to measure the difference between start/end
//! points… in T_orig and T_syn").

use crate::divergence::jsd;
use retrasyn_geo::GriddedDataset;
use std::collections::HashMap;

/// Count trips as (first cell, last cell) pairs.
pub fn trip_counts(dataset: &GriddedDataset) -> HashMap<(u32, u32), u64> {
    let mut counts = HashMap::new();
    for s in dataset.iter() {
        *counts.entry((s.first_cell().0, s.last_cell().0)).or_insert(0) += 1;
    }
    counts
}

/// JSD between the trip distributions over the union of observed trips.
pub fn trip_error(orig: &GriddedDataset, syn: &GriddedDataset) -> f64 {
    assert_eq!(orig.topology(), syn.topology(), "datasets must share a discretization");
    let oc = trip_counts(orig);
    let sc = trip_counts(syn);
    let mut keys: Vec<(u32, u32)> = oc.keys().chain(sc.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    let o: Vec<f64> = keys.iter().map(|k| *oc.get(k).unwrap_or(&0) as f64).collect();
    let s: Vec<f64> = keys.iter().map(|k| *sc.get(k).unwrap_or(&0) as f64).collect();
    jsd(&o, &s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::{Grid, GriddedStream};
    use std::f64::consts::LN_2;

    fn ds(grid: &Grid, trips: Vec<(Vec<(u16, u16)>, usize)>) -> GriddedDataset {
        let mut streams = Vec::new();
        let mut id = 0u64;
        for (path, copies) in trips {
            for _ in 0..copies {
                streams.push(GriddedStream {
                    id,
                    start: 0,
                    cells: path.iter().map(|&(x, y)| grid.cell_at(x, y)).collect(),
                });
                id += 1;
            }
        }
        let horizon = streams.iter().map(|s| s.end() + 1).max().unwrap_or(0);
        GriddedDataset::from_streams(grid.clone(), streams, horizon)
    }

    #[test]
    fn identical_trips_zero_error() {
        let grid = Grid::unit(3);
        let a = ds(&grid, vec![(vec![(0, 0), (1, 0), (2, 0)], 3), (vec![(2, 2), (1, 2)], 1)]);
        assert!(trip_error(&a, &a) < 1e-12);
    }

    #[test]
    fn disjoint_trips_max_error() {
        let grid = Grid::unit(3);
        let a = ds(&grid, vec![(vec![(0, 0), (1, 0)], 2)]);
        let b = ds(&grid, vec![(vec![(2, 2), (1, 2)], 2)]);
        assert!((trip_error(&a, &b) - LN_2).abs() < 1e-9);
    }

    #[test]
    fn trip_is_endpoints_only() {
        // Different intermediate routes with the same endpoints are the
        // same trip.
        let grid = Grid::unit(3);
        let a = ds(&grid, vec![(vec![(0, 0), (1, 0), (2, 0)], 1)]);
        let b = ds(&grid, vec![(vec![(0, 0), (1, 1), (2, 0)], 1)]);
        assert!(trip_error(&a, &b) < 1e-12);
    }

    #[test]
    fn single_point_stream_is_self_trip() {
        let grid = Grid::unit(3);
        let counts = trip_counts(&ds(&grid, vec![(vec![(1, 1)], 2)]));
        let c = grid.cell_at(1, 1).0;
        assert_eq!(counts[&(c, c)], 2);
    }

    #[test]
    fn proportions_matter() {
        let grid = Grid::unit(3);
        let orig = ds(&grid, vec![(vec![(0, 0), (1, 0)], 9), (vec![(2, 2), (1, 2)], 1)]);
        let balanced = ds(&grid, vec![(vec![(0, 0), (1, 0)], 5), (vec![(2, 2), (1, 2)], 5)]);
        let matched = ds(&grid, vec![(vec![(0, 0), (1, 0)], 18), (vec![(2, 2), (1, 2)], 2)]);
        assert!(trip_error(&orig, &matched) < 1e-12);
        let e = trip_error(&orig, &balanced);
        assert!(e > 0.05 && e < LN_2, "e={e}");
    }
}
