//! Frequent-pattern preservation: top-N pattern F1 (paper §V-B,
//! "Pattern F1").
//!
//! A pattern is an ordered sequence of consecutive cells (length ≥ 2). For
//! a time range, the top-N most frequent patterns are mined from both
//! databases and compared by F1 score on the two sets.

use crate::hotspot::TimeRange;
use retrasyn_geo::{CellId, GriddedDataset};
use std::collections::HashMap;

/// Mine pattern counts (lengths `2..=max_len`) within `[t0, t1]`.
pub fn pattern_counts(
    dataset: &GriddedDataset,
    range: &TimeRange,
    max_len: usize,
) -> HashMap<Vec<CellId>, u64> {
    assert!(max_len >= 2, "patterns have length >= 2");
    let mut counts: HashMap<Vec<CellId>, u64> = HashMap::new();
    for s in dataset.iter() {
        // Clip the stream to the time range.
        if s.end() < range.t0 || s.start > range.t1 {
            continue;
        }
        let lo = range.t0.max(s.start) - s.start;
        let hi = range.t1.min(s.end()) - s.start;
        let cells = &s.cells[lo as usize..=hi as usize];
        for len in 2..=max_len.min(cells.len()) {
            for window in cells.windows(len) {
                *counts.entry(window.to_vec()).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// Top-`n` patterns by count (ties broken lexicographically for
/// determinism).
pub fn top_patterns(counts: &HashMap<Vec<CellId>, u64>, n: usize) -> Vec<Vec<CellId>> {
    let mut entries: Vec<(&Vec<CellId>, &u64)> = counts.iter().collect();
    entries.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    entries.into_iter().take(n).map(|(p, _)| p.clone()).collect()
}

/// F1 overlap of the two top-N sets.
fn set_f1(a: &[Vec<CellId>], b: &[Vec<CellId>]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let sa: std::collections::HashSet<&Vec<CellId>> = a.iter().collect();
    let inter = b.iter().filter(|p| sa.contains(p)).count() as f64;
    // precision = inter/|b| (synthetic picks), recall = inter/|a|.
    let p = inter / b.len() as f64;
    let r = inter / a.len() as f64;
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Pattern F1 for one time range.
pub fn pattern_f1_at(
    orig: &GriddedDataset,
    syn: &GriddedDataset,
    range: &TimeRange,
    n: usize,
    max_len: usize,
) -> f64 {
    let oc = pattern_counts(orig, range, max_len);
    let sc = pattern_counts(syn, range, max_len);
    set_f1(&top_patterns(&oc, n), &top_patterns(&sc, n))
}

/// Mean pattern F1 over the given time ranges (paper: N = 100 patterns, 100
/// random ranges of size φ).
pub fn pattern_f1(
    orig: &GriddedDataset,
    syn: &GriddedDataset,
    ranges: &[TimeRange],
    n: usize,
    max_len: usize,
) -> f64 {
    assert_eq!(orig.topology(), syn.topology(), "datasets must share a discretization");
    if ranges.is_empty() {
        return 0.0;
    }
    ranges.iter().map(|r| pattern_f1_at(orig, syn, r, n, max_len)).sum::<f64>()
        / ranges.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::{Grid, GriddedStream};

    fn ds(grid: &Grid, paths: Vec<Vec<(u16, u16)>>) -> GriddedDataset {
        let streams: Vec<GriddedStream> = paths
            .into_iter()
            .enumerate()
            .map(|(i, p)| GriddedStream {
                id: i as u64,
                start: 0,
                cells: p.into_iter().map(|(x, y)| grid.cell_at(x, y)).collect(),
            })
            .collect();
        let horizon = streams.iter().map(|s| s.end() + 1).max().unwrap_or(0);
        GriddedDataset::from_streams(grid.clone(), streams, horizon)
    }

    #[test]
    fn pattern_counts_window_lengths() {
        let grid = Grid::unit(4);
        let d = ds(&grid, vec![vec![(0, 0), (1, 0), (2, 0)]]);
        let counts = pattern_counts(&d, &TimeRange { t0: 0, t1: 2 }, 3);
        // Length-2: (00,10), (10,20); length-3: (00,10,20).
        assert_eq!(counts.len(), 3);
        assert_eq!(counts[&vec![grid.cell_at(0, 0), grid.cell_at(1, 0)]], 1);
        assert_eq!(counts[&vec![grid.cell_at(0, 0), grid.cell_at(1, 0), grid.cell_at(2, 0)]], 1);
    }

    #[test]
    fn time_range_clips_streams() {
        let grid = Grid::unit(4);
        let d = ds(&grid, vec![vec![(0, 0), (1, 0), (2, 0), (3, 0)]]);
        // Range covering only t=1..2 -> only the middle pair.
        let counts = pattern_counts(&d, &TimeRange { t0: 1, t1: 2 }, 3);
        assert_eq!(counts.len(), 1);
        assert!(counts.contains_key(&vec![grid.cell_at(1, 0), grid.cell_at(2, 0)]));
    }

    #[test]
    fn identical_datasets_f1_one() {
        let grid = Grid::unit(4);
        let d = ds(&grid, vec![vec![(0, 0), (1, 0), (2, 0)], vec![(3, 3), (3, 2)]]);
        let r = [TimeRange { t0: 0, t1: 2 }];
        assert!((pattern_f1(&d, &d, &r, 10, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_patterns_f1_zero() {
        let grid = Grid::unit(4);
        let a = ds(&grid, vec![vec![(0, 0), (1, 0), (2, 0)]]);
        let b = ds(&grid, vec![vec![(3, 3), (3, 2), (3, 1)]]);
        let r = [TimeRange { t0: 0, t1: 2 }];
        assert_eq!(pattern_f1(&a, &b, &r, 10, 3), 0.0);
    }

    #[test]
    fn partial_overlap_between_zero_and_one() {
        let grid = Grid::unit(4);
        let a = ds(&grid, vec![vec![(0, 0), (1, 0)], vec![(3, 3), (3, 2)]]);
        let b = ds(&grid, vec![vec![(0, 0), (1, 0)], vec![(2, 2), (2, 1)]]);
        let r = [TimeRange { t0: 0, t1: 1 }];
        let f1 = pattern_f1(&a, &b, &r, 10, 2);
        assert!((f1 - 0.5).abs() < 1e-12, "f1={f1}");
    }

    #[test]
    fn top_patterns_ranked_by_count() {
        let grid = Grid::unit(4);
        // Pattern (0,0)->(1,0) occurs twice, (3,3)->(3,2) once.
        let d = ds(&grid, vec![vec![(0, 0), (1, 0)], vec![(0, 0), (1, 0)], vec![(3, 3), (3, 2)]]);
        let counts = pattern_counts(&d, &TimeRange { t0: 0, t1: 1 }, 2);
        let top = top_patterns(&counts, 1);
        assert_eq!(top[0], vec![grid.cell_at(0, 0), grid.cell_at(1, 0)]);
    }

    #[test]
    fn empty_sides() {
        let grid = Grid::unit(3);
        let empty = GriddedDataset::from_streams(grid.clone(), vec![], 2);
        let d = ds(&grid, vec![vec![(0, 0), (1, 0)]]);
        let r = [TimeRange { t0: 0, t1: 1 }];
        assert_eq!(pattern_f1(&empty, &empty, &r, 5, 2), 1.0);
        assert_eq!(pattern_f1(&d, &empty, &r, 5, 2), 0.0);
    }

    #[test]
    fn single_point_streams_have_no_patterns() {
        let grid = Grid::unit(3);
        let d = ds(&grid, vec![vec![(0, 0)]]);
        let counts = pattern_counts(&d, &TimeRange { t0: 0, t1: 0 }, 3);
        assert!(counts.is_empty());
    }
}
