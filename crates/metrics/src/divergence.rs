//! Distribution divergences (natural-log Jensen–Shannon divergence).

/// Normalize non-negative counts/weights into a probability vector; returns
/// `None` if the total mass is zero.
pub fn normalize(weights: &[f64]) -> Option<Vec<f64>> {
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        return None;
    }
    Some(weights.iter().map(|w| w / sum).collect())
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats. Assumes `p` and `q` are
/// probability vectors; terms with `p_i = 0` contribute zero.
pub fn kl(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    p.iter()
        .zip(q)
        .filter(|(&pi, _)| pi > 0.0)
        .map(|(&pi, &qi)| if qi <= 0.0 { f64::INFINITY } else { pi * (pi / qi).ln() })
        .sum()
}

/// Jensen–Shannon divergence between two *weight* vectors (they are
/// normalized internally), in nats; bounded by `ln 2 ≈ 0.6931`.
///
/// Edge cases follow the paper's usage: if both vectors are empty/zero the
/// distributions agree trivially (`0`); if exactly one is zero they are
/// maximally different (`ln 2`).
pub fn jsd(p_weights: &[f64], q_weights: &[f64]) -> f64 {
    assert_eq!(p_weights.len(), q_weights.len(), "distribution length mismatch");
    match (normalize(p_weights), normalize(q_weights)) {
        (None, None) => 0.0,
        (None, Some(_)) | (Some(_), None) => std::f64::consts::LN_2,
        (Some(p), Some(q)) => {
            let m: Vec<f64> = p.iter().zip(&q).map(|(&a, &b)| 0.5 * (a + b)).collect();
            0.5 * kl(&p, &m) + 0.5 * kl(&q, &m)
        }
    }
}

/// JSD over `u32` count vectors (convenience for the snapshot metrics).
pub fn jsd_counts(p: &[u32], q: &[u32]) -> f64 {
    let pf: Vec<f64> = p.iter().map(|&x| x as f64).collect();
    let qf: Vec<f64> = q.iter().map(|&x| x as f64).collect();
    jsd(&pf, &qf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::LN_2;

    #[test]
    fn identical_distributions_zero() {
        let p = [0.25, 0.25, 0.5];
        assert!(jsd(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn disjoint_support_is_ln2() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((jsd(&p, &q) - LN_2).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.3, 0.6];
        assert!((jsd(&p, &q) - jsd(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn normalizes_weights() {
        // Same shape at different scales -> zero divergence.
        let p = [2.0, 6.0];
        let q = [1.0, 3.0];
        assert!(jsd(&p, &q).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_edge_cases() {
        assert_eq!(jsd(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert!((jsd(&[0.0, 0.0], &[0.5, 0.5]) - LN_2).abs() < 1e-12);
        assert!((jsd(&[1.0, 1.0], &[0.0, 0.0]) - LN_2).abs() < 1e-12);
    }

    #[test]
    fn kl_known_value() {
        // KL([1,0] || [0.5,0.5]) = ln 2.
        assert!((kl(&[1.0, 0.0], &[0.5, 0.5]) - LN_2).abs() < 1e-12);
        // KL of identical distributions is 0.
        assert_eq!(kl(&[0.3, 0.7], &[0.3, 0.7]), 0.0);
    }

    #[test]
    fn kl_infinite_when_q_lacks_support() {
        assert!(kl(&[0.5, 0.5], &[1.0, 0.0]).is_infinite());
    }

    #[test]
    fn jsd_bounded() {
        // A batch of arbitrary distributions stays within [0, ln 2].
        let cases = [
            (vec![0.1, 0.9], vec![0.9, 0.1]),
            (vec![0.2, 0.3, 0.5], vec![0.5, 0.3, 0.2]),
            (vec![1.0, 0.0, 0.0], vec![0.0, 0.5, 0.5]),
        ];
        for (p, q) in cases {
            let d = jsd(&p, &q);
            assert!((0.0..=LN_2 + 1e-12).contains(&d), "jsd={d}");
        }
    }

    #[test]
    fn jsd_counts_matches_float_path() {
        let p = [3u32, 1, 0];
        let q = [1u32, 1, 2];
        let expected = jsd(&[3.0, 1.0, 0.0], &[1.0, 1.0, 2.0]);
        assert!((jsd_counts(&p, &q) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = jsd(&[1.0], &[0.5, 0.5]);
    }
}
