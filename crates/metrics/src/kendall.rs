//! Kendall's τ-b correlation of cell-popularity rankings (paper §V-B,
//! "Kendall-Tau": "models the discrepancies in locations' popularity
//! ranking").

use retrasyn_geo::GriddedDataset;

/// Kendall τ-b between two paired value vectors, with tie correction:
///
/// ```text
/// τ_b = (P − Q) / sqrt((P + Q + T_x)(P + Q + T_y))
/// ```
///
/// where `P`/`Q` count concordant/discordant pairs and `T_x`/`T_y` count
/// pairs tied only in x / only in y. Returns 0 when either side is constant.
pub fn kendall_tau_b(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "paired vectors must have equal length");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mut p = 0u64; // concordant
    let mut q = 0u64; // discordant
    let mut tx = 0u64; // tied in x only
    let mut ty = 0u64; // tied in y only
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i].partial_cmp(&x[j]).expect("finite values");
            let dy = y[i].partial_cmp(&y[j]).expect("finite values");
            use std::cmp::Ordering::*;
            match (dx, dy) {
                (Equal, Equal) => {}
                (Equal, _) => tx += 1,
                (_, Equal) => ty += 1,
                (a, b) if a == b => p += 1,
                _ => q += 1,
            }
        }
    }
    let denom = (((p + q + tx) as f64) * ((p + q + ty) as f64)).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    (p as f64 - q as f64) / denom
}

/// Kendall τ-b of total per-cell visit counts between the two databases.
pub fn kendall_tau(orig: &GriddedDataset, syn: &GriddedDataset) -> f64 {
    assert_eq!(orig.topology(), syn.topology(), "datasets must share a discretization");
    let o: Vec<f64> = orig.total_counts().iter().map(|&c| c as f64).collect();
    let s: Vec<f64> = syn.total_counts().iter().map(|&c| c as f64).collect();
    kendall_tau_b(&o, &s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::{Grid, GriddedStream};

    #[test]
    fn perfect_agreement() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((kendall_tau_b(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_disagreement() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau_b(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_value_with_ties() {
        // x = [1,2,2,3], y = [1,3,2,2]:
        // (0,1) P, (0,2) P, (0,3) P, (1,2) x-tie, (1,3) Q, (2,3) y-tie
        // => P=3, Q=1, Tx=1, Ty=1, tau_b = 2 / sqrt(5*5) = 0.4.
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 3.0, 2.0, 2.0];
        let tau = kendall_tau_b(&x, &y);
        assert!((tau - 0.4).abs() < 1e-12, "tau={tau}");
    }

    #[test]
    fn constant_side_returns_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(kendall_tau_b(&x, &y), 0.0);
        assert_eq!(kendall_tau_b(&y, &x), 0.0);
        assert_eq!(kendall_tau_b(&[], &[]), 0.0);
        assert_eq!(kendall_tau_b(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn dataset_popularity_ranking() {
        let grid = Grid::unit(2);
        let make = |counts: [usize; 4]| {
            let mut streams = Vec::new();
            let mut id = 0u64;
            for (cell, &n) in counts.iter().enumerate() {
                for _ in 0..n {
                    streams.push(GriddedStream {
                        id,
                        start: 0,
                        cells: vec![retrasyn_geo::CellId(cell as u32)],
                    });
                    id += 1;
                }
            }
            GriddedDataset::from_streams(grid.clone(), streams, 1)
        };
        let orig = make([10, 5, 2, 1]);
        let same_rank = make([8, 4, 2, 1]);
        let inverted = make([1, 2, 5, 10]);
        assert!((kendall_tau(&orig, &same_rank) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&orig, &inverted) + 1.0).abs() < 1e-12);
    }
}
