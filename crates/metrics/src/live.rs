//! Live per-timestamp monitors over streaming [`SnapshotView`]s.
//!
//! The historical metrics in this crate score a *released*
//! `GriddedDataset` after the stream ends. A deployed curator instead
//! watches the synthetic database **as it evolves**: after every engine
//! step, the session API hands out a borrowed, zero-copy
//! [`SnapshotView`], and these helpers score it against the real stream's
//! per-timestamp ground truth. Everything here is post-processing of the
//! private release (Theorem 2) — no additional privacy budget is spent,
//! no matter how often a monitor reads the snapshot.
//!
//! The `_into` variants take caller scratch so a per-timestamp monitoring
//! loop allocates nothing after warm-up.

use crate::divergence;
use retrasyn_core::SnapshotView;

/// Jensen–Shannon divergence (nats, ≤ ln 2) between a real per-cell
/// occupancy histogram and the snapshot's live synthetic occupancy — the
/// per-timestamp analogue of the suite's density error. `real` must have
/// one entry per grid cell.
///
/// Allocation-free: `occupancy` and `weights` are reused scratch buffers.
pub fn occupancy_jsd_into(
    real: &[u64],
    snapshot: &SnapshotView<'_>,
    occupancy: &mut Vec<u64>,
    weights: &mut Vec<f64>,
) -> f64 {
    snapshot.occupancy_into(real.len(), occupancy);
    weights.clear();
    weights.extend(real.iter().map(|&c| c as f64));
    weights.extend(occupancy.iter().map(|&c| c as f64));
    let (p, q) = weights.split_at(real.len());
    divergence::jsd(p, q)
}

/// Allocating convenience wrapper over [`occupancy_jsd_into`].
pub fn occupancy_jsd(real: &[u64], snapshot: &SnapshotView<'_>) -> f64 {
    occupancy_jsd_into(real, snapshot, &mut Vec::new(), &mut Vec::new())
}

/// Relative error of the live synthetic population against the real active
/// count at the same timestamp: `|syn − real| / real`. Edge cases keep the
/// unit consistent — 0 when both populations are empty, `+∞` when the real
/// population is empty but the synthetic one is not (any threshold on a
/// relative error correctly flags it).
pub fn population_error(real_active: usize, snapshot: &SnapshotView<'_>) -> f64 {
    let syn = snapshot.active_count();
    if real_active == 0 {
        return if syn == 0 { 0.0 } else { f64::INFINITY };
    }
    (syn as f64 - real_active as f64).abs() / real_active as f64
}

/// Number of live synthetic streams currently inside a cell region (e.g. a
/// monitored district) — one scan of the snapshot's head column.
pub fn region_population(snapshot: &SnapshotView<'_>, region: &[retrasyn_geo::CellId]) -> usize {
    snapshot.live().filter(|s| region.contains(&s.head())).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrasyn_core::{GlobalMobilityModel, SyntheticDb};
    use retrasyn_geo::{Grid, TransitionTable};
    use std::f64::consts::LN_2;

    /// A tiny synthetic database: `n` streams stepped once.
    fn db(n: usize) -> (Grid, SyntheticDb) {
        let grid = Grid::unit(4);
        let table = TransitionTable::new(&grid);
        let mut model = GlobalMobilityModel::new(table.len());
        model.rebuild_samplers(&table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(3);
        db.step(0, &model, &table, n, 10.0, &mut rng);
        (grid, db)
    }

    #[test]
    fn occupancy_jsd_zero_against_itself() {
        let (grid, db) = db(40);
        let snap = db.snapshot(1);
        let real = snap.occupancy(grid.num_cells());
        assert!(occupancy_jsd(&real, &snap) < 1e-12);
        // Scratch variant agrees.
        let mut occ = Vec::new();
        let mut w = Vec::new();
        assert!(occupancy_jsd_into(&real, &snap, &mut occ, &mut w) < 1e-12);
    }

    #[test]
    fn occupancy_jsd_maximal_for_disjoint_support() {
        let (grid, db) = db(10);
        let snap = db.snapshot(1);
        // Real mass entirely on cells the synthetic population avoids.
        let syn = snap.occupancy(grid.num_cells());
        let real: Vec<u64> = syn.iter().map(|&c| u64::from(c == 0)).collect();
        let d = occupancy_jsd(&real, &snap);
        assert!((d - LN_2).abs() < 1e-9, "jsd={d}");
    }

    #[test]
    fn population_error_relative() {
        let (_, db) = db(30);
        let snap = db.snapshot(1);
        assert!(population_error(30, &snap).abs() < 1e-12);
        assert!((population_error(60, &snap) - 0.5).abs() < 1e-12);
        // Real empty, synthetic not: infinite relative error, not a count.
        assert_eq!(population_error(0, &snap), f64::INFINITY);
        // Both empty: perfect agreement.
        assert_eq!(population_error(0, &SyntheticDb::new().snapshot(0)), 0.0);
    }

    #[test]
    fn region_population_counts_heads() {
        let (grid, db) = db(25);
        let snap = db.snapshot(1);
        let all: Vec<_> = grid.cells().collect();
        assert_eq!(region_population(&snap, &all), 25);
        assert_eq!(region_population(&snap, &[]), 0);
    }
}
