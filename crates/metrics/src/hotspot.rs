//! Hotspot preservation via NDCG@n_h (paper §V-B, "Hotspot NDCG").
//!
//! For a random time range, the `n_h` cells the *synthetic* data ranks as
//! most popular are scored against the *original* data's popularity as
//! graded relevance; the score is normalized by the original data's own
//! ideal ranking (so 1.0 means the synthetic top-n_h is a perfect hotspot
//! ranking).

use rand::Rng;
use retrasyn_geo::GriddedDataset;

/// A closed time range `[t0, t1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeRange {
    /// Inclusive start.
    pub t0: u64,
    /// Inclusive end.
    pub t1: u64,
}

/// Generate `count` random time ranges of size `phi` within the horizon.
pub fn gen_time_ranges<R: Rng + ?Sized>(
    horizon: u64,
    phi: u64,
    count: usize,
    rng: &mut R,
) -> Vec<TimeRange> {
    assert!(horizon > 0, "cannot sample ranges from an empty horizon");
    let phi = phi.clamp(1, horizon);
    (0..count)
        .map(|_| {
            let t0 = rng.random_range(0..=(horizon - phi));
            TimeRange { t0, t1: t0 + phi - 1 }
        })
        .collect()
}

/// Aggregate per-cell counts over a time range from precomputed snapshots.
fn aggregate(counts: &[Vec<u32>], range: &TimeRange, num_cells: usize) -> Vec<u64> {
    let mut agg = vec![0u64; num_cells];
    let t1 = (range.t1 as usize).min(counts.len().saturating_sub(1));
    for row in counts.iter().take(t1 + 1).skip(range.t0 as usize) {
        for (a, &c) in agg.iter_mut().zip(row) {
            *a += c as u64;
        }
    }
    agg
}

/// Top-`n` cell indices by count (descending; ties by cell index).
fn top_cells(agg: &[u64], n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..agg.len()).collect();
    idx.sort_by(|&a, &b| agg[b].cmp(&agg[a]).then(a.cmp(&b)));
    idx.truncate(n);
    idx
}

/// DCG of a ranked cell list with relevance from `rel`.
fn dcg(ranked: &[usize], rel: &[u64]) -> f64 {
    ranked.iter().enumerate().map(|(i, &c)| rel[c] as f64 / (i as f64 + 2.0).log2()).sum()
}

/// NDCG@`nh` of `syn`'s hotspot ranking for a single time range.
pub fn hotspot_ndcg_at(
    orig_counts: &[Vec<u32>],
    syn_counts: &[Vec<u32>],
    num_cells: usize,
    range: &TimeRange,
    nh: usize,
) -> f64 {
    let orig_agg = aggregate(orig_counts, range, num_cells);
    let syn_agg = aggregate(syn_counts, range, num_cells);
    let ideal = top_cells(&orig_agg, nh);
    let idcg = dcg(&ideal, &orig_agg);
    if idcg == 0.0 {
        // No activity in the original data: any ranking is vacuously ideal.
        return 1.0;
    }
    let picked = top_cells(&syn_agg, nh);
    dcg(&picked, &orig_agg) / idcg
}

/// Mean NDCG@`nh` over the given time ranges.
pub fn hotspot_ndcg(
    orig: &GriddedDataset,
    syn: &GriddedDataset,
    ranges: &[TimeRange],
    nh: usize,
) -> f64 {
    assert_eq!(orig.topology(), syn.topology(), "datasets must share a discretization");
    if ranges.is_empty() {
        return 0.0;
    }
    let oc = crate::per_ts_cell_counts(orig);
    let sc = crate::per_ts_cell_counts(syn);
    let cells = orig.topology().num_cells();
    ranges.iter().map(|r| hotspot_ndcg_at(&oc, &sc, cells, r, nh)).sum::<f64>()
        / ranges.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrasyn_geo::{Grid, GriddedStream};

    fn hotspot_ds(grid: &Grid, hot: (u16, u16), copies: usize) -> GriddedDataset {
        // `copies` streams sitting in the hot cell + 1 stream elsewhere.
        let mut streams: Vec<GriddedStream> = (0..copies)
            .map(|i| GriddedStream {
                id: i as u64,
                start: 0,
                cells: vec![grid.cell_at(hot.0, hot.1); 4],
            })
            .collect();
        streams.push(GriddedStream { id: 99, start: 0, cells: vec![grid.cell_at(0, 0); 4] });
        GriddedDataset::from_streams(grid.clone(), streams, 4)
    }

    #[test]
    fn identical_datasets_score_one() {
        let grid = Grid::unit(4);
        let ds = hotspot_ds(&grid, (2, 2), 5);
        let ranges = [TimeRange { t0: 0, t1: 3 }];
        assert!((hotspot_ndcg(&ds, &ds, &ranges, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_hotspot_scores_lower() {
        let grid = Grid::unit(4);
        let orig = hotspot_ds(&grid, (2, 2), 5);
        let syn_right = hotspot_ds(&grid, (2, 2), 5);
        let syn_wrong = hotspot_ds(&grid, (3, 0), 5);
        let ranges = [TimeRange { t0: 0, t1: 3 }];
        let right = hotspot_ndcg(&orig, &syn_right, &ranges, 2);
        let wrong = hotspot_ndcg(&orig, &syn_wrong, &ranges, 2);
        assert!(right > wrong, "right={right} wrong={wrong}");
        assert!(wrong < 0.7);
    }

    #[test]
    fn empty_original_scores_one() {
        let grid = Grid::unit(3);
        let empty = GriddedDataset::from_streams(grid.clone(), vec![], 4);
        let syn = hotspot_ds(&grid, (1, 1), 2);
        let ranges = [TimeRange { t0: 0, t1: 3 }];
        assert_eq!(hotspot_ndcg(&empty, &syn, &ranges, 2), 1.0);
    }

    #[test]
    fn gen_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for r in gen_time_ranges(50, 10, 100, &mut rng) {
            assert!(r.t0 <= r.t1 && r.t1 < 50);
            assert_eq!(r.t1 - r.t0 + 1, 10);
        }
        // phi larger than horizon clamps.
        for r in gen_time_ranges(5, 100, 10, &mut rng) {
            assert_eq!((r.t0, r.t1), (0, 4));
        }
    }

    #[test]
    fn dcg_ordering_matters() {
        // Putting the most relevant cell first scores higher.
        let rel = vec![0u64, 10, 5];
        let good = dcg(&[1, 2], &rel);
        let bad = dcg(&[2, 1], &rel);
        assert!(good > bad);
    }

    #[test]
    fn top_cells_tie_break_deterministic() {
        let agg = vec![5u64, 5, 5, 1];
        assert_eq!(top_cells(&agg, 2), vec![0, 1]);
    }
}
