//! Downstream location-based analytics over (synthetic) gridded databases.
//!
//! The paper's central versatility claim (§V-B) is that a synthesized
//! database "supports arbitrary downstream tasks without consuming any
//! additional privacy budget". This module provides the analyses the
//! introduction motivates — traffic flows, OD demand, dwell behaviour —
//! all of which are post-processing (Theorem 2) when run on a released
//! `T_syn`.

use retrasyn_geo::{CellId, GriddedDataset};
use std::collections::HashMap;

/// Origin–destination demand matrix: trip counts keyed by
/// (first cell, last cell).
pub fn od_matrix(dataset: &GriddedDataset) -> HashMap<(CellId, CellId), u64> {
    let mut od = HashMap::new();
    for s in dataset.iter() {
        *od.entry((s.first_cell(), s.last_cell())).or_insert(0) += 1;
    }
    od
}

/// The `k` most frequent trips, by count (descending; deterministic tie
/// order).
pub fn top_k_trips(dataset: &GriddedDataset, k: usize) -> Vec<((CellId, CellId), u64)> {
    let mut entries: Vec<((CellId, CellId), u64)> = od_matrix(dataset).into_iter().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    entries.truncate(k);
    entries
}

/// Per-timestamp count of movements from `from_region` into `to_region`
/// (e.g. inbound commuter flow). Regions are arbitrary cell sets.
pub fn flow_series(
    dataset: &GriddedDataset,
    from_region: &[CellId],
    to_region: &[CellId],
) -> Vec<u64> {
    let from: std::collections::HashSet<CellId> = from_region.iter().copied().collect();
    let to: std::collections::HashSet<CellId> = to_region.iter().copied().collect();
    let mut series = vec![0u64; dataset.horizon() as usize];
    for s in dataset.iter() {
        for (i, w) in s.cells.windows(2).enumerate() {
            let t = s.start as usize + i + 1;
            if t < series.len() && from.contains(&w[0]) && to.contains(&w[1]) {
                series[t] += 1;
            }
        }
    }
    series
}

/// Mean dwell time: the average length of maximal same-cell runs, in
/// timestamps (how long travellers linger before moving on).
pub fn mean_dwell_time(dataset: &GriddedDataset) -> f64 {
    let mut runs = 0u64;
    let mut total = 0u64;
    for s in dataset.iter() {
        let mut run_len = 1u64;
        for w in s.cells.windows(2) {
            if w[0] == w[1] {
                run_len += 1;
            } else {
                runs += 1;
                total += run_len;
                run_len = 1;
            }
        }
        runs += 1;
        total += run_len;
    }
    if runs == 0 {
        0.0
    } else {
        total as f64 / runs as f64
    }
}

/// Radius of gyration per stream (in continuous units via cell centers):
/// the classic human-mobility statistic
/// `r_g = sqrt(mean_t |x_t − centroid|²)`.
pub fn radius_of_gyration(dataset: &GriddedDataset) -> Vec<f64> {
    let topology = dataset.topology();
    dataset
        .iter()
        .map(|s| {
            let pts: Vec<_> = s.cells.iter().map(|&c| topology.center(c)).collect();
            let n = pts.len() as f64;
            let cx = pts.iter().map(|p| p.x).sum::<f64>() / n;
            let cy = pts.iter().map(|p| p.y).sum::<f64>() / n;
            (pts.iter().map(|p| (p.x - cx).powi(2) + (p.y - cy).powi(2)).sum::<f64>() / n).sqrt()
        })
        .collect()
}

/// Hourly (or any-periodic) occupancy profile of a region: mean number of
/// active streams inside the region per phase of a `period`-timestamp day.
pub fn periodic_occupancy(dataset: &GriddedDataset, region: &[CellId], period: u64) -> Vec<f64> {
    assert!(period >= 1, "period must be >= 1");
    let cells: std::collections::HashSet<CellId> = region.iter().copied().collect();
    let mut totals = vec![0u64; period as usize];
    let mut samples = vec![0u64; period as usize];
    let counts = crate::per_ts_cell_counts(dataset);
    for (t, row) in counts.iter().enumerate() {
        let phase = (t as u64 % period) as usize;
        let inside: u64 = cells.iter().map(|c| row[c.index()] as u64).sum();
        totals[phase] += inside;
        samples[phase] += 1;
    }
    totals
        .iter()
        .zip(&samples)
        .map(|(&tot, &n)| if n == 0 { 0.0 } else { tot as f64 / n as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::{Grid, GriddedStream};

    fn dataset(grid: &Grid) -> GriddedDataset {
        GriddedDataset::from_streams(
            grid.clone(),
            vec![
                // Trip A: (0,0) -> (1,0), twice.
                GriddedStream {
                    id: 0,
                    start: 0,
                    cells: vec![grid.cell_at(0, 0), grid.cell_at(1, 0)],
                },
                GriddedStream {
                    id: 1,
                    start: 1,
                    cells: vec![grid.cell_at(0, 0), grid.cell_at(1, 0)],
                },
                // Trip B: dwell at (2,2) for 3 ticks.
                GriddedStream { id: 2, start: 0, cells: vec![grid.cell_at(2, 2); 3] },
            ],
            4,
        )
    }

    #[test]
    fn od_matrix_counts_trips() {
        let grid = Grid::unit(4);
        let ds = dataset(&grid);
        let od = od_matrix(&ds);
        assert_eq!(od[&(grid.cell_at(0, 0), grid.cell_at(1, 0))], 2);
        assert_eq!(od[&(grid.cell_at(2, 2), grid.cell_at(2, 2))], 1);
        assert_eq!(od.len(), 2);
    }

    #[test]
    fn top_k_orders_by_count() {
        let grid = Grid::unit(4);
        let top = top_k_trips(&dataset(&grid), 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, (grid.cell_at(0, 0), grid.cell_at(1, 0)));
        assert_eq!(top[0].1, 2);
    }

    #[test]
    fn flow_series_counts_region_crossings() {
        let grid = Grid::unit(4);
        let ds = dataset(&grid);
        let flow = flow_series(&ds, &[grid.cell_at(0, 0)], &[grid.cell_at(1, 0)]);
        // Stream 0 crosses at t=1, stream 1 at t=2.
        assert_eq!(flow, vec![0, 1, 1, 0]);
        // No flow in the reverse direction.
        let reverse = flow_series(&ds, &[grid.cell_at(1, 0)], &[grid.cell_at(0, 0)]);
        assert_eq!(reverse.iter().sum::<u64>(), 0);
    }

    #[test]
    fn dwell_time_mixes_runs() {
        let grid = Grid::unit(4);
        // Runs: stream0: [1,1]; stream1: [1,1]; stream2: [3].
        // Mean = (1+1+1+1+3)/5 = 1.4.
        let d = mean_dwell_time(&dataset(&grid));
        assert!((d - 1.4).abs() < 1e-12, "d={d}");
        let empty = GriddedDataset::from_streams(grid, vec![], 1);
        assert_eq!(mean_dwell_time(&empty), 0.0);
    }

    #[test]
    fn gyration_zero_for_stationary() {
        let grid = Grid::unit(4);
        let rg = radius_of_gyration(&dataset(&grid));
        assert_eq!(rg.len(), 3);
        // The dwelling stream never moves.
        assert!(rg[2] < 1e-12);
        // The movers have positive radius.
        assert!(rg[0] > 0.0);
    }

    #[test]
    fn periodic_occupancy_profiles() {
        let grid = Grid::unit(4);
        let ds = dataset(&grid);
        let profile = periodic_occupancy(&ds, &[grid.cell_at(2, 2)], 2);
        // (2,2) occupied at t=0,1,2 -> phase 0 has t=0 (1) and t=2 (1)
        // -> mean 1; phase 1 has t=1 (1) and t=3 (0) -> mean 0.5.
        assert_eq!(profile.len(), 2);
        assert!((profile[0] - 1.0).abs() < 1e-12);
        assert!((profile[1] - 0.5).abs() < 1e-12);
    }
}
