//! Transition error: JSD between single-timestamp movement distributions
//! (paper §V-B, "Transition Error").

use crate::divergence::jsd;
use retrasyn_geo::{GriddedDataset, TransitionTable};

/// Per-timestamp movement-state counts: `counts[t][move_index]` over the
/// table's movement block (enter/quit states are not part of this metric).
pub fn per_ts_move_counts(dataset: &GriddedDataset, table: &TransitionTable) -> Vec<Vec<u32>> {
    let horizon = dataset.horizon() as usize;
    let mut counts = vec![vec![0u32; table.num_moves()]; horizon];
    for s in dataset.iter() {
        for (i, w) in s.cells.windows(2).enumerate() {
            let t = s.start as usize + i + 1;
            if t >= horizon {
                continue;
            }
            let idx = table
                .index_of(retrasyn_geo::TransitionState::Move { from: w[0], to: w[1] })
                .expect("gridded streams are adjacency-respecting");
            counts[t][idx] += 1;
        }
    }
    counts
}

/// Transition error at one timestamp.
pub fn transition_error_at(
    orig: &GriddedDataset,
    syn: &GriddedDataset,
    table: &TransitionTable,
    t: u64,
) -> f64 {
    let oc = per_ts_move_counts(orig, table);
    let sc = per_ts_move_counts(syn, table);
    let empty = vec![0u32; table.num_moves()];
    let o = oc.get(t as usize).unwrap_or(&empty);
    let s = sc.get(t as usize).unwrap_or(&empty);
    crate::divergence::jsd_counts(o, s)
}

/// Mean transition error over timestamps where either side has movement.
pub fn transition_error(
    orig: &GriddedDataset,
    syn: &GriddedDataset,
    table: &TransitionTable,
) -> f64 {
    assert_eq!(orig.topology(), syn.topology(), "datasets must share a discretization");
    let horizon = orig.horizon().max(syn.horizon()) as usize;
    let oc = per_ts_move_counts(orig, table);
    let sc = per_ts_move_counts(syn, table);
    let empty = vec![0u32; table.num_moves()];
    let mut total = 0.0;
    let mut used = 0usize;
    for t in 0..horizon {
        let o = oc.get(t).unwrap_or(&empty);
        let s = sc.get(t).unwrap_or(&empty);
        let o_active = o.iter().any(|&x| x > 0);
        let s_active = s.iter().any(|&x| x > 0);
        if o_active || s_active {
            let of: Vec<f64> = o.iter().map(|&x| x as f64).collect();
            let sf: Vec<f64> = s.iter().map(|&x| x as f64).collect();
            total += jsd(&of, &sf);
            used += 1;
        }
    }
    if used == 0 {
        0.0
    } else {
        total / used as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::{Grid, GriddedStream};
    use std::f64::consts::LN_2;

    fn line_ds(grid: &Grid, dir: (i32, i32)) -> GriddedDataset {
        // 3 streams marching in direction `dir` from (1,1).
        let streams: Vec<GriddedStream> = (0..3)
            .map(|i| {
                let cells = (0..3)
                    .map(|s| grid.cell_at((1 + dir.0 * s) as u16, (1 + dir.1 * s) as u16))
                    .collect();
                GriddedStream { id: i, start: 0, cells }
            })
            .collect();
        GriddedDataset::from_streams(grid.clone(), streams, 3)
    }

    #[test]
    fn identical_movement_zero_error() {
        let grid = Grid::unit(4);
        let t = TransitionTable::new(&grid);
        let a = line_ds(&grid, (1, 0));
        assert!(transition_error(&a, &a, &t) < 1e-12);
    }

    #[test]
    fn opposite_flows_max_error() {
        let grid = Grid::unit(4);
        let t = TransitionTable::new(&grid);
        let right = line_ds(&grid, (1, 0));
        let down = line_ds(&grid, (0, 1));
        assert!((transition_error(&right, &down, &t) - LN_2).abs() < 1e-9);
    }

    #[test]
    fn move_counts_shape() {
        let grid = Grid::unit(4);
        let t = TransitionTable::new(&grid);
        let ds = line_ds(&grid, (1, 0));
        let counts = per_ts_move_counts(&ds, &t);
        assert_eq!(counts.len(), 3);
        // No moves at t=0 (entering), 3 moves at t=1 and t=2.
        assert_eq!(counts[0].iter().sum::<u32>(), 0);
        assert_eq!(counts[1].iter().sum::<u32>(), 3);
        assert_eq!(counts[2].iter().sum::<u32>(), 3);
    }

    #[test]
    fn self_moves_are_counted() {
        let grid = Grid::unit(3);
        let t = TransitionTable::new(&grid);
        let ds = GriddedDataset::from_streams(
            grid.clone(),
            vec![GriddedStream {
                id: 0,
                start: 0,
                cells: vec![grid.cell_at(1, 1), grid.cell_at(1, 1)],
            }],
            2,
        );
        let counts = per_ts_move_counts(&ds, &t);
        let self_idx = t
            .index_of(retrasyn_geo::TransitionState::Move {
                from: grid.cell_at(1, 1),
                to: grid.cell_at(1, 1),
            })
            .unwrap();
        assert_eq!(counts[1][self_idx], 1);
    }

    #[test]
    fn single_timestamp_variant() {
        let grid = Grid::unit(4);
        let t = TransitionTable::new(&grid);
        let right = line_ds(&grid, (1, 0));
        let down = line_ds(&grid, (0, 1));
        assert!(transition_error_at(&right, &right, &t, 1) < 1e-12);
        assert!((transition_error_at(&right, &down, &t, 1) - LN_2).abs() < 1e-9);
        // t=0 has no moves on either side -> both empty -> 0.
        assert_eq!(transition_error_at(&right, &down, &t, 0), 0.0);
    }
}
