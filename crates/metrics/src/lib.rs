//! Utility metrics for trajectory synthesis evaluation (paper §V-B).
//!
//! Streaming metrics (global level):
//! - [`density::density_error`] — per-timestamp Jensen–Shannon divergence of
//!   cell-occupancy distributions.
//! - [`query::query_error`] — mean relative error of random spatio-temporal
//!   range queries over windows of size φ, with a sanity bound.
//! - [`hotspot::hotspot_ndcg`] — NDCG@n_h of the synthetic ranking of the
//!   most popular cells within random time ranges.
//!
//! Streaming metrics (semantic level):
//! - [`transition::transition_error`] — per-timestamp JSD of single-step
//!   movement distributions.
//! - [`pattern::pattern_f1`] — F1 overlap of the top-N frequent multi-step
//!   patterns (consecutive cell sequences) within random time ranges.
//!
//! Historical (trajectory-level) metrics:
//! - [`kendall::kendall_tau`] — Kendall τ-b correlation of cell popularity
//!   rankings.
//! - [`trip::trip_error`] — JSD of (start, end) trip distributions.
//! - [`length::length_error`] — JSD of travel-distance distributions.
//!
//! All divergences use the natural logarithm, so the maximum JSD is
//! `ln 2 ≈ 0.6931` — the value the paper reports for baselines whose
//! synthetic length distributions have disjoint support from the real ones.
//!
//! Live (streaming-session) monitors:
//! - [`live`] — per-timestamp scores over the engine's borrowed
//!   `SnapshotView` (occupancy JSD, population error, region counts), for
//!   consumers that watch the synthetic database between steps instead of
//!   waiting for the released dataset.
//!
//! [`MetricSuite`] bundles everything with seeded query/range workloads so a
//! whole Table-III row is one call.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod density;
pub mod divergence;
pub mod hotspot;
pub mod kendall;
pub mod length;
pub mod live;
pub mod pattern;
pub mod query;
pub mod suite;
pub mod transition;
pub mod trip;

pub use query::RangeQuery;
pub use suite::{MetricReport, MetricSuite, SuiteConfig};

use retrasyn_geo::GriddedDataset;

/// Per-timestamp, per-cell occupancy counts — the shared accumulation most
/// metrics start from. `counts[t][cell]` is the number of active streams in
/// `cell` at time `t`.
pub fn per_ts_cell_counts(dataset: &GriddedDataset) -> Vec<Vec<u32>> {
    let horizon = dataset.horizon() as usize;
    let cells = dataset.topology().num_cells();
    let mut counts = vec![vec![0u32; cells]; horizon];
    for s in dataset.iter() {
        for (i, c) in s.cells.iter().enumerate() {
            let t = s.start as usize + i;
            if t < horizon {
                counts[t][c.index()] += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::{Grid, GriddedDataset, GriddedStream};

    #[test]
    fn per_ts_cell_counts_accumulates() {
        let grid = Grid::unit(2);
        let streams = vec![
            GriddedStream { id: 0, start: 0, cells: vec![grid.cell_at(0, 0), grid.cell_at(1, 0)] },
            GriddedStream { id: 1, start: 1, cells: vec![grid.cell_at(1, 0)] },
        ];
        let ds = GriddedDataset::from_streams(grid.clone(), streams, 3);
        let counts = per_ts_cell_counts(&ds);
        assert_eq!(counts.len(), 3);
        assert_eq!(counts[0][grid.cell_at(0, 0).index()], 1);
        assert_eq!(counts[1][grid.cell_at(1, 0).index()], 2);
        assert_eq!(counts[2].iter().sum::<u32>(), 0);
    }
}
