//! Density error: JSD between per-timestamp spatial density distributions
//! (paper §V-B, "Density Error").

use crate::divergence::jsd_counts;
use crate::per_ts_cell_counts;
use retrasyn_geo::GriddedDataset;

/// Density error at a single timestamp.
pub fn density_error_at(orig: &GriddedDataset, syn: &GriddedDataset, t: u64) -> f64 {
    let o: Vec<u32> = orig.snapshot_counts(t).iter().map(|&c| c as u32).collect();
    let s: Vec<u32> = syn.snapshot_counts(t).iter().map(|&c| c as u32).collect();
    jsd_counts(&o, &s)
}

/// Mean density error over all timestamps where either database is active.
pub fn density_error(orig: &GriddedDataset, syn: &GriddedDataset) -> f64 {
    assert_eq!(orig.topology(), syn.topology(), "datasets must share a discretization");
    let horizon = orig.horizon().max(syn.horizon());
    let oc = per_ts_cell_counts(orig);
    let sc = per_ts_cell_counts(syn);
    let empty = vec![0u32; orig.topology().num_cells()];
    let mut total = 0.0;
    let mut used = 0usize;
    for t in 0..horizon as usize {
        let o = oc.get(t).unwrap_or(&empty);
        let s = sc.get(t).unwrap_or(&empty);
        let o_active = o.iter().any(|&x| x > 0);
        let s_active = s.iter().any(|&x| x > 0);
        if o_active || s_active {
            total += jsd_counts(o, s);
            used += 1;
        }
    }
    if used == 0 {
        0.0
    } else {
        total / used as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::{Grid, GriddedStream};
    use std::f64::consts::LN_2;

    fn ds(grid: &Grid, cells: Vec<Vec<(u16, u16)>>) -> GriddedDataset {
        // One stream per inner vec, all starting at t=0.
        let streams: Vec<GriddedStream> = cells
            .into_iter()
            .enumerate()
            .map(|(i, cs)| GriddedStream {
                id: i as u64,
                start: 0,
                cells: cs.into_iter().map(|(x, y)| grid.cell_at(x, y)).collect(),
            })
            .collect();
        let horizon = streams.iter().map(|s| s.end() + 1).max().unwrap_or(0);
        GriddedDataset::from_streams(grid.clone(), streams, horizon)
    }

    #[test]
    fn identical_datasets_zero_error() {
        let grid = Grid::unit(3);
        let a = ds(&grid, vec![vec![(0, 0), (1, 0)], vec![(2, 2), (2, 1)]]);
        assert!(density_error(&a, &a) < 1e-12);
        assert!(density_error_at(&a, &a, 0) < 1e-12);
    }

    #[test]
    fn disjoint_datasets_max_error() {
        let grid = Grid::unit(3);
        let a = ds(&grid, vec![vec![(0, 0), (0, 0)]]);
        let b = ds(&grid, vec![vec![(2, 2), (2, 2)]]);
        assert!((density_error(&a, &b) - LN_2).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_intermediate() {
        let grid = Grid::unit(3);
        let a = ds(&grid, vec![vec![(0, 0)], vec![(1, 1)]]);
        let b = ds(&grid, vec![vec![(0, 0)], vec![(2, 2)]]);
        let e = density_error(&a, &b);
        assert!(e > 0.0 && e < LN_2, "e={e}");
    }

    #[test]
    fn timestamps_where_both_empty_are_skipped() {
        let grid = Grid::unit(2);
        // Streams active only at t=0; horizons padded to 5.
        let mut a = ds(&grid, vec![vec![(0, 0)]]);
        let mut b = ds(&grid, vec![vec![(0, 0)]]);
        a = GriddedDataset::from_streams(grid.clone(), a.to_streams(), 5);
        b = GriddedDataset::from_streams(grid.clone(), b.to_streams(), 5);
        assert!(density_error(&a, &b) < 1e-12);
    }

    #[test]
    fn one_sided_activity_counts_as_max() {
        let grid = Grid::unit(2);
        let a = ds(&grid, vec![vec![(0, 0), (0, 1)]]);
        // b is active only at t=0.
        let b = GriddedDataset::from_streams(
            grid.clone(),
            vec![GriddedStream { id: 0, start: 0, cells: vec![grid.cell_at(0, 0)] }],
            2,
        );
        // t=0 identical (0), t=1 one-sided (ln 2) -> mean ln2/2.
        let e = density_error(&a, &b);
        assert!((e - LN_2 / 2.0).abs() < 1e-9, "e={e}");
    }
}
