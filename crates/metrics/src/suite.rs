//! One-call evaluation of all eight metrics (a Table-III row).

use crate::hotspot::{gen_time_ranges, TimeRange};
use crate::query::{gen_queries, RangeQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_geo::{GriddedDataset, TransitionTable};

/// Configuration of the metric suite (paper defaults in parentheses).
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Evaluation time-range size φ (10).
    pub phi: u64,
    /// Number of random range queries (100).
    pub num_queries: usize,
    /// Number of random time ranges for hotspot / pattern metrics (100).
    pub num_ranges: usize,
    /// Hotspot list size n_h (10).
    pub nh: usize,
    /// Top-N frequent patterns (100).
    pub top_n_patterns: usize,
    /// Maximum mined pattern length (4).
    pub max_pattern_len: usize,
    /// Histogram bins for the length metric (20).
    pub length_bins: usize,
    /// Sanity bound as a fraction of total points (0.001).
    pub sanity_fraction: f64,
    /// Seed for the query/range workloads.
    pub seed: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            phi: 10,
            num_queries: 100,
            num_ranges: 100,
            nh: 10,
            top_n_patterns: 100,
            max_pattern_len: 4,
            length_bins: 20,
            sanity_fraction: 0.001,
            seed: 0xC0FFEE,
        }
    }
}

impl SuiteConfig {
    /// Override φ.
    pub fn with_phi(mut self, phi: u64) -> Self {
        self.phi = phi;
        self
    }

    /// Override the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// All eight utility metrics of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricReport {
    /// Mean per-timestamp density JSD (smaller is better).
    pub density_error: f64,
    /// Mean relative range-query error (smaller is better).
    pub query_error: f64,
    /// Mean hotspot NDCG@n_h (larger is better).
    pub hotspot_ndcg: f64,
    /// Mean per-timestamp transition JSD (smaller is better).
    pub transition_error: f64,
    /// Mean top-N pattern F1 (larger is better).
    pub pattern_f1: f64,
    /// Kendall τ-b of cell popularity (larger is better).
    pub kendall_tau: f64,
    /// Trip-distribution JSD (smaller is better).
    pub trip_error: f64,
    /// Travel-distance JSD (smaller is better).
    pub length_error: f64,
}

impl MetricReport {
    /// Metric names in report order.
    pub const NAMES: [&'static str; 8] = [
        "density_error",
        "query_error",
        "hotspot_ndcg",
        "transition_error",
        "pattern_f1",
        "kendall_tau",
        "trip_error",
        "length_error",
    ];

    /// Values in the order of [`Self::NAMES`].
    pub fn values(&self) -> [f64; 8] {
        [
            self.density_error,
            self.query_error,
            self.hotspot_ndcg,
            self.transition_error,
            self.pattern_f1,
            self.kendall_tau,
            self.trip_error,
            self.length_error,
        ]
    }

    /// Whether larger is better for metric `i` (by `NAMES` order).
    pub fn larger_is_better(i: usize) -> bool {
        matches!(i, 2 | 4 | 5)
    }
}

impl std::fmt::Display for MetricReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.values();
        for (i, name) in Self::NAMES.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{name}={:.4}", v[i])?;
        }
        Ok(())
    }
}

/// The metric suite: holds the seeded workloads so repeated evaluations (of
/// different methods on the same dataset) are comparable.
#[derive(Debug, Clone)]
pub struct MetricSuite {
    config: SuiteConfig,
}

impl MetricSuite {
    /// Create a suite from configuration.
    pub fn new(config: SuiteConfig) -> Self {
        MetricSuite { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SuiteConfig {
        &self.config
    }

    /// Build the seeded query workload for a dataset shape.
    pub fn queries(&self, orig: &GriddedDataset) -> Vec<RangeQuery> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        gen_queries(
            orig.topology(),
            orig.horizon().max(1),
            self.config.phi,
            self.config.num_queries,
            &mut rng,
        )
    }

    /// Build the seeded time-range workload for a dataset shape.
    pub fn time_ranges(&self, orig: &GriddedDataset) -> Vec<TimeRange> {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        gen_time_ranges(orig.horizon().max(1), self.config.phi, self.config.num_ranges, &mut rng)
    }

    /// Evaluate all eight metrics of `syn` against `orig`.
    pub fn evaluate(&self, orig: &GriddedDataset, syn: &GriddedDataset) -> MetricReport {
        assert_eq!(orig.topology(), syn.topology(), "datasets must share a discretization");
        let table = TransitionTable::new(orig.topology());
        let queries = self.queries(orig);
        let ranges = self.time_ranges(orig);
        MetricReport {
            density_error: crate::density::density_error(orig, syn),
            query_error: crate::query::query_error(
                orig,
                syn,
                &queries,
                self.config.sanity_fraction,
            ),
            hotspot_ndcg: crate::hotspot::hotspot_ndcg(orig, syn, &ranges, self.config.nh),
            transition_error: crate::transition::transition_error(orig, syn, &table),
            pattern_f1: crate::pattern::pattern_f1(
                orig,
                syn,
                &ranges,
                self.config.top_n_patterns,
                self.config.max_pattern_len,
            ),
            kendall_tau: crate::kendall::kendall_tau(orig, syn),
            trip_error: crate::trip::trip_error(orig, syn),
            length_error: crate::length::length_error(orig, syn, self.config.length_bins),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::{Grid, GriddedStream};

    fn dataset(grid: &Grid) -> GriddedDataset {
        let streams: Vec<GriddedStream> = (0..20)
            .map(|i| {
                let x = (i % 4) as u16;
                let y = (i % 3) as u16;
                GriddedStream {
                    id: i,
                    start: (i % 5),
                    cells: vec![
                        grid.cell_at(x, y),
                        grid.cell_at(x + 1, y),
                        grid.cell_at(x + 1, y + 1),
                    ],
                }
            })
            .collect();
        GriddedDataset::from_streams(grid.clone(), streams, 10)
    }

    #[test]
    fn self_evaluation_is_perfect() {
        let grid = Grid::unit(6);
        let ds = dataset(&grid);
        let suite = MetricSuite::new(SuiteConfig { phi: 4, ..Default::default() });
        let r = suite.evaluate(&ds, &ds);
        assert!(r.density_error < 1e-12);
        assert!(r.query_error < 1e-12);
        assert!((r.hotspot_ndcg - 1.0).abs() < 1e-12);
        assert!(r.transition_error < 1e-12);
        assert!((r.pattern_f1 - 1.0).abs() < 1e-12);
        assert!((r.kendall_tau - 1.0).abs() < 1e-12);
        assert!(r.trip_error < 1e-12);
        assert!(r.length_error < 1e-12);
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let grid = Grid::unit(6);
        let ds = dataset(&grid);
        let suite = MetricSuite::new(SuiteConfig::default());
        assert_eq!(suite.queries(&ds), suite.queries(&ds));
        let other = MetricSuite::new(SuiteConfig::default().with_seed(7));
        assert_ne!(suite.queries(&ds), other.queries(&ds));
    }

    #[test]
    fn report_display_and_values() {
        let r = MetricReport {
            density_error: 0.1,
            query_error: 0.5,
            hotspot_ndcg: 0.4,
            transition_error: 0.4,
            pattern_f1: 0.39,
            kendall_tau: 0.7,
            trip_error: 0.3,
            length_error: 0.2,
        };
        let s = r.to_string();
        for name in MetricReport::NAMES {
            assert!(s.contains(name), "missing {name}");
        }
        assert_eq!(r.values().len(), 8);
        assert!(MetricReport::larger_is_better(2));
        assert!(!MetricReport::larger_is_better(0));
    }

    #[test]
    fn config_builders() {
        let c = SuiteConfig::default().with_phi(50).with_seed(3);
        assert_eq!(c.phi, 50);
        assert_eq!(c.seed, 3);
    }
}
