//! Spatio-temporal range query error (paper §V-B, "Query Error").
//!
//! A query counts the spatial points falling inside a random cell-aligned
//! rectangle during a time range of size φ. The error of one query is the
//! relative error with a *sanity bound* (following AdaTrace/LDPTrace):
//!
//! ```text
//! err(Q) = |Q(T_orig) − Q(T_syn)| / max(Q(T_orig), sanity)
//! ```
//!
//! where `sanity` is a small fraction of the total point count, preventing
//! queries with near-zero true answers from dominating the average.

use rand::Rng;
use retrasyn_geo::{GriddedDataset, Topology};

/// A cell-aligned spatio-temporal range query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeQuery {
    /// Inclusive cell-x range.
    pub x0: u16,
    /// Inclusive upper cell-x.
    pub x1: u16,
    /// Inclusive cell-y range.
    pub y0: u16,
    /// Inclusive upper cell-y.
    pub y1: u16,
    /// Inclusive time range start.
    pub t0: u64,
    /// Inclusive time range end.
    pub t1: u64,
}

impl RangeQuery {
    /// Whether the query region contains a cell.
    ///
    /// # Panics
    ///
    /// Cell-aligned queries are defined on uniform topologies only; use
    /// [`ContinuousQuery`] for adaptive discretizations.
    pub fn contains_cell(&self, topology: &Topology, cell: retrasyn_geo::CellId) -> bool {
        let k = uniform_k(topology);
        let (x, y) = (cell.0 % k, cell.0 / k);
        x >= self.x0 as u32 && x <= self.x1 as u32 && y >= self.y0 as u32 && y <= self.y1 as u32
    }
}

/// The uniform granularity of a topology, for cell-aligned workloads.
fn uniform_k(topology: &Topology) -> u32 {
    topology.uniform_k().expect(
        "cell-aligned range queries require a uniform topology; \
         use continuous queries for adaptive discretizations",
    )
}

/// Generate `count` random queries: rectangles covering 20–50% of each axis,
/// time ranges of size `phi` (clipped to the horizon).
pub fn gen_queries<R: Rng + ?Sized>(
    topology: &Topology,
    horizon: u64,
    phi: u64,
    count: usize,
    rng: &mut R,
) -> Vec<RangeQuery> {
    assert!(horizon > 0, "cannot query an empty horizon");
    let k = uniform_k(topology) as u16;
    let phi = phi.clamp(1, horizon);
    (0..count)
        .map(|_| {
            let span_x =
                ((k as f64 * (0.2 + 0.3 * rng.random::<f64>())).round() as u16).clamp(1, k);
            let span_y =
                ((k as f64 * (0.2 + 0.3 * rng.random::<f64>())).round() as u16).clamp(1, k);
            let x0 = rng.random_range(0..=(k - span_x));
            let y0 = rng.random_range(0..=(k - span_y));
            let t0 = rng.random_range(0..=(horizon - phi));
            RangeQuery { x0, x1: x0 + span_x - 1, y0, y1: y0 + span_y - 1, t0, t1: t0 + phi - 1 }
        })
        .collect()
}

/// Evaluate one query against precomputed per-timestamp cell counts.
pub fn answer(counts: &[Vec<u32>], topology: &Topology, q: &RangeQuery) -> u64 {
    let k = uniform_k(topology);
    let mut total = 0u64;
    let t1 = (q.t1 as usize).min(counts.len().saturating_sub(1));
    for row in counts.iter().take(t1 + 1).skip(q.t0 as usize) {
        for y in q.y0..=q.y1 {
            for x in q.x0..=q.x1 {
                total += row[(y as u32 * k + x as u32) as usize] as u64;
            }
        }
    }
    total
}

/// A continuous-space spatio-temporal range query (used for the
/// granularity sweep, Fig. 6, where cell-aligned queries would mask the
/// localization error of coarse grids).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousQuery {
    /// Spatial rectangle `[x0, x1] × [y0, y1]` in data coordinates.
    pub x0: f64,
    /// Upper x bound.
    pub x1: f64,
    /// Lower y bound.
    pub y0: f64,
    /// Upper y bound.
    pub y1: f64,
    /// Inclusive time range start.
    pub t0: u64,
    /// Inclusive time range end.
    pub t1: u64,
}

/// Generate `count` random continuous queries over `bbox` (20–50% spans).
pub fn gen_continuous_queries<R: Rng + ?Sized>(
    bbox: &retrasyn_geo::BoundingBox,
    horizon: u64,
    phi: u64,
    count: usize,
    rng: &mut R,
) -> Vec<ContinuousQuery> {
    assert!(horizon > 0, "cannot query an empty horizon");
    let phi = phi.clamp(1, horizon);
    (0..count)
        .map(|_| {
            let sx = bbox.width() * (0.2 + 0.3 * rng.random::<f64>());
            let sy = bbox.height() * (0.2 + 0.3 * rng.random::<f64>());
            let x0 = bbox.min.x + rng.random::<f64>() * (bbox.width() - sx);
            let y0 = bbox.min.y + rng.random::<f64>() * (bbox.height() - sy);
            let t0 = rng.random_range(0..=(horizon - phi));
            ContinuousQuery { x0, x1: x0 + sx, y0, y1: y0 + sy, t0, t1: t0 + phi - 1 }
        })
        .collect()
}

/// Exact answer over raw continuous trajectories.
pub fn continuous_answer_raw(dataset: &retrasyn_geo::StreamDataset, q: &ContinuousQuery) -> u64 {
    let mut total = 0u64;
    for traj in dataset.trajectories() {
        let lo = q.t0.max(traj.start);
        let hi = q.t1.min(traj.end());
        for t in lo..=hi.min(traj.end()) {
            if lo > hi {
                break;
            }
            if let Some(p) = traj.point_at(t) {
                if p.x >= q.x0 && p.x <= q.x1 && p.y >= q.y0 && p.y <= q.y1 {
                    total += 1;
                }
            }
        }
    }
    total
}

/// Expected answer over a gridded database: each occupant of a cell is
/// assumed uniform within the cell (the LDPTrace convention), so a cell
/// contributes `count × |cell ∩ rect| / |cell|`.
pub fn continuous_answer_gridded(dataset: &GriddedDataset, q: &ContinuousQuery) -> f64 {
    let topology = dataset.topology();
    // Fractional overlap between the query rectangle and each cell's
    // region; works for any topology (uniform or adaptive) via cell_rect.
    let counts = crate::per_ts_cell_counts(dataset);
    let mut total = 0.0;
    let t1 = (q.t1 as usize).min(counts.len().saturating_sub(1));
    for row in counts.iter().take(t1 + 1).skip(q.t0 as usize) {
        for cell in topology.cells() {
            let c = row[cell.index()];
            if c == 0 {
                continue;
            }
            let r = topology.cell_rect(cell);
            let ox = (q.x1.min(r.max.x) - q.x0.max(r.min.x)).max(0.0);
            let oy = (q.y1.min(r.max.y) - q.y0.max(r.min.y)).max(0.0);
            total += c as f64 * (ox * oy) / (r.width() * r.height());
        }
    }
    total
}

/// Mean relative error of continuous queries: exact counts on the raw
/// original stream vs expected counts on the gridded synthetic release.
pub fn continuous_query_error(
    orig: &retrasyn_geo::StreamDataset,
    syn: &GriddedDataset,
    queries: &[ContinuousQuery],
    sanity_fraction: f64,
) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let total_points: usize = orig.trajectories().iter().map(|t| t.len()).sum();
    let sanity = (sanity_fraction * total_points as f64).max(1.0);
    let mut sum = 0.0;
    for q in queries {
        let o = continuous_answer_raw(orig, q) as f64;
        let s = continuous_answer_gridded(syn, q);
        sum += (o - s).abs() / o.max(sanity);
    }
    sum / queries.len() as f64
}

/// Mean relative query error with sanity bound `sanity_fraction · |points|`.
pub fn query_error(
    orig: &GriddedDataset,
    syn: &GriddedDataset,
    queries: &[RangeQuery],
    sanity_fraction: f64,
) -> f64 {
    assert_eq!(orig.topology(), syn.topology(), "datasets must share a discretization");
    if queries.is_empty() {
        return 0.0;
    }
    let topology = orig.topology();
    let oc = crate::per_ts_cell_counts(orig);
    let sc = crate::per_ts_cell_counts(syn);
    let total_points: u64 = oc.iter().map(|row| row.iter().map(|&c| c as u64).sum::<u64>()).sum();
    let sanity = (sanity_fraction * total_points as f64).max(1.0);
    let mut sum = 0.0;
    for q in queries {
        let o = answer(&oc, topology, q) as f64;
        let s = answer(&sc, topology, q) as f64;
        sum += (o - s).abs() / o.max(sanity);
    }
    sum / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrasyn_geo::{Grid, GriddedStream, Point, Space, StreamDataset, Trajectory};

    fn dataset(grid: &Grid) -> GriddedDataset {
        let streams = vec![
            GriddedStream { id: 0, start: 0, cells: vec![grid.cell_at(0, 0), grid.cell_at(1, 1)] },
            GriddedStream { id: 1, start: 1, cells: vec![grid.cell_at(3, 3), grid.cell_at(3, 2)] },
        ];
        GriddedDataset::from_streams(grid.clone(), streams, 3)
    }

    #[test]
    fn answer_counts_points_in_box() {
        let grid = Grid::unit(4);
        let ds = dataset(&grid);
        let counts = crate::per_ts_cell_counts(&ds);
        let topo = ds.topology();
        // Whole space, whole time: all 4 points.
        let all = RangeQuery { x0: 0, x1: 3, y0: 0, y1: 3, t0: 0, t1: 2 };
        assert_eq!(answer(&counts, topo, &all), 4);
        // Bottom-left quadrant over t=0..1: cells (0,0),(1,1) -> 2 points.
        let bl = RangeQuery { x0: 0, x1: 1, y0: 0, y1: 1, t0: 0, t1: 1 };
        assert_eq!(answer(&counts, topo, &bl), 2);
        // t=1 only, top-right: (3,3) and (1,1) not in box... (3,2..3) -> 1.
        let tr = RangeQuery { x0: 2, x1: 3, y0: 2, y1: 3, t0: 1, t1: 1 };
        assert_eq!(answer(&counts, topo, &tr), 1);
        // Beyond-horizon end is clipped.
        let over = RangeQuery { x0: 0, x1: 3, y0: 0, y1: 3, t0: 0, t1: 99 };
        assert_eq!(answer(&counts, topo, &over), 4);
    }

    #[test]
    fn identical_datasets_zero_error() {
        let grid = Grid::unit(4);
        let ds = dataset(&grid);
        let mut rng = StdRng::seed_from_u64(1);
        let queries = gen_queries(ds.topology(), 3, 2, 50, &mut rng);
        assert_eq!(query_error(&ds, &ds, &queries, 0.001), 0.0);
    }

    #[test]
    fn empty_synthetic_gives_error_one_on_covered_queries() {
        let grid = Grid::unit(4);
        let orig = dataset(&grid);
        let syn = GriddedDataset::from_streams(grid.clone(), vec![], 3);
        // A query covering everything: |4 - 0| / max(4, sanity) = 1.
        let q = RangeQuery { x0: 0, x1: 3, y0: 0, y1: 3, t0: 0, t1: 2 };
        let e = query_error(&orig, &syn, &[q], 0.001);
        assert!((e - 1.0).abs() < 1e-12, "e={e}");
    }

    #[test]
    fn sanity_bound_caps_small_queries() {
        let grid = Grid::unit(4);
        let orig = dataset(&grid);
        // Synthetic has one extra point where orig has none.
        let syn = GriddedDataset::from_streams(
            grid.clone(),
            vec![GriddedStream { id: 9, start: 0, cells: vec![grid.cell_at(0, 3)] }],
            3,
        );
        let q = RangeQuery { x0: 0, x1: 0, y0: 3, y1: 3, t0: 0, t1: 0 };
        // True answer 0; with sanity = max(0.5 * 4, 1) = 2 the error is 1/2.
        let e = query_error(&orig, &syn, &[q], 0.5);
        assert!((e - 0.5).abs() < 1e-12, "e={e}");
    }

    #[test]
    fn gen_queries_are_well_formed() {
        let topo = Grid::unit(10).compile();
        let mut rng = StdRng::seed_from_u64(2);
        for q in gen_queries(&topo, 100, 10, 200, &mut rng) {
            assert!(q.x0 <= q.x1 && q.x1 < 10);
            assert!(q.y0 <= q.y1 && q.y1 < 10);
            assert!(q.t0 <= q.t1 && q.t1 < 100);
            assert_eq!(q.t1 - q.t0 + 1, 10);
        }
    }

    #[test]
    fn gen_queries_phi_clamped_to_horizon() {
        let topo = Grid::unit(5).compile();
        let mut rng = StdRng::seed_from_u64(3);
        let qs = gen_queries(&topo, 4, 100, 10, &mut rng);
        for q in qs {
            assert!(q.t1 < 4);
        }
    }

    #[test]
    fn contains_cell() {
        let grid = Grid::unit(4);
        let topo = grid.compile();
        let q = RangeQuery { x0: 1, x1: 2, y0: 1, y1: 2, t0: 0, t1: 0 };
        assert!(q.contains_cell(&topo, grid.cell_at(1, 2)));
        assert!(!q.contains_cell(&topo, grid.cell_at(0, 0)));
        assert!(!q.contains_cell(&topo, grid.cell_at(3, 1)));
    }

    #[test]
    fn continuous_queries_well_formed() {
        let bbox = retrasyn_geo::BoundingBox::unit();
        let mut rng = StdRng::seed_from_u64(8);
        for q in gen_continuous_queries(&bbox, 50, 10, 100, &mut rng) {
            assert!(q.x0 < q.x1 && q.x1 <= 1.0 && q.x0 >= 0.0);
            assert!(q.y0 < q.y1 && q.y1 <= 1.0 && q.y0 >= 0.0);
            assert_eq!(q.t1 - q.t0 + 1, 10);
        }
    }

    #[test]
    fn continuous_answer_raw_counts_points() {
        let ds = StreamDataset::new(vec![Trajectory::new(
            0,
            0,
            vec![Point::new(0.1, 0.1), Point::new(0.6, 0.6), Point::new(0.9, 0.9)],
        )]);
        let q = ContinuousQuery { x0: 0.0, x1: 0.7, y0: 0.0, y1: 0.7, t0: 0, t1: 2 };
        assert_eq!(continuous_answer_raw(&ds, &q), 2);
        let q_t = ContinuousQuery { x0: 0.0, x1: 1.0, y0: 0.0, y1: 1.0, t0: 1, t1: 1 };
        assert_eq!(continuous_answer_raw(&ds, &q_t), 1);
    }

    #[test]
    fn continuous_answer_gridded_uses_overlap_fraction() {
        let grid = Grid::unit(2);
        // One stream sitting in cell (0,0) (covering [0,0.5]^2) at t=0.
        let ds = GriddedDataset::from_streams(
            grid.clone(),
            vec![GriddedStream { id: 0, start: 0, cells: vec![grid.cell_at(0, 0)] }],
            1,
        );
        // Query covering the left half of that cell: expect 0.5 points.
        let q = ContinuousQuery { x0: 0.0, x1: 0.25, y0: 0.0, y1: 0.5, t0: 0, t1: 0 };
        let ans = continuous_answer_gridded(&ds, &q);
        assert!((ans - 0.5).abs() < 1e-12, "ans={ans}");
        // Query covering the whole cell: expect exactly 1.
        let q_full = ContinuousQuery { x0: 0.0, x1: 0.5, y0: 0.0, y1: 0.5, t0: 0, t1: 0 };
        assert!((continuous_answer_gridded(&ds, &q_full) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn continuous_error_zero_for_matching_uniform_data() {
        // Raw points at cell centers vs their own gridding: the expected
        // overlap answer differs only by the within-cell approximation;
        // for a full-cover query the error is exactly zero.
        let grid = Grid::unit(4);
        let ds = StreamDataset::new(vec![Trajectory::new(
            0,
            0,
            vec![Point::new(0.4, 0.4), Point::new(0.6, 0.6)],
        )]);
        let gd = ds.discretize(&grid);
        let q = ContinuousQuery { x0: 0.0, x1: 1.0, y0: 0.0, y1: 1.0, t0: 0, t1: 1 };
        let e = continuous_query_error(&ds, &gd, &[q], 0.001);
        assert!(e < 1e-12, "e={e}");
    }

    #[test]
    fn coarse_grid_cannot_localize() {
        // A tight cluster of raw points; the K=1 gridding smears them over
        // the whole space, so a small query far from the cluster sees
        // phantom mass -> large continuous error. A fine grid localizes.
        let points: Vec<Point> = (0..50).map(|_| Point::new(0.05, 0.05)).collect();
        let ds = StreamDataset::new(vec![Trajectory::new(0, 0, points)]);
        let q = ContinuousQuery { x0: 0.6, x1: 0.9, y0: 0.6, y1: 0.9, t0: 0, t1: 49 };
        let coarse = continuous_query_error(&ds, &ds.discretize(&Grid::unit(1)), &[q], 0.001);
        let fine = continuous_query_error(&ds, &ds.discretize(&Grid::unit(10)), &[q], 0.001);
        assert!(coarse > 10.0 * fine.max(1e-9), "coarse={coarse} fine={fine}");
    }

    #[test]
    fn query_error_from_raw_trajectories() {
        // End-to-end: raw points -> gridded -> query error vs a shifted copy.
        let grid = Grid::unit(5);
        let orig = StreamDataset::new(vec![Trajectory::new(
            0,
            0,
            vec![Point::new(0.1, 0.1), Point::new(0.3, 0.1), Point::new(0.5, 0.1)],
        )])
        .discretize(&grid);
        let shifted = StreamDataset::new(vec![Trajectory::new(
            0,
            0,
            vec![Point::new(0.1, 0.9), Point::new(0.3, 0.9), Point::new(0.5, 0.9)],
        )])
        .discretize(&grid);
        let q = RangeQuery { x0: 0, x1: 4, y0: 0, y1: 0, t0: 0, t1: 2 };
        let e = query_error(&orig, &shifted, &[q], 0.001);
        assert!((e - 1.0).abs() < 1e-12);
    }
}
