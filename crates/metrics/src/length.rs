//! Length error: JSD between travel-distance distributions (paper §V-B,
//! "length error use JSD to measure the difference between… travel distance
//! distribution in T_orig and T_syn").
//!
//! Travel distance is measured in grid hops (Chebyshev steps), histogrammed
//! into shared bins spanning the union of both datasets' ranges. Synthetic
//! trajectories that never terminate (the LDP-IDS baselines and the NoEQ
//! ablation) produce distances far beyond the real ones, driving this metric
//! to its maximum `ln 2 ≈ 0.6931` — exactly the constant the paper reports
//! for every baseline.

use crate::divergence::jsd;
use retrasyn_geo::GriddedDataset;

/// Travel distances (grid hops) of all streams.
pub fn travel_distances(dataset: &GriddedDataset) -> Vec<u64> {
    let topology = dataset.topology();
    dataset.iter().map(|s| s.hop_distance(topology)).collect()
}

/// Histogram values into `bins` equal-width buckets over `[0, max]`.
fn histogram(values: &[u64], max: u64, bins: usize) -> Vec<f64> {
    let mut hist = vec![0.0; bins];
    if values.is_empty() {
        return hist;
    }
    let width = ((max + 1) as f64 / bins as f64).max(1.0);
    for &v in values {
        let b = ((v as f64 / width) as usize).min(bins - 1);
        hist[b] += 1.0;
    }
    hist
}

/// JSD between travel-distance histograms with `bins` shared buckets.
pub fn length_error(orig: &GriddedDataset, syn: &GriddedDataset, bins: usize) -> f64 {
    assert!(bins >= 2, "need at least two bins");
    assert_eq!(orig.topology(), syn.topology(), "datasets must share a discretization");
    let od = travel_distances(orig);
    let sd = travel_distances(syn);
    let max = od.iter().chain(sd.iter()).copied().max().unwrap_or(0);
    let oh = histogram(&od, max, bins);
    let sh = histogram(&sd, max, bins);
    jsd(&oh, &sh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::{Grid, GriddedStream};
    use std::f64::consts::LN_2;

    fn walk(grid: &Grid, id: u64, len: usize) -> GriddedStream {
        // A straight march of `len` cells along x from (0,0), bouncing at
        // the boundary.
        let k = grid.k();
        let cells = (0..len)
            .map(|i| {
                let phase = (i as u16) % (2 * (k - 1)).max(1);
                let x = if phase < k { phase } else { 2 * (k - 1) - phase };
                grid.cell_at(x, 0)
            })
            .collect();
        GriddedStream { id, start: 0, cells }
    }

    fn ds(grid: &Grid, lens: &[usize]) -> GriddedDataset {
        let streams: Vec<GriddedStream> =
            lens.iter().enumerate().map(|(i, &l)| walk(grid, i as u64, l)).collect();
        let horizon = streams.iter().map(|s| s.end() + 1).max().unwrap_or(0);
        GriddedDataset::from_streams(grid.clone(), streams, horizon)
    }

    #[test]
    fn identical_lengths_zero_error() {
        let grid = Grid::unit(6);
        let a = ds(&grid, &[3, 5, 8, 8]);
        assert!(length_error(&a, &a, 10) < 1e-12);
    }

    #[test]
    fn never_terminating_synthetic_hits_ln2() {
        let grid = Grid::unit(6);
        // Real streams: short (distances 2-7); synthetic: one enormous
        // stream (distance ~ 500) — disjoint histograms.
        let orig = ds(&grid, &[3, 5, 8]);
        let syn = ds(&grid, &[500]);
        let e = length_error(&orig, &syn, 20);
        assert!((e - LN_2).abs() < 1e-9, "e={e}");
    }

    #[test]
    fn similar_distributions_small_error() {
        let grid = Grid::unit(6);
        let a = ds(&grid, &[3, 5, 8, 12]);
        let b = ds(&grid, &[3, 5, 8, 13]);
        let e = length_error(&a, &b, 10);
        assert!(e < 0.2, "e={e}");
    }

    #[test]
    fn travel_distance_values() {
        let grid = Grid::unit(6);
        let d = travel_distances(&ds(&grid, &[1, 4]));
        // len 1 -> 0 hops; len 4 -> 3 hops.
        assert_eq!(d, vec![0, 3]);
    }

    #[test]
    fn empty_sides() {
        let grid = Grid::unit(4);
        let empty = GriddedDataset::from_streams(grid.clone(), vec![], 1);
        let a = ds(&grid, &[3]);
        assert_eq!(length_error(&empty, &empty, 5), 0.0);
        assert!((length_error(&a, &empty, 5) - LN_2).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_cover_range() {
        let h = histogram(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], 9, 5);
        assert_eq!(h.iter().sum::<f64>() as u64, 10);
        for b in &h {
            assert_eq!(*b as u64, 2);
        }
    }
}
