//! The transition-state domain `S = {m_ij} ∪ {e_i} ∪ {q_j}` (§III-B).
//!
//! A user's mobility status at each timestamp is exactly one
//! [`TransitionState`]: a movement between adjacent cells (including
//! staying), an entering event, or a quitting event. [`TransitionTable`]
//! lays these out in a dense index space so the whole domain can be fed to
//! a frequency oracle:
//!
//! ```text
//! [ move block of cell 0 | move block of cell 1 | … | enters | quits ]
//! ```
//!
//! where the move block of cell `i` holds one slot per neighbor in `N(i)`
//! (ascending cell order, self included). Only reachable (adjacent)
//! movements exist, so `|S| = Σ|N(i)| + 2|C|` — `O(9|C|)` on a uniform
//! grid, and whatever the compiled adjacency yields on other spaces.
//!
//! The move blocks are exactly the CSR adjacency rows of the compiled
//! [`Topology`], so the table borrows the topology's tables instead of
//! rebuilding them.

use crate::grid::CellId;
use crate::space::{Space, Topology};
use std::sync::Arc;

/// A user's mobility status at one timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionState {
    /// Movement `m_ij` from `from` to the adjacent (or same) cell `to`.
    Move {
        /// Previous cell `c_i`.
        from: CellId,
        /// Current cell `c_j` (adjacent to `from`).
        to: CellId,
    },
    /// Entering event `e_i`: a new stream begins at this cell.
    Enter(CellId),
    /// Quitting event `q_j`: the stream ended with this final cell.
    Quit(CellId),
}

/// Dense, bijective indexing of the reachability-constrained transition
/// domain for a compiled topology.
#[derive(Debug, Clone)]
pub struct TransitionTable {
    topology: Arc<Topology>,
}

impl TransitionTable {
    /// Build the table for any [`Space`] (a `Grid`, a compiled
    /// [`Topology`], a quad tree, …).
    pub fn new(space: &impl Space) -> Self {
        TransitionTable { topology: space.compile_shared() }
    }

    /// The compiled topology this table indexes.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// Number of cells `|C|`.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.topology.num_cells()
    }

    /// Number of movement states `Σ_i |N(i)|`.
    #[inline]
    pub fn num_moves(&self) -> usize {
        self.topology.csr_targets().len()
    }

    /// Total domain size `|S| = num_moves + 2|C|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.num_moves() + 2 * self.num_cells()
    }

    /// The domain is never empty for a valid topology.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dense index range of cell `from`'s move block.
    #[inline]
    pub fn move_block(&self, from: CellId) -> std::ops::Range<usize> {
        let offsets = self.topology.csr_offsets();
        let i = from.index();
        offsets[i] as usize..offsets[i + 1] as usize
    }

    /// Row offsets of every move block: `move_offsets()[i]` is the first
    /// dense index of cell `i`'s block and `move_offsets()[num_cells()]`
    /// equals [`Self::num_moves`]. Lets samplers mirror the dense move
    /// layout without per-cell calls.
    #[inline]
    pub fn move_offsets(&self) -> &[u32] {
        self.topology.csr_offsets()
    }

    /// The concatenated destination cells of all move blocks (parallel to
    /// the dense move index space).
    #[inline]
    pub fn neighbor_cells(&self) -> &[CellId] {
        self.topology.csr_targets()
    }

    /// Source cell owning the movement state at dense `index`
    /// (`index < num_moves()`); O(log |C|).
    #[inline]
    pub fn move_source_of(&self, index: usize) -> CellId {
        debug_assert!(index < self.num_moves());
        let offsets = self.topology.csr_offsets();
        let cell = match offsets.binary_search(&(index as u32)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        CellId(cell as u32)
    }

    /// Destination cells of `from`'s move block (parallel to
    /// [`Self::move_block`]).
    #[inline]
    pub fn move_targets(&self, from: CellId) -> &[CellId] {
        self.topology.neighbors(from)
    }

    /// Dense index of the entering state `e_c`.
    #[inline]
    pub fn enter_index(&self, c: CellId) -> usize {
        self.num_moves() + c.index()
    }

    /// Dense index of the quitting state `q_c`.
    #[inline]
    pub fn quit_index(&self, c: CellId) -> usize {
        self.num_moves() + self.num_cells() + c.index()
    }

    /// Dense index of an arbitrary state. Returns `None` for a movement
    /// between non-adjacent cells (unreachable, not in the domain).
    pub fn index_of(&self, state: TransitionState) -> Option<usize> {
        match state {
            TransitionState::Move { from, to } => {
                let block = self.move_block(from);
                let targets = self.topology.neighbors(from);
                targets.iter().position(|&c| c == to).map(|pos| block.start + pos)
            }
            TransitionState::Enter(c) => Some(self.enter_index(c)),
            TransitionState::Quit(c) => Some(self.quit_index(c)),
        }
    }

    /// Inverse of [`Self::index_of`].
    ///
    /// # Panics
    /// Panics if `index ≥ self.len()`.
    pub fn state_of(&self, index: usize) -> TransitionState {
        let moves = self.num_moves();
        let cells = self.num_cells();
        if index < moves {
            // Binary search for the owning block.
            let offsets = self.topology.csr_offsets();
            let from = match offsets.binary_search(&(index as u32)) {
                Ok(i) => {
                    // `index` is the start of block i — but trailing empty
                    // blocks can't occur (every cell has >= 1 neighbor), so
                    // block i is the owner.
                    i
                }
                Err(i) => i - 1,
            };
            TransitionState::Move {
                from: CellId(from as u32),
                to: self.topology.csr_targets()[index],
            }
        } else if index < moves + cells {
            TransitionState::Enter(CellId((index - moves) as u32))
        } else if index < moves + 2 * cells {
            TransitionState::Quit(CellId((index - moves - cells) as u32))
        } else {
            panic!("transition index {index} out of range {}", self.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::point::{BoundingBox, Point};
    use crate::space::QuadGrid;

    #[test]
    fn domain_size_small_grids() {
        // k=1: one cell, one self-move, one enter, one quit.
        let t = TransitionTable::new(&Grid::unit(1));
        assert_eq!(t.num_moves(), 1);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        // k=2: every cell adjacent to every cell -> 16 moves + 8.
        let t = TransitionTable::new(&Grid::unit(2));
        assert_eq!(t.num_moves(), 16);
        assert_eq!(t.len(), 24);
        // k=3: corners 4, edges 6, center 9 -> 4*4 + 4*6 + 9 = 49.
        let t = TransitionTable::new(&Grid::unit(3));
        assert_eq!(t.num_moves(), 49);
        assert_eq!(t.len(), 49 + 18);
    }

    #[test]
    fn domain_is_o_9c() {
        let grid = Grid::unit(10);
        let t = TransitionTable::new(&grid);
        assert!(t.num_moves() <= 9 * grid.num_cells());
        // Interior dominates: 8x8 interior cells with 9 neighbors.
        assert_eq!(t.num_moves(), 64 * 9 + 4 * 4 + 32 * 6);
    }

    #[test]
    fn index_bijection() {
        let grid = Grid::unit(5);
        let t = TransitionTable::new(&grid);
        for idx in 0..t.len() {
            let state = t.state_of(idx);
            assert_eq!(t.index_of(state), Some(idx), "state {state:?}");
        }
    }

    #[test]
    fn index_bijection_on_quad_topology() {
        let pts: Vec<Point> = (0..600)
            .map(|i| Point::new((i as f64 * 0.017) % 0.4, (i as f64 * 0.029) % 1.0))
            .collect();
        let quad = QuadGrid::fit(BoundingBox::unit(), &pts, 40, 4);
        let t = TransitionTable::new(&quad);
        assert_eq!(t.num_cells(), quad.num_leaves());
        for idx in 0..t.len() {
            let state = t.state_of(idx);
            assert_eq!(t.index_of(state), Some(idx), "state {state:?}");
        }
    }

    #[test]
    fn move_indices_cover_neighbors() {
        let grid = Grid::unit(4);
        let t = TransitionTable::new(&grid);
        for from in grid.cells() {
            let block = t.move_block(from);
            let targets = t.move_targets(from);
            assert_eq!(block.len(), grid.neighbors(from).len());
            assert_eq!(targets.len(), block.len());
            for (pos, &to) in targets.iter().enumerate() {
                assert_eq!(t.index_of(TransitionState::Move { from, to }), Some(block.start + pos));
            }
        }
    }

    #[test]
    fn non_adjacent_move_not_in_domain() {
        let grid = Grid::unit(5);
        let t = TransitionTable::new(&grid);
        let state = TransitionState::Move { from: grid.cell_at(0, 0), to: grid.cell_at(3, 3) };
        assert_eq!(t.index_of(state), None);
    }

    #[test]
    fn enter_quit_blocks_disjoint() {
        let grid = Grid::unit(3);
        let t = TransitionTable::new(&grid);
        let mut seen = std::collections::HashSet::new();
        for c in grid.cells() {
            assert!(seen.insert(t.enter_index(c)));
            assert!(seen.insert(t.quit_index(c)));
        }
        for idx in seen {
            assert!(idx >= t.num_moves() && idx < t.len());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn state_of_out_of_range_panics() {
        let t = TransitionTable::new(&Grid::unit(2));
        let _ = t.state_of(t.len());
    }
}
