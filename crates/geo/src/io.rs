//! Plain-text persistence for gridded databases.
//!
//! A deliberately simple, dependency-free line format so released synthetic
//! databases can be handed to downstream tooling (or reloaded for later
//! historical analysis). Uniform-grid databases use the v1 format:
//!
//! ```text
//! retrasyn-gridded v1 k=<K> horizon=<T>
//! <id> <start> <cell> <cell> …
//! …
//! ```
//!
//! Quad-tree databases carry their leaf set so the topology round-trips:
//!
//! ```text
//! retrasyn-quad v1 depth=<D> leaves=<L> horizon=<T>
//! <x> <y> <depth>      (one line per leaf, canonical order)
//! <id> <start> <cell> <cell> …
//! …
//! ```
//!
//! Cells are dense indices. The bounding box is not persisted — readers
//! get the unit square; re-discretize against the original box to recover
//! continuous centers.
//!
//! The parser streams straight into the columnar layout
//! ([`GriddedDataset::from_columns`]): ids, starts, offsets and cells are
//! appended as lines arrive and validated inline, so loading never
//! materializes one owned `Vec` per stream.

use crate::grid::{CellId, Grid};
use crate::gridded::GriddedDataset;
use crate::space::{QuadGrid, QuadLeaf, SpaceDescriptor, Topology};
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Serialize a gridded database to a writer (format chosen by the
/// dataset's topology descriptor).
pub fn write_gridded<W: Write>(dataset: &GriddedDataset, writer: &mut W) -> io::Result<()> {
    match dataset.topology().descriptor() {
        SpaceDescriptor::Uniform { k, .. } => {
            writeln!(writer, "retrasyn-gridded v1 k={k} horizon={}", dataset.horizon())?;
        }
        SpaceDescriptor::Quad { depth, leaves, .. } => {
            writeln!(
                writer,
                "retrasyn-quad v1 depth={depth} leaves={} horizon={}",
                leaves.len(),
                dataset.horizon()
            )?;
            for l in leaves {
                writeln!(writer, "{} {} {}", l.x, l.y, l.depth)?;
            }
        }
    }
    for s in dataset.iter() {
        write!(writer, "{} {}", s.id, s.start)?;
        for c in s.cells {
            write!(writer, " {}", c.0)?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Serialize to a file path.
pub fn save_gridded<P: AsRef<Path>>(dataset: &GriddedDataset, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_gridded(dataset, &mut w)?;
    w.flush()
}

fn parse_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Deserialize a gridded database from a reader (unit-square space).
/// Dispatches on the header: `retrasyn-gridded v1` (uniform grid) or
/// `retrasyn-quad v1` (quad tree with an explicit leaf set).
pub fn read_gridded<R: BufRead>(reader: R) -> io::Result<GriddedDataset> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| parse_err("empty input"))??;
    let mut parts = header.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("retrasyn-gridded"), Some("v1")) => {
            let mut k: Option<u16> = None;
            let mut horizon: Option<u64> = None;
            for field in parts {
                if let Some(v) = field.strip_prefix("k=") {
                    k = Some(v.parse().map_err(|_| parse_err("bad k"))?);
                } else if let Some(v) = field.strip_prefix("horizon=") {
                    horizon = Some(v.parse().map_err(|_| parse_err("bad horizon"))?);
                }
            }
            let k = k.ok_or_else(|| parse_err("missing k"))?;
            let horizon = horizon.ok_or_else(|| parse_err("missing horizon"))?;
            let topology = crate::space::Space::compile_shared(&Grid::unit(k));
            read_streams_columnar(lines, topology, horizon, 2)
        }
        (Some("retrasyn-quad"), Some("v1")) => {
            let mut depth: Option<u8> = None;
            let mut leaves_n: Option<usize> = None;
            let mut horizon: Option<u64> = None;
            for field in parts {
                if let Some(v) = field.strip_prefix("depth=") {
                    depth = Some(v.parse().map_err(|_| parse_err("bad depth"))?);
                } else if let Some(v) = field.strip_prefix("leaves=") {
                    leaves_n = Some(v.parse().map_err(|_| parse_err("bad leaves"))?);
                } else if let Some(v) = field.strip_prefix("horizon=") {
                    horizon = Some(v.parse().map_err(|_| parse_err("bad horizon"))?);
                }
            }
            let depth = depth.ok_or_else(|| parse_err("missing depth"))?;
            let leaves_n = leaves_n.ok_or_else(|| parse_err("missing leaves"))?;
            let horizon = horizon.ok_or_else(|| parse_err("missing horizon"))?;
            let mut leaves = Vec::with_capacity(leaves_n);
            for i in 0..leaves_n {
                let line = lines
                    .next()
                    .ok_or_else(|| parse_err(format!("missing leaf line {}", i + 2)))??;
                let mut f = line.split_whitespace();
                let x: u32 = f
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(format!("line {}: bad leaf x", i + 2)))?;
                let y: u32 = f
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(format!("line {}: bad leaf y", i + 2)))?;
                let d: u8 = f
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| parse_err(format!("line {}: bad leaf depth", i + 2)))?;
                leaves.push(QuadLeaf { x, y, depth: d });
            }
            let quad = QuadGrid::try_from_leaves(crate::point::BoundingBox::unit(), depth, leaves)
                .map_err(parse_err)?;
            let topology = crate::space::Space::compile_shared(&quad);
            read_streams_columnar(lines, topology, horizon, leaves_n + 2)
        }
        _ => {
            Err(parse_err("bad header (expected 'retrasyn-gridded v1 …' or 'retrasyn-quad v1 …')"))
        }
    }
}

/// Stream the `<id> <start> <cell>…` body straight into the columnar
/// layout, validating ranges, adjacency and the horizon inline.
fn read_streams_columnar<B: Iterator<Item = io::Result<String>>>(
    lines: B,
    topology: Arc<Topology>,
    horizon: u64,
    first_lineno: usize,
) -> io::Result<GriddedDataset> {
    let num_cells = topology.num_cells();
    let mut ids = Vec::new();
    let mut starts = Vec::new();
    let mut offsets = vec![0usize];
    let mut cells: Vec<CellId> = Vec::new();
    for (i, line) in lines.enumerate() {
        let lineno = first_lineno + i;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let id: u64 = fields
            .next()
            .ok_or_else(|| parse_err(format!("line {lineno}: missing id")))?
            .parse()
            .map_err(|_| parse_err(format!("line {lineno}: bad id")))?;
        let start: u64 = fields
            .next()
            .ok_or_else(|| parse_err(format!("line {lineno}: missing start")))?
            .parse()
            .map_err(|_| parse_err(format!("line {lineno}: bad start")))?;
        let stream_base = cells.len();
        let mut prev: Option<CellId> = None;
        for f in fields {
            let raw: u32 = f.parse().map_err(|_| parse_err(format!("line {lineno}: bad cell")))?;
            if raw as usize >= num_cells {
                return Err(parse_err(format!(
                    "line {lineno}: cell {raw} out of range for {num_cells} cells"
                )));
            }
            let c = CellId(raw);
            if let Some(p) = prev {
                if !topology.are_adjacent(p, c) {
                    return Err(parse_err(format!("stream {id}: non-adjacent move")));
                }
            }
            cells.push(c);
            prev = Some(c);
        }
        let n = cells.len() - stream_base;
        if n == 0 {
            return Err(parse_err(format!("line {lineno}: stream with no cells")));
        }
        if start + n as u64 > horizon {
            return Err(parse_err(format!("stream {id} exceeds horizon")));
        }
        ids.push(id);
        starts.push(start);
        offsets.push(cells.len());
    }
    Ok(GriddedDataset::from_columns(topology, ids, starts, offsets, cells, horizon))
}

/// Deserialize from a file path.
pub fn load_gridded<P: AsRef<Path>>(path: P) -> io::Result<GriddedDataset> {
    read_gridded(io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gridded::GriddedStream;
    use crate::point::{BoundingBox, Point};

    fn sample() -> GriddedDataset {
        let grid = Grid::unit(4);
        GriddedDataset::from_streams(
            grid.clone(),
            vec![
                GriddedStream {
                    id: 3,
                    start: 1,
                    cells: vec![grid.cell_at(0, 0), grid.cell_at(1, 1)],
                },
                GriddedStream { id: 9, start: 0, cells: vec![grid.cell_at(3, 3)] },
            ],
            5,
        )
    }

    #[test]
    fn roundtrip() {
        let ds = sample();
        let mut buf = Vec::new();
        write_gridded(&ds, &mut buf).unwrap();
        let loaded = read_gridded(io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(loaded.horizon(), 5);
        assert_eq!(loaded.topology().uniform_k(), Some(4));
        assert_eq!(loaded, ds);
    }

    #[test]
    fn quad_roundtrip() {
        let pts: Vec<Point> = (0..300).map(|i| Point::new((i % 30) as f64 / 30.0, 0.1)).collect();
        let quad = QuadGrid::fit(BoundingBox::unit(), &pts, 25, 3);
        let topo = crate::space::Space::compile_shared(&quad);
        // A short stream hopping between two adjacent leaves.
        let c0 = topo.cell_of(&Point::new(0.1, 0.05));
        let pick = *topo.neighbors(c0).last().unwrap();
        let ds = GriddedDataset::from_streams(
            Arc::clone(&topo),
            vec![GriddedStream { id: 1, start: 0, cells: vec![c0, pick, c0] }],
            4,
        );
        let mut buf = Vec::new();
        write_gridded(&ds, &mut buf).unwrap();
        let loaded = read_gridded(io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(loaded, ds);
        assert_eq!(loaded.topology().num_cells(), quad.num_leaves());
    }

    #[test]
    fn file_roundtrip() {
        let ds = sample();
        let dir = std::env::temp_dir().join("retrasyn_geo_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("release.txt");
        save_gridded(&ds, &path).unwrap();
        let loaded = load_gridded(&path).unwrap();
        assert_eq!(loaded, ds);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_header() {
        let bad = "nonsense v1 k=4 horizon=5\n";
        assert!(read_gridded(io::BufReader::new(bad.as_bytes())).is_err());
        let missing_k = "retrasyn-gridded v1 horizon=5\n";
        assert!(read_gridded(io::BufReader::new(missing_k.as_bytes())).is_err());
    }

    #[test]
    fn rejects_out_of_range_cell() {
        let bad = "retrasyn-gridded v1 k=2 horizon=3\n0 0 7\n";
        let err = read_gridded(io::BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_non_adjacent_stream() {
        // Cells 0 and 15 in a 4x4 grid are not adjacent.
        let bad = "retrasyn-gridded v1 k=4 horizon=3\n0 0 0 15\n";
        let err = read_gridded(io::BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("non-adjacent"));
    }

    #[test]
    fn rejects_horizon_overflow() {
        let bad = "retrasyn-gridded v1 k=4 horizon=1\n0 0 0 1\n";
        let err = read_gridded(io::BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("horizon"));
    }

    #[test]
    fn rejects_bad_quad_leaf_set() {
        // Three depth-1 leaves: a hole.
        let bad = "retrasyn-quad v1 depth=1 leaves=3 horizon=2\n0 0 1\n1 0 1\n0 1 1\n0 0 0\n";
        let err = read_gridded(io::BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("quad"));
    }

    #[test]
    fn skips_blank_lines() {
        let ok = "retrasyn-gridded v1 k=2 horizon=2\n\n0 0 0 1\n\n";
        let ds = read_gridded(io::BufReader::new(ok.as_bytes())).unwrap();
        assert_eq!(ds.num_streams(), 1);
    }
}
