//! Plain-text persistence for gridded databases.
//!
//! A deliberately simple, dependency-free line format so released synthetic
//! databases can be handed to downstream tooling (or reloaded for later
//! historical analysis):
//!
//! ```text
//! retrasyn-gridded v1 k=<K> horizon=<T>
//! <id> <start> <cell> <cell> …
//! …
//! ```
//!
//! Cells are dense indices (`y·K + x`). The grid's bounding box is not
//! persisted — readers supply it (releases are usually consumed in grid
//! coordinates; use [`Grid::new`] with the original box to recover
//! continuous centers).

use crate::grid::{CellId, Grid};
use crate::gridded::{GriddedDataset, GriddedStream};
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Serialize a gridded database to a writer.
pub fn write_gridded<W: Write>(dataset: &GriddedDataset, writer: &mut W) -> io::Result<()> {
    writeln!(writer, "retrasyn-gridded v1 k={} horizon={}", dataset.grid().k(), dataset.horizon())?;
    for s in dataset.iter() {
        write!(writer, "{} {}", s.id, s.start)?;
        for c in s.cells {
            write!(writer, " {}", c.0)?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Serialize to a file path.
pub fn save_gridded<P: AsRef<Path>>(dataset: &GriddedDataset, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_gridded(dataset, &mut w)?;
    w.flush()
}

fn parse_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Deserialize a gridded database from a reader (unit-square grid).
pub fn read_gridded<R: BufRead>(reader: R) -> io::Result<GriddedDataset> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| parse_err("empty input"))??;
    let mut k: Option<u16> = None;
    let mut horizon: Option<u64> = None;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("retrasyn-gridded") || parts.next() != Some("v1") {
        return Err(parse_err("bad header (expected 'retrasyn-gridded v1 …')"));
    }
    for field in parts {
        if let Some(v) = field.strip_prefix("k=") {
            k = Some(v.parse().map_err(|_| parse_err("bad k"))?);
        } else if let Some(v) = field.strip_prefix("horizon=") {
            horizon = Some(v.parse().map_err(|_| parse_err("bad horizon"))?);
        }
    }
    let k = k.ok_or_else(|| parse_err("missing k"))?;
    let horizon = horizon.ok_or_else(|| parse_err("missing horizon"))?;
    let grid = Grid::unit(k);
    let mut streams = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let id: u64 = fields
            .next()
            .ok_or_else(|| parse_err(format!("line {}: missing id", lineno + 2)))?
            .parse()
            .map_err(|_| parse_err(format!("line {}: bad id", lineno + 2)))?;
        let start: u64 = fields
            .next()
            .ok_or_else(|| parse_err(format!("line {}: missing start", lineno + 2)))?
            .parse()
            .map_err(|_| parse_err(format!("line {}: bad start", lineno + 2)))?;
        let cells: Result<Vec<CellId>, io::Error> = fields
            .map(|f| {
                let raw: u16 =
                    f.parse().map_err(|_| parse_err(format!("line {}: bad cell", lineno + 2)))?;
                if raw as usize >= grid.num_cells() {
                    return Err(parse_err(format!(
                        "line {}: cell {raw} out of range for k={k}",
                        lineno + 2
                    )));
                }
                Ok(CellId(raw))
            })
            .collect();
        let cells = cells?;
        if cells.is_empty() {
            return Err(parse_err(format!("line {}: stream with no cells", lineno + 2)));
        }
        streams.push(GriddedStream { id, start, cells });
    }
    // Validate adjacency and horizon before constructing.
    for s in &streams {
        if s.end() >= horizon {
            return Err(parse_err(format!("stream {} exceeds horizon", s.id)));
        }
        for w in s.cells.windows(2) {
            if !grid.are_adjacent(w[0], w[1]) {
                return Err(parse_err(format!("stream {}: non-adjacent move", s.id)));
            }
        }
    }
    Ok(GriddedDataset::from_streams(grid, streams, horizon))
}

/// Deserialize from a file path.
pub fn load_gridded<P: AsRef<Path>>(path: P) -> io::Result<GriddedDataset> {
    read_gridded(io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GriddedDataset {
        let grid = Grid::unit(4);
        GriddedDataset::from_streams(
            grid.clone(),
            vec![
                GriddedStream {
                    id: 3,
                    start: 1,
                    cells: vec![grid.cell_at(0, 0), grid.cell_at(1, 1)],
                },
                GriddedStream { id: 9, start: 0, cells: vec![grid.cell_at(3, 3)] },
            ],
            5,
        )
    }

    #[test]
    fn roundtrip() {
        let ds = sample();
        let mut buf = Vec::new();
        write_gridded(&ds, &mut buf).unwrap();
        let loaded = read_gridded(io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(loaded.horizon(), 5);
        assert_eq!(loaded.grid().k(), 4);
        assert_eq!(loaded, ds);
    }

    #[test]
    fn file_roundtrip() {
        let ds = sample();
        let dir = std::env::temp_dir().join("retrasyn_geo_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("release.txt");
        save_gridded(&ds, &path).unwrap();
        let loaded = load_gridded(&path).unwrap();
        assert_eq!(loaded, ds);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_header() {
        let bad = "nonsense v1 k=4 horizon=5\n";
        assert!(read_gridded(io::BufReader::new(bad.as_bytes())).is_err());
        let missing_k = "retrasyn-gridded v1 horizon=5\n";
        assert!(read_gridded(io::BufReader::new(missing_k.as_bytes())).is_err());
    }

    #[test]
    fn rejects_out_of_range_cell() {
        let bad = "retrasyn-gridded v1 k=2 horizon=3\n0 0 7\n";
        let err = read_gridded(io::BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_non_adjacent_stream() {
        // Cells 0 and 15 in a 4x4 grid are not adjacent.
        let bad = "retrasyn-gridded v1 k=4 horizon=3\n0 0 0 15\n";
        let err = read_gridded(io::BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("non-adjacent"));
    }

    #[test]
    fn rejects_horizon_overflow() {
        let bad = "retrasyn-gridded v1 k=4 horizon=1\n0 0 0 1\n";
        let err = read_gridded(io::BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("horizon"));
    }

    #[test]
    fn skips_blank_lines() {
        let ok = "retrasyn-gridded v1 k=2 horizon=2\n\n0 0 0 1\n\n";
        let ds = read_gridded(io::BufReader::new(ok.as_bytes())).unwrap();
        assert_eq!(ds.num_streams(), 1);
    }
}
