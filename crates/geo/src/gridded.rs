//! Discretized trajectory streams — the representation every mechanism and
//! metric operates on.
//!
//! Discretization maps each continuous location to its cell and then
//! *splits* any stream whose consecutive cells are not adjacent. This
//! mirrors the paper's preprocessing ("For trajectories including
//! non-adjacent timestamps, we add quitting events and split them into
//! multiple streams") extended to spatial jumps, which keeps every movement
//! representable in the reachability-constrained transition domain.
//!
//! **Storage.** A [`GriddedDataset`] is columnar: per-stream metadata lives
//! in parallel `ids`/`starts`/`offsets` columns and every cell of every
//! stream lives in one flat `cells` column, sliced per stream by
//! `offsets`. Consumers iterate through borrowed [`StreamView`]s — walking
//! a million-stream database touches three contiguous columns and performs
//! zero allocation. The synthesizer's release path and the I/O parser both
//! build the columns directly ([`GriddedDataset::from_columns`]), so
//! handing a finished database to the metrics suite never materializes one
//! `Vec` per stream; [`GriddedStream`] remains as the owned row type for
//! construction and tests.
//!
//! The dataset carries its discretization as a compiled shared
//! [`Topology`], so uniform grids, quad trees and future spaces all flow
//! through the same columns.

use crate::grid::CellId;
use crate::space::{Space, Topology};
use crate::stream::{DatasetStats, StreamDataset};
use std::sync::Arc;

/// An owned discretized stream: one cell per timestamp starting at
/// `start`. The construction/I-O currency; datasets store streams
/// columnar and iterate them as [`StreamView`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GriddedStream {
    /// Stream id, unique within a [`GriddedDataset`].
    pub id: u64,
    /// Entering timestamp.
    pub start: u64,
    /// One cell per timestamp `start, start+1, …`.
    pub cells: Vec<CellId>,
}

impl GriddedStream {
    /// Number of reported cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Streams are never empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Last active timestamp (inclusive).
    pub fn end(&self) -> u64 {
        self.start + self.cells.len() as u64 - 1
    }

    /// Whether the stream reports at `t`.
    pub fn active_at(&self, t: u64) -> bool {
        t >= self.start && t <= self.end()
    }

    /// Cell at timestamp `t`, if active.
    pub fn cell_at(&self, t: u64) -> Option<CellId> {
        if self.active_at(t) {
            Some(self.cells[(t - self.start) as usize])
        } else {
            None
        }
    }

    /// First (entering) cell.
    pub fn first_cell(&self) -> CellId {
        self.cells[0]
    }

    /// Last (quitting) cell.
    pub fn last_cell(&self) -> CellId {
        *self.cells.last().unwrap()
    }

    /// Travel distance in single-step hops (Chebyshev on uniform grids).
    pub fn hop_distance(&self, topology: &Topology) -> u64 {
        self.cells.windows(2).map(|w| topology.hop_distance(w[0], w[1])).sum()
    }

    /// Borrow this stream as a view.
    pub fn view(&self) -> StreamView<'_> {
        StreamView { id: self.id, start: self.start, cells: &self.cells }
    }
}

/// A borrowed view of one stream inside a [`GriddedDataset`] — the
/// iteration currency of every metric and release consumer. Views borrow
/// the dataset's columnar storage, so walking a database never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamView<'a> {
    /// Stream id, unique within the dataset.
    pub id: u64,
    /// Entering timestamp.
    pub start: u64,
    /// One cell per timestamp `start, start+1, …`.
    pub cells: &'a [CellId],
}

impl<'a> StreamView<'a> {
    /// Number of reported cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Streams are never empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Last active timestamp (inclusive).
    pub fn end(&self) -> u64 {
        self.start + self.cells.len() as u64 - 1
    }

    /// Whether the stream reports at `t`.
    pub fn active_at(&self, t: u64) -> bool {
        t >= self.start && t <= self.end()
    }

    /// Cell at timestamp `t`, if active.
    pub fn cell_at(&self, t: u64) -> Option<CellId> {
        if self.active_at(t) {
            Some(self.cells[(t - self.start) as usize])
        } else {
            None
        }
    }

    /// First (entering) cell.
    pub fn first_cell(&self) -> CellId {
        self.cells[0]
    }

    /// Last (quitting) cell.
    pub fn last_cell(&self) -> CellId {
        *self.cells.last().unwrap()
    }

    /// Travel distance in single-step hops (Chebyshev on uniform grids).
    pub fn hop_distance(&self, topology: &Topology) -> u64 {
        self.cells.windows(2).map(|w| topology.hop_distance(w[0], w[1])).sum()
    }

    /// An owned copy of this stream.
    pub fn to_owned(&self) -> GriddedStream {
        GriddedStream { id: self.id, start: self.start, cells: self.cells.to_vec() }
    }
}

/// A database of discretized streams sharing a topology, over
/// `0..horizon`.
///
/// Stored columnar: `ids`/`starts` hold per-stream metadata, `cells` holds
/// every cell of every stream back to back, and `offsets` (length
/// `num_streams + 1`) slices `cells` per stream.
#[derive(Debug, Clone, PartialEq)]
pub struct GriddedDataset {
    topology: Arc<Topology>,
    ids: Vec<u64>,
    starts: Vec<u64>,
    offsets: Vec<usize>,
    cells: Vec<CellId>,
    horizon: u64,
}

impl GriddedDataset {
    /// Assemble from owned pre-gridded streams (flattened into the columnar
    /// layout). Streams must already respect the space's adjacency; this is
    /// checked in debug builds.
    pub fn from_streams<S: Space>(space: S, streams: Vec<GriddedStream>, horizon: u64) -> Self {
        let total: usize = streams.iter().map(GriddedStream::len).sum();
        let mut ids = Vec::with_capacity(streams.len());
        let mut starts = Vec::with_capacity(streams.len());
        let mut offsets = Vec::with_capacity(streams.len() + 1);
        let mut cells = Vec::with_capacity(total);
        offsets.push(0);
        for s in streams {
            ids.push(s.id);
            starts.push(s.start);
            cells.extend_from_slice(&s.cells);
            offsets.push(cells.len());
        }
        Self::from_columns(space, ids, starts, offsets, cells, horizon)
    }

    /// Assemble directly from columnar storage — the synthesizer's
    /// zero-copy release path and the I/O parser's target:
    /// `offsets[i]..offsets[i+1]` bounds stream `i`'s cells inside the
    /// flat `cells` column. Adjacency and cell bounds are checked in debug
    /// builds; the offset structure and the horizon always.
    pub fn from_columns<S: Space>(
        space: S,
        ids: Vec<u64>,
        starts: Vec<u64>,
        offsets: Vec<usize>,
        cells: Vec<CellId>,
        horizon: u64,
    ) -> Self {
        let topology = space.compile_shared();
        assert_eq!(ids.len(), starts.len(), "column length mismatch");
        assert_eq!(offsets.len(), ids.len() + 1, "offsets must bound every stream");
        assert_eq!(*offsets.first().unwrap_or(&0), 0, "offsets must begin at 0");
        assert_eq!(*offsets.last().unwrap_or(&0), cells.len(), "offsets must end at cells.len()");
        assert!(offsets.windows(2).all(|w| w[0] < w[1]), "streams are non-empty and ordered");
        debug_assert!(cells.iter().all(|c| c.index() < topology.num_cells()));
        debug_assert!(offsets
            .windows(2)
            .all(|w| { cells[w[0]..w[1]].windows(2).all(|p| topology.are_adjacent(p[0], p[1])) }));
        let computed = starts
            .iter()
            .zip(offsets.windows(2))
            .map(|(&s, w)| s + (w[1] - w[0]) as u64)
            .max()
            .unwrap_or(0);
        assert!(horizon >= computed, "horizon {horizon} < last report {computed}");
        GriddedDataset { topology, ids, starts, offsets, cells, horizon }
    }

    /// Discretize a raw dataset against a space, splitting streams at
    /// non-adjacent cell jumps.
    pub fn from_dataset(dataset: &StreamDataset, space: &impl Space) -> Self {
        let topology = space.compile_shared();
        let mut ids = Vec::new();
        let mut starts = Vec::new();
        let mut offsets = vec![0usize];
        let mut cells: Vec<CellId> = Vec::new();
        let mut next_id = 0u64;
        let mut seg: Vec<CellId> = Vec::new();
        for traj in dataset.trajectories() {
            seg.clear();
            seg.extend(traj.points.iter().map(|p| topology.cell_of(p)));
            let mut seg_start_idx = 0usize;
            for i in 1..=seg.len() {
                let split = i == seg.len() || !topology.are_adjacent(seg[i - 1], seg[i]);
                if split {
                    ids.push(next_id);
                    starts.push(traj.start + seg_start_idx as u64);
                    cells.extend_from_slice(&seg[seg_start_idx..i]);
                    offsets.push(cells.len());
                    next_id += 1;
                    seg_start_idx = i;
                }
            }
        }
        GriddedDataset { topology, ids, starts, offsets, cells, horizon: dataset.horizon() }
    }

    /// The shared compiled topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.ids.len()
    }

    /// Whether the database holds no streams.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Borrowed view of stream `i` (release order).
    pub fn stream(&self, i: usize) -> StreamView<'_> {
        StreamView {
            id: self.ids[i],
            start: self.starts[i],
            cells: &self.cells[self.offsets[i]..self.offsets[i + 1]],
        }
    }

    /// Borrowed iteration over every stream, in release order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = StreamView<'_>> + Clone {
        (0..self.ids.len()).map(|i| self.stream(i))
    }

    /// Materialize every stream as an owned row (I/O and test helper; the
    /// hot paths iterate views instead).
    pub fn to_streams(&self) -> Vec<GriddedStream> {
        self.iter().map(|s| s.to_owned()).collect()
    }

    /// Number of timestamps.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Number of streams active at `t`.
    pub fn active_count(&self, t: u64) -> usize {
        self.starts
            .iter()
            .zip(self.offsets.windows(2))
            .filter(|(&s, w)| t >= s && t < s + (w[1] - w[0]) as u64)
            .count()
    }

    /// Per-cell occupancy counts at timestamp `t`.
    pub fn snapshot_counts(&self, t: u64) -> Vec<u64> {
        let mut counts = vec![0u64; self.topology.num_cells()];
        for (&start, w) in self.starts.iter().zip(self.offsets.windows(2)) {
            if t >= start && t < start + (w[1] - w[0]) as u64 {
                counts[self.cells[w[0] + (t - start) as usize].index()] += 1;
            }
        }
        counts
    }

    /// Per-cell visit counts aggregated over all timestamps.
    pub fn total_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.topology.num_cells()];
        for c in &self.cells {
            counts[c.index()] += 1;
        }
        counts
    }

    /// Table-I statistics of the discretized database.
    pub fn stats(&self) -> DatasetStats {
        let points = self.cells.len();
        let n = self.ids.len();
        DatasetStats {
            streams: n,
            points,
            avg_length: if n == 0 { 0.0 } else { points as f64 / n as f64 },
            timestamps: self.horizon,
        }
    }

    /// Mean stream length (the paper sets the termination factor λ to this).
    pub fn avg_length(&self) -> f64 {
        self.stats().avg_length
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::point::{BoundingBox, Point};
    use crate::space::QuadGrid;
    use crate::trajectory::Trajectory;

    #[test]
    fn adjacent_stream_stays_whole() {
        let grid = Grid::unit(4);
        // 0.1 -> cell x=0; 0.3 -> x=1; 0.6 -> x=2 : adjacent steps.
        let ds = StreamDataset::new(vec![Trajectory::new(
            0,
            2,
            vec![Point::new(0.1, 0.1), Point::new(0.3, 0.1), Point::new(0.6, 0.1)],
        )]);
        let g = ds.discretize(&grid);
        assert_eq!(g.num_streams(), 1);
        let s = g.stream(0);
        assert_eq!(s.start, 2);
        assert_eq!(s.cells, &[grid.cell_at(0, 0), grid.cell_at(1, 0), grid.cell_at(2, 0)]);
        assert_eq!(s.end(), 4);
        assert_eq!(s.first_cell(), grid.cell_at(0, 0));
        assert_eq!(s.last_cell(), grid.cell_at(2, 0));
    }

    #[test]
    fn jump_splits_stream() {
        let grid = Grid::unit(4);
        // x jumps from cell 0 to cell 3: Chebyshev 3 -> split.
        let ds = StreamDataset::new(vec![Trajectory::new(
            0,
            0,
            vec![Point::new(0.1, 0.1), Point::new(0.9, 0.1), Point::new(0.9, 0.3)],
        )]);
        let g = ds.discretize(&grid);
        assert_eq!(g.num_streams(), 2);
        assert_eq!(g.stream(0).len(), 1);
        assert_eq!(g.stream(1).len(), 2);
        assert_eq!(g.stream(1).start, 1);
        // Ids are unique.
        assert_ne!(g.stream(0).id, g.stream(1).id);
    }

    #[test]
    fn discretize_against_quad_space() {
        // Dense strip along the bottom; coarse elsewhere.
        let pts: Vec<Point> = (0..400).map(|i| Point::new((i % 40) as f64 / 40.0, 0.05)).collect();
        let quad = QuadGrid::fit(BoundingBox::unit(), &pts, 30, 3);
        let ds = StreamDataset::new(vec![Trajectory::new(
            0,
            0,
            vec![Point::new(0.1, 0.05), Point::new(0.12, 0.05), Point::new(0.9, 0.9)],
        )]);
        let g = ds.discretize(&quad);
        assert_eq!(g.topology().num_cells(), quad.num_leaves());
        // Every stored step respects the compiled adjacency.
        for s in g.iter() {
            for w in s.cells.windows(2) {
                assert!(g.topology().are_adjacent(w[0], w[1]));
            }
        }
    }

    #[test]
    fn snapshot_and_total_counts() {
        let grid = Grid::unit(2);
        let ds = StreamDataset::new(vec![
            Trajectory::new(0, 0, vec![Point::new(0.2, 0.2), Point::new(0.2, 0.2)]),
            Trajectory::new(1, 1, vec![Point::new(0.8, 0.8)]),
        ]);
        let g = ds.discretize(&grid);
        let snap0 = g.snapshot_counts(0);
        assert_eq!(snap0[grid.cell_at(0, 0).index()], 1);
        assert_eq!(snap0.iter().sum::<u64>(), 1);
        let snap1 = g.snapshot_counts(1);
        assert_eq!(snap1.iter().sum::<u64>(), 2);
        let totals = g.total_counts();
        assert_eq!(totals[grid.cell_at(0, 0).index()], 2);
        assert_eq!(totals[grid.cell_at(1, 1).index()], 1);
        assert_eq!(g.active_count(1), 2);
    }

    #[test]
    fn hop_distance() {
        let grid = Grid::unit(5);
        let topo = crate::space::Space::compile(&grid);
        let s = GriddedStream {
            id: 0,
            start: 0,
            cells: vec![grid.cell_at(0, 0), grid.cell_at(1, 1), grid.cell_at(1, 2)],
        };
        assert_eq!(s.hop_distance(&topo), 2);
        assert_eq!(s.view().hop_distance(&topo), 2);
    }

    #[test]
    fn stats_of_discretized() {
        let grid = Grid::unit(4);
        let ds = StreamDataset::new(vec![Trajectory::new(
            0,
            0,
            vec![Point::new(0.1, 0.1), Point::new(0.9, 0.1)],
        )]);
        let g = ds.discretize(&grid);
        let s = g.stats();
        assert_eq!(s.streams, 2); // split by the jump
        assert_eq!(s.points, 2);
        assert!((g.avg_length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_streams_roundtrip() {
        let grid = Grid::unit(3);
        let streams = vec![GriddedStream {
            id: 0,
            start: 1,
            cells: vec![grid.cell_at(0, 0), grid.cell_at(1, 0)],
        }];
        let g = GriddedDataset::from_streams(grid.clone(), streams.clone(), 5);
        assert_eq!(g.horizon(), 5);
        assert_eq!(g.num_streams(), 1);
        assert_eq!(g.stream(0).cell_at(2), Some(grid.cell_at(1, 0)));
        assert_eq!(g.stream(0).cell_at(0), None);
        // Views round-trip to the owned rows they were built from.
        assert_eq!(g.to_streams(), streams);
    }

    #[test]
    fn from_columns_matches_from_streams() {
        let grid = Grid::unit(3);
        let streams = vec![
            GriddedStream { id: 4, start: 0, cells: vec![grid.cell_at(0, 0), grid.cell_at(1, 1)] },
            GriddedStream { id: 7, start: 2, cells: vec![grid.cell_at(2, 2)] },
        ];
        let a = GriddedDataset::from_streams(grid.clone(), streams, 4);
        let b = GriddedDataset::from_columns(
            grid.clone(),
            vec![4, 7],
            vec![0, 2],
            vec![0, 2, 3],
            vec![grid.cell_at(0, 0), grid.cell_at(1, 1), grid.cell_at(2, 2)],
            4,
        );
        assert_eq!(a, b);
        assert!(a.iter().eq(b.iter()));
    }

    #[test]
    #[should_panic(expected = "offsets must end")]
    fn from_columns_rejects_ragged_offsets() {
        let grid = Grid::unit(2);
        let _ = GriddedDataset::from_columns(
            grid.clone(),
            vec![0],
            vec![0],
            vec![0, 2],
            vec![grid.cell_at(0, 0)],
            3,
        );
    }
}
