//! Discretized trajectory streams — the representation every mechanism and
//! metric operates on.
//!
//! Discretization maps each continuous location to its grid cell and then
//! *splits* any stream whose consecutive cells are not grid-adjacent. This
//! mirrors the paper's preprocessing ("For trajectories including
//! non-adjacent timestamps, we add quitting events and split them into
//! multiple streams") extended to spatial jumps, which keeps every movement
//! representable in the reachability-constrained transition domain.

use crate::grid::{CellId, Grid};
use crate::stream::{DatasetStats, StreamDataset};

/// A discretized stream: one grid cell per timestamp starting at `start`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GriddedStream {
    /// Stream id, unique within a [`GriddedDataset`].
    pub id: u64,
    /// Entering timestamp.
    pub start: u64,
    /// One cell per timestamp `start, start+1, …`.
    pub cells: Vec<CellId>,
}

impl GriddedStream {
    /// Number of reported cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Streams are never empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Last active timestamp (inclusive).
    pub fn end(&self) -> u64 {
        self.start + self.cells.len() as u64 - 1
    }

    /// Whether the stream reports at `t`.
    pub fn active_at(&self, t: u64) -> bool {
        t >= self.start && t <= self.end()
    }

    /// Cell at timestamp `t`, if active.
    pub fn cell_at(&self, t: u64) -> Option<CellId> {
        if self.active_at(t) {
            Some(self.cells[(t - self.start) as usize])
        } else {
            None
        }
    }

    /// First (entering) cell.
    pub fn first_cell(&self) -> CellId {
        self.cells[0]
    }

    /// Last (quitting) cell.
    pub fn last_cell(&self) -> CellId {
        *self.cells.last().unwrap()
    }

    /// Travel distance in grid hops (Chebyshev per step).
    pub fn hop_distance(&self, grid: &Grid) -> u64 {
        self.cells.windows(2).map(|w| grid.chebyshev(w[0], w[1]) as u64).sum()
    }
}

/// A database of discretized streams sharing a grid, over `0..horizon`.
#[derive(Debug, Clone)]
pub struct GriddedDataset {
    grid: Grid,
    streams: Vec<GriddedStream>,
    horizon: u64,
}

impl GriddedDataset {
    /// Assemble from pre-gridded streams (used by the synthesizer). Streams
    /// must already respect grid adjacency; this is checked in debug builds.
    pub fn from_streams(grid: Grid, streams: Vec<GriddedStream>, horizon: u64) -> Self {
        debug_assert!(streams.iter().all(|s| {
            s.cells.windows(2).all(|w| grid.are_adjacent(w[0], w[1]))
                && s.cells.iter().all(|c| c.index() < grid.num_cells())
        }));
        let computed = streams.iter().map(|s| s.end() + 1).max().unwrap_or(0);
        assert!(horizon >= computed, "horizon {horizon} < last report {computed}");
        GriddedDataset { grid, streams, horizon }
    }

    /// Discretize a raw dataset against `grid`, splitting streams at
    /// non-adjacent cell jumps.
    pub fn from_dataset(dataset: &StreamDataset, grid: &Grid) -> Self {
        let mut streams = Vec::with_capacity(dataset.trajectories().len());
        let mut next_id = 0u64;
        for traj in dataset.trajectories() {
            let cells: Vec<CellId> = traj.points.iter().map(|p| grid.cell_of(p)).collect();
            let mut seg_start_idx = 0usize;
            for i in 1..=cells.len() {
                let split = i == cells.len() || !grid.are_adjacent(cells[i - 1], cells[i]);
                if split {
                    streams.push(GriddedStream {
                        id: next_id,
                        start: traj.start + seg_start_idx as u64,
                        cells: cells[seg_start_idx..i].to_vec(),
                    });
                    next_id += 1;
                    seg_start_idx = i;
                }
            }
        }
        GriddedDataset { grid: grid.clone(), streams, horizon: dataset.horizon() }
    }

    /// The shared grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// All streams.
    pub fn streams(&self) -> &[GriddedStream] {
        &self.streams
    }

    /// Number of timestamps.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Number of streams active at `t`.
    pub fn active_count(&self, t: u64) -> usize {
        self.streams.iter().filter(|s| s.active_at(t)).count()
    }

    /// Per-cell occupancy counts at timestamp `t`.
    pub fn snapshot_counts(&self, t: u64) -> Vec<u64> {
        let mut counts = vec![0u64; self.grid.num_cells()];
        for s in &self.streams {
            if let Some(c) = s.cell_at(t) {
                counts[c.index()] += 1;
            }
        }
        counts
    }

    /// Per-cell visit counts aggregated over all timestamps.
    pub fn total_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.grid.num_cells()];
        for s in &self.streams {
            for c in &s.cells {
                counts[c.index()] += 1;
            }
        }
        counts
    }

    /// Table-I statistics of the discretized database.
    pub fn stats(&self) -> DatasetStats {
        let points: usize = self.streams.iter().map(GriddedStream::len).sum();
        let n = self.streams.len();
        DatasetStats {
            streams: n,
            points,
            avg_length: if n == 0 { 0.0 } else { points as f64 / n as f64 },
            timestamps: self.horizon,
        }
    }

    /// Mean stream length (the paper sets the termination factor λ to this).
    pub fn avg_length(&self) -> f64 {
        self.stats().avg_length
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::trajectory::Trajectory;

    #[test]
    fn adjacent_stream_stays_whole() {
        let grid = Grid::unit(4);
        // 0.1 -> cell x=0; 0.3 -> x=1; 0.6 -> x=2 : adjacent steps.
        let ds = StreamDataset::new(vec![Trajectory::new(
            0,
            2,
            vec![Point::new(0.1, 0.1), Point::new(0.3, 0.1), Point::new(0.6, 0.1)],
        )]);
        let g = ds.discretize(&grid);
        assert_eq!(g.streams().len(), 1);
        let s = &g.streams()[0];
        assert_eq!(s.start, 2);
        assert_eq!(s.cells, vec![grid.cell_at(0, 0), grid.cell_at(1, 0), grid.cell_at(2, 0)]);
        assert_eq!(s.end(), 4);
        assert_eq!(s.first_cell(), grid.cell_at(0, 0));
        assert_eq!(s.last_cell(), grid.cell_at(2, 0));
    }

    #[test]
    fn jump_splits_stream() {
        let grid = Grid::unit(4);
        // x jumps from cell 0 to cell 3: Chebyshev 3 -> split.
        let ds = StreamDataset::new(vec![Trajectory::new(
            0,
            0,
            vec![Point::new(0.1, 0.1), Point::new(0.9, 0.1), Point::new(0.9, 0.3)],
        )]);
        let g = ds.discretize(&grid);
        assert_eq!(g.streams().len(), 2);
        assert_eq!(g.streams()[0].cells.len(), 1);
        assert_eq!(g.streams()[1].cells.len(), 2);
        assert_eq!(g.streams()[1].start, 1);
        // Ids are unique.
        assert_ne!(g.streams()[0].id, g.streams()[1].id);
    }

    #[test]
    fn snapshot_and_total_counts() {
        let grid = Grid::unit(2);
        let ds = StreamDataset::new(vec![
            Trajectory::new(0, 0, vec![Point::new(0.2, 0.2), Point::new(0.2, 0.2)]),
            Trajectory::new(1, 1, vec![Point::new(0.8, 0.8)]),
        ]);
        let g = ds.discretize(&grid);
        let snap0 = g.snapshot_counts(0);
        assert_eq!(snap0[grid.cell_at(0, 0).index()], 1);
        assert_eq!(snap0.iter().sum::<u64>(), 1);
        let snap1 = g.snapshot_counts(1);
        assert_eq!(snap1.iter().sum::<u64>(), 2);
        let totals = g.total_counts();
        assert_eq!(totals[grid.cell_at(0, 0).index()], 2);
        assert_eq!(totals[grid.cell_at(1, 1).index()], 1);
        assert_eq!(g.active_count(1), 2);
    }

    #[test]
    fn hop_distance() {
        let grid = Grid::unit(5);
        let s = GriddedStream {
            id: 0,
            start: 0,
            cells: vec![grid.cell_at(0, 0), grid.cell_at(1, 1), grid.cell_at(1, 2)],
        };
        assert_eq!(s.hop_distance(&grid), 2);
    }

    #[test]
    fn stats_of_discretized() {
        let grid = Grid::unit(4);
        let ds = StreamDataset::new(vec![Trajectory::new(
            0,
            0,
            vec![Point::new(0.1, 0.1), Point::new(0.9, 0.1)],
        )]);
        let g = ds.discretize(&grid);
        let s = g.stats();
        assert_eq!(s.streams, 2); // split by the jump
        assert_eq!(s.points, 2);
        assert!((g.avg_length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_streams_roundtrip() {
        let grid = Grid::unit(3);
        let streams = vec![GriddedStream {
            id: 0,
            start: 1,
            cells: vec![grid.cell_at(0, 0), grid.cell_at(1, 0)],
        }];
        let g = GriddedDataset::from_streams(grid, streams, 5);
        assert_eq!(g.horizon(), 5);
        assert_eq!(g.streams().len(), 1);
        assert_eq!(g.streams()[0].cell_at(2), Some(g.grid().cell_at(1, 0)));
        assert_eq!(g.streams()[0].cell_at(0), None);
    }
}
