//! Raw (continuous-space) trajectory streams.

use crate::point::Point;

/// One user's trajectory stream `T^o_i = {l_t | t = a_i, a_i+1, …}`
/// (Definition 4): a run of consecutive timestamps starting at `start`,
/// with one continuous location per timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Owning user id (several streams may share a user after splitting).
    pub user: u64,
    /// Entering timestamp `a_i`.
    pub start: u64,
    /// One location per timestamp `start, start+1, …`.
    pub points: Vec<Point>,
}

impl Trajectory {
    /// Create a trajectory; must contain at least one point.
    pub fn new(user: u64, start: u64, points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "trajectory must have at least one point");
        Trajectory { user, start, points }
    }

    /// Number of reported locations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Trajectories are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Last timestamp with a location (inclusive).
    pub fn end(&self) -> u64 {
        self.start + self.points.len() as u64 - 1
    }

    /// Whether the stream reports at timestamp `t`.
    pub fn active_at(&self, t: u64) -> bool {
        t >= self.start && t <= self.end()
    }

    /// Location at timestamp `t`, if active.
    pub fn point_at(&self, t: u64) -> Option<&Point> {
        if self.active_at(t) {
            Some(&self.points[(t - self.start) as usize])
        } else {
            None
        }
    }

    /// Total Euclidean travel distance.
    pub fn travel_distance(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(&w[1])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::new(
            3,
            10,
            vec![Point::new(0.0, 0.0), Point::new(0.0, 1.0), Point::new(1.0, 1.0)],
        )
    }

    #[test]
    fn bounds_and_activity() {
        let t = traj();
        assert_eq!(t.len(), 3);
        assert_eq!(t.end(), 12);
        assert!(!t.active_at(9));
        assert!(t.active_at(10));
        assert!(t.active_at(12));
        assert!(!t.active_at(13));
    }

    #[test]
    fn point_lookup() {
        let t = traj();
        assert_eq!(t.point_at(11), Some(&Point::new(0.0, 1.0)));
        assert_eq!(t.point_at(13), None);
        assert_eq!(t.point_at(0), None);
    }

    #[test]
    fn travel_distance_sums_segments() {
        let t = traj();
        assert!((t.travel_distance() - 2.0).abs() < 1e-12);
        let single = Trajectory::new(0, 0, vec![Point::new(0.5, 0.5)]);
        assert_eq!(single.travel_distance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_rejected() {
        let _ = Trajectory::new(0, 0, vec![]);
    }
}
