//! Per-timestamp transition events derived from a gridded database.
//!
//! At each timestamp every participating stream holds exactly one
//! [`TransitionState`] (① in the paper's Fig. 2):
//!
//! - at its entering timestamp `a`: `Enter(c_a)`;
//! - at `a < t ≤ end`: `Move(c_{t−1}, c_t)`;
//! - at `end + 1` (if within the horizon): the final farewell report
//!   `Quit(c_end)` — "the cessation of a user's reporting activity, with the
//!   final reported location being c_j" (Definition 5). Without this report
//!   the quitting distribution `Q` would be unlearnable.

use crate::gridded::GriddedDataset;
use crate::transition::TransitionState;

/// One stream's transition state at a specific timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserEvent {
    /// Reporting stream id (the paper's "user"; split streams report as
    /// independent units).
    pub user: u64,
    /// The state held at this timestamp.
    pub state: TransitionState,
}

/// All transition events of a gridded database, indexed by timestamp.
#[derive(Debug, Clone)]
pub struct EventTimeline {
    events: Vec<Vec<UserEvent>>,
}

impl EventTimeline {
    /// Derive the timeline from a gridded database.
    pub fn build(dataset: &GriddedDataset) -> Self {
        let horizon = dataset.horizon() as usize;
        let mut events: Vec<Vec<UserEvent>> = vec![Vec::new(); horizon];
        for s in dataset.iter() {
            let id = s.id;
            // Enter at start.
            if (s.start as usize) < horizon {
                events[s.start as usize]
                    .push(UserEvent { user: id, state: TransitionState::Enter(s.cells[0]) });
            }
            // Moves.
            for (i, w) in s.cells.windows(2).enumerate() {
                let t = s.start as usize + i + 1;
                if t < horizon {
                    events[t].push(UserEvent {
                        user: id,
                        state: TransitionState::Move { from: w[0], to: w[1] },
                    });
                }
            }
            // Farewell quit one step after the end, if the stream does not
            // survive to the end of the horizon.
            let quit_t = s.end() + 1;
            if (quit_t as usize) < horizon {
                events[quit_t as usize]
                    .push(UserEvent { user: id, state: TransitionState::Quit(s.last_cell()) });
            }
        }
        EventTimeline { events }
    }

    /// Events at timestamp `t` (empty slice beyond the horizon).
    pub fn at(&self, t: u64) -> &[UserEvent] {
        self.events.get(t as usize).map_or(&[], Vec::as_slice)
    }

    /// Number of timestamps.
    pub fn horizon(&self) -> u64 {
        self.events.len() as u64
    }

    /// Total number of events across all timestamps.
    pub fn total_events(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::gridded::{GriddedDataset, GriddedStream};

    fn dataset() -> GriddedDataset {
        let grid = Grid::unit(3);
        let streams = vec![
            // Active at t=1..3, quits -> farewell at t=4.
            GriddedStream {
                id: 0,
                start: 1,
                cells: vec![grid.cell_at(0, 0), grid.cell_at(1, 0), grid.cell_at(1, 1)],
            },
            // Active at t=4 only (horizon 5): farewell would be at 5 — out.
            GriddedStream { id: 1, start: 4, cells: vec![grid.cell_at(2, 2)] },
        ];
        GriddedDataset::from_streams(grid, streams, 5)
    }

    #[test]
    fn enter_move_quit_sequence() {
        let ds = dataset();
        let grid = Grid::unit(3);
        let tl = EventTimeline::build(&ds);
        assert_eq!(tl.horizon(), 5);
        assert!(tl.at(0).is_empty());
        assert_eq!(
            tl.at(1),
            &[UserEvent { user: 0, state: TransitionState::Enter(grid.cell_at(0, 0)) }]
        );
        assert_eq!(
            tl.at(2),
            &[UserEvent {
                user: 0,
                state: TransitionState::Move { from: grid.cell_at(0, 0), to: grid.cell_at(1, 0) },
            }]
        );
        assert_eq!(
            tl.at(3),
            &[UserEvent {
                user: 0,
                state: TransitionState::Move { from: grid.cell_at(1, 0), to: grid.cell_at(1, 1) },
            }]
        );
        // t=4: stream 0's farewell quit + stream 1's enter.
        let at4 = tl.at(4);
        assert_eq!(at4.len(), 2);
        assert!(
            at4.contains(&UserEvent { user: 0, state: TransitionState::Quit(grid.cell_at(1, 1)) })
        );
        assert!(
            at4.contains(&UserEvent { user: 1, state: TransitionState::Enter(grid.cell_at(2, 2)) })
        );
    }

    #[test]
    fn stream_surviving_to_horizon_has_no_quit() {
        let ds = dataset();
        let tl = EventTimeline::build(&ds);
        let quits: usize = (0..5)
            .flat_map(|t| tl.at(t))
            .filter(|e| matches!(e.state, TransitionState::Quit(_)))
            .count();
        assert_eq!(quits, 1); // only stream 0 quits inside the horizon
    }

    #[test]
    fn event_counts() {
        let ds = dataset();
        let tl = EventTimeline::build(&ds);
        // Stream 0: enter + 2 moves + quit = 4; stream 1: enter = 1.
        assert_eq!(tl.total_events(), 5);
        // One state per stream per timestamp.
        for t in 0..5 {
            let mut users: Vec<u64> = tl.at(t).iter().map(|e| e.user).collect();
            users.sort_unstable();
            users.dedup();
            assert_eq!(users.len(), tl.at(t).len());
        }
    }

    #[test]
    fn beyond_horizon_is_empty() {
        let ds = dataset();
        let tl = EventTimeline::build(&ds);
        assert!(tl.at(99).is_empty());
    }
}
