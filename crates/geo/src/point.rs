//! Continuous 2-D points and bounding boxes.

/// A location in continuous two-dimensional space (`l_t = (x_t, y_t)` in
/// Definition 4).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl BoundingBox {
    /// Construct a bounding box; panics if the corners are inverted.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(min.x < max.x && min.y < max.y, "degenerate bounding box {min:?}..{max:?}");
        BoundingBox { min, max }
    }

    /// The unit square `[0,1] × [0,1]`.
    pub fn unit() -> Self {
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    /// Width of the box.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the box.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Whether the point lies within the closed box.
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamp a point into the closed box.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.min.x, self.max.x), p.y.clamp(self.min.y, self.max.y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn bbox_contains_and_clamp() {
        let bb = BoundingBox::unit();
        assert!(bb.contains(&Point::new(0.5, 0.5)));
        assert!(bb.contains(&Point::new(0.0, 1.0)));
        assert!(!bb.contains(&Point::new(1.1, 0.5)));
        let c = bb.clamp(Point::new(-0.5, 2.0));
        assert_eq!(c, Point::new(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn bbox_rejects_inverted() {
        let _ = BoundingBox::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }

    #[test]
    fn bbox_dimensions() {
        let bb = BoundingBox::new(Point::new(-2.0, 1.0), Point::new(4.0, 3.0));
        assert!((bb.width() - 6.0).abs() < 1e-12);
        assert!((bb.height() - 2.0).abs() < 1e-12);
    }
}
