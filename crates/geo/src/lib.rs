//! Geospatial substrate for RetraSyn.
//!
//! Implements the discretization and stream machinery from §II-C/§III-B of
//! the paper:
//!
//! - [`Point`] / [`BoundingBox`]: continuous two-dimensional locations.
//! - [`Grid`]: the uniform K×K discretization with 8-adjacency (plus self)
//!   reachability.
//! - [`Trajectory`] / [`StreamDataset`]: raw continuous trajectory streams,
//!   each entering at its own timestamp (`a_i` in Definition 4).
//! - [`GriddedStream`] / [`GriddedDataset`]: the discretized view on which
//!   every mechanism and metric operates. Discretization splits streams at
//!   non-adjacent cell jumps (mirroring the paper's handling of non-adjacent
//!   timestamps: "we add quitting events and split them into multiple
//!   streams").
//! - [`TransitionState`] / [`TransitionTable`]: the reachability-constrained
//!   transition domain `S = {m_ij} ∪ {e_i} ∪ {q_j}` of size `O(9|C|)`
//!   (§III-B), with a dense bijective index used by the frequency oracle.
//! - [`EventTimeline`]: per-timestamp user transition states, including the
//!   final `Quit` farewell report one step after a stream's last location.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod gridded;
pub mod io;
pub mod point;
pub mod space;
pub mod stream;
pub mod timeline;
pub mod trajectory;
pub mod transition;

pub use grid::{CellId, Grid, Neighborhood};
pub use gridded::{GriddedDataset, GriddedStream, StreamView};
pub use point::{BoundingBox, Point};
pub use space::{QuadGrid, QuadLeaf, Space, SpaceDescriptor, Topology, UniformGrid};
pub use stream::{DatasetStats, StreamDataset};
pub use timeline::{EventTimeline, UserEvent};
pub use trajectory::Trajectory;
pub use transition::{TransitionState, TransitionTable};
