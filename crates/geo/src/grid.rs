//! The uniform K×K grid discretization (§III-B, "Geospatial
//! Discretization") and its reachability structure.
//!
//! Reachability follows the paper: between two consecutive timestamps a
//! user can only move between *adjacent* cells (Chebyshev distance ≤ 1),
//! including staying in place, so each cell has at most 9 reachable
//! successors and the movement state space shrinks from `|C|²` to
//! `O(9|C|)`.

use crate::point::{BoundingBox, Point};

/// Identifier of a cell in a dense cell universe.
///
/// For a uniform grid this is the row-major index `y·K + x`; adaptive
/// topologies assign ids in their own canonical order. `u32` leaves
/// headroom for fine adaptive discretizations that overflow `u16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// The dense index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A uniform K×K grid over a bounding box.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    k: u16,
    bbox: BoundingBox,
}

/// The (at most 9) cells adjacent to a cell, including itself, in ascending
/// index order.
#[derive(Debug, Clone, Copy)]
pub struct Neighborhood {
    cells: [CellId; 9],
    len: u8,
}

impl Neighborhood {
    /// Neighbor cells as a slice (ascending cell index).
    pub fn as_slice(&self) -> &[CellId] {
        &self.cells[..self.len as usize]
    }

    /// Number of neighbors (4 for corners, 6 for edges, 9 for interior —
    /// self included).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the neighborhood is empty (never, for a valid grid).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `c` belongs to the neighborhood.
    pub fn contains(&self, c: CellId) -> bool {
        self.as_slice().contains(&c)
    }
}

impl<'a> IntoIterator for &'a Neighborhood {
    type Item = CellId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, CellId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

impl Grid {
    /// Grid with `k × k` cells over `bbox`. `k` must be at least 1 (any
    /// `u16` granularity keeps the cell universe within `u32`).
    pub fn new(k: u16, bbox: BoundingBox) -> Self {
        assert!(k >= 1, "grid granularity k={k} out of range [1, 65535]");
        Grid { k, bbox }
    }

    /// Grid over the unit square.
    pub fn unit(k: u16) -> Self {
        Grid::new(k, BoundingBox::unit())
    }

    /// Discretization granularity K.
    #[inline]
    pub fn k(&self) -> u16 {
        self.k
    }

    /// The covered bounding box.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Total number of cells `|C| = K²`.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.k as usize * self.k as usize
    }

    /// Cell containing point `p` (points outside the box are clamped in).
    pub fn cell_of(&self, p: &Point) -> CellId {
        let p = self.bbox.clamp(*p);
        let fx = (p.x - self.bbox.min.x) / self.bbox.width();
        let fy = (p.y - self.bbox.min.y) / self.bbox.height();
        let x = ((fx * self.k as f64) as u16).min(self.k - 1);
        let y = ((fy * self.k as f64) as u16).min(self.k - 1);
        self.cell_at(x, y)
    }

    /// Cell at grid coordinates `(x, y)`.
    #[inline]
    pub fn cell_at(&self, x: u16, y: u16) -> CellId {
        debug_assert!(x < self.k && y < self.k);
        CellId(y as u32 * self.k as u32 + x as u32)
    }

    /// Grid coordinates `(x, y)` of a cell.
    #[inline]
    pub fn cell_xy(&self, c: CellId) -> (u16, u16) {
        debug_assert!(c.index() < self.num_cells());
        ((c.0 % self.k as u32) as u16, (c.0 / self.k as u32) as u16)
    }

    /// Continuous center point of a cell.
    pub fn center(&self, c: CellId) -> Point {
        let (x, y) = self.cell_xy(c);
        Point::new(
            self.bbox.min.x + (x as f64 + 0.5) / self.k as f64 * self.bbox.width(),
            self.bbox.min.y + (y as f64 + 0.5) / self.k as f64 * self.bbox.height(),
        )
    }

    /// Uniformly random point inside a cell.
    pub fn random_point_in<R: rand::Rng + ?Sized>(&self, c: CellId, rng: &mut R) -> Point {
        let (x, y) = self.cell_xy(c);
        let cw = self.bbox.width() / self.k as f64;
        let ch = self.bbox.height() / self.k as f64;
        Point::new(
            self.bbox.min.x + (x as f64 + rng.random::<f64>()) * cw,
            self.bbox.min.y + (y as f64 + rng.random::<f64>()) * ch,
        )
    }

    /// The neighborhood `N(c)` (adjacent cells including `c` itself, the
    /// paper's reachability constraint), in ascending index order.
    pub fn neighbors(&self, c: CellId) -> Neighborhood {
        let (cx, cy) = self.cell_xy(c);
        let mut cells = [CellId(0); 9];
        let mut len = 0u8;
        // y-major ascending scan yields ascending indices.
        for dy in -1i32..=1 {
            let y = cy as i32 + dy;
            if y < 0 || y >= self.k as i32 {
                continue;
            }
            for dx in -1i32..=1 {
                let x = cx as i32 + dx;
                if x < 0 || x >= self.k as i32 {
                    continue;
                }
                cells[len as usize] = self.cell_at(x as u16, y as u16);
                len += 1;
            }
        }
        Neighborhood { cells, len }
    }

    /// Whether two cells are adjacent (Chebyshev distance ≤ 1; a cell is
    /// adjacent to itself).
    pub fn are_adjacent(&self, a: CellId, b: CellId) -> bool {
        let (ax, ay) = self.cell_xy(a);
        let (bx, by) = self.cell_xy(b);
        ax.abs_diff(bx) <= 1 && ay.abs_diff(by) <= 1
    }

    /// Iterator over all cells in index order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        (0..self.num_cells() as u32).map(CellId)
    }

    /// Chebyshev (grid-hop) distance between two cells.
    pub fn chebyshev(&self, a: CellId, b: CellId) -> u16 {
        let (ax, ay) = self.cell_xy(a);
        let (bx, by) = self.cell_xy(b);
        ax.abs_diff(bx).max(ay.abs_diff(by))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_of_corners_and_interior() {
        let g = Grid::unit(4);
        assert_eq!(g.cell_of(&Point::new(0.0, 0.0)), CellId(0));
        // Max corner clamps into the last cell.
        assert_eq!(g.cell_of(&Point::new(1.0, 1.0)), CellId(15));
        assert_eq!(g.cell_of(&Point::new(0.3, 0.6)), g.cell_at(1, 2));
        // Out-of-box points clamp.
        assert_eq!(g.cell_of(&Point::new(-5.0, 9.0)), g.cell_at(0, 3));
    }

    #[test]
    fn xy_roundtrip() {
        let g = Grid::unit(7);
        for c in g.cells() {
            let (x, y) = g.cell_xy(c);
            assert_eq!(g.cell_at(x, y), c);
        }
    }

    #[test]
    fn center_maps_back_to_cell() {
        let g = Grid::new(9, BoundingBox::new(Point::new(-3.0, 2.0), Point::new(5.0, 10.0)));
        for c in g.cells() {
            assert_eq!(g.cell_of(&g.center(c)), c);
        }
    }

    #[test]
    fn neighborhood_sizes() {
        let g = Grid::unit(5);
        // Corner: 4 neighbors (itself + 3).
        assert_eq!(g.neighbors(g.cell_at(0, 0)).len(), 4);
        // Edge: 6.
        assert_eq!(g.neighbors(g.cell_at(2, 0)).len(), 6);
        // Interior: 9.
        assert_eq!(g.neighbors(g.cell_at(2, 2)).len(), 9);
        // k = 1: single cell, neighborhood is itself.
        let g1 = Grid::unit(1);
        assert_eq!(g1.neighbors(CellId(0)).len(), 1);
    }

    #[test]
    fn neighborhood_sorted_and_contains_self() {
        let g = Grid::unit(6);
        for c in g.cells() {
            let n = g.neighbors(c);
            assert!(n.contains(c));
            assert!(!n.is_empty());
            let s = n.as_slice();
            for w in s.windows(2) {
                assert!(w[0] < w[1], "not sorted at {c:?}");
            }
        }
    }

    #[test]
    fn adjacency_symmetry_matches_neighborhood() {
        let g = Grid::unit(4);
        for a in g.cells() {
            for b in g.cells() {
                let adj = g.are_adjacent(a, b);
                assert_eq!(adj, g.are_adjacent(b, a));
                assert_eq!(adj, g.neighbors(a).contains(b));
            }
        }
    }

    #[test]
    fn k2_all_cells_mutually_adjacent() {
        let g = Grid::unit(2);
        for a in g.cells() {
            for b in g.cells() {
                assert!(g.are_adjacent(a, b));
            }
        }
    }

    #[test]
    fn chebyshev_distance() {
        let g = Grid::unit(10);
        assert_eq!(g.chebyshev(g.cell_at(0, 0), g.cell_at(3, 5)), 5);
        assert_eq!(g.chebyshev(g.cell_at(4, 4), g.cell_at(4, 4)), 0);
    }

    #[test]
    fn random_point_lands_in_cell() {
        use rand::{rngs::StdRng, SeedableRng};
        let g = Grid::unit(8);
        let mut rng = StdRng::seed_from_u64(1);
        for c in g.cells() {
            for _ in 0..5 {
                let p = g.random_point_in(c, &mut rng);
                assert_eq!(g.cell_of(&p), c);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_zero_rejected() {
        let _ = Grid::unit(0);
    }
}
