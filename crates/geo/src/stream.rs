//! Collections of raw trajectory streams (the original database `T_orig`).

use crate::grid::Grid;
use crate::gridded::GriddedDataset;
use crate::point::Point;
use crate::space::Space;
use crate::trajectory::Trajectory;

/// The original stream database `T_orig` (Definition 4): a set of trajectory
/// streams over a common discrete time axis `0..horizon`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDataset {
    trajectories: Vec<Trajectory>,
    horizon: u64,
}

/// Summary statistics in the shape of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of streams ("Size" in Table I).
    pub streams: usize,
    /// Total number of reported locations ("# of Points").
    pub points: usize,
    /// Mean stream length ("Average Length").
    pub avg_length: f64,
    /// Number of timestamps.
    pub timestamps: u64,
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "streams={} points={} avg_length={:.2} timestamps={}",
            self.streams, self.points, self.avg_length, self.timestamps
        )
    }
}

impl StreamDataset {
    /// Build a dataset; the horizon is one past the last reported timestamp.
    pub fn new(trajectories: Vec<Trajectory>) -> Self {
        let horizon = trajectories.iter().map(|t| t.end() + 1).max().unwrap_or(0);
        StreamDataset { trajectories, horizon }
    }

    /// Build with an explicit horizon (≥ the computed one) so datasets with
    /// trailing empty timestamps compare cleanly.
    pub fn with_horizon(trajectories: Vec<Trajectory>, horizon: u64) -> Self {
        let computed = trajectories.iter().map(|t| t.end() + 1).max().unwrap_or(0);
        assert!(horizon >= computed, "horizon {horizon} < last report {computed}");
        StreamDataset { trajectories, horizon }
    }

    /// The streams.
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// Number of timestamps (timestamps run `0..horizon`).
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Locations of all streams active at timestamp `t`.
    pub fn active_points(&self, t: u64) -> impl Iterator<Item = (&Trajectory, &Point)> {
        self.trajectories.iter().filter_map(move |tr| tr.point_at(t).map(|p| (tr, p)))
    }

    /// Number of streams active at `t`.
    pub fn active_count(&self, t: u64) -> usize {
        self.trajectories.iter().filter(|tr| tr.active_at(t)).count()
    }

    /// Table-I style statistics. (`avg_length` counts raw stream lengths;
    /// gap/jump splitting is applied later by [`Self::discretize`].)
    pub fn stats(&self, _grid: &Grid) -> DatasetStats {
        let points: usize = self.trajectories.iter().map(Trajectory::len).sum();
        let streams = self.trajectories.len();
        DatasetStats {
            streams,
            points,
            avg_length: if streams == 0 { 0.0 } else { points as f64 / streams as f64 },
            timestamps: self.horizon,
        }
    }

    /// Discretize all streams against any space (a grid, a quad tree, a
    /// compiled topology), splitting at non-adjacent cell jumps (see
    /// [`GriddedDataset::from_dataset`]).
    pub fn discretize(&self, space: &impl Space) -> GriddedDataset {
        GriddedDataset::from_dataset(self, space)
    }

    /// Keep a deterministic fraction of the streams (every ⌈1/fraction⌉-th
    /// stream), preserving the horizon. Used by the scalability experiment
    /// (Fig. 7), which varies dataset size at fixed time span.
    pub fn subsample(&self, fraction: f64) -> StreamDataset {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        if fraction >= 1.0 {
            return self.clone();
        }
        let keep_every = (1.0 / fraction).round().max(1.0) as usize;
        let trajectories: Vec<Trajectory> = self
            .trajectories
            .iter()
            .enumerate()
            .filter(|(i, _)| i % keep_every == 0)
            .map(|(_, t)| t.clone())
            .collect();
        StreamDataset { trajectories, horizon: self.horizon }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make() -> StreamDataset {
        StreamDataset::new(vec![
            Trajectory::new(0, 0, vec![Point::new(0.1, 0.1), Point::new(0.2, 0.1)]),
            Trajectory::new(1, 1, vec![Point::new(0.9, 0.9)]),
            Trajectory::new(2, 3, vec![Point::new(0.5, 0.5), Point::new(0.5, 0.6)]),
        ])
    }

    #[test]
    fn horizon_is_one_past_last_report() {
        let ds = make();
        assert_eq!(ds.horizon(), 5);
    }

    #[test]
    fn active_counts() {
        let ds = make();
        assert_eq!(ds.active_count(0), 1);
        assert_eq!(ds.active_count(1), 2);
        assert_eq!(ds.active_count(2), 0);
        assert_eq!(ds.active_count(3), 1);
        assert_eq!(ds.active_count(4), 1);
    }

    #[test]
    fn active_points_yields_locations() {
        let ds = make();
        let pts: Vec<_> = ds.active_points(1).collect();
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn stats_match_contents() {
        let ds = make();
        let s = ds.stats(&Grid::unit(4));
        assert_eq!(s.streams, 3);
        assert_eq!(s.points, 5);
        assert!((s.avg_length - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.timestamps, 5);
        assert!(s.to_string().contains("streams=3"));
    }

    #[test]
    fn with_horizon_extends() {
        let ds = StreamDataset::with_horizon(
            vec![Trajectory::new(0, 0, vec![Point::new(0.0, 0.0)])],
            10,
        );
        assert_eq!(ds.horizon(), 10);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn with_horizon_too_small_rejected() {
        let _ = StreamDataset::with_horizon(
            vec![Trajectory::new(0, 0, vec![Point::new(0.0, 0.0), Point::new(0.0, 0.0)])],
            1,
        );
    }

    #[test]
    fn subsample_keeps_fraction() {
        let trajs: Vec<Trajectory> =
            (0..100).map(|i| Trajectory::new(i, 0, vec![Point::new(0.5, 0.5)])).collect();
        let ds = StreamDataset::new(trajs);
        let half = ds.subsample(0.5);
        assert_eq!(half.trajectories().len(), 50);
        assert_eq!(half.horizon(), ds.horizon());
        let fifth = ds.subsample(0.2);
        assert_eq!(fifth.trajectories().len(), 20);
        let all = ds.subsample(1.0);
        assert_eq!(all.trajectories().len(), 100);
    }

    #[test]
    fn empty_dataset() {
        let ds = StreamDataset::new(vec![]);
        assert_eq!(ds.horizon(), 0);
        let s = ds.stats(&Grid::unit(2));
        assert_eq!(s.streams, 0);
        assert_eq!(s.avg_length, 0.0);
    }
}
