//! Pluggable discretization: compile any space into a flat [`Topology`].
//!
//! The paper fixes a uniform K×K grid (§III-B). Everything downstream of
//! discretization, though, only ever needs four facts about the space:
//! how many cells there are, which cells are adjacent (the reachability
//! constraint), which cell contains a point, and what continuous region a
//! cell covers. A [`Space`] is anything that can *compile* those facts
//! into a [`Topology`] — a dense cell universe plus a CSR adjacency — and
//! the rest of the system (transition domain, sampler tables, metrics,
//! I/O) is driven entirely by the compiled tables.
//!
//! Two compilers ship today:
//!
//! - [`UniformGrid`] (and [`Grid`] itself): the paper's K×K grid. The
//!   compiled adjacency reproduces the legacy row-major indexing and
//!   y-major ascending neighbor order bit for bit.
//! - [`QuadGrid`]: a density-adaptive quad tree in the PrivTrace style —
//!   cells split while their (public / first-round) population estimate
//!   exceeds a threshold, so the space stays coarse where data is thin and
//!   refines where it is dense. Adjacency is Chebyshev-style: two leaves
//!   are adjacent when their closed squares touch (corners included), so
//!   leaves of different depths interconnect correctly.
//!
//! A road network is just a third compiler: nodes or segments become
//! cells, graph edges become the CSR rows.

use crate::grid::{CellId, Grid};
use crate::point::{BoundingBox, Point};
use std::sync::Arc;

/// Deepest supported quad-tree refinement (`4^12` ≈ 16.7M leaves — far
/// past what a `u32` cell universe needs headroom for).
pub const MAX_QUAD_DEPTH: u8 = 12;

/// A discretization of continuous space that can be compiled into a flat
/// [`Topology`].
///
/// Implementors describe the space; [`Space::compile`] lowers it into the
/// dense table form every downstream consumer operates on. Compiling is
/// deterministic: the same space always yields the same cell numbering
/// and adjacency.
pub trait Space {
    /// Compile this space into its table-driven topology.
    fn compile(&self) -> Topology;

    /// Compile into a shared handle. Spaces that already *are* compiled
    /// (a [`Topology`] behind an `Arc`) override this to avoid cloning
    /// the tables.
    fn compile_shared(&self) -> Arc<Topology> {
        Arc::new(self.compile())
    }
}

impl<S: Space + ?Sized> Space for &S {
    fn compile(&self) -> Topology {
        (**self).compile()
    }

    fn compile_shared(&self) -> Arc<Topology> {
        (**self).compile_shared()
    }
}

impl Space for Topology {
    fn compile(&self) -> Topology {
        self.clone()
    }
}

impl Space for Arc<Topology> {
    fn compile(&self) -> Topology {
        (**self).clone()
    }

    fn compile_shared(&self) -> Arc<Topology> {
        Arc::clone(self)
    }
}

impl Space for Grid {
    fn compile(&self) -> Topology {
        UniformGrid::new(self.k() as u32, *self.bbox()).compile()
    }
}

/// Compact, comparable description of how a [`Topology`] was built.
///
/// Two topologies are equal exactly when their descriptors are equal (the
/// compiled tables are a pure function of the descriptor), so sessions,
/// WAL fingerprints and dataset headers carry the descriptor rather than
/// the tables.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceDescriptor {
    /// A uniform K×K grid over a bounding box.
    Uniform {
        /// Grid granularity K.
        k: u32,
        /// Covered bounding box.
        bbox: BoundingBox,
    },
    /// An adaptive quad tree over a bounding box.
    Quad {
        /// Covered bounding box.
        bbox: BoundingBox,
        /// Maximum refinement depth D (leaf coordinates are expressed in
        /// `2^D × 2^D` integer units).
        depth: u8,
        /// The leaves, in canonical `(y, x)` order.
        leaves: Vec<QuadLeaf>,
    },
}

/// One quad-tree leaf: an axis-aligned square anchored at `(x, y)` in
/// max-depth integer units (`2^D` units per bbox side), covering
/// `2^(D − depth)` units per side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadLeaf {
    /// Anchor column in max-depth units (a multiple of the leaf side).
    pub x: u32,
    /// Anchor row in max-depth units (a multiple of the leaf side).
    pub y: u32,
    /// Depth of this leaf (0 = the whole box, D = finest).
    pub depth: u8,
}

impl QuadLeaf {
    /// Side length in max-depth units within a tree of depth `max_depth`.
    #[inline]
    pub fn side(&self, max_depth: u8) -> u32 {
        1u32 << (max_depth - self.depth)
    }
}

/// Point→cell lookup strategy of a compiled topology.
#[derive(Debug, Clone)]
enum Locator {
    /// Row-major arithmetic, identical to [`Grid::cell_of`].
    Uniform { k: u32 },
    /// Bit-walk descent through the quad tree. `nodes[i][q]` is either a
    /// leaf id (`>= 0`) or the negated index of the child node (`< 0`);
    /// empty means the tree is the single root leaf.
    Quad { depth: u8, nodes: Vec<[i64; 4]> },
}

/// A discretization compiled to flat tables: the dense cell universe,
/// per-cell geometry, a CSR adjacency, and a point locator.
///
/// Cell ids are dense (`0..num_cells`). Adjacency rows are ascending and
/// always include the cell itself — the paper's reachability constraint
/// generalized beyond the 3×3 window.
#[derive(Debug, Clone)]
pub struct Topology {
    descriptor: SpaceDescriptor,
    bbox: BoundingBox,
    rects: Vec<BoundingBox>,
    adj_offsets: Vec<u32>,
    adj: Vec<CellId>,
    locator: Locator,
}

impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        // Tables are a pure function of the descriptor.
        self.descriptor == other.descriptor
    }
}

impl Topology {
    /// How this topology was built.
    #[inline]
    pub fn descriptor(&self) -> &SpaceDescriptor {
        &self.descriptor
    }

    /// The covered bounding box.
    #[inline]
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Number of cells in the dense universe.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.rects.len()
    }

    /// The continuous region cell `c` covers. Cells tile the bounding box
    /// exactly (shared edges repeat between neighbors).
    #[inline]
    pub fn cell_rect(&self, c: CellId) -> &BoundingBox {
        &self.rects[c.index()]
    }

    /// Continuous center point of a cell.
    pub fn center(&self, c: CellId) -> Point {
        let r = self.cell_rect(c);
        Point::new((r.min.x + r.max.x) * 0.5, (r.min.y + r.max.y) * 0.5)
    }

    /// Uniformly random point inside a cell (two `f64` draws: x then y).
    pub fn random_point_in<R: rand::Rng + ?Sized>(&self, c: CellId, rng: &mut R) -> Point {
        let r = self.cell_rect(c);
        Point::new(
            r.min.x + rng.random::<f64>() * r.width(),
            r.min.y + rng.random::<f64>() * r.height(),
        )
    }

    /// Cell containing point `p` (points outside the box are clamped in).
    pub fn cell_of(&self, p: &Point) -> CellId {
        match self.locator {
            Locator::Uniform { k } => {
                let p = self.bbox.clamp(*p);
                let fx = (p.x - self.bbox.min.x) / self.bbox.width();
                let fy = (p.y - self.bbox.min.y) / self.bbox.height();
                let x = ((fx * k as f64) as u32).min(k - 1);
                let y = ((fy * k as f64) as u32).min(k - 1);
                CellId(y * k + x)
            }
            Locator::Quad { depth, ref nodes } => {
                if nodes.is_empty() {
                    return CellId(0);
                }
                let side = 1u32 << depth;
                let p = self.bbox.clamp(*p);
                let fx = (p.x - self.bbox.min.x) / self.bbox.width();
                let fy = (p.y - self.bbox.min.y) / self.bbox.height();
                let ux = ((fx * side as f64) as u32).min(side - 1);
                let uy = ((fy * side as f64) as u32).min(side - 1);
                let mut node = 0usize;
                let mut level = 0u8;
                loop {
                    let shift = depth - 1 - level;
                    let q = ((((uy >> shift) & 1) << 1) | ((ux >> shift) & 1)) as usize;
                    match nodes[node][q] {
                        v if v >= 0 => return CellId(v as u32),
                        v => {
                            node = (-v) as usize;
                            level += 1;
                        }
                    }
                }
            }
        }
    }

    /// The adjacency row `N(c)`: every cell reachable from `c` in one
    /// step, ascending, `c` itself included.
    #[inline]
    pub fn neighbors(&self, c: CellId) -> &[CellId] {
        let i = c.index();
        &self.adj[self.adj_offsets[i] as usize..self.adj_offsets[i + 1] as usize]
    }

    /// Whether two cells are adjacent (a cell is adjacent to itself).
    #[inline]
    pub fn are_adjacent(&self, a: CellId, b: CellId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// CSR row offsets of the adjacency: row `i` spans
    /// `csr_offsets()[i]..csr_offsets()[i+1]` inside [`Self::csr_targets`].
    #[inline]
    pub fn csr_offsets(&self) -> &[u32] {
        &self.adj_offsets
    }

    /// Concatenated adjacency rows (ascending within each row).
    #[inline]
    pub fn csr_targets(&self) -> &[CellId] {
        &self.adj
    }

    /// Iterator over all cells in dense order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        (0..self.num_cells() as u32).map(CellId)
    }

    /// Minimum number of single-step transitions between two cells.
    ///
    /// Uniform topologies answer in O(1) (Chebyshev distance); other
    /// topologies answer adjacent pairs in O(log deg) and fall back to a
    /// breadth-first search (returns `u64::MAX` if disconnected). Stream
    /// consumers only ever ask about consecutive — hence adjacent — cells,
    /// so the fallback stays off the hot paths.
    pub fn hop_distance(&self, a: CellId, b: CellId) -> u64 {
        if a == b {
            return 0;
        }
        if let Locator::Uniform { k } = self.locator {
            let (ax, ay) = (a.0 % k, a.0 / k);
            let (bx, by) = (b.0 % k, b.0 / k);
            return ax.abs_diff(bx).max(ay.abs_diff(by)) as u64;
        }
        if self.are_adjacent(a, b) {
            return 1;
        }
        // BFS over the CSR rows.
        let mut dist = vec![u64::MAX; self.num_cells()];
        let mut queue = std::collections::VecDeque::new();
        dist[a.index()] = 0;
        queue.push_back(a);
        while let Some(c) = queue.pop_front() {
            let d = dist[c.index()];
            for &n in self.neighbors(c) {
                if dist[n.index()] == u64::MAX {
                    if n == b {
                        return d + 1;
                    }
                    dist[n.index()] = d + 1;
                    queue.push_back(n);
                }
            }
        }
        u64::MAX
    }

    /// The grid granularity K, when this topology is a uniform grid.
    pub fn uniform_k(&self) -> Option<u32> {
        match self.descriptor {
            SpaceDescriptor::Uniform { k, .. } => Some(k),
            SpaceDescriptor::Quad { .. } => None,
        }
    }
}

/// Exact tiling rect for the span `[lo, hi]` out of `total` integer units
/// along each axis: interior edges come from the subdivision arithmetic,
/// outer edges reuse the bbox bounds so the tiles cover it exactly.
fn unit_rect(bbox: &BoundingBox, lo: (u32, u32), hi: (u32, u32), total: u32) -> BoundingBox {
    let edge = |frac_num: u32, min: f64, max: f64| -> f64 {
        if frac_num == 0 {
            min
        } else if frac_num == total {
            max
        } else {
            min + frac_num as f64 / total as f64 * (max - min)
        }
    };
    BoundingBox::new(
        Point::new(edge(lo.0, bbox.min.x, bbox.max.x), edge(lo.1, bbox.min.y, bbox.max.y)),
        Point::new(edge(hi.0, bbox.min.x, bbox.max.x), edge(hi.1, bbox.min.y, bbox.max.y)),
    )
}

/// The paper's uniform K×K grid as a [`Space`] compiler.
///
/// Compiles to the exact legacy layout: row-major cell ids (`y·K + x`)
/// and y-major ascending adjacency rows, so uniform topologies are
/// drop-in bit-compatible with [`Grid`] arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformGrid {
    k: u32,
    bbox: BoundingBox,
}

impl UniformGrid {
    /// A K×K grid over `bbox`; `k` must be in `[1, 65535]` so the cell
    /// universe fits `u32`.
    pub fn new(k: u32, bbox: BoundingBox) -> Self {
        assert!((1..=65535).contains(&k), "grid granularity k={k} out of range [1, 65535]");
        UniformGrid { k, bbox }
    }

    /// A K×K grid over the unit square.
    pub fn unit(k: u32) -> Self {
        UniformGrid::new(k, BoundingBox::unit())
    }

    /// Grid granularity K.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The covered bounding box.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }
}

impl Space for UniformGrid {
    fn compile(&self) -> Topology {
        let k = self.k;
        let n = k as usize * k as usize;
        let mut rects = Vec::with_capacity(n);
        let mut adj_offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(n.saturating_mul(9));
        adj_offsets.push(0u32);
        for y in 0..k {
            for x in 0..k {
                rects.push(unit_rect(&self.bbox, (x, y), (x + 1, y + 1), k));
                // Same y-major ascending scan as the legacy
                // `Grid::neighbors`: yields ascending dense indices.
                for dy in -1i64..=1 {
                    let ny = y as i64 + dy;
                    if ny < 0 || ny >= k as i64 {
                        continue;
                    }
                    for dx in -1i64..=1 {
                        let nx = x as i64 + dx;
                        if nx < 0 || nx >= k as i64 {
                            continue;
                        }
                        adj.push(CellId(ny as u32 * k + nx as u32));
                    }
                }
                adj_offsets.push(adj.len() as u32);
            }
        }
        Topology {
            descriptor: SpaceDescriptor::Uniform { k, bbox: self.bbox },
            bbox: self.bbox,
            rects,
            adj_offsets,
            adj,
            locator: Locator::Uniform { k },
        }
    }
}

/// A density-adaptive quad-tree space (PrivTrace-style).
///
/// Built by [`QuadGrid::fit`] from a public (or first-round, privately
/// estimated) point sample: every region holding more than
/// `max_leaf_population` sample points splits into four quadrants, down
/// to `max_depth`. Dense areas get fine cells, sparse areas stay coarse,
/// so the transition domain — and with it the LDP budget split across
/// states — scales with where the data actually is.
#[derive(Debug, Clone, PartialEq)]
pub struct QuadGrid {
    bbox: BoundingBox,
    depth: u8,
    leaves: Vec<QuadLeaf>,
}

impl QuadGrid {
    /// Fit a quad tree to a point sample: split every region whose sample
    /// population exceeds `max_leaf_population` (≥ 1), down to
    /// `max_depth` (≤ [`MAX_QUAD_DEPTH`]).
    pub fn fit(
        bbox: BoundingBox,
        points: &[Point],
        max_leaf_population: usize,
        max_depth: u8,
    ) -> Self {
        assert!(max_depth <= MAX_QUAD_DEPTH, "max_depth {max_depth} > {MAX_QUAD_DEPTH}");
        assert!(max_leaf_population >= 1, "max_leaf_population must be >= 1");
        let side = 1u32 << max_depth;
        let mut coords: Vec<(u32, u32)> = points
            .iter()
            .map(|p| {
                let p = bbox.clamp(*p);
                let fx = (p.x - bbox.min.x) / bbox.width();
                let fy = (p.y - bbox.min.y) / bbox.height();
                (
                    ((fx * side as f64) as u32).min(side - 1),
                    ((fy * side as f64) as u32).min(side - 1),
                )
            })
            .collect();
        let mut leaves = Vec::new();
        split_region(&mut coords, 0, 0, 0, max_depth, max_leaf_population, &mut leaves);
        leaves.sort_unstable_by_key(|l| (l.y, l.x));
        QuadGrid { bbox, depth: max_depth, leaves }
    }

    /// Rebuild from an explicit leaf set (I/O round-trips). Leaves are
    /// canonicalized to `(y, x)` order; panics unless they tile the box
    /// exactly.
    pub fn from_leaves(bbox: BoundingBox, depth: u8, leaves: Vec<QuadLeaf>) -> Self {
        Self::try_from_leaves(bbox, depth, leaves).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::from_leaves`] for untrusted input
    /// (e.g. parsed files): returns a description of the defect instead
    /// of panicking.
    pub fn try_from_leaves(
        bbox: BoundingBox,
        depth: u8,
        mut leaves: Vec<QuadLeaf>,
    ) -> Result<Self, String> {
        if depth > MAX_QUAD_DEPTH {
            return Err(format!("quad depth {depth} > {MAX_QUAD_DEPTH}"));
        }
        leaves.sort_unstable_by_key(|l| (l.y, l.x));
        // Validates tiling and overlap as a side effect.
        build_quad_nodes(depth, &leaves)?;
        Ok(QuadGrid { bbox, depth, leaves })
    }

    /// The covered bounding box.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Maximum refinement depth D.
    #[inline]
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// The leaves in canonical `(y, x)` order — leaf `i` compiles to cell
    /// id `i`.
    pub fn leaves(&self) -> &[QuadLeaf] {
        &self.leaves
    }

    /// Number of leaves (= compiled cells).
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }
}

/// Recursively split the region anchored at `(x, y)` (depth `d`, in
/// max-depth units) while it over-populates, pushing finished leaves.
fn split_region(
    pts: &mut [(u32, u32)],
    x: u32,
    y: u32,
    d: u8,
    max_depth: u8,
    cap: usize,
    out: &mut Vec<QuadLeaf>,
) {
    if d == max_depth || pts.len() <= cap {
        out.push(QuadLeaf { x, y, depth: d });
        return;
    }
    let half = 1u32 << (max_depth - d - 1);
    let (mid_x, mid_y) = (x + half, y + half);
    let split = partition(pts, |&(_, py)| py < mid_y);
    let (low, high) = pts.split_at_mut(split);
    let lx = partition(low, |&(px, _)| px < mid_x);
    let hx = partition(high, |&(px, _)| px < mid_x);
    let (ll, lr) = low.split_at_mut(lx);
    let (hl, hr) = high.split_at_mut(hx);
    split_region(ll, x, y, d + 1, max_depth, cap, out);
    split_region(lr, mid_x, y, d + 1, max_depth, cap, out);
    split_region(hl, x, mid_y, d + 1, max_depth, cap, out);
    split_region(hr, mid_x, mid_y, d + 1, max_depth, cap, out);
}

/// In-place unstable partition: true-elements first, returns their count.
fn partition<T, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut i = 0;
    for j in 0..xs.len() {
        if pred(&xs[j]) {
            xs.swap(i, j);
            i += 1;
        }
    }
    i
}

/// Build the locator node table for a leaf set, reporting overlap,
/// misalignment, or incomplete tiling.
fn build_quad_nodes(depth: u8, leaves: &[QuadLeaf]) -> Result<Vec<[i64; 4]>, String> {
    const EMPTY: i64 = i64::MIN;
    if leaves.is_empty() {
        return Err("quad tree must have at least one leaf".into());
    }
    if leaves.len() == 1 {
        let l = leaves[0];
        if l.depth != 0 || l.x != 0 || l.y != 0 {
            return Err("a single quad leaf must cover the whole box".into());
        }
        return Ok(Vec::new());
    }
    let total = 1u32 << depth;
    let mut nodes: Vec<[i64; 4]> = vec![[EMPTY; 4]];
    for (id, l) in leaves.iter().enumerate() {
        if !(1..=depth).contains(&l.depth) {
            return Err(format!("quad leaf depth {} out of range [1, {depth}]", l.depth));
        }
        let side = l.side(depth);
        if l.x % side != 0 || l.y % side != 0 || l.x + side > total || l.y + side > total {
            return Err(format!(
                "quad leaf ({}, {}, d{}) misaligned for depth {depth}",
                l.x, l.y, l.depth
            ));
        }
        let mut node = 0usize;
        for level in 0..l.depth {
            let shift = depth - 1 - level;
            let q = (((((l.y >> shift) & 1) << 1) | ((l.x >> shift) & 1)) & 0b11) as usize;
            if level + 1 == l.depth {
                if nodes[node][q] != EMPTY {
                    return Err("quad leaves overlap".into());
                }
                nodes[node][q] = id as i64;
            } else {
                node = match nodes[node][q] {
                    EMPTY => {
                        nodes.push([EMPTY; 4]);
                        let next = nodes.len() - 1;
                        nodes[node][q] = -(next as i64);
                        next
                    }
                    v if v < 0 => (-v) as usize,
                    _ => return Err("quad leaves overlap".into()),
                };
            }
        }
    }
    for slots in &nodes {
        for &s in slots {
            if s == EMPTY {
                return Err("quad leaves do not tile the space".into());
            }
        }
    }
    Ok(nodes)
}

impl Space for QuadGrid {
    fn compile(&self) -> Topology {
        let depth = self.depth;
        let total = 1u32 << depth;
        let n = self.leaves.len();
        let nodes =
            build_quad_nodes(depth, &self.leaves).expect("leaf set was validated at construction");
        let mut rects = Vec::with_capacity(n);
        for l in &self.leaves {
            let s = l.side(depth);
            rects.push(unit_rect(&self.bbox, (l.x, l.y), (l.x + s, l.y + s), total));
        }
        // Closed squares that touch (corners included) are adjacent —
        // Chebyshev adjacency generalized across depths. O(L²) build.
        let mut adj_offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::new();
        adj_offsets.push(0u32);
        for a in &self.leaves {
            let sa = a.side(depth);
            for (j, b) in self.leaves.iter().enumerate() {
                let sb = b.side(depth);
                if a.x <= b.x + sb && b.x <= a.x + sa && a.y <= b.y + sb && b.y <= a.y + sa {
                    adj.push(CellId(j as u32));
                }
            }
            adj_offsets.push(adj.len() as u32);
        }
        Topology {
            descriptor: SpaceDescriptor::Quad {
                bbox: self.bbox,
                depth,
                leaves: self.leaves.clone(),
            },
            bbox: self.bbox,
            rects,
            adj_offsets,
            adj,
            locator: Locator::Quad { depth, nodes },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_legacy_grid() {
        for k in [1u16, 2, 3, 5, 8] {
            let grid = Grid::unit(k);
            let topo = grid.compile();
            assert_eq!(topo.num_cells(), grid.num_cells());
            for c in grid.cells() {
                assert_eq!(topo.neighbors(c), grid.neighbors(c).as_slice(), "k={k} cell {c:?}");
            }
        }
    }

    #[test]
    fn uniform_locator_matches_grid_cell_of() {
        let bbox = BoundingBox::new(Point::new(-2.0, 1.0), Point::new(3.0, 4.0));
        let grid = Grid::new(7, bbox);
        let topo = grid.compile();
        for i in 0..200 {
            let p = Point::new(-2.5 + i as f64 * 0.03, 0.5 + i as f64 * 0.02);
            assert_eq!(topo.cell_of(&p), grid.cell_of(&p), "point {p:?}");
        }
    }

    #[test]
    fn uniform_rects_tile_and_locate() {
        let topo = UniformGrid::unit(4).compile();
        for c in topo.cells() {
            assert_eq!(topo.cell_of(&topo.center(c)), c);
        }
        assert_eq!(topo.cell_rect(CellId(0)).min, Point::new(0.0, 0.0));
        assert_eq!(topo.cell_rect(CellId(15)).max, Point::new(1.0, 1.0));
        assert_eq!(topo.uniform_k(), Some(4));
    }

    #[test]
    fn quad_uniform_point_sample_refines_evenly() {
        // A dense uniform sample forces the split all the way down.
        let pts: Vec<Point> = (0..64)
            .flat_map(|i| (0..64).map(move |j| Point::new(i as f64 / 64.0, j as f64 / 64.0)))
            .collect();
        let quad = QuadGrid::fit(BoundingBox::unit(), &pts, 100, 3);
        // 4096 points, cap 100: depth-2 regions hold 256 (> 100, split),
        // depth-3 leaves hold 64 each.
        assert_eq!(quad.num_leaves(), 64);
        let topo = quad.compile();
        assert_eq!(topo.num_cells(), 64);
        assert!(topo.uniform_k().is_none());
    }

    #[test]
    fn quad_skew_refines_only_dense_corner() {
        // All mass in the lower-left corner: that quadrant refines, the
        // rest stays coarse.
        let pts: Vec<Point> = (0..1000).map(|i| Point::new(i as f64 * 1e-5, 0.001)).collect();
        let quad = QuadGrid::fit(BoundingBox::unit(), &pts, 10, 4);
        let topo = quad.compile();
        assert!(topo.num_cells() < 256, "skewed fit should stay far below 4^4");
        // Coarse top-right leaf exists at depth 1.
        let tr = topo.cell_of(&Point::new(0.9, 0.9));
        let r = topo.cell_rect(tr);
        assert!(r.width() >= 0.5 - 1e-12);
    }

    #[test]
    fn quad_adjacency_symmetric_self_inclusive_sorted() {
        let pts: Vec<Point> = (0..500)
            .map(|i| Point::new((i as f64 * 0.37) % 0.3, (i as f64 * 0.11) % 1.0))
            .collect();
        let topo = QuadGrid::fit(BoundingBox::unit(), &pts, 20, 4).compile();
        for a in topo.cells() {
            let row = topo.neighbors(a);
            assert!(row.binary_search(&a).is_ok(), "row must include self");
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row must ascend");
            for &b in row {
                assert!(topo.are_adjacent(b, a), "adjacency must be symmetric");
            }
        }
    }

    #[test]
    fn quad_point_lookup_total_and_consistent() {
        let pts: Vec<Point> =
            (0..300).map(|i| Point::new((i % 17) as f64 / 17.0, (i % 13) as f64 / 13.0)).collect();
        let topo = QuadGrid::fit(BoundingBox::unit(), &pts, 25, 5).compile();
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(i as f64 / 39.0, j as f64 / 39.0);
                let c = topo.cell_of(&p);
                assert!(c.index() < topo.num_cells());
                assert!(topo.cell_rect(c).contains(&p), "point {p:?} outside its cell rect");
            }
        }
    }

    #[test]
    fn quad_single_leaf_space() {
        let quad = QuadGrid::fit(BoundingBox::unit(), &[], 5, 4);
        assert_eq!(quad.num_leaves(), 1);
        let topo = quad.compile();
        assert_eq!(topo.num_cells(), 1);
        assert_eq!(topo.cell_of(&Point::new(0.3, 0.8)), CellId(0));
        assert_eq!(topo.neighbors(CellId(0)), &[CellId(0)]);
    }

    #[test]
    fn from_leaves_roundtrip() {
        let pts: Vec<Point> = (0..200).map(|i| Point::new((i as f64 * 0.013) % 1.0, 0.2)).collect();
        let quad = QuadGrid::fit(BoundingBox::unit(), &pts, 15, 3);
        let rebuilt = QuadGrid::from_leaves(*quad.bbox(), quad.depth(), quad.leaves().to_vec());
        assert_eq!(quad, rebuilt);
        assert_eq!(quad.compile(), rebuilt.compile());
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn from_leaves_rejects_holes() {
        // Only three quadrants of the unit square.
        let leaves = vec![
            QuadLeaf { x: 0, y: 0, depth: 1 },
            QuadLeaf { x: 1, y: 0, depth: 1 },
            QuadLeaf { x: 0, y: 1, depth: 1 },
        ];
        let _ = QuadGrid::from_leaves(BoundingBox::unit(), 1, leaves);
    }

    #[test]
    fn hop_distance_uniform_and_quad() {
        let topo = UniformGrid::unit(6).compile();
        assert_eq!(topo.hop_distance(CellId(0), CellId(0)), 0);
        assert_eq!(topo.hop_distance(CellId(0), CellId(7)), 1);
        // (0,0) -> (5,3): Chebyshev 5.
        assert_eq!(topo.hop_distance(CellId(0), CellId(3 * 6 + 5)), 5);

        let pts: Vec<Point> = (0..400).map(|i| Point::new((i % 20) as f64 / 20.0, 0.1)).collect();
        let qt = QuadGrid::fit(BoundingBox::unit(), &pts, 30, 3).compile();
        let a = qt.cell_of(&Point::new(0.05, 0.05));
        let b = qt.cell_of(&Point::new(0.95, 0.95));
        let d = qt.hop_distance(a, b);
        assert!(d >= 1 && d != u64::MAX);
        assert_eq!(qt.hop_distance(a, a), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn uniform_zero_rejected() {
        let _ = UniformGrid::unit(0);
    }
}
