//! Property-based tests for the geospatial substrate.

use proptest::prelude::*;
use retrasyn_geo::{
    BoundingBox, EventTimeline, Grid, GriddedDataset, GriddedStream, Point, QuadGrid, Space,
    StreamDataset, Trajectory, TransitionState, TransitionTable,
};

proptest! {
    /// Every point in the box maps to a valid cell, and the cell's center
    /// maps back to the same cell.
    #[test]
    fn cell_of_always_valid(k in 1u16..=32, x in 0.0f64..1.0, y in 0.0f64..1.0) {
        let g = Grid::unit(k);
        let c = g.cell_of(&Point::new(x, y));
        prop_assert!(c.index() < g.num_cells());
        prop_assert_eq!(g.cell_of(&g.center(c)), c);
    }

    /// Out-of-box points clamp to valid cells.
    #[test]
    fn cell_of_clamps(k in 1u16..=16, x in -10.0f64..10.0, y in -10.0f64..10.0) {
        let g = Grid::unit(k);
        prop_assert!(g.cell_of(&Point::new(x, y)).index() < g.num_cells());
    }

    /// Adjacency is symmetric and reflexive; neighborhoods agree with it.
    #[test]
    fn adjacency_properties(k in 1u16..=12, a in 0usize..144, b in 0usize..144) {
        let g = Grid::unit(k);
        let n = g.num_cells();
        let a = retrasyn_geo::CellId((a % n) as u32);
        let b = retrasyn_geo::CellId((b % n) as u32);
        prop_assert!(g.are_adjacent(a, a));
        prop_assert_eq!(g.are_adjacent(a, b), g.are_adjacent(b, a));
        prop_assert_eq!(g.are_adjacent(a, b), g.neighbors(a).contains(b));
    }

    /// The transition index is a bijection over the whole domain.
    #[test]
    fn transition_index_bijection(k in 1u16..=10) {
        let g = Grid::unit(k);
        let t = TransitionTable::new(&g);
        for idx in 0..t.len() {
            prop_assert_eq!(t.index_of(t.state_of(idx)), Some(idx));
        }
    }

    /// Domain size formula: moves + 2|C|, with moves <= 9|C|.
    #[test]
    fn transition_domain_size(k in 1u16..=16) {
        let g = Grid::unit(k);
        let t = TransitionTable::new(&g);
        prop_assert_eq!(t.len(), t.num_moves() + 2 * g.num_cells());
        prop_assert!(t.num_moves() <= 9 * g.num_cells());
        // Lower bound: every cell at least reaches itself... and for k >= 2
        // at least 4 cells (2x2 block).
        let min_block = if k == 1 { 1 } else { 4 };
        prop_assert!(t.num_moves() >= min_block * g.num_cells());
    }

    /// Discretization splits produce only adjacency-respecting segments, and
    /// segment cells/points are conserved.
    #[test]
    fn discretize_preserves_points(
        k in 2u16..=8,
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..40),
        start in 0u64..10,
    ) {
        let g = Grid::unit(k);
        let points: Vec<Point> = seed_pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let ds = StreamDataset::new(vec![Trajectory::new(0, start, points.clone())]);
        let gd = ds.discretize(&g);
        // Total cells = total raw points.
        let total: usize = gd.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, points.len());
        // Segments respect adjacency and tile the time axis contiguously.
        let mut expected_next = start;
        for s in gd.iter() {
            prop_assert_eq!(s.start, expected_next);
            for w in s.cells.windows(2) {
                prop_assert!(g.are_adjacent(w[0], w[1]));
            }
            expected_next = s.end() + 1;
        }
    }

    /// Timeline events per stream: 1 enter + (len−1) moves + at most 1 quit;
    /// every move is adjacent; every event indexes into the domain.
    #[test]
    fn timeline_event_structure(
        k in 2u16..=6,
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..30),
    ) {
        let g = Grid::unit(k);
        let points: Vec<Point> = seed_pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let n_points = points.len();
        let ds = StreamDataset::new(vec![Trajectory::new(0, 0, points)]);
        let gd = ds.discretize(&g);
        let table = TransitionTable::new(&g);
        let tl = EventTimeline::build(&gd);
        let mut enters = 0usize;
        let mut moves = 0usize;
        let mut quits = 0usize;
        for t in 0..tl.horizon() {
            for e in tl.at(t) {
                prop_assert!(table.index_of(e.state).is_some());
                match e.state {
                    TransitionState::Enter(_) => enters += 1,
                    TransitionState::Move { .. } => moves += 1,
                    TransitionState::Quit(_) => quits += 1,
                }
            }
        }
        let segs = gd.num_streams();
        prop_assert_eq!(enters, segs);
        prop_assert_eq!(moves, n_points - segs);
        // The final segment survives to the horizon (no quit recorded);
        // all earlier segments quit.
        prop_assert_eq!(quits, segs - 1);
    }

    /// The arena-backed columnar constructor is equivalent to flattening
    /// owned rows: building a dataset via `from_columns` yields exactly the
    /// same views, owned round-trips, and aggregate counts as
    /// `from_streams` over the same content.
    #[test]
    fn arena_backed_dataset_matches_from_streams(
        k in 2u16..=6,
        specs in prop::collection::vec((0u64..20, 1usize..12, 0usize..1000), 1..25),
    ) {
        let g = Grid::unit(k);
        let mut streams = Vec::new();
        let (mut ids, mut starts, mut offsets, mut cells) =
            (Vec::new(), Vec::new(), vec![0usize], Vec::new());
        for (i, &(start, len, seed)) in specs.iter().enumerate() {
            // Deterministic adjacency-respecting walk from a seeded cell.
            let mut cur = retrasyn_geo::CellId((seed % g.num_cells()) as u32);
            let mut walk = vec![cur];
            for step in 1..len {
                let neigh = g.neighbors(cur);
                cur = neigh.as_slice()[(seed + step) % neigh.len()];
                walk.push(cur);
            }
            ids.push(i as u64);
            starts.push(start);
            cells.extend_from_slice(&walk);
            offsets.push(cells.len());
            streams.push(GriddedStream { id: i as u64, start, cells: walk });
        }
        let horizon = streams.iter().map(|s| s.end() + 1).max().unwrap();
        let rows = GriddedDataset::from_streams(g.clone(), streams.clone(), horizon);
        let cols = GriddedDataset::from_columns(g.clone(), ids, starts, offsets, cells, horizon);
        prop_assert_eq!(&rows, &cols);
        prop_assert!(rows.iter().eq(cols.iter()));
        prop_assert_eq!(cols.to_streams(), streams);
        prop_assert_eq!(rows.total_counts(), cols.total_counts());
        for t in 0..horizon {
            prop_assert_eq!(rows.snapshot_counts(t), cols.snapshot_counts(t));
            prop_assert_eq!(rows.active_count(t), cols.active_count(t));
        }
    }

    /// Quad-tree leaves tile the bounding box exactly: in max-depth integer
    /// units the leaf areas sum to the full square and never overlap
    /// (`fit` + `try_from_leaves` agree), and every point maps to exactly
    /// one leaf whose rect contains it (point→cell is total).
    #[test]
    fn quad_leaves_tile_and_locate(
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..80),
        cap in 1usize..12,
        depth in 1u8..=5,
        probe in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let points: Vec<Point> = seed_pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let quad = QuadGrid::fit(BoundingBox::unit(), &points, cap, depth);
        // Exact tiling in integer units.
        let total = 1u64 << (2 * depth);
        let covered: u64 = quad
            .leaves()
            .iter()
            .map(|l| {
                let s = l.side(depth) as u64;
                s * s
            })
            .sum();
        prop_assert_eq!(covered, total);
        // from_leaves accepts its own output (overlap/hole detector).
        let rebuilt = QuadGrid::from_leaves(BoundingBox::unit(), depth, quad.leaves().to_vec());
        prop_assert_eq!(&quad, &rebuilt);
        // point→cell is total and consistent with the rect geometry.
        let topo = quad.compile();
        let p = Point::new(probe.0, probe.1);
        let c = topo.cell_of(&p);
        prop_assert!(c.index() < topo.num_cells());
        prop_assert!(topo.cell_rect(c).contains(&p));
    }

    /// Quad-tree adjacency is symmetric, self-inclusive, and each row is
    /// strictly ascending.
    #[test]
    fn quad_adjacency_invariants(
        seed_pts in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..60),
        cap in 1usize..10,
        depth in 1u8..=4,
    ) {
        let points: Vec<Point> = seed_pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let topo = QuadGrid::fit(BoundingBox::unit(), &points, cap, depth).compile();
        for a in topo.cells() {
            let row = topo.neighbors(a);
            prop_assert!(row.binary_search(&a).is_ok(), "row of {:?} missing self", a);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row of {:?} not ascending", a);
            for &b in row {
                prop_assert!(topo.are_adjacent(b, a), "asymmetric adjacency {:?} {:?}", a, b);
            }
        }
    }

    /// Subsampling keeps the requested fraction within rounding.
    #[test]
    fn subsample_fraction(n in 1usize..200, denom in 1usize..10) {
        let fraction = 1.0 / denom as f64;
        let trajs: Vec<Trajectory> = (0..n)
            .map(|i| Trajectory::new(i as u64, 0, vec![Point::new(0.5, 0.5)]))
            .collect();
        let ds = StreamDataset::new(trajs);
        let sub = ds.subsample(fraction);
        let expected = n.div_ceil(denom);
        prop_assert_eq!(sub.trajectories().len(), expected);
    }
}

/// Pinned: the compiled uniform topology reproduces the legacy
/// `Neighborhood` order (ascending, y-major scan) for every cell — the
/// bit-compatibility contract that keeps blessed snapshots valid.
#[test]
fn uniform_topology_matches_legacy_neighborhood() {
    for k in [1u16, 2, 3, 32] {
        let grid = Grid::unit(k);
        let topo = grid.compile();
        assert_eq!(topo.num_cells(), grid.num_cells(), "k={k}");
        for c in grid.cells() {
            assert_eq!(
                topo.neighbors(c),
                grid.neighbors(c).as_slice(),
                "neighbor order diverged at k={k}, cell {c:?}"
            );
        }
    }
}

#[test]
fn bbox_grid_interop_nonunit() {
    let bb = BoundingBox::new(Point::new(100.0, -50.0), Point::new(300.0, 75.0));
    let g = Grid::new(12, bb);
    for c in g.cells() {
        assert_eq!(g.cell_of(&g.center(c)), c);
    }
}
