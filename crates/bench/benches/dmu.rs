//! Micro-benchmarks of the DMU selection (§III-C): O(|S|) per timestamp.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrasyn_core::dmu;
use std::hint::black_box;
use std::time::Duration;

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmu_select_significant");
    group.sample_size(30).measurement_time(Duration::from_millis(700));
    let mut rng = StdRng::seed_from_u64(3);
    for domain in [400usize, 3600, 32_400] {
        // Domain sizes ~ O(9|C|) for K = 6, 18, 60.
        let current: Vec<f64> = (0..domain).map(|_| rng.random::<f64>() * 0.01).collect();
        let fresh: Vec<f64> = (0..domain).map(|_| rng.random::<f64>() * 0.01).collect();
        group.bench_with_input(BenchmarkId::from_parameter(domain), &domain, |b, _| {
            b.iter(|| {
                black_box(dmu::select_significant(black_box(&current), black_box(&fresh), 1e-5))
            })
        });
    }
    group.finish();
}

fn bench_total_error(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmu_total_error");
    group.sample_size(30).measurement_time(Duration::from_millis(500));
    let mut rng = StdRng::seed_from_u64(4);
    let domain = 3600;
    let current: Vec<f64> = (0..domain).map(|_| rng.random::<f64>() * 0.01).collect();
    let fresh: Vec<f64> = (0..domain).map(|_| rng.random::<f64>() * 0.01).collect();
    let selected = dmu::select_significant(&current, &fresh, 1e-5);
    group.bench_function("domain_3600", |b| {
        b.iter(|| black_box(dmu::total_error(&current, &fresh, 1e-5, &selected)))
    });
    group.finish();
}

criterion_group!(benches, bench_select, bench_total_error);
criterion_main!(benches);
