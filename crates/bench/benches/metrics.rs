//! Metric evaluation cost: the harness evaluates eight metrics per cell of
//! every table/figure, so their throughput matters.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_datagen::RandomWalkConfig;
use retrasyn_geo::{Grid, GriddedDataset, TransitionTable};
use retrasyn_metrics::{divergence, MetricSuite, SuiteConfig};
use std::hint::black_box;
use std::time::Duration;

fn fixtures() -> (GriddedDataset, GriddedDataset) {
    let grid = Grid::unit(6);
    let a = RandomWalkConfig { users: 800, timestamps: 60, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(1))
        .discretize(&grid);
    let b = RandomWalkConfig { users: 800, timestamps: 60, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(2))
        .discretize(&grid);
    (a, b)
}

fn bench_full_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("metric_suite");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    let (orig, syn) = fixtures();
    let suite = MetricSuite::new(SuiteConfig {
        phi: 10,
        num_queries: 60,
        num_ranges: 60,
        ..Default::default()
    });
    group.bench_function("all_eight_800users_60ts", |b| {
        b.iter(|| black_box(suite.evaluate(&orig, &syn)))
    });
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("metric_components");
    group.sample_size(10).measurement_time(Duration::from_secs(1));
    let (orig, syn) = fixtures();
    let table = TransitionTable::new(orig.topology());
    group.bench_function("density_error", |b| {
        b.iter(|| black_box(retrasyn_metrics::density::density_error(&orig, &syn)))
    });
    group.bench_function("transition_error", |b| {
        b.iter(|| black_box(retrasyn_metrics::transition::transition_error(&orig, &syn, &table)))
    });
    group.bench_function("kendall_tau", |b| {
        b.iter(|| black_box(retrasyn_metrics::kendall::kendall_tau(&orig, &syn)))
    });
    group.finish();
}

fn bench_jsd(c: &mut Criterion) {
    let mut group = c.benchmark_group("jsd");
    group.sample_size(50).measurement_time(Duration::from_millis(600));
    let p: Vec<f64> = (0..4096).map(|i| (i % 17) as f64).collect();
    let q: Vec<f64> = (0..4096).map(|i| (i % 23) as f64).collect();
    group.bench_function("dim_4096", |b| {
        b.iter(|| black_box(divergence::jsd(black_box(&p), black_box(&q))))
    });
    group.finish();
}

criterion_group!(benches, bench_full_suite, bench_components, bench_jsd);
criterion_main!(benches);
