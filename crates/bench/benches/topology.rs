//! Bench gate for the pluggable-discretization refactor: the sampler
//! step over a `UniformGrid`-compiled [`Topology`] (CSR rows, 128-bit
//! packed slots, `u32` cell ids) must stay within a few percent of the
//! pre-refactor path (fixed 3×3 arithmetic windows, 64-bit packed slots,
//! `u16` cell ids), reconstructed here verbatim as [`LegacySampler`].
//! A quad-grid arm at (near-)equal leaf count shows the adaptive
//! discretization rides the same O(1) hot loop.
//!
//! `cargo bench --bench topology -- --json BENCH_topology.json` writes
//! the results in machine-readable form.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrasyn_core::sampler::SamplerCache;
use retrasyn_core::GlobalMobilityModel;
use retrasyn_geo::{BoundingBox, CellId, Grid, Point, QuadGrid, Space, Topology, TransitionTable};
use std::hint::black_box;
use std::time::Duration;

/// Grid side; 32×32 = 1024 cells, the paper's default granularity.
const K: u16 = 32;

fn informed_freqs(len: usize) -> Vec<f64> {
    (0..len).map(|i| ((i % 13) as f64 + 1.0) * 1e-3).collect()
}

fn cached_sampler(topology: &Topology) -> (TransitionTable, SamplerCache) {
    let table = TransitionTable::new(topology);
    let mut model = GlobalMobilityModel::new(table.len());
    model.replace_all(&informed_freqs(table.len()));
    model.rebuild_samplers(&table);
    let cache = model.sampler().expect("cache built").as_ref().clone();
    (table, cache)
}

/// The pre-Topology sampler row format, reconstructed byte-for-byte: one
/// `u64` per move slot (`thresh | accept << 32 | alias << 48`, `u16`
/// cell ids) over the uniform grid's arithmetic 3×3 neighbor windows,
/// drawn with the same single-variate Lemire + accept/alias test.
struct LegacySampler {
    offsets: Vec<u32>,
    packed: Vec<u64>,
}

impl LegacySampler {
    fn build(topology: &Topology, freqs: &[f64]) -> Self {
        assert!(topology.num_cells() <= u16::MAX as usize, "legacy ids were u16");
        let offsets = topology.csr_offsets().to_vec();
        let targets = topology.csr_targets();
        let mut packed = vec![0u64; targets.len()];
        for c in 0..topology.num_cells() {
            let (start, end) = (offsets[c] as usize, offsets[c + 1] as usize);
            let (thresh, alias) = vose_alias(&freqs[start..end]);
            for i in 0..end - start {
                let accept = targets[start + i].0 as u64;
                let al = targets[start + alias[i] as usize].0 as u64;
                packed[start + i] = thresh[i] as u64 | (accept << 32) | (al << 48);
            }
        }
        LegacySampler { offsets, packed }
    }

    #[inline]
    fn sample_move<R: Rng + ?Sized>(&self, from: CellId, rng: &mut R) -> CellId {
        let start = self.offsets[from.index()] as usize;
        let end = self.offsets[from.index() + 1] as usize;
        let row = &self.packed[start..end];
        let x = rng.random::<u64>();
        let slot = (((x >> 32) * row.len() as u64) >> 32) as usize;
        let packed = row[slot];
        let cell =
            if (x as u32) < packed as u32 { (packed >> 32) as u16 } else { (packed >> 48) as u16 };
        CellId(cell as u32)
    }
}

/// Walker/Vose alias row with `u32` fixed-point thresholds (the same
/// construction the production cache uses, inlined here so the legacy
/// arm is self-contained).
fn vose_alias(weights: &[f64]) -> (Vec<u32>, Vec<u32>) {
    let n = weights.len();
    let mut thresh = vec![u32::MAX; n];
    let mut alias: Vec<u32> = (0..n as u32).collect();
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    if total <= 0.0 || !total.is_finite() {
        return (thresh, alias);
    }
    let scale = n as f64 / total;
    let mut small = Vec::new();
    let mut large = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        let p = w.max(0.0) * scale;
        if p < 1.0 {
            small.push((i as u32, p));
        } else {
            large.push((i as u32, p));
        }
    }
    while let (Some(&(s, ps)), Some(&mut (l, ref mut pl))) = (small.last(), large.last_mut()) {
        small.pop();
        alias[s as usize] = l;
        thresh[s as usize] = (ps * (u32::MAX as f64 + 1.0)).min(u32::MAX as f64) as u32;
        *pl = (*pl + ps) - 1.0;
        if *pl < 1.0 {
            let (l, pl) = large.pop().expect("just inspected");
            small.push((l, pl));
        }
    }
    for &(i, _) in small.iter().chain(large.iter()) {
        thresh[i as usize] = u32::MAX;
        alias[i as usize] = i;
    }
    (thresh, alias)
}

/// A density-adaptive quad grid with (near-)equal leaf count to the K×K
/// uniform grid: clustered points, leaf-population cap chosen so the
/// compiled cell count lands closest to K².
fn quad_equal_leaves() -> Topology {
    let mut rng = StdRng::seed_from_u64(9);
    let mut points = Vec::with_capacity(20_000);
    // Three clusters of decreasing spread plus a uniform background —
    // the skew that makes adaptive splitting non-trivial.
    let clusters = [(0.2, 0.3, 0.18), (0.7, 0.6, 0.08), (0.85, 0.15, 0.03)];
    for &(cx, cy, r) in &clusters {
        for _ in 0..5500 {
            let p = Point::new(cx + rng.random_range(-r..r), cy + rng.random_range(-r..r));
            points.push(BoundingBox::unit().clamp(p));
        }
    }
    for _ in 0..3500 {
        points.push(Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)));
    }
    let target = K as usize * K as usize;
    let mut best: Option<QuadGrid> = None;
    for cap in [20, 30, 40, 50, 60, 80, 100, 140, 200] {
        let quad = QuadGrid::fit(BoundingBox::unit(), &points, cap, 7);
        let better = best
            .as_ref()
            .map(|b| quad.num_leaves().abs_diff(target) < b.num_leaves().abs_diff(target))
            .unwrap_or(true);
        if better {
            best = Some(quad);
        }
    }
    best.expect("candidate caps scanned").compile()
}

/// A synthetic head column: the cells the extension pass draws from,
/// one per live stream (independent draws — the real hot loop walks a
/// contiguous column, not a serial chain).
fn head_column(topology: &Topology, n: usize) -> Vec<CellId> {
    let mut rng = StdRng::seed_from_u64(6);
    let cells = topology.num_cells() as u32;
    (0..n).map(|_| CellId(rng.random_range(0..cells))).collect()
}

fn bench_sampler_step(c: &mut Criterion) {
    // One extension draw per live stream over a pre-built head column —
    // the per-user cost of the synthesis extension phase, with the same
    // independent-iteration profile as `extend_cols`. Identical loop
    // body for all arms; only the row format / indexing differs.
    let mut group = c.benchmark_group("topology_sampler_step");
    group.sample_size(20).measurement_time(Duration::from_millis(700));

    let uniform = Grid::unit(K).compile();
    let (table, cache) = cached_sampler(&uniform);
    let heads = head_column(&uniform, 4096);
    {
        let mut rng = StdRng::seed_from_u64(4);
        let mut i = 0usize;
        group.bench_function("uniform_topology", |b| {
            b.iter(|| {
                i = (i + 1) % heads.len();
                black_box(cache.sample_move(heads[i], &mut rng))
            })
        });
    }
    {
        let legacy = LegacySampler::build(&uniform, &informed_freqs(table.len()));
        let mut rng = StdRng::seed_from_u64(4);
        let mut i = 0usize;
        group.bench_function("legacy_arith", |b| {
            b.iter(|| {
                i = (i + 1) % heads.len();
                black_box(legacy.sample_move(heads[i], &mut rng))
            })
        });
    }
    {
        let quad = quad_equal_leaves();
        let (_, cache) = cached_sampler(&quad);
        let heads = head_column(&quad, 4096);
        let mut rng = StdRng::seed_from_u64(4);
        let mut i = 0usize;
        group.bench_function("quad_topology", |b| {
            b.iter(|| {
                i = (i + 1) % heads.len();
                black_box(cache.sample_move(heads[i], &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_point_lookup(c: &mut Criterion) {
    // Discretization-time point→cell lookup: uniform arithmetic vs the
    // quad bit-walk locator.
    let mut group = c.benchmark_group("topology_cell_of");
    group.sample_size(20).measurement_time(Duration::from_millis(500));
    let mut rng = StdRng::seed_from_u64(5);
    let points: Vec<Point> = (0..4096)
        .map(|_| Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
        .collect();
    let uniform = Grid::unit(K).compile();
    {
        let mut i = 0usize;
        group.bench_function("uniform", |b| {
            b.iter(|| {
                i = (i + 1) % points.len();
                black_box(uniform.cell_of(black_box(&points[i])))
            })
        });
    }
    let quad = quad_equal_leaves();
    {
        let mut i = 0usize;
        group.bench_function("quad", |b| {
            b.iter(|| {
                i = (i + 1) % points.len();
                black_box(quad.cell_of(black_box(&points[i])))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampler_step, bench_point_lookup);
criterion_main!(benches);
