//! Micro-benchmarks of the real-time synthesis step (§III-D) — the
//! dominant per-timestamp cost in Table V.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_core::{GlobalMobilityModel, SyntheticDb};
use retrasyn_geo::{Grid, TransitionTable};
use std::hint::black_box;
use std::time::Duration;

/// Informed model with the alias sampler cache built (the engine's steady
/// state).
fn informed_model(table: &TransitionTable) -> GlobalMobilityModel {
    let mut model = informed_model_uncached(table);
    model.rebuild_samplers(table);
    model
}

/// Informed model *without* the cache: synthesis falls back to the O(k)
/// scan the seed implementation used — the before/after comparison.
fn informed_model_uncached(table: &TransitionTable) -> GlobalMobilityModel {
    let mut model = GlobalMobilityModel::new(table.len());
    let est: Vec<f64> = (0..table.len()).map(|i| ((i % 13) as f64 + 1.0) * 1e-3).collect();
    model.replace_all(&est);
    model
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis_step");
    group.sample_size(10).measurement_time(Duration::from_millis(900));
    let grid = Grid::unit(6);
    let table = TransitionTable::new(&grid);
    let model = informed_model(&table);
    for population in [1000usize, 5000, 20_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(population),
            &population,
            |b, &population| {
                b.iter_batched(
                    || {
                        // Pre-warm a database of the target size.
                        let mut db = SyntheticDb::new();
                        let mut rng = StdRng::seed_from_u64(7);
                        db.step(0, &model, &table, population, 30.0, &mut rng);
                        (db, StdRng::seed_from_u64(8))
                    },
                    |(mut db, mut rng)| {
                        db.step(1, &model, &table, black_box(population), 30.0, &mut rng);
                        black_box(db.active_count())
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

/// A faithful reproduction of the *seed* implementation's synthesis step,
/// frozen here as the before/after reference: O(k) scans for quit
/// probabilities, a freshly allocated `Vec<f64>` from `move_probs` plus a
/// linear-scan draw per stream per step, a reallocated survivors vector,
/// and an enter-distribution allocation per spawn batch.
mod seed_reference {
    use super::*;
    use retrasyn_core::sampler::sample_weighted;
    use retrasyn_geo::CellId;

    pub struct RefStream {
        // id/start are never read back, but the struct must keep the
        // production row layout for a faithful memory-traffic comparison.
        #[allow(dead_code)]
        pub id: u64,
        #[allow(dead_code)]
        pub start: u64,
        pub cells: Vec<CellId>,
    }

    pub fn spawn(
        alive: &mut Vec<RefStream>,
        next_id: &mut u64,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        count: usize,
        rng: &mut StdRng,
    ) {
        let enter_dist = model.enter_distribution(table);
        for _ in 0..count {
            let cell = CellId(sample_weighted(&enter_dist, rng) as u32);
            alive.push(RefStream { id: *next_id, start: t, cells: vec![cell] });
            *next_id += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn step(
        alive: &mut Vec<RefStream>,
        finished: &mut Vec<RefStream>,
        next_id: &mut u64,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        target: usize,
        lambda: f64,
        rng: &mut StdRng,
    ) {
        use rand::Rng;
        // Phase 1a: per-stream quit draw with the O(k) denominator scan,
        // draining into a freshly allocated survivors vector.
        let mut survivors = Vec::with_capacity(alive.len());
        for stream in alive.drain(..) {
            let from = *stream.cells.last().unwrap();
            let q = model.quit_prob(table, from, stream.cells.len() as u64, lambda);
            if rng.random::<f64>() >= q {
                survivors.push(stream);
            } else {
                finished.push(stream);
            }
        }
        *alive = survivors;
        // Phase 1b: extension with a fresh Vec<f64> per stream.
        for stream in alive.iter_mut() {
            let from = *stream.cells.last().unwrap();
            let probs = model.move_probs(table, from);
            let pos = sample_weighted(&probs, rng);
            stream.cells.push(table.move_targets(from)[pos]);
        }
        // Phase 2b: upward adjustment.
        if alive.len() < target {
            let missing = target - alive.len();
            spawn(alive, next_id, t, model, table, missing, rng);
        }
    }
}

/// A faithful reproduction of the PR-2 storage layout, frozen as the
/// columnar-refactor reference: one `Vec<CellId>` per stream (a heap
/// pointer chase per user per step) with the same cached alias draws and
/// fused quit+extend pass the live implementation uses. The delta between
/// this arm and `alias` is pure memory-layout cost: SoA head columns plus
/// the chunked tail arena versus per-stream Vecs.
mod vec_reference {
    use super::*;
    use rand::Rng;
    use retrasyn_core::SamplerCache;
    use retrasyn_geo::CellId;

    pub struct VecStream {
        // id/start are never read back, but the struct must keep the
        // PR-2 row layout for a faithful memory-traffic comparison.
        #[allow(dead_code)]
        pub id: u64,
        #[allow(dead_code)]
        pub start: u64,
        pub cells: Vec<CellId>,
    }

    pub fn spawn(
        alive: &mut Vec<VecStream>,
        next_id: &mut u64,
        t: u64,
        cache: &SamplerCache,
        count: usize,
        rng: &mut StdRng,
    ) {
        for _ in 0..count {
            let cell = cache.sample_enter(rng);
            alive.push(VecStream { id: *next_id, start: t, cells: vec![cell] });
            *next_id += 1;
        }
    }

    /// The PR-2 fused steady-state pass: cached quit probability, one alias
    /// draw, `swap_remove` retirement — over Vec-of-structs storage.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        alive: &mut Vec<VecStream>,
        finished: &mut Vec<VecStream>,
        next_id: &mut u64,
        t: u64,
        cache: &SamplerCache,
        target: usize,
        lambda: f64,
        rng: &mut StdRng,
    ) {
        let inv_lambda = 1.0 / lambda;
        let mut i = 0;
        while i < alive.len() {
            let stream = &mut alive[i];
            let from = *stream.cells.last().unwrap();
            let q = stream.cells.len() as f64 * inv_lambda * cache.base_quit_prob(from);
            if rng.random::<f64>() >= q {
                stream.cells.push(cache.sample_move(from, rng));
                i += 1;
            } else {
                let quitter = alive.swap_remove(i);
                finished.push(quitter);
            }
        }
        if alive.len() < target {
            let missing = target - alive.len();
            spawn(alive, next_id, t, cache, missing, rng);
        }
    }
}

fn bench_step_100k_grid32(c: &mut Criterion) {
    // The scaling target from the tentpole acceptance criteria: one full
    // synthesis step over 100k live streams on a 32x32 grid. Three arms:
    // the alias-cached hot path, the (already buffer-reusing) scan
    // fallback, and the frozen seed implementation. Setups pre-warm six
    // steps so trajectory vectors have spare capacity and the measured
    // step isolates sampling cost from the amortized growth reallocation.
    let mut group = c.benchmark_group("synthesis_step_100k_grid32");
    group.sample_size(10).measurement_time(Duration::from_millis(1500));
    let grid = Grid::unit(32);
    let table = TransitionTable::new(&grid);
    let population = 100_000usize;
    // Warm five steps (trajectory length 6, capacity 8), then measure two
    // steps — both fit the grown capacity, so the measurement isolates
    // per-step sampling cost from the amortized buffer-growth reallocation
    // (identical across arms). Reported times are per TWO steps.
    const WARM_STEPS: u64 = 5;
    const MEASURED_STEPS: u64 = 2;
    for (label, cached) in [("alias", true), ("scan_fallback", false)] {
        let model = if cached { informed_model(&table) } else { informed_model_uncached(&table) };
        group.bench_with_input(BenchmarkId::from_parameter(label), &cached, |b, _| {
            b.iter_batched(
                || {
                    let mut db = SyntheticDb::new();
                    let mut rng = StdRng::seed_from_u64(7);
                    for t in 0..=WARM_STEPS {
                        db.step(t, &model, &table, population, 30.0, &mut rng);
                    }
                    (db, StdRng::seed_from_u64(8))
                },
                |(mut db, mut rng)| {
                    for k in 0..MEASURED_STEPS {
                        db.step(WARM_STEPS + 1 + k, &model, &table, population, 30.0, &mut rng);
                    }
                    black_box(db.active_count())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    {
        // PR-2 Vec-of-structs storage with the same cached sampling: the
        // memory-layout before/after for the columnar store.
        let model = informed_model(&table);
        let cache = model.sampler().expect("cache built").clone();
        group.bench_function("vec_reference", |b| {
            b.iter_batched(
                || {
                    let mut alive = Vec::new();
                    let mut finished = Vec::new();
                    let mut next_id = 0u64;
                    let mut rng = StdRng::seed_from_u64(7);
                    vec_reference::spawn(&mut alive, &mut next_id, 0, &cache, population, &mut rng);
                    for t in 1..=WARM_STEPS {
                        vec_reference::step(
                            &mut alive,
                            &mut finished,
                            &mut next_id,
                            t,
                            &cache,
                            population,
                            30.0,
                            &mut rng,
                        );
                    }
                    (alive, finished, next_id, StdRng::seed_from_u64(8))
                },
                |(mut alive, mut finished, mut next_id, mut rng)| {
                    for k in 0..MEASURED_STEPS {
                        vec_reference::step(
                            &mut alive,
                            &mut finished,
                            &mut next_id,
                            WARM_STEPS + 1 + k,
                            &cache,
                            population,
                            30.0,
                            &mut rng,
                        );
                    }
                    black_box(alive.len())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    {
        let model = informed_model_uncached(&table);
        group.bench_function("seed_reference", |b| {
            b.iter_batched(
                || {
                    let mut alive = Vec::new();
                    let mut finished = Vec::new();
                    let mut next_id = 0u64;
                    let mut rng = StdRng::seed_from_u64(7);
                    seed_reference::spawn(
                        &mut alive,
                        &mut next_id,
                        0,
                        &model,
                        &table,
                        population,
                        &mut rng,
                    );
                    for t in 1..=WARM_STEPS {
                        seed_reference::step(
                            &mut alive,
                            &mut finished,
                            &mut next_id,
                            t,
                            &model,
                            &table,
                            population,
                            30.0,
                            &mut rng,
                        );
                    }
                    (alive, finished, next_id, StdRng::seed_from_u64(8))
                },
                |(mut alive, mut finished, mut next_id, mut rng)| {
                    for k in 0..MEASURED_STEPS {
                        seed_reference::step(
                            &mut alive,
                            &mut finished,
                            &mut next_id,
                            WARM_STEPS + 1 + k,
                            &model,
                            &table,
                            population,
                            30.0,
                            &mut rng,
                        );
                    }
                    black_box(alive.len())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_size_adjustment(c: &mut Criterion) {
    // Worst case: a 20% population swing in one tick — sequentially and
    // through the pooled two-phase selection (quit draws + per-shard
    // Efraimidis–Spirakis keys on the workers, global cut on the caller,
    // pooled retirement + extension).
    let mut group = c.benchmark_group("synthesis_size_swing_5000");
    group.sample_size(10).measurement_time(Duration::from_millis(900));
    let grid = Grid::unit(6);
    let table = TransitionTable::new(&grid);
    let model = informed_model(&table);
    group.bench_function("shrink_20pct", |b| {
        b.iter_batched(
            || {
                let mut db = SyntheticDb::new();
                let mut rng = StdRng::seed_from_u64(9);
                db.step(0, &model, &table, 5000, 30.0, &mut rng);
                (db, StdRng::seed_from_u64(10))
            },
            |(mut db, mut rng)| {
                db.step(1, &model, &table, 4000, 30.0, &mut rng);
                black_box(db.active_count())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("shrink_20pct_pooled_4t", |b| {
        b.iter_batched(
            || {
                let mut db = SyntheticDb::new();
                let mut rng = StdRng::seed_from_u64(9);
                db.step(0, &model, &table, 5000, 30.0, &mut rng);
                // Warm step creates the worker pool outside the measured
                // region.
                db.step_parallel(1, &model, &table, 5000, 30.0, &mut rng, 4);
                (db, StdRng::seed_from_u64(10))
            },
            |(mut db, mut rng)| {
                db.step_parallel(2, &model, &table, 4000, 30.0, &mut rng, 4);
                black_box(db.active_count())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_parallel_step(c: &mut Criterion) {
    // The paper's future-work acceleration (§VII): parallel synthesis.
    // `step_parallel` now runs the whole step (quit + shrink + extend) on
    // the pool.
    let mut group = c.benchmark_group("synthesis_step_20000_threads");
    group.sample_size(10).measurement_time(Duration::from_millis(900));
    let grid = Grid::unit(6);
    let table = TransitionTable::new(&grid);
    let model = informed_model(&table);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter_batched(
                || {
                    let mut db = SyntheticDb::new();
                    let mut rng = StdRng::seed_from_u64(7);
                    db.step(0, &model, &table, 20_000, 30.0, &mut rng);
                    // Warm step creates the worker pool outside the
                    // measured region.
                    db.step_parallel(1, &model, &table, 20_000, 30.0, &mut rng, threads);
                    (db, StdRng::seed_from_u64(8))
                },
                |(mut db, mut rng)| {
                    db.step_parallel(2, &model, &table, 20_000, 30.0, &mut rng, threads);
                    black_box(db.active_count())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_parallel_step_100k(c: &mut Criterion) {
    // The acceptance target for full sharding: 100k users on a 32×32 grid
    // through the fully sharded pooled step over the columnar store
    // (disjoint index-range shards, per-shard tail buffers relocated at
    // the merge). The PR-1 extension-only reference was dropped with the
    // storage refactor — the comparison stopped being meaningful once
    // shards became column ranges.
    let mut group = c.benchmark_group("synthesis_step_100k_grid32_threads");
    group.sample_size(10).measurement_time(Duration::from_millis(1200));
    let grid = Grid::unit(32);
    let table = TransitionTable::new(&grid);
    let model = informed_model(&table);
    let population = 100_000usize;
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("full", threads), &threads, |b, &threads| {
            b.iter_batched(
                || {
                    let mut db = SyntheticDb::new();
                    let mut rng = StdRng::seed_from_u64(7);
                    for t in 0..4 {
                        db.step(t, &model, &table, population, 30.0, &mut rng);
                    }
                    // Warm step creates the worker pool outside
                    // the measured region.
                    db.step_parallel(4, &model, &table, population, 30.0, &mut rng, threads);
                    (db, StdRng::seed_from_u64(8))
                },
                |(mut db, mut rng)| {
                    db.step_parallel(5, &model, &table, population, 30.0, &mut rng, threads);
                    black_box(db.active_count())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_step,
    bench_step_100k_grid32,
    bench_size_adjustment,
    bench_parallel_step,
    bench_parallel_step_100k
);
criterion_main!(benches);
