//! Micro-benchmarks of the real-time synthesis step (§III-D) — the
//! dominant per-timestamp cost in Table V.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_core::{GlobalMobilityModel, SyntheticDb};
use retrasyn_geo::{Grid, TransitionTable};
use std::hint::black_box;
use std::time::Duration;

fn informed_model(table: &TransitionTable) -> GlobalMobilityModel {
    let mut model = GlobalMobilityModel::new(table.len());
    let est: Vec<f64> = (0..table.len()).map(|i| ((i % 13) as f64 + 1.0) * 1e-3).collect();
    model.replace_all(&est);
    model
}

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis_step");
    group.sample_size(10).measurement_time(Duration::from_millis(900));
    let grid = Grid::unit(6);
    let table = TransitionTable::new(&grid);
    let model = informed_model(&table);
    for population in [1000usize, 5000, 20_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(population),
            &population,
            |b, &population| {
                b.iter_batched(
                    || {
                        // Pre-warm a database of the target size.
                        let mut db = SyntheticDb::new();
                        let mut rng = StdRng::seed_from_u64(7);
                        db.step(0, &model, &table, population, 30.0, &mut rng);
                        (db, StdRng::seed_from_u64(8))
                    },
                    |(mut db, mut rng)| {
                        db.step(1, &model, &table, black_box(population), 30.0, &mut rng);
                        black_box(db.active_count())
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_size_adjustment(c: &mut Criterion) {
    // Worst case: a 20% population swing in one tick.
    let mut group = c.benchmark_group("synthesis_size_swing_5000");
    group.sample_size(10).measurement_time(Duration::from_millis(900));
    let grid = Grid::unit(6);
    let table = TransitionTable::new(&grid);
    let model = informed_model(&table);
    group.bench_function("shrink_20pct", |b| {
        b.iter_batched(
            || {
                let mut db = SyntheticDb::new();
                let mut rng = StdRng::seed_from_u64(9);
                db.step(0, &model, &table, 5000, 30.0, &mut rng);
                (db, StdRng::seed_from_u64(10))
            },
            |(mut db, mut rng)| {
                db.step(1, &model, &table, 4000, 30.0, &mut rng);
                black_box(db.active_count())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_parallel_step(c: &mut Criterion) {
    // The paper's future-work acceleration (§VII): parallel synthesis.
    let mut group = c.benchmark_group("synthesis_step_20000_threads");
    group.sample_size(10).measurement_time(Duration::from_millis(900));
    let grid = Grid::unit(6);
    let table = TransitionTable::new(&grid);
    let model = informed_model(&table);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || {
                        let mut db = SyntheticDb::new();
                        let mut rng = StdRng::seed_from_u64(7);
                        db.step(0, &model, &table, 20_000, 30.0, &mut rng);
                        (db, StdRng::seed_from_u64(8))
                    },
                    |(mut db, mut rng)| {
                        db.step_parallel(1, &model, &table, 20_000, 30.0, &mut rng, threads);
                        black_box(db.active_count())
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_step, bench_size_adjustment, bench_parallel_step);
criterion_main!(benches);
