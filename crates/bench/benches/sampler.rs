//! Micro-benchmarks of the alias-table sampler subsystem against the O(k)
//! scan it replaced, plus the incremental cache rebuild path.
//!
//! `cargo bench --bench sampler -- --json BENCH_sampler.json` writes the
//! results in machine-readable form.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_core::sampler::{sample_weighted, AliasTable, SamplerCache};
use retrasyn_core::GlobalMobilityModel;
use retrasyn_geo::{Grid, TransitionTable};
use std::hint::black_box;
use std::time::Duration;

fn informed_freqs(table: &TransitionTable) -> Vec<f64> {
    (0..table.len()).map(|i| ((i % 13) as f64 + 1.0) * 1e-3).collect()
}

fn bench_draw(c: &mut Criterion) {
    // One draw from a 9-neighbor row: the per-user cost of the synthesis
    // extension phase.
    let mut group = c.benchmark_group("sampler_draw_9way");
    group.sample_size(20).measurement_time(Duration::from_millis(600));
    let weights: Vec<f64> = (0..9).map(|i| (i as f64 + 1.0) * 0.01).collect();
    let alias = AliasTable::new(&weights);
    {
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function("alias", |b| b.iter(|| black_box(alias.sample(&mut rng))));
    }
    {
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function("scan", |b| {
            b.iter(|| black_box(sample_weighted(black_box(&weights), &mut rng)))
        });
    }
    group.finish();
}

fn bench_cached_model_draw(c: &mut Criterion) {
    // Draw through the full model interface on a 32x32 grid: the cached
    // alias path vs the allocating scan path the seed used.
    let mut group = c.benchmark_group("model_move_draw_grid32");
    group.sample_size(20).measurement_time(Duration::from_millis(700));
    let grid = Grid::unit(32);
    let table = TransitionTable::new(&grid);
    let mut model = GlobalMobilityModel::new(table.len());
    model.replace_all(&informed_freqs(&table));
    model.rebuild_samplers(&table);
    let cache = model.sampler().unwrap().clone();
    let cells: Vec<_> = grid.cells().collect();
    {
        let mut rng = StdRng::seed_from_u64(2);
        let mut i = 0usize;
        group.bench_function("alias_cached", |b| {
            b.iter(|| {
                i = (i + 1) % cells.len();
                black_box(cache.sample_move(cells[i], &mut rng))
            })
        });
    }
    {
        let mut rng = StdRng::seed_from_u64(2);
        let mut i = 0usize;
        group.bench_function("scan_alloc", |b| {
            b.iter(|| {
                i = (i + 1) % cells.len();
                let probs = model.move_probs(&table, cells[i]);
                let pos = sample_weighted(&probs, &mut rng);
                black_box(table.move_targets(cells[i])[pos])
            })
        });
    }
    group.finish();
}

fn bench_rebuild(c: &mut Criterion) {
    // Full cache build vs the incremental row rebuild after a DMU step
    // that touched ~3% of the transitions.
    let mut group = c.benchmark_group("sampler_rebuild_grid32");
    group.sample_size(15).measurement_time(Duration::from_millis(700));
    let grid = Grid::unit(32);
    let table = TransitionTable::new(&grid);
    let freqs = informed_freqs(&table);
    group.bench_function("full_build", |b| {
        b.iter(|| black_box(SamplerCache::build(black_box(&freqs), &table)))
    });
    // Incremental: mark ~3% of move states dirty, rebuild through the
    // model.
    let dirty_count = table.len() * 3 / 100;
    let mut selected = vec![false; table.len()];
    for k in 0..dirty_count {
        selected[(k * 7919) % table.num_moves()] = true;
    }
    let mut model = GlobalMobilityModel::new(table.len());
    model.replace_all(&freqs);
    model.rebuild_samplers(&table);
    group.bench_function("incremental_3pct", |b| {
        b.iter(|| {
            model.update_selected(&selected, &freqs);
            black_box(model.rebuild_samplers(&table))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_draw, bench_cached_model_draw, bench_rebuild);
criterion_main!(benches);
