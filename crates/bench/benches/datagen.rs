//! Substrate benchmarks: road-network shortest paths and stream
//! generation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_datagen::{BrinkhoffConfig, RoadNetwork, RoadNetworkConfig, TDriveConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_dijkstra(c: &mut Criterion) {
    let mut group = c.benchmark_group("roadnet_shortest_path");
    group.sample_size(30).measurement_time(Duration::from_millis(800));
    let mut rng = StdRng::seed_from_u64(1);
    let net = RoadNetwork::generate(&RoadNetworkConfig::default(), &mut rng);
    group.bench_function("random_pair_256_nodes", |b| {
        b.iter(|| {
            let from = net.random_node(&mut rng);
            let to = net.random_node(&mut rng);
            black_box(net.shortest_path(from, to))
        })
    });
    group.finish();
}

fn bench_brinkhoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("brinkhoff_500objects_100ts", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let config = BrinkhoffConfig {
                initial_objects: 500,
                new_per_ts: 25,
                timestamps: 100,
                ..Default::default()
            };
            black_box(config.generate(&mut rng).trajectories().len())
        })
    });
    group.bench_function("tdrive_500taxis_100ts", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let config = TDriveConfig { taxis: 500, timestamps: 100, ..Default::default() };
            black_box(config.generate(&mut rng).trajectories().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dijkstra, bench_brinkhoff);
criterion_main!(benches);
