//! Micro-benchmarks of the OUE frequency oracle: user-side perturbation
//! cost (O(|S|) per user, §IV-B) and the two collection paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrasyn_ldp::{BitReport, FrequencyOracle, Oue, ReportMode};
use std::hint::black_box;
use std::time::Duration;

fn bench_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("oue_perturb_per_user");
    group.sample_size(20).measurement_time(Duration::from_millis(800));
    for domain in [100usize, 400, 1600] {
        let oue = Oue::new(1.0, domain).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::from_parameter(domain), &domain, |b, _| {
            b.iter(|| black_box(oue.perturb(black_box(7), &mut rng).unwrap()))
        });
    }
    group.finish();
}

fn bench_collect(c: &mut Criterion) {
    let mut group = c.benchmark_group("oue_collect_1000_users");
    group.sample_size(10).measurement_time(Duration::from_millis(900));
    let domain = 400;
    let oue = Oue::new(1.0, domain).unwrap();
    let values: Vec<usize> = (0..1000).map(|i| i % domain).collect();
    for mode in [ReportMode::PerUser, ReportMode::Aggregate] {
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| b.iter(|| black_box(oue.collect(&values, mode, &mut rng).unwrap())),
        );
    }
    group.finish();
}

/// The per-bit reference tally the seed implementation used (`get(i)` per
/// position), for the before/after comparison.
fn tally_per_bit(domain: usize, reports: &[BitReport]) -> Vec<u64> {
    let mut ones = vec![0u64; domain];
    for r in reports {
        for (i, one) in ones.iter_mut().enumerate() {
            if r.get(i) {
                *one += 1;
            }
        }
    }
    ones
}

fn bench_tally_10k_4096(c: &mut Criterion) {
    // The tentpole acceptance config: n = 10k reports over d = 4096, at a
    // realistic eps = 1 bit density (q ~ 0.27). Word-parallel
    // trailing_zeros iteration vs the per-bit path.
    let mut group = c.benchmark_group("oue_tally_n10k_d4096");
    group.sample_size(10).measurement_time(Duration::from_millis(2500));
    let domain = 4096usize;
    let n = 10_000usize;
    let oue = Oue::new(1.0, domain).unwrap();
    let q = oue.q();
    let mut rng = StdRng::seed_from_u64(5);
    let reports: Vec<BitReport> = (0..n)
        .map(|u| {
            let mut r = BitReport::zeros(domain);
            for i in 0..domain {
                let p1 = if i == u % domain { 0.5 } else { q };
                if rng.random::<f64>() < p1 {
                    r.set(i, true);
                }
            }
            r
        })
        .collect();
    group.bench_function("word_parallel", |b| {
        b.iter(|| black_box(oue.tally(black_box(&reports)).unwrap()))
    });
    group.bench_function("per_bit", |b| {
        b.iter(|| black_box(tally_per_bit(domain, black_box(&reports))))
    });
    group.finish();
}

fn bench_perturb_into(c: &mut Criterion) {
    // Zero-allocation geometric-skipping perturbation vs the allocating
    // wrapper, at the acceptance domain size.
    let mut group = c.benchmark_group("oue_perturb_d4096");
    group.sample_size(15).measurement_time(Duration::from_millis(900));
    let oue = Oue::new(1.0, 4096).unwrap();
    {
        let mut rng = StdRng::seed_from_u64(6);
        let mut scratch = BitReport::zeros(4096);
        group.bench_function("perturb_into_reused", |b| {
            b.iter(|| {
                oue.perturb_into(black_box(7), &mut scratch, &mut rng).unwrap();
                black_box(scratch.count_ones())
            })
        });
    }
    {
        let mut rng = StdRng::seed_from_u64(6);
        group.bench_function("perturb_alloc", |b| {
            b.iter(|| black_box(oue.perturb(black_box(7), &mut rng).unwrap()))
        });
    }
    group.finish();
}

fn bench_debias(c: &mut Criterion) {
    let mut group = c.benchmark_group("oue_debias");
    group.sample_size(30).measurement_time(Duration::from_millis(600));
    let domain = 1600;
    let oue = Oue::new(1.0, domain).unwrap();
    let ones: Vec<u64> = (0..domain as u64).map(|i| i % 37).collect();
    group.bench_function("domain_1600", |b| {
        b.iter(|| black_box(oue.debias(black_box(&ones), 5000)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_perturb,
    bench_collect,
    bench_tally_10k_4096,
    bench_perturb_into,
    bench_debias
);
criterion_main!(benches);
