//! Micro-benchmarks of the OUE frequency oracle: user-side perturbation
//! cost (O(|S|) per user, §IV-B) and the two collection paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_ldp::{FrequencyOracle, Oue, ReportMode};
use std::hint::black_box;
use std::time::Duration;

fn bench_perturb(c: &mut Criterion) {
    let mut group = c.benchmark_group("oue_perturb_per_user");
    group.sample_size(20).measurement_time(Duration::from_millis(800));
    for domain in [100usize, 400, 1600] {
        let oue = Oue::new(1.0, domain).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_with_input(BenchmarkId::from_parameter(domain), &domain, |b, _| {
            b.iter(|| black_box(oue.perturb(black_box(7), &mut rng).unwrap()))
        });
    }
    group.finish();
}

fn bench_collect(c: &mut Criterion) {
    let mut group = c.benchmark_group("oue_collect_1000_users");
    group.sample_size(10).measurement_time(Duration::from_millis(900));
    let domain = 400;
    let oue = Oue::new(1.0, domain).unwrap();
    let values: Vec<usize> = (0..1000).map(|i| i % domain).collect();
    for mode in [ReportMode::PerUser, ReportMode::Aggregate] {
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &mode,
            |b, &mode| b.iter(|| black_box(oue.collect(&values, mode, &mut rng).unwrap())),
        );
    }
    group.finish();
}

fn bench_debias(c: &mut Criterion) {
    let mut group = c.benchmark_group("oue_debias");
    group.sample_size(30).measurement_time(Duration::from_millis(600));
    let domain = 1600;
    let oue = Oue::new(1.0, domain).unwrap();
    let ones: Vec<u64> = (0..domain as u64).map(|i| i % 37).collect();
    group.bench_function("domain_1600", |b| {
        b.iter(|| black_box(oue.debias(black_box(&ones), 5000)))
    });
    group.finish();
}

criterion_group!(benches, bench_perturb, bench_collect, bench_debias);
criterion_main!(benches);
