//! Whole-engine per-timestamp cost (the Table V "Total" row) for both
//! divisions, at realistic per-timestamp populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_core::{Division, RetraSyn, RetraSynConfig};
use retrasyn_datagen::RandomWalkConfig;
use retrasyn_geo::{EventTimeline, Grid};
use std::hint::black_box;
use std::time::Duration;

fn bench_engine_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_full_run_per_ts");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    let grid = Grid::unit(6);
    for users in [500usize, 2000] {
        let ds = RandomWalkConfig { users, timestamps: 30, ..Default::default() }
            .generate(&mut StdRng::seed_from_u64(1));
        let orig = ds.discretize(&grid);
        let timeline = EventTimeline::build(&orig);
        for division in [Division::Budget, Division::Population] {
            group.bench_with_input(
                BenchmarkId::new(format!("{division:?}"), users),
                &division,
                |b, &division| {
                    b.iter(|| {
                        let config = RetraSynConfig::new(1.0, 10).with_lambda(orig.avg_length());
                        let mut engine = RetraSyn::new(config, grid.clone(), division, 5);
                        for t in 0..orig.horizon() {
                            engine.step(t, timeline.at(t));
                        }
                        black_box(engine.synthetic_active())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_step);
criterion_main!(benches);
