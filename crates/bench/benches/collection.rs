//! Collection-round benches: the fused perturb→tally fast path and the
//! blocked counter-based kernel against the frozen report-buffer
//! reference at the acceptance configuration (n = 100k reporters,
//! d = 4096, ε = 1), plus the sharded [`CollectionPool`] thread sweeps
//! for both kernels.
//!
//! The `blocked` arm is gated: `validate_baselines.py` fails the run if
//! its median is not ≥ 1.5× faster than the `fused` median from the
//! same file (the ISSUE 8 acceptance ratio — same run, same toolchain,
//! same machine). The blessed numbers assume the workspace
//! `.cargo/config.toml` target-cpu (x86-64-v3); baseline SSE2 codegen
//! de-vectorizes the Philox gangs and will miss the gate.
//!
//! The reference arm is the pre-fused collection pipeline — one reused
//! `BitReport` per user, perturbed by geometric skipping and folded into
//! the tally by word-parallel re-scan. It stays in-tree as the validated
//! report-materializing path (`Oue::perturb_into` / `Oue::tally_into`),
//! so the comparison is same-run and same-toolchain by construction.
//!
//! Note: this container is 1-vCPU — the thread-sweep arms measure
//! dispatch overhead, not speedup; the meaningful acceptance pair is
//! `fused` vs `report_buffer_reference` at equal threads. Re-baseline the
//! sweep on multi-core hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_core::CollectionPool;
use retrasyn_ldp::{BitReport, Oue, Philox, ReportMode};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const USERS: usize = 100_000;
const DOMAIN: usize = 4096;

fn values() -> Vec<usize> {
    // Skewed but deterministic reporter mix over the domain.
    (0..USERS).map(|i| (i * i + 31 * i) % DOMAIN).collect()
}

/// The frozen report-buffer collection round: perturb into a reused
/// `BitReport`, then word-parallel tally — the PerUser path before the
/// fused kernel existed.
fn report_buffer_round(oue: &Oue, values: &[usize], ones: &mut Vec<u64>, rng: &mut StdRng) {
    ones.clear();
    ones.resize(oue.domain(), 0);
    let mut scratch = BitReport::zeros(oue.domain());
    for &v in values {
        oue.perturb_into(v, &mut scratch, rng).unwrap();
        oue.tally_into(ones, &scratch).unwrap();
    }
}

fn bench_fused_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("collection_per_user_100k_d4096");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let oue = Oue::new(1.0, DOMAIN).unwrap();
    let values = values();
    let mut ones = Vec::new();
    {
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function("fused", |b| {
            b.iter(|| {
                oue.collect_ones_into(black_box(&values), ReportMode::PerUser, &mut ones, &mut rng)
                    .unwrap();
                black_box(ones.iter().sum::<u64>())
            })
        });
    }
    {
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function("report_buffer_reference", |b| {
            b.iter(|| {
                report_buffer_round(&oue, black_box(&values), &mut ones, &mut rng);
                black_box(ones.iter().sum::<u64>())
            })
        });
    }
    {
        // The blocked counter-based kernel (CollectionKernel::Blocked):
        // one Philox key per round, halfword gangs compared-and-added
        // against the threshold. Gated at ≥ 1.5× over `fused`.
        let ph = Philox::new(0x0b10_cced_0000_0001);
        group.bench_function("blocked", |b| {
            b.iter(|| {
                oue.collect_ones_blocked(black_box(&values), 0, &ph, &mut ones).unwrap();
                black_box(ones.iter().sum::<u64>())
            })
        });
    }
    group.finish();
}

fn bench_thread_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("collection_pool_100k_d4096");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let oracle = Arc::new(Oue::new(1.0, DOMAIN).unwrap());
    let values = values();
    for threads in [1usize, 2, 4] {
        let mut pool = CollectionPool::new(threads);
        let mut ones = Vec::new();
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                pool.collect_ones(
                    &oracle,
                    black_box(&values),
                    ReportMode::PerUser,
                    &mut ones,
                    &mut rng,
                )
                .unwrap();
                black_box(ones.iter().sum::<u64>())
            })
        });
    }
    group.finish();
}

fn bench_blocked_thread_sweep(c: &mut Criterion) {
    // The blocked pooled round shards the *domain* (dense regime at
    // ε = 1), so worker accumulator tiles are disjoint and the merge is
    // a stitch; output is bit-identical across the sweep.
    let mut group = c.benchmark_group("collection_blocked_pool_100k_d4096");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let oracle = Arc::new(Oue::new(1.0, DOMAIN).unwrap());
    let values = values();
    let ph = Philox::new(0x0b10_cced_0000_0002);
    for threads in [1usize, 2, 4] {
        let mut pool = CollectionPool::new(threads);
        let mut ones = Vec::new();
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| {
                pool.collect_ones_blocked(&oracle, black_box(&values), &ph, &mut ones).unwrap();
                black_box(ones.iter().sum::<u64>())
            })
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    // Context arm: the O(d) aggregate simulation the experiment harness
    // uses by default — the in-place binomial round.
    let mut group = c.benchmark_group("collection_aggregate_100k_d4096");
    group.sample_size(15).measurement_time(Duration::from_millis(900));
    let oue = Oue::new(1.0, DOMAIN).unwrap();
    let values = values();
    let mut ones = Vec::new();
    let mut rng = StdRng::seed_from_u64(3);
    group.bench_function("in_place", |b| {
        b.iter(|| {
            oue.collect_ones_into(black_box(&values), ReportMode::Aggregate, &mut ones, &mut rng)
                .unwrap();
            black_box(ones.iter().sum::<u64>())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fused_vs_reference,
    bench_thread_sweep,
    bench_blocked_thread_sweep,
    bench_aggregate
);
criterion_main!(benches);
