#!/usr/bin/env python3
"""Validate the criterion-shim bench baselines (`BENCH_*.json`).

The CI bench-smoke job runs this twice: once against the committed
baselines (so a missing or malformed file fails the build loudly instead
of silently shipping a broken perf reference) and once against the files
the bench run just regenerated.
"""

import json
import pathlib
import sys

BASELINES = ("sampler", "oue", "synthesis", "collection", "topology")
REQUIRED = {"id", "median_ns", "mean_ns", "min_ns", "samples", "iters_per_sample"}


def main() -> int:
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path("crates/bench")
    ok = True

    def error(msg: str) -> None:
        nonlocal ok
        ok = False
        print(f"::error::{msg}")

    for name in BASELINES:
        path = root / f"BENCH_{name}.json"
        if not path.is_file():
            error(f"missing bench baseline {path}")
            continue
        try:
            rows = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            error(f"malformed bench baseline {path}: {exc}")
            continue
        if not isinstance(rows, list) or not rows:
            error(f"bench baseline {path} must be a non-empty JSON array")
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                error(f"{path} row {i} is not an object")
                continue
            missing = REQUIRED - row.keys()
            if missing:
                error(f"{path} row {row.get('id', i)!r} missing keys {sorted(missing)}")
            for key in REQUIRED - {"id"}:
                value = row.get(key)
                # bool is an int subclass in Python: reject it explicitly so
                # a corrupted `true` still counts as malformed.
                if key in row and (
                    isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0
                ):
                    error(f"{path} row {row.get('id', i)!r} has non-positive {key}: {value!r}")

    if ok:
        print(f"bench baselines OK: {', '.join(f'BENCH_{n}.json' for n in BASELINES)}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
