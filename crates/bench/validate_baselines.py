#!/usr/bin/env python3
"""Validate the criterion-shim bench baselines (`BENCH_*.json`).

The CI bench-smoke job runs this twice: once against the committed
baselines (so a missing or malformed file fails the build loudly instead
of silently shipping a broken perf reference) and once against the files
the bench run just regenerated.
"""

import json
import pathlib
import sys

BASELINES = ("sampler", "oue", "synthesis", "collection", "topology")
REQUIRED = {"id", "median_ns", "mean_ns", "min_ns", "samples", "iters_per_sample"}

# Arms that must be present per baseline file (beyond well-formedness).
# The blocked collection kernel ships with a hard acceptance ratio, so a
# bench run that silently dropped its arm must fail the build.
REQUIRED_IDS = {
    "collection": {
        "collection_per_user_100k_d4096/fused",
        "collection_per_user_100k_d4096/blocked",
        "collection_blocked_pool_100k_d4096/1",
        "collection_blocked_pool_100k_d4096/2",
        "collection_blocked_pool_100k_d4096/4",
    },
}

# The ISSUE 8 acceptance gate: the blocked kernel's median must be at
# least 1.5x faster than the fused kernel's median *from the same file*
# (same run, same toolchain, same machine — no cross-machine skew).
BLOCKED_SPEEDUP_GATE = 1.5


def main() -> int:
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path("crates/bench")
    ok = True

    def error(msg: str) -> None:
        nonlocal ok
        ok = False
        print(f"::error::{msg}")

    for name in BASELINES:
        path = root / f"BENCH_{name}.json"
        if not path.is_file():
            error(f"missing bench baseline {path}")
            continue
        try:
            rows = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            error(f"malformed bench baseline {path}: {exc}")
            continue
        if not isinstance(rows, list) or not rows:
            error(f"bench baseline {path} must be a non-empty JSON array")
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                error(f"{path} row {i} is not an object")
                continue
            missing = REQUIRED - row.keys()
            if missing:
                error(f"{path} row {row.get('id', i)!r} missing keys {sorted(missing)}")
            for key in REQUIRED - {"id"}:
                value = row.get(key)
                # bool is an int subclass in Python: reject it explicitly so
                # a corrupted `true` still counts as malformed.
                if key in row and (
                    isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0
                ):
                    error(f"{path} row {row.get('id', i)!r} has non-positive {key}: {value!r}")

        ids = {row.get("id") for row in rows if isinstance(row, dict)}
        for required_id in sorted(REQUIRED_IDS.get(name, ())):
            if required_id not in ids:
                error(f"{path} is missing required bench arm {required_id!r}")

        if name == "collection":
            medians = {
                row["id"]: row["median_ns"]
                for row in rows
                if isinstance(row, dict)
                and isinstance(row.get("median_ns"), (int, float))
                and not isinstance(row.get("median_ns"), bool)
            }
            fused = medians.get("collection_per_user_100k_d4096/fused")
            blocked = medians.get("collection_per_user_100k_d4096/blocked")
            if fused and blocked:
                speedup = fused / blocked
                if speedup < BLOCKED_SPEEDUP_GATE:
                    error(
                        f"{path}: blocked kernel regressed — fused/blocked median "
                        f"ratio {speedup:.2f} < required {BLOCKED_SPEEDUP_GATE}x "
                        f"(fused {fused:.0f} ns, blocked {blocked:.0f} ns)"
                    )
                else:
                    print(f"blocked collection kernel speedup: {speedup:.2f}x (gate {BLOCKED_SPEEDUP_GATE}x)")

    if ok:
        print(f"bench baselines OK: {', '.join(f'BENCH_{n}.json' for n in BASELINES)}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
