//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§V). One binary per artifact:
//!
//! | Binary   | Paper artifact |
//! |----------|----------------|
//! | `table1` | Table I — dataset statistics |
//! | `table3` | Table III — overall utility across ε, datasets, methods |
//! | `table4` | Table IV — AllUpdate / NoEQ ablations |
//! | `table5` | Table V — component efficiency |
//! | `fig3`   | Fig. 3 — allocation strategies |
//! | `fig4`   | Fig. 4 — window size sweep |
//! | `fig5`   | Fig. 5 — evaluation range φ sweep |
//! | `fig6`   | Fig. 6 — granularity K sweep (utility + runtime) |
//! | `fig7`   | Fig. 7 — scalability vs dataset size |
//!
//! Shared flags: `--scale` (dataset size multiplier; the paper's full sizes
//! need a large server, see EXPERIMENTS.md), `--seed`, `--eps`, `--w`,
//! `--k`, `--phi`, `--queries`, `--out <dir>` (CSV mirror of stdout).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod datasets;
pub mod methods;
pub mod output;
pub mod params;
pub mod runner;

pub use cli::Args;
pub use datasets::DatasetKind;
pub use methods::{drive_engine, MethodSpec};
pub use params::Params;
pub use runner::{evaluate_method, run_cells, Cell, CellResult};
