//! Parameter ranges of Table II, with the paper's defaults in bold there
//! and encoded here as `Params::default()`.

/// The experimental parameter set (Table II).
#[derive(Debug, Clone)]
pub struct Params {
    /// Privacy budget ε (default 1.0; range 0.5–2.0).
    pub eps: f64,
    /// Window size w (default 20; range 10–50).
    pub w: usize,
    /// Evaluation time range size φ (default 10; range 5–100).
    pub phi: u64,
    /// Discretization granularity K (default 6; range 2–18).
    pub k: u16,
    /// Dataset scale relative to Table I (harness default 0.05 — see
    /// EXPERIMENTS.md; the paper's 100% needs a large server).
    pub scale: f64,
    /// Base seed for generation and mechanisms.
    pub seed: u64,
    /// Number of random queries / time ranges per metric.
    pub workload: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params { eps: 1.0, w: 20, phi: 10, k: 6, scale: 0.05, seed: 42, workload: 60 }
    }
}

impl Params {
    /// Table II sweep values for ε.
    pub const EPS_RANGE: [f64; 4] = [0.5, 1.0, 1.5, 2.0];
    /// Table II sweep values for w.
    pub const W_RANGE: [usize; 5] = [10, 20, 30, 40, 50];
    /// Table II sweep values for φ.
    pub const PHI_RANGE: [u64; 5] = [5, 10, 20, 50, 100];
    /// Table II sweep values for K.
    pub const K_RANGE: [u16; 5] = [2, 6, 10, 14, 18];
    /// Table II dataset-size sweep (fractions of the configured scale).
    pub const SIZE_RANGE: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

    /// Build from CLI flags, starting at the defaults.
    pub fn from_args(args: &crate::cli::Args) -> Self {
        let d = Params::default();
        Params {
            eps: args.get_f64("eps", d.eps),
            w: args.get_usize("w", d.w),
            phi: args.get_u64("phi", d.phi),
            k: args.get_u64("k", d.k as u64) as u16,
            scale: args.get_f64("scale", d.scale),
            seed: args.get_u64("seed", d.seed),
            workload: args.get_usize("queries", d.workload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::Args;

    #[test]
    fn defaults_match_table2_bold() {
        let p = Params::default();
        assert_eq!(p.eps, 1.0);
        assert_eq!(p.w, 20);
        assert_eq!(p.phi, 10);
        assert_eq!(p.k, 6);
    }

    #[test]
    fn from_args_overrides() {
        let args =
            Args::parse("--eps 2.0 --w 30 --k 10 --scale 0.2".split_whitespace().map(String::from));
        let p = Params::from_args(&args);
        assert_eq!(p.eps, 2.0);
        assert_eq!(p.w, 30);
        assert_eq!(p.k, 10);
        assert_eq!(p.scale, 0.2);
        assert_eq!(p.phi, 10); // untouched default
    }

    #[test]
    fn ranges_contain_defaults() {
        assert!(Params::EPS_RANGE.contains(&1.0));
        assert!(Params::W_RANGE.contains(&20));
        assert!(Params::PHI_RANGE.contains(&10));
        assert!(Params::K_RANGE.contains(&6));
    }
}
