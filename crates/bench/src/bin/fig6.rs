//! Figure 6 — impact of the discretization granularity K ∈ {2..18}:
//! query error (utility) and average runtime per timestamp, for both
//! RetraSyn divisions.
//!
//! Usage: `cargo run -p retrasyn-bench --release --bin fig6 -- --scale 0.05`

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_bench::{output, Args, DatasetKind, MethodSpec, Params};
use retrasyn_core::Division;
use retrasyn_geo::{BoundingBox, Grid};
use retrasyn_metrics::query;

fn main() {
    let args = Args::from_env();
    let params = Params::from_args(&args);
    println!(
        "# Figure 6 — granularity sweep (eps={}, w={}, scale={})",
        params.eps, params.w, params.scale
    );
    println!(
        "\nQuery error uses *continuous-space* queries against the raw \
         stream (the LDPTrace convention the paper follows), so both the \
         coarse-grid localization loss and the fine-grid noise loss are \
         visible."
    );
    let points: Vec<String> = Params::K_RANGE.iter().map(|k| k.to_string()).collect();
    for division in [Division::Budget, Division::Population] {
        let spec = MethodSpec::retrasyn(division);
        println!("\n## {}", spec.name());
        for kind in DatasetKind::ALL {
            let ds = kind.generate(params.scale, params.seed);
            let mut qrng = StdRng::seed_from_u64(params.seed);
            let queries = query::gen_continuous_queries(
                &BoundingBox::unit(),
                ds.horizon(),
                params.phi,
                params.workload,
                &mut qrng,
            );
            let mut query_row = Vec::with_capacity(points.len());
            let mut runtime_row = Vec::with_capacity(points.len());
            for &k in &Params::K_RANGE {
                // Re-discretize the same raw data at each granularity.
                let orig = ds.discretize(&Grid::unit(k));
                let start = std::time::Instant::now();
                let (syn, _) = spec.run(&orig, params.eps, params.w, params.seed);
                let elapsed = start.elapsed().as_secs_f64();
                query_row.push(query::continuous_query_error(&ds, &syn, &queries, 0.001));
                runtime_row.push(elapsed / orig.horizon().max(1) as f64);
            }
            print!(
                "{}",
                output::sweep_table(
                    &format!("{} — Query Error vs K", kind.name()),
                    "K",
                    &[spec.name()],
                    &points,
                    &[query_row]
                )
            );
            print!(
                "{}",
                output::sweep_table(
                    &format!("{} — Avg runtime (s/ts) vs K", kind.name()),
                    "K",
                    &[spec.name()],
                    &points,
                    &[runtime_row]
                )
            );
        }
    }
}
