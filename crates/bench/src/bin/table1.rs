//! Table I — dataset statistics (size, #points, average length,
//! timestamps) for the three generated datasets.
//!
//! Usage: `cargo run -p retrasyn-bench --release --bin table1 -- --scale 0.05`

use retrasyn_bench::{Args, DatasetKind, Params};
use retrasyn_geo::Grid;

fn main() {
    let args = Args::from_env();
    let params = Params::from_args(&args);
    println!("# Table I — dataset statistics (scale = {})", params.scale);
    println!();
    println!("| Dataset | Size | # of Points | Average Length | Timestamps |");
    println!("|---|---:|---:|---:|---:|");
    for kind in DatasetKind::ALL {
        let ds = kind.generate(params.scale, params.seed);
        let stats = ds.stats(&Grid::unit(params.k));
        println!(
            "| {} | {} | {} | {:.2} | {} |",
            kind.name(),
            stats.streams,
            stats.points,
            stats.avg_length,
            stats.timestamps
        );
    }
    println!();
    println!(
        "Paper (scale 1.0): T-Drive 232,640 / 3,167,316 / 13.61 / 886; \
         Oldenburg 260,000 / 15,597,242 / 59.98 / 500; \
         SanJoaquin 1,010,000 / 55,854,936 / 55.30 / 1,000."
    );
}
