//! Table IV — impact of significant-transition selection (AllUpdate) and
//! entering/quitting events (NoEQ), at the default ε = 1.
//!
//! Usage: `cargo run -p retrasyn-bench --release --bin table4 -- --scale 0.05`

use retrasyn_bench::{output, runner, Args, Cell, DatasetKind, MethodSpec, Params};
use retrasyn_geo::Grid;
use retrasyn_metrics::SuiteConfig;

fn main() {
    let args = Args::from_env();
    let params = Params::from_args(&args);
    let workers = runner::default_workers(&args);
    let datasets: Vec<DatasetKind> = match args.get("dataset") {
        Some(name) => vec![DatasetKind::parse(name).expect("unknown dataset")],
        None => DatasetKind::ALL.to_vec(),
    };

    println!(
        "# Table IV — ablations (eps={}, w={}, K={}, scale={})",
        params.eps, params.w, params.k, params.scale
    );
    for kind in datasets {
        let ds = kind.generate(params.scale, params.seed);
        let orig = ds.discretize(&Grid::unit(params.k));
        let suite = SuiteConfig {
            phi: params.phi,
            num_queries: params.workload,
            num_ranges: params.workload,
            seed: params.seed,
            ..Default::default()
        };
        let cells: Vec<Cell> = MethodSpec::table4()
            .into_iter()
            .map(|spec| Cell {
                label: spec.name(),
                spec,
                eps: params.eps,
                w: params.w,
                seed: params.seed,
            })
            .collect();
        let results = runner::run_cells(&cells, &orig, &suite, workers);
        print!("{}", output::metric_table(kind.name(), &results));
        output::maybe_write_csv(&args, &format!("table4_{}", kind.name()), &results);
    }
}
