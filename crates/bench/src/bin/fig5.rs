//! Figure 5 — impact of the evaluation time range φ ∈ {5..100} on query
//! error, pattern F1 and hotspot NDCG (T-Drive and Oldenburg).
//!
//! Usage: `cargo run -p retrasyn-bench --release --bin fig5 -- --scale 0.05`

use retrasyn_bench::{output, runner, Args, DatasetKind, MethodSpec, Params};
use retrasyn_geo::Grid;
use retrasyn_metrics::SuiteConfig;

fn main() {
    let args = Args::from_env();
    let params = Params::from_args(&args);
    let workers = runner::default_workers(&args);
    println!(
        "# Figure 5 — evaluation range sweep (eps={}, w={}, scale={})",
        params.eps, params.w, params.scale
    );
    let methods = MethodSpec::table3();
    let series: Vec<String> = methods.iter().map(|m| m.name()).collect();
    let points: Vec<String> = Params::PHI_RANGE.iter().map(|p| p.to_string()).collect();
    for kind in [DatasetKind::TDrive, DatasetKind::Oldenburg] {
        let ds = kind.generate(params.scale, params.seed);
        let orig = ds.discretize(&Grid::unit(params.k));
        // The synthetic databases do not depend on φ, so run each method
        // once and evaluate under every φ.
        let runs: Vec<(String, retrasyn_geo::GriddedDataset)> = methods
            .iter()
            .map(|&spec| {
                let (syn, _) = spec.run(&orig, params.eps, params.w, params.seed);
                (spec.name(), syn)
            })
            .collect();
        let mut query = vec![vec![0.0; points.len()]; series.len()];
        let mut pattern = vec![vec![0.0; points.len()]; series.len()];
        let mut hotspot = vec![vec![0.0; points.len()]; series.len()];
        for (pi, &phi) in Params::PHI_RANGE.iter().enumerate() {
            let suite = SuiteConfig {
                phi,
                num_queries: params.workload,
                num_ranges: params.workload,
                seed: params.seed,
                ..Default::default()
            };
            let cells: Vec<runner::CellResult> = runs
                .iter()
                .map(|(label, syn)| runner::CellResult {
                    label: label.clone(),
                    report: retrasyn_metrics::MetricSuite::new(suite.clone()).evaluate(&orig, syn),
                    timings: None,
                    run_seconds: 0.0,
                })
                .collect();
            for (mi, r) in cells.iter().enumerate() {
                query[mi][pi] = r.report.query_error;
                pattern[mi][pi] = r.report.pattern_f1;
                hotspot[mi][pi] = r.report.hotspot_ndcg;
            }
            output::maybe_write_csv(&args, &format!("fig5_{}_phi{phi}", kind.name()), &cells);
            let _ = workers; // evaluation is cheap; runs were sequential above
        }
        print!(
            "{}",
            output::sweep_table(
                &format!("{} — Query Error vs phi", kind.name()),
                "phi",
                &series,
                &points,
                &query
            )
        );
        print!(
            "{}",
            output::sweep_table(
                &format!("{} — Pattern F1 vs phi", kind.name()),
                "phi",
                &series,
                &points,
                &pattern
            )
        );
        print!(
            "{}",
            output::sweep_table(
                &format!("{} — Hotspot NDCG vs phi", kind.name()),
                "phi",
                &series,
                &points,
                &hotspot
            )
        );
    }
}
