//! Table V — component efficiency of RetraSyn_p: average per-timestamp
//! seconds for user-side computation, mobility model construction, DMU and
//! real-time synthesis.
//!
//! Usage: `cargo run -p retrasyn-bench --release --bin table5 -- --scale 0.05`

use retrasyn_bench::{Args, DatasetKind, MethodSpec, Params};
use retrasyn_core::Division;
use retrasyn_geo::Grid;

fn main() {
    let args = Args::from_env();
    let params = Params::from_args(&args);
    println!(
        "# Table V — component efficiency of RetraSynp (seconds per timestamp, scale={}, K={})",
        params.scale, params.k
    );
    println!();
    println!("| Procedure | T-Drive | Oldenburg | SanJoaquin |");
    println!("|---|---:|---:|---:|");
    let mut rows: Vec<[f64; 3]> = vec![[0.0; 3]; 5];
    for (col, kind) in DatasetKind::ALL.iter().enumerate() {
        let ds = kind.generate(params.scale, params.seed);
        let orig = ds.discretize(&Grid::unit(params.k));
        let spec = MethodSpec::retrasyn(Division::Population);
        let (_syn, timings) = spec.run(&orig, params.eps, params.w, params.seed);
        let t = timings.expect("RetraSyn reports timings");
        rows[0][col] = t.user_side;
        rows[1][col] = t.model_construction;
        rows[2][col] = t.dmu;
        rows[3][col] = t.synthesis;
        rows[4][col] = t.total;
    }
    let names = [
        "User-side Computation",
        "Mobility Model Construction",
        "Dynamic Mobility Update",
        "Real-time Synthesis",
        "Total",
    ];
    for (name, row) in names.iter().zip(&rows) {
        println!("| {} | {:.4} | {:.4} | {:.4} |", name, row[0], row[1], row[2]);
    }
    println!();
    println!("Paper (full scale): totals 0.1851 / 1.6523 / 2.9558 s with synthesis dominating.");
}
