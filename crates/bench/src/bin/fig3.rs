//! Figure 3 — impact of the allocation strategy (Adaptive / Uniform /
//! Sample, both divisions) on query error, transition error and Kendall
//! tau, for T-Drive and Oldenburg.
//!
//! Usage: `cargo run -p retrasyn-bench --release --bin fig3 -- --scale 0.05`

use retrasyn_bench::{output, runner, Args, Cell, DatasetKind, MethodSpec, Params};
use retrasyn_core::{AllocationKind, Division};
use retrasyn_geo::Grid;
use retrasyn_metrics::SuiteConfig;

fn main() {
    let args = Args::from_env();
    let params = Params::from_args(&args);
    let workers = runner::default_workers(&args);
    println!(
        "# Figure 3 — allocation strategies (eps={}, w={}, scale={})",
        params.eps, params.w, params.scale
    );
    let strategies = [
        (AllocationKind::Adaptive, Division::Budget),
        (AllocationKind::Adaptive, Division::Population),
        (AllocationKind::Uniform, Division::Budget),
        (AllocationKind::Uniform, Division::Population),
        (AllocationKind::Sample, Division::Population),
        (AllocationKind::RandomReport, Division::Population),
    ];
    for kind in [DatasetKind::TDrive, DatasetKind::Oldenburg] {
        let ds = kind.generate(params.scale, params.seed);
        let orig = ds.discretize(&Grid::unit(params.k));
        let suite = SuiteConfig {
            phi: params.phi,
            num_queries: params.workload,
            num_ranges: params.workload,
            seed: params.seed,
            ..Default::default()
        };
        let cells: Vec<Cell> = strategies
            .iter()
            .map(|&(allocation, division)| {
                let spec = MethodSpec::retrasyn_with(division, allocation);
                Cell { label: spec.name(), spec, eps: params.eps, w: params.w, seed: params.seed }
            })
            .collect();
        let results = runner::run_cells(&cells, &orig, &suite, workers);
        // The figure reports three metrics; the full table is printed for
        // completeness (Query Error, Transition Error, Kendall Tau are the
        // figure's panels).
        print!("{}", output::metric_table(kind.name(), &results));
        output::maybe_write_csv(&args, &format!("fig3_{}", kind.name()), &results);
    }
}
