//! Table III — overall utility of all six methods across privacy budgets
//! and datasets.
//!
//! Usage:
//! `cargo run -p retrasyn-bench --release --bin table3 -- --scale 0.05 [--dataset t-drive] [--eps-sweep]`
//!
//! By default sweeps ε ∈ {0.5, 1.0, 1.5, 2.0} on all three datasets; a
//! single dataset can be selected with `--dataset`.

use retrasyn_bench::{output, runner, Args, Cell, DatasetKind, MethodSpec, Params};
use retrasyn_geo::Grid;
use retrasyn_metrics::SuiteConfig;

fn main() {
    let args = Args::from_env();
    let params = Params::from_args(&args);
    let workers = runner::default_workers(&args);
    let datasets: Vec<DatasetKind> = match args.get("dataset") {
        Some(name) => vec![DatasetKind::parse(name).expect("unknown dataset")],
        None => DatasetKind::ALL.to_vec(),
    };
    let eps_values: Vec<f64> = match args.get("eps") {
        Some(v) => vec![v.parse().expect("bad --eps")],
        None => Params::EPS_RANGE.to_vec(),
    };

    println!(
        "# Table III — overall utility (scale={}, w={}, K={}, phi={})",
        params.scale, params.w, params.k, params.phi
    );
    for kind in datasets {
        let ds = kind.generate(params.scale, params.seed);
        let grid = Grid::unit(params.k);
        let orig = ds.discretize(&grid);
        let suite = SuiteConfig {
            phi: params.phi,
            num_queries: params.workload,
            num_ranges: params.workload,
            seed: params.seed,
            ..Default::default()
        };
        for &eps in &eps_values {
            let cells: Vec<Cell> = MethodSpec::table3()
                .into_iter()
                .map(|spec| Cell { label: spec.name(), spec, eps, w: params.w, seed: params.seed })
                .collect();
            let results = runner::run_cells(&cells, &orig, &suite, workers);
            print!("{}", output::metric_table(&format!("{} — eps = {eps}", kind.name()), &results));
            output::maybe_write_csv(&args, &format!("table3_{}_eps{eps}", kind.name()), &results);
        }
    }
}
