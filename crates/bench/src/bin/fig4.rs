//! Figure 4 — impact of window size w ∈ {10..50} on transition error,
//! query error and trip error (T-Drive and Oldenburg), all six methods.
//!
//! Usage: `cargo run -p retrasyn-bench --release --bin fig4 -- --scale 0.05`

use retrasyn_bench::{output, runner, Args, Cell, DatasetKind, MethodSpec, Params};
use retrasyn_geo::Grid;
use retrasyn_metrics::SuiteConfig;

fn main() {
    let args = Args::from_env();
    let params = Params::from_args(&args);
    let workers = runner::default_workers(&args);
    println!("# Figure 4 — window size sweep (eps={}, scale={})", params.eps, params.scale);
    let methods = MethodSpec::table3();
    let series: Vec<String> = methods.iter().map(|m| m.name()).collect();
    let points: Vec<String> = Params::W_RANGE.iter().map(|w| w.to_string()).collect();
    for kind in [DatasetKind::TDrive, DatasetKind::Oldenburg] {
        let ds = kind.generate(params.scale, params.seed);
        let orig = ds.discretize(&Grid::unit(params.k));
        let suite = SuiteConfig {
            phi: params.phi,
            num_queries: params.workload,
            num_ranges: params.workload,
            seed: params.seed,
            ..Default::default()
        };
        // metric index: 1 = query_error, 3 = transition_error, 6 = trip_error
        let mut transition = vec![vec![0.0; points.len()]; series.len()];
        let mut query = vec![vec![0.0; points.len()]; series.len()];
        let mut trip = vec![vec![0.0; points.len()]; series.len()];
        for (wi, &w) in Params::W_RANGE.iter().enumerate() {
            let cells: Vec<Cell> = methods
                .iter()
                .map(|&spec| Cell {
                    label: spec.name(),
                    spec,
                    eps: params.eps,
                    w,
                    seed: params.seed,
                })
                .collect();
            let results = runner::run_cells(&cells, &orig, &suite, workers);
            for (mi, r) in results.iter().enumerate() {
                transition[mi][wi] = r.report.transition_error;
                query[mi][wi] = r.report.query_error;
                trip[mi][wi] = r.report.trip_error;
            }
            output::maybe_write_csv(&args, &format!("fig4_{}_w{w}", kind.name()), &results);
        }
        print!(
            "{}",
            output::sweep_table(
                &format!("{} — Transition Error vs w", kind.name()),
                "w",
                &series,
                &points,
                &transition
            )
        );
        print!(
            "{}",
            output::sweep_table(
                &format!("{} — Query Error vs w", kind.name()),
                "w",
                &series,
                &points,
                &query
            )
        );
        print!(
            "{}",
            output::sweep_table(
                &format!("{} — Trip Error vs w", kind.name()),
                "w",
                &series,
                &points,
                &trip
            )
        );
    }
}
