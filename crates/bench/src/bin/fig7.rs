//! Figure 7 — scalability: average runtime per timestamp as the dataset
//! size grows from 20% to 100% (of the configured scale), for both
//! RetraSyn divisions.
//!
//! Usage: `cargo run -p retrasyn-bench --release --bin fig7 -- --scale 0.05`

use retrasyn_bench::{output, Args, DatasetKind, MethodSpec, Params};
use retrasyn_core::Division;
use retrasyn_geo::Grid;

fn main() {
    let args = Args::from_env();
    let params = Params::from_args(&args);
    println!(
        "# Figure 7 — scalability (eps={}, w={}, base scale={})",
        params.eps, params.w, params.scale
    );
    let points: Vec<String> =
        Params::SIZE_RANGE.iter().map(|f| format!("{:.0}%", f * 100.0)).collect();
    for kind in DatasetKind::ALL {
        let ds = kind.generate(params.scale, params.seed);
        let grid = Grid::unit(params.k);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut series: Vec<String> = Vec::new();
        for division in [Division::Budget, Division::Population] {
            let spec = MethodSpec::retrasyn(division);
            let mut row = Vec::with_capacity(points.len());
            for &fraction in &Params::SIZE_RANGE {
                let sub = ds.subsample(fraction);
                let orig = sub.discretize(&grid);
                let start = std::time::Instant::now();
                let (_syn, _) = spec.run(&orig, params.eps, params.w, params.seed);
                row.push(start.elapsed().as_secs_f64() / orig.horizon().max(1) as f64);
            }
            series.push(spec.name());
            rows.push(row);
        }
        print!(
            "{}",
            output::sweep_table(
                &format!("{} — Avg runtime (s/ts) vs dataset size", kind.name()),
                "size",
                &series,
                &points,
                &rows
            )
        );
    }
}
