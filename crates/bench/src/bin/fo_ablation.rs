//! Frequency-oracle choice ablation: why the paper adopts OUE (§II-A cites
//! its optimal variance) over GRR for the transition-state domain.
//!
//! Measures the mean absolute estimation error of both oracles on a
//! skewed distribution over domains of transition-table size, across
//! budgets. GRR's variance grows with the domain size while OUE's does
//! not, so OUE wins for every realistic K.
//!
//! Usage: `cargo run -p retrasyn-bench --release --bin fo_ablation`

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_bench::Args;
use retrasyn_geo::{Grid, TransitionTable};
use retrasyn_ldp::{FrequencyOracle, Grr, Oue, ReportMode};

fn mean_abs_error<O: FrequencyOracle>(
    oracle: &O,
    values: &[usize],
    truth: &[f64],
    rounds: usize,
    rng: &mut StdRng,
) -> f64 {
    let mut total = 0.0;
    for _ in 0..rounds {
        let est = oracle.collect(values, ReportMode::Aggregate, rng).unwrap();
        total += est.freqs.iter().zip(truth).map(|(e, t)| (e - t).abs()).sum::<f64>()
            / truth.len() as f64;
    }
    total / rounds as f64
}

fn main() {
    let args = Args::from_env();
    let n = args.get_usize("users", 2000);
    let rounds = args.get_usize("rounds", 10);
    println!("# Frequency-oracle ablation: OUE vs GRR (n={n}, {rounds} rounds)");
    println!();
    println!("| K | domain | eps | OUE mean abs err | GRR mean abs err | GRR/OUE |");
    println!("|---:|---:|---:|---:|---:|---:|");
    for k in [2u16, 6, 10, 18] {
        let table = TransitionTable::new(&Grid::unit(k));
        let domain = table.len();
        // Skewed truth: Zipf-like over the domain.
        let values: Vec<usize> = (0..n).map(|i| (i * i + 3 * i) % domain).collect();
        let mut truth = vec![0.0; domain];
        for &v in &values {
            truth[v] += 1.0 / n as f64;
        }
        for eps in [0.5f64, 1.0, 2.0] {
            let mut rng = StdRng::seed_from_u64(42);
            let oue = Oue::new(eps, domain).unwrap();
            let grr = Grr::new(eps, domain).unwrap();
            let e_oue = mean_abs_error(&oue, &values, &truth, rounds, &mut rng);
            let e_grr = mean_abs_error(&grr, &values, &truth, rounds, &mut rng);
            println!(
                "| {k} | {domain} | {eps} | {e_oue:.5} | {e_grr:.5} | {:.2}x |",
                e_grr / e_oue
            );
        }
    }
    println!();
    println!(
        "Analytic: Var_OUE = 4e^eps/(n(e^eps-1)^2) is domain-free; \
         Var_GRR ~ (d-2+e^eps)/(n(e^eps-1)^2) grows linearly in d."
    );
}
