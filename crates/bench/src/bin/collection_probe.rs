//! Wall-clock probe of the collection kernels plus the dense/sparse
//! crossover sweep used to set `BLOCKED_DENSE_MIN_Q` and `DENSE_MIN_Q`
//! (tuning aid; the blessed numbers come from `benches/collection.rs`).
//!
//! The crossover sweep times the blocked kernel's dense pass (cost
//! `c_dense` per position, independent of `q`) against its sparse
//! geometric-skipping walk (cost `c_sparse` per *reported 1*, ≈ `d·q`
//! of them), and reports the break-even `q* = c_dense / c_sparse`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrasyn_ldp::{Oue, Philox, ReportMode};
use std::hint::black_box;
use std::time::Instant;

const USERS: usize = 100_000;
const DOMAIN: usize = 4096;

fn main() {
    let values: Vec<usize> = (0..USERS).map(|i| (i * i + 31 * i) % DOMAIN).collect();
    let oue = Oue::new(1.0, DOMAIN).unwrap();
    let mut ones = Vec::new();

    let mut rng = StdRng::seed_from_u64(1);
    for label in ["fused (warm)", "fused"] {
        let t = Instant::now();
        oue.collect_ones_into(&values, ReportMode::PerUser, &mut ones, &mut rng).unwrap();
        let dt = t.elapsed().as_secs_f64();
        black_box(ones.iter().sum::<u64>());
        println!("{label:18} {dt:.4} s  ({:.3} ns/pos)", dt * 1e9 / (USERS * DOMAIN) as f64);
    }

    let mut rng = StdRng::seed_from_u64(2);
    let mut dense_ns_pos = f64::MAX;
    for label in ["blocked (warm)", "blocked", "blocked 2"] {
        let ph = Philox::new(rng.random());
        let t = Instant::now();
        oue.collect_ones_blocked(&values, 0, &ph, &mut ones).unwrap();
        let dt = t.elapsed().as_secs_f64();
        black_box(ones.iter().sum::<u64>());
        let ns_pos = dt * 1e9 / (USERS * DOMAIN) as f64;
        if label != "blocked (warm)" {
            dense_ns_pos = dense_ns_pos.min(ns_pos);
        }
        println!("{label:18} {dt:.4} s  ({ns_pos:.3} ns/pos)");
    }

    // Sparse cost per reported 1: force the sparse walk through
    // `blocked_tally_sparse` at a few q values and normalize by the
    // expected number of landings, n·(d·q + 1/2).
    println!("\ncrossover sweep (d = {DOMAIN}, n = {USERS}):");
    let mut sparse_ns_one = f64::MAX;
    for eps in [3.5f64, 4.5, 5.5] {
        let oue = Oue::new(eps, DOMAIN).unwrap();
        let q = oue.q();
        ones.clear();
        ones.resize(DOMAIN, 0);
        let ph = Philox::new(rng.random());
        oue.blocked_tally_sparse(&values, 0, &ph, &mut ones).unwrap(); // warm
        let t = Instant::now();
        oue.blocked_tally_sparse(&values, 0, &ph, &mut ones).unwrap();
        let dt = t.elapsed().as_secs_f64();
        black_box(ones.iter().sum::<u64>());
        let landings = USERS as f64 * (DOMAIN as f64 * q + 0.5);
        let ns_one = dt * 1e9 / landings;
        sparse_ns_one = sparse_ns_one.min(ns_one);
        println!("  sparse eps={eps:.1} q={q:.4}  {dt:.4} s  ({ns_one:.2} ns/one)");
    }
    println!(
        "  dense {dense_ns_pos:.3} ns/pos, sparse {sparse_ns_one:.2} ns/one  =>  q* = {:.4}",
        dense_ns_pos / sparse_ns_one
    );
}
