//! Minimal flag parsing shared by the harness binaries (no external CLI
//! crate; flags are `--name value`).

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `std::env::args()` (skipping the program name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse an iterator of arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut flags = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                flags.insert(name.to_string(), value);
            } else {
                panic!("unexpected positional argument: {arg} (flags are --name value)");
            }
        }
        Args { flags }
    }

    /// String flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// f64 flag with default.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} must be a number")))
            .unwrap_or(default)
    }

    /// u64 flag with default.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} must be an integer")))
            .unwrap_or(default)
    }

    /// usize flag with default.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get_u64(name, default as u64) as usize
    }

    /// Boolean flag (present without value, or `--name true/false`).
    pub fn get_bool(&self, name: &str) -> bool {
        matches!(self.get(name), Some("true") | Some("1"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_values_and_defaults() {
        let a = parse("--scale 0.1 --seed 42 --quick --name t-drive");
        assert_eq!(a.get_f64("scale", 1.0), 0.1);
        assert_eq!(a.get_u64("seed", 0), 42);
        assert!(a.get_bool("quick"));
        assert!(!a.get_bool("absent"));
        assert_eq!(a.get("name"), Some("t-drive"));
        assert_eq!(a.get_f64("eps", 1.0), 1.0);
        assert_eq!(a.get_usize("w", 20), 20);
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let a = parse("--quick --scale 0.5");
        assert!(a.get_bool("quick"));
        assert_eq!(a.get_f64("scale", 1.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn rejects_positional() {
        let _ = parse("oops");
    }

    #[test]
    #[should_panic(expected = "must be a number")]
    fn rejects_bad_number() {
        let a = parse("--scale abc");
        let _ = a.get_f64("scale", 1.0);
    }
}
