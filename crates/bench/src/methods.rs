//! The method registry: four LDP-IDS baselines, RetraSyn in both divisions,
//! and the ablation variants of Table IV.

use retrasyn_core::{
    AllocationKind, BaselineKind, Division, LdpIds, LdpIdsConfig, RetraSyn, RetraSynConfig,
    StreamingEngine, TimingReport,
};
use retrasyn_geo::GriddedDataset;

/// Drive any [`StreamingEngine`] over a discretized dataset and verify its
/// privacy ledger — the one generic loop every method (RetraSyn in both
/// divisions, all four baselines) shares. The per-engine `run_gridded`
/// duplicates of the pre-session API are gone; this is their single
/// replacement.
pub fn drive_engine<E: StreamingEngine>(
    engine: &mut E,
    dataset: &GriddedDataset,
) -> GriddedDataset {
    let syn = engine.run_gridded(dataset);
    engine.ledger().verify().expect("w-event invariant");
    syn
}

/// A fully specified method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodSpec {
    /// One of the LDP-IDS mechanisms.
    Baseline(BaselineKind),
    /// RetraSyn with a division and allocation strategy and the two
    /// ablation switches (both `true` for the full method).
    RetraSyn {
        /// Budget or population division.
        division: Division,
        /// Allocation strategy.
        allocation: AllocationKind,
        /// DMU enabled (false = AllUpdate ablation).
        dmu: bool,
        /// Enter/quit modelling enabled (false = NoEQ ablation).
        enter_quit: bool,
    },
}

impl MethodSpec {
    /// The six methods of Table III (baselines + full RetraSyn b/p).
    pub fn table3() -> Vec<MethodSpec> {
        let mut methods: Vec<MethodSpec> =
            BaselineKind::ALL.iter().copied().map(MethodSpec::Baseline).collect();
        methods.push(MethodSpec::retrasyn(Division::Budget));
        methods.push(MethodSpec::retrasyn(Division::Population));
        methods
    }

    /// The six rows of Table IV (AllUpdate b/p, NoEQ b/p, RetraSyn b/p).
    pub fn table4() -> Vec<MethodSpec> {
        let mut rows = Vec::new();
        for division in [Division::Budget, Division::Population] {
            rows.push(MethodSpec::RetraSyn {
                division,
                allocation: AllocationKind::Adaptive,
                dmu: false,
                enter_quit: true,
            });
        }
        for division in [Division::Budget, Division::Population] {
            rows.push(MethodSpec::RetraSyn {
                division,
                allocation: AllocationKind::Adaptive,
                dmu: true,
                enter_quit: false,
            });
        }
        rows.push(MethodSpec::retrasyn(Division::Budget));
        rows.push(MethodSpec::retrasyn(Division::Population));
        rows
    }

    /// Full RetraSyn with adaptive allocation.
    pub fn retrasyn(division: Division) -> MethodSpec {
        MethodSpec::RetraSyn {
            division,
            allocation: AllocationKind::Adaptive,
            dmu: true,
            enter_quit: true,
        }
    }

    /// RetraSyn with an explicit allocation strategy (Fig. 3).
    pub fn retrasyn_with(division: Division, allocation: AllocationKind) -> MethodSpec {
        MethodSpec::RetraSyn { division, allocation, dmu: true, enter_quit: true }
    }

    /// Display name following the paper's tables.
    pub fn name(self) -> String {
        match self {
            MethodSpec::Baseline(kind) => kind.name().to_string(),
            MethodSpec::RetraSyn { division, allocation, dmu, enter_quit } => {
                let suffix = match division {
                    Division::Budget => "b",
                    Division::Population => "p",
                };
                let base = match (dmu, enter_quit) {
                    (false, _) => "AllUpdate",
                    (true, false) => "NoEQ",
                    (true, true) => "RetraSyn",
                };
                match allocation {
                    AllocationKind::Adaptive => format!("{base}{suffix}"),
                    AllocationKind::Uniform => format!("Uniform{suffix}"),
                    AllocationKind::Sample => format!("Sample{suffix}"),
                    AllocationKind::RandomReport => format!("Random{suffix}"),
                }
            }
        }
    }

    /// Run the method over a discretized dataset; returns the synthetic
    /// database and, for RetraSyn, the component timing report.
    pub fn run(
        self,
        dataset: &GriddedDataset,
        eps: f64,
        w: usize,
        seed: u64,
    ) -> (GriddedDataset, Option<TimingReport>) {
        let topology = dataset.topology().clone();
        match self {
            MethodSpec::Baseline(kind) => {
                let config = LdpIdsConfig::new(eps, w);
                let mut engine = LdpIds::new(kind, config, topology, seed);
                (drive_engine(&mut engine, dataset), None)
            }
            MethodSpec::RetraSyn { division, allocation, dmu, enter_quit } => {
                let mut config = RetraSynConfig::new(eps, w)
                    .with_allocation(allocation)
                    .with_lambda(dataset.avg_length().max(1.0));
                config.dmu = dmu;
                config.enter_quit = enter_quit;
                let mut engine = RetraSyn::new(config, topology, division, seed);
                let syn = drive_engine(&mut engine, dataset);
                (syn, Some(engine.timing_report()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrasyn_datagen::RandomWalkConfig;
    use retrasyn_geo::Grid;

    #[test]
    fn registry_contents() {
        let t3 = MethodSpec::table3();
        assert_eq!(t3.len(), 6);
        let names: Vec<String> = t3.iter().map(|m| m.name()).collect();
        assert_eq!(names, ["LBD", "LBA", "LPD", "LPA", "RetraSynb", "RetraSynp"]);
        let t4 = MethodSpec::table4();
        let names: Vec<String> = t4.iter().map(|m| m.name()).collect();
        assert_eq!(names, ["AllUpdateb", "AllUpdatep", "NoEQb", "NoEQp", "RetraSynb", "RetraSynp"]);
    }

    #[test]
    fn allocation_names() {
        let m = MethodSpec::retrasyn_with(Division::Population, AllocationKind::Sample);
        assert_eq!(m.name(), "Samplep");
        let m = MethodSpec::retrasyn_with(Division::Budget, AllocationKind::Uniform);
        assert_eq!(m.name(), "Uniformb");
    }

    #[test]
    fn every_method_runs_on_a_tiny_dataset() {
        let ds = RandomWalkConfig { users: 80, timestamps: 15, ..Default::default() }
            .generate(&mut StdRng::seed_from_u64(1));
        let grid = Grid::unit(4);
        let gridded = ds.discretize(&grid);
        for spec in MethodSpec::table3().into_iter().chain(MethodSpec::table4()) {
            let (syn, timings) = spec.run(&gridded, 1.0, 5, 3);
            assert_eq!(syn.horizon(), 15, "{}", spec.name());
            assert!(!syn.is_empty(), "{}", spec.name());
            match spec {
                MethodSpec::Baseline(_) => assert!(timings.is_none()),
                MethodSpec::RetraSyn { .. } => assert!(timings.is_some()),
            }
        }
    }
}
