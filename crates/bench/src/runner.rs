//! Experiment execution: run a method on a dataset, evaluate the metric
//! suite, and fan cells out over a small thread pool.

use crate::methods::MethodSpec;
use retrasyn_core::TimingReport;
use retrasyn_geo::GriddedDataset;
use retrasyn_metrics::{MetricReport, MetricSuite, SuiteConfig};

/// One experiment cell: a method at a parameter point.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Row/series label shown in the output table.
    pub label: String,
    /// The method to run.
    pub spec: MethodSpec,
    /// Privacy budget ε.
    pub eps: f64,
    /// Window size w.
    pub w: usize,
    /// Mechanism seed.
    pub seed: u64,
}

/// The outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell's label.
    pub label: String,
    /// All eight utility metrics.
    pub report: MetricReport,
    /// Component timings (RetraSyn only).
    pub timings: Option<TimingReport>,
    /// Wall-clock seconds for the streaming run (excludes evaluation).
    pub run_seconds: f64,
}

/// Run one method and evaluate the full suite against the original data.
pub fn evaluate_method(
    spec: MethodSpec,
    orig: &GriddedDataset,
    eps: f64,
    w: usize,
    seed: u64,
    suite: &SuiteConfig,
) -> (MetricReport, Option<TimingReport>, f64) {
    let start = std::time::Instant::now();
    let (syn, timings) = spec.run(orig, eps, w, seed);
    let run_seconds = start.elapsed().as_secs_f64();
    let report = MetricSuite::new(suite.clone()).evaluate(orig, &syn);
    (report, timings, run_seconds)
}

/// Run a batch of cells against a shared original dataset using `workers`
/// threads (order of results matches the input order).
pub fn run_cells(
    cells: &[Cell],
    orig: &GriddedDataset,
    suite: &SuiteConfig,
    workers: usize,
) -> Vec<CellResult> {
    let workers = workers.max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<CellResult>>> =
        cells.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                let cell = &cells[i];
                let (report, timings, run_seconds) =
                    evaluate_method(cell.spec, orig, cell.eps, cell.w, cell.seed, suite);
                *results[i].lock().unwrap() =
                    Some(CellResult { label: cell.label.clone(), report, timings, run_seconds });
            });
        }
    });
    results.into_iter().map(|m| m.into_inner().unwrap().expect("cell executed")).collect()
}

/// Number of worker threads to use (`--workers` flag, default: available
/// parallelism).
pub fn default_workers(args: &crate::cli::Args) -> usize {
    args.get_usize("workers", std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrasyn_core::Division;
    use retrasyn_datagen::RandomWalkConfig;
    use retrasyn_geo::Grid;

    fn tiny() -> GriddedDataset {
        let ds = RandomWalkConfig { users: 60, timestamps: 12, ..Default::default() }
            .generate(&mut StdRng::seed_from_u64(2));
        ds.discretize(&Grid::unit(4))
    }

    fn suite() -> SuiteConfig {
        SuiteConfig { phi: 4, num_queries: 10, num_ranges: 10, ..Default::default() }
    }

    #[test]
    fn evaluate_method_produces_sane_metrics() {
        let orig = tiny();
        let (report, timings, secs) =
            evaluate_method(MethodSpec::retrasyn(Division::Population), &orig, 1.0, 4, 1, &suite());
        assert!(secs > 0.0);
        assert!(timings.is_some());
        assert!(report.density_error.is_finite());
        assert!((0.0..=1.0).contains(&report.hotspot_ndcg));
        assert!((-1.0..=1.0).contains(&report.kendall_tau));
    }

    #[test]
    fn run_cells_preserves_order_and_parallelizes() {
        let orig = tiny();
        let cells: Vec<Cell> = MethodSpec::table3()
            .into_iter()
            .map(|spec| Cell { label: spec.name(), spec, eps: 1.0, w: 4, seed: 1 })
            .collect();
        let results = run_cells(&cells, &orig, &suite(), 2);
        assert_eq!(results.len(), 6);
        for (cell, result) in cells.iter().zip(&results) {
            assert_eq!(cell.label, result.label);
        }
    }

    #[test]
    fn run_cells_deterministic_across_worker_counts() {
        let orig = tiny();
        let cells: Vec<Cell> = vec![
            Cell {
                label: "a".into(),
                spec: MethodSpec::retrasyn(Division::Budget),
                eps: 1.0,
                w: 4,
                seed: 9,
            },
            Cell {
                label: "b".into(),
                spec: MethodSpec::retrasyn(Division::Population),
                eps: 1.0,
                w: 4,
                seed: 9,
            },
        ];
        let r1 = run_cells(&cells, &orig, &suite(), 1);
        let r2 = run_cells(&cells, &orig, &suite(), 4);
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.report, b.report, "{}", a.label);
        }
    }
}
