//! Table formatting (markdown to stdout) and CSV mirroring.

use crate::runner::CellResult;
use retrasyn_metrics::MetricReport;
use std::io::Write;
use std::path::Path;

/// Render a markdown table: one row per result, one column per metric.
pub fn metric_table(title: &str, results: &[CellResult]) -> String {
    let mut s = String::new();
    s.push_str(&format!("\n## {title}\n\n"));
    s.push_str("| method |");
    for name in MetricReport::NAMES {
        s.push_str(&format!(" {name} |"));
    }
    s.push('\n');
    s.push_str("|---|");
    for _ in MetricReport::NAMES {
        s.push_str("---:|");
    }
    s.push('\n');
    for r in results {
        s.push_str(&format!("| {} |", r.label));
        for v in r.report.values() {
            s.push_str(&format!(" {v:.4} |"));
        }
        s.push('\n');
    }
    s
}

/// Render a markdown table of one metric across a swept parameter:
/// `series` are row labels, `points` are column labels, `values[row][col]`.
pub fn sweep_table(
    title: &str,
    param: &str,
    series: &[String],
    points: &[String],
    values: &[Vec<f64>],
) -> String {
    assert_eq!(series.len(), values.len());
    let mut s = String::new();
    s.push_str(&format!("\n## {title}\n\n"));
    s.push_str(&format!("| method \\ {param} |"));
    for p in points {
        s.push_str(&format!(" {p} |"));
    }
    s.push('\n');
    s.push_str("|---|");
    for _ in points {
        s.push_str("---:|");
    }
    s.push('\n');
    for (label, row) in series.iter().zip(values) {
        assert_eq!(row.len(), points.len());
        s.push_str(&format!("| {label} |"));
        for v in row {
            s.push_str(&format!(" {v:.4} |"));
        }
        s.push('\n');
    }
    s
}

/// Write results as CSV (`label,metric1,…,metric8,run_seconds`).
pub fn write_csv(path: &Path, results: &[CellResult]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(f, "label")?;
    for name in MetricReport::NAMES {
        write!(f, ",{name}")?;
    }
    writeln!(f, ",run_seconds")?;
    for r in results {
        write!(f, "{}", r.label)?;
        for v in r.report.values() {
            write!(f, ",{v:.6}")?;
        }
        writeln!(f, ",{:.3}", r.run_seconds)?;
    }
    f.flush()
}

/// Mirror results to `<out>/<name>.csv` when `--out` is set.
pub fn maybe_write_csv(args: &crate::cli::Args, name: &str, results: &[CellResult]) {
    if let Some(dir) = args.get("out") {
        let path = Path::new(dir).join(format!("{name}.csv"));
        write_csv(&path, results).unwrap_or_else(|e| eprintln!("csv write failed: {e}"));
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(label: &str) -> CellResult {
        CellResult {
            label: label.to_string(),
            report: MetricReport {
                density_error: 0.1,
                query_error: 0.2,
                hotspot_ndcg: 0.3,
                transition_error: 0.4,
                pattern_f1: 0.5,
                kendall_tau: 0.6,
                trip_error: 0.7,
                length_error: 0.8,
            },
            timings: None,
            run_seconds: 1.5,
        }
    }

    #[test]
    fn metric_table_contains_rows_and_headers() {
        let t = metric_table("Table III", &[result("LBD"), result("RetraSynp")]);
        assert!(t.contains("## Table III"));
        assert!(t.contains("| LBD |"));
        assert!(t.contains("| RetraSynp |"));
        assert!(t.contains("density_error"));
        assert!(t.contains("0.1000"));
    }

    #[test]
    fn sweep_table_layout() {
        let t = sweep_table(
            "Fig 4",
            "w",
            &["LBD".into(), "RetraSynp".into()],
            &["10".into(), "20".into()],
            &[vec![0.5, 0.6], vec![0.3, 0.35]],
        );
        assert!(t.contains("method \\ w"));
        assert!(t.contains("0.3500"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("retrasyn_bench_test");
        let path = dir.join("out.csv");
        write_csv(&path, &[result("x")]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("label,density_error"));
        assert!(content.contains("x,0.100000"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic]
    fn sweep_table_validates_shape() {
        let _ = sweep_table("t", "p", &["a".into()], &["1".into()], &[vec![0.1, 0.2]]);
    }
}
