//! Offline micro-benchmark harness exposing the subset of criterion's API
//! this workspace uses: `criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`] and [`BatchSize`].
//!
//! Extras over a plain stub:
//!
//! - real measurement: warm-up, then `sample_size` samples sized to fill
//!   `measurement_time`, reporting median / mean / min ns per iteration;
//! - `--json <path>`: write all results of the run as a machine-readable
//!   JSON array (used to produce the `BENCH_*.json` perf baselines);
//! - positional CLI args filter benchmarks by substring, as with criterion;
//! - `--test` (passed by `cargo test --benches`) runs every benchmark once.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim times each batch of
/// one routine call individually, so the variants are equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<S: AsRef<str>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.as_ref()) }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/bench` identifier.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of measurement samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Measurement configuration and result sink.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    json_path: Option<String>,
    test_mode: bool,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut json_path = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => match args.peek() {
                    // A following flag (e.g. cargo's own trailing --bench)
                    // is not a path: require an explicit value.
                    Some(v) if !v.starts_with("--") => json_path = args.next(),
                    _ => eprintln!("criterion shim: --json requires a path argument"),
                },
                "--test" => test_mode = true,
                // Flags cargo or users may pass that we accept and ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with("--") => {
                    // Unknown option: also swallow its value, if any, so it
                    // is not mistaken for a benchmark filter. (Keeps
                    // `cargo bench -- --warm-up-time 1` harmless.)
                    if matches!(args.peek(), Some(v) if !v.starts_with("--")) {
                        args.next();
                    }
                }
                s => filter = Some(s.to_string()),
            }
        }
        if json_path.is_none() {
            json_path = std::env::var("CRITERION_JSON").ok();
        }
        Criterion { filter, json_path, test_mode, results: Vec::new() }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
            measurement_time: Duration::from_millis(700),
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut group = self.benchmark_group(id);
        group.bench_function("base", |b| f(b));
        group.finish();
    }

    fn run_one(
        &mut self,
        id: String,
        sample_size: usize,
        measurement_time: Duration,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        // Calibrate: how many iterations fit one sample budget?
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let budget = measurement_time.max(Duration::from_millis(10)) / sample_size.max(1) as u32;
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_ns = samples_ns[samples_ns.len() / 2];
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min_ns = samples_ns[0];
        println!(
            "{id:<56} median {:>12} mean {:>12} min {:>12} ({} samples x {} iters)",
            fmt_ns(median_ns),
            fmt_ns(mean_ns),
            fmt_ns(min_ns),
            samples_ns.len(),
            iters,
        );
        self.results.push(BenchResult {
            id,
            median_ns,
            mean_ns,
            min_ns,
            samples: samples_ns.len(),
            iters_per_sample: iters,
        });
    }

    /// Write collected results as JSON if `--json` (or `CRITERION_JSON`)
    /// was given. Called by `criterion_main!` at exit.
    pub fn finalize(&self) {
        let Some(path) = &self.json_path else { return };
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            out.push_str(&format!(
                "  {{\"id\": {:?}, \"median_ns\": {:.3}, \"mean_ns\": {:.3}, \"min_ns\": {:.3}, \"samples\": {}, \"iters_per_sample\": {}}}{comma}\n",
                r.id, r.median_ns, r.mean_ns, r.min_ns, r.samples, r.iters_per_sample
            ));
        }
        out.push_str("]\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("criterion shim: failed to write {path}: {e}");
        } else {
            println!("criterion shim: wrote {} results to {path}", self.results.len());
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of measurement samples (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark (default 700 ms).
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget — accepted for API parity; the shim's calibration
    /// pass serves as warm-up.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Throughput annotation — accepted and ignored.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(full, self.sample_size, self.measurement_time, &mut |b| f(b, input));
        self
    }

    /// Finish the group (results are recorded incrementally; kept for API
    /// parity).
    pub fn finish(&mut self) {}
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declare a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declare the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}
