//! Offline property-testing shim exposing the subset of `proptest` this
//! workspace uses: the [`proptest!`] macro, range / tuple /
//! `prop::collection::vec` strategies, and the
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! Each generated test runs `PROPTEST_CASES` cases (default 48, override
//! with the `PROPTEST_CASES` env var) with inputs drawn from a
//! deterministic per-test seed, so failures are reproducible. Rejected
//! cases (`prop_assume!`) are skipped without counting as failures.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

#[doc(hidden)]
pub use rand as __rand;

/// Error produced inside a property body.
#[derive(Debug)]
pub enum TestCaseError {
    /// Case rejected by `prop_assume!`; try another input.
    Reject(String),
    /// Property violated.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A source of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rand::Rng::random_range(rng, self.clone())
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        a + rand::Rng::random::<f64>(rng) * (b - a)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// The `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;

        /// Strategy producing `Vec`s of values from an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = rand::Rng::random_range(rng, self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Number of cases per property (env-overridable).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(48)
}

/// Deterministic per-test seed derived from the test name (FNV-1a).
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError,
    };
}

/// Define property tests. Supports the
/// `#[test] fn name(pat in strategy, ...) { body }` form.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let total = $crate::cases();
            let mut rejected = 0u32;
            let mut case = 0u32;
            let mut run = 0u32;
            // Allow a bounded number of rejections beyond the case budget.
            while run < total && case < total * 16 {
                let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name), case),
                );
                case += 1;
                $(
                    let $pat = $crate::Strategy::generate(&($strategy), &mut rng);
                )*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => run += 1,
                    Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {}: {}",
                            stringify!($name),
                            case - 1,
                            msg
                        );
                    }
                }
            }
            // A property that never executed is a broken test, not a pass
            // (e.g. a prop_assume! that rejects every input).
            assert!(
                run > 0,
                "property {} rejected all {} generated cases — \
                 prop_assume! is unsatisfiable",
                stringify!($name),
                rejected,
            );
        }
    )*};
}

/// Assert a condition inside a property; failure reports the case inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a), stringify!($b), left, right, format!($($fmt)*)
            )));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Reject the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u64..10, y in 1usize..=4, z in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((1..=4).contains(&y));
            prop_assert!((-1.0..1.0).contains(&z));
        }

        #[test]
        fn vecs_respect_sizes(
            v in prop::collection::vec(0u32..5, 2..6),
            w in prop::collection::vec(0.0f64..1.0, 3),
            nested in prop::collection::vec(prop::collection::vec(0u8..2, 1..3), 0..4),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
            prop_assert!(nested.len() < 4);
            for inner in &nested {
                prop_assert!(!inner.is_empty() && inner.len() < 3);
            }
        }

        #[test]
        fn tuples_and_assume(pair in (0u16..8, 0.0f64..1.0), mut v in prop::collection::vec(0u64..3, 0..5)) {
            prop_assume!(pair.0 != 7);
            v.push(pair.0 as u64);
            prop_assert!(!v.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u64..4) {
                prop_assert!(x < 2, "x={}", x);
            }
        }
        inner();
    }
}
