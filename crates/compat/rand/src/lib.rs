//! Offline API-compatible subset of `rand 0.9`.
//!
//! Provides exactly the surface this workspace uses: [`Rng::random`],
//! [`Rng::random_range`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`]
//! and [`seq::SliceRandom::shuffle`]. `StdRng` here is xoshiro256++ seeded
//! via SplitMix64 — deterministic per seed, not bit-compatible with
//! upstream `rand`'s ChaCha12 (no workspace test depends on upstream
//! streams). See `crates/compat/README.md`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the standard (uniform) distribution.
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit mantissa in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(span, rng) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(span + 1, rng) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Unbiased uniform draw from `[0, span)` (`span > 0`) via Lemire's
/// widening-multiply rejection method.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span {
            return (m >> 64) as u64;
        }
        // Rejection zone: accept unless below the bias threshold.
        let threshold = span.wrapping_neg() % span;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range` (half-open or inclusive).
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for exact save/restore (e.g. session
        /// checkpoints). Restoring via [`StdRng::from_state`] continues the
        /// stream bit-for-bit.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API parity with upstream `rand`.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5_000 {
            let a: u16 = rng.random_range(3..17);
            assert!((3..17).contains(&a));
            let b: u64 = rng.random_range(0..=5);
            assert!(b <= 5);
            let c: usize = rng.random_range(0..1);
            assert_eq!(c, 0);
            let d: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&d));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_unsized_and_mut_refs() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = takes_dynish(&mut rng);
        let r = &mut rng;
        let _ = takes_dynish(r);
    }
}
