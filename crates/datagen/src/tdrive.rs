//! T-Drive-like taxi stream simulator.
//!
//! The real T-Drive dataset (10,357 Beijing taxis over one week, discretized
//! by the paper to 886 ten-minute timestamps inside the 5th ring) is not
//! available, so this module simulates its load-bearing characteristics:
//!
//! - **Skewed spatial density** — taxis shuttle between Gaussian hotspots
//!   (a dense centre, business districts, residential clusters).
//! - **Time-of-day dynamics** — destination choice is re-weighted by a
//!   morning rush (residential → business), an evening rush (reverse) and a
//!   flat off-peak regime, producing the regime shifts DMU exploits.
//! - **Fragmented streams** — GPS dropout (tunnels, switched-off devices)
//!   follows an on/off Markov chain per taxi; each maximal "on" run becomes
//!   one stream, matching T-Drive's short 13.6-point average stream length.

use rand::Rng;
use retrasyn_geo::{Point, StreamDataset, Trajectory};

/// Configuration of the taxi simulator.
#[derive(Debug, Clone)]
pub struct TDriveConfig {
    /// Number of taxis.
    pub taxis: usize,
    /// Number of timestamps (the paper uses 886 ≈ one week at 10 min).
    pub timestamps: u64,
    /// Timestamps per simulated day (defines the rush-hour phase).
    pub day_length: u64,
    /// Per-tick probability that a reporting taxi loses signal.
    pub off_prob: f64,
    /// Per-tick probability that a silent taxi resumes reporting.
    pub on_prob: f64,
    /// Distance travelled per tick toward the destination.
    pub speed: f64,
    /// Isotropic Gaussian jitter added to each step.
    pub jitter: f64,
}

impl Default for TDriveConfig {
    fn default() -> Self {
        TDriveConfig {
            taxis: 1000,
            timestamps: 200,
            day_length: 144, // 10-minute ticks
            off_prob: 1.0 / 13.6,
            on_prob: 0.04,
            speed: 0.025,
            jitter: 0.004,
        }
    }
}

impl TDriveConfig {
    /// The full Table-I preset (10,357 taxis, 886 timestamps).
    pub fn paper() -> Self {
        TDriveConfig { taxis: 10_357, timestamps: 886, ..Default::default() }
    }

    /// Scale the taxi count by `f` (time span unchanged).
    pub fn scaled(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "scale must be in (0, 1]");
        self.taxis = ((self.taxis as f64 * f).round() as usize).max(1);
        self
    }

    /// Generate the dataset.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> StreamDataset {
        let city = City::beijing_like();
        let mut trajectories = Vec::new();
        let mut taxis: Vec<Taxi> =
            (0..self.taxis).map(|i| Taxi::spawn(i as u64, &city, self, rng)).collect();
        for t in 0..self.timestamps {
            let phase = DayPhase::of(t, self.day_length);
            for taxi in &mut taxis {
                taxi.tick(t, phase, &city, self, rng, &mut trajectories);
            }
        }
        // Flush still-open streams.
        for taxi in &mut taxis {
            taxi.flush(&mut trajectories);
        }
        StreamDataset::with_horizon(trajectories, self.timestamps)
    }
}

/// Rush-hour phases of the simulated day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DayPhase {
    /// Morning rush: residential → business flows dominate.
    Morning,
    /// Evening rush: business → residential flows dominate.
    Evening,
    /// Off-peak: uniform hotspot gravity.
    OffPeak,
}

impl DayPhase {
    /// Phase of timestamp `t` given the day length (morning = hours 7–10,
    /// evening = hours 17–20 of a 24-hour day).
    pub fn of(t: u64, day_length: u64) -> DayPhase {
        let frac = (t % day_length) as f64 / day_length as f64;
        if (0.29..0.42).contains(&frac) {
            DayPhase::Morning
        } else if (0.71..0.83).contains(&frac) {
            DayPhase::Evening
        } else {
            DayPhase::OffPeak
        }
    }
}

/// Hotspot kinds steer the rush-hour gravity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HotspotKind {
    Business,
    Residential,
    Leisure,
}

struct Hotspot {
    center: Point,
    sigma: f64,
    weight: f64,
    kind: HotspotKind,
}

struct City {
    hotspots: Vec<Hotspot>,
}

impl City {
    /// A Beijing-like layout: a dense business core, ring of residential
    /// clusters, a couple of leisure areas.
    fn beijing_like() -> Self {
        use HotspotKind::*;
        let h = |x: f64, y: f64, sigma: f64, weight: f64, kind| Hotspot {
            center: Point::new(x, y),
            sigma,
            weight,
            kind,
        };
        City {
            hotspots: vec![
                h(0.50, 0.52, 0.06, 3.0, Business),
                h(0.62, 0.60, 0.05, 1.5, Business),
                h(0.40, 0.42, 0.05, 1.2, Business),
                h(0.20, 0.75, 0.07, 1.4, Residential),
                h(0.80, 0.78, 0.07, 1.4, Residential),
                h(0.18, 0.22, 0.07, 1.3, Residential),
                h(0.82, 0.25, 0.07, 1.3, Residential),
                h(0.50, 0.85, 0.06, 0.8, Leisure),
                h(0.65, 0.15, 0.06, 0.7, Leisure),
            ],
        }
    }

    /// Sample a destination according to the phase-adjusted gravity.
    fn sample_destination<R: Rng + ?Sized>(&self, phase: DayPhase, rng: &mut R) -> Point {
        let adjusted: Vec<f64> = self
            .hotspots
            .iter()
            .map(|h| {
                let boost = match (phase, h.kind) {
                    (DayPhase::Morning, HotspotKind::Business) => 4.0,
                    (DayPhase::Evening, HotspotKind::Residential) => 4.0,
                    (DayPhase::Evening, HotspotKind::Leisure) => 2.0,
                    _ => 1.0,
                };
                h.weight * boost
            })
            .collect();
        let total: f64 = adjusted.iter().sum();
        let mut pick = rng.random::<f64>() * total;
        let mut idx = 0;
        for (i, w) in adjusted.iter().enumerate() {
            if pick < *w {
                idx = i;
                break;
            }
            pick -= w;
        }
        let h = &self.hotspots[idx];
        let gx = crate::gaussian(rng) * h.sigma;
        let gy = crate::gaussian(rng) * h.sigma;
        Point::new((h.center.x + gx).clamp(0.0, 1.0), (h.center.y + gy).clamp(0.0, 1.0))
    }
}

struct Taxi {
    user: u64,
    pos: Point,
    dest: Point,
    reporting: bool,
    /// Open stream: (start timestamp, points so far).
    open: Option<(u64, Vec<Point>)>,
}

impl Taxi {
    fn spawn<R: Rng + ?Sized>(user: u64, city: &City, _config: &TDriveConfig, rng: &mut R) -> Self {
        let pos = city.sample_destination(DayPhase::OffPeak, rng);
        let dest = city.sample_destination(DayPhase::OffPeak, rng);
        Taxi { user, pos, dest, reporting: rng.random::<f64>() < 0.35, open: None }
    }

    fn tick<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        phase: DayPhase,
        city: &City,
        config: &TDriveConfig,
        rng: &mut R,
        out: &mut Vec<Trajectory>,
    ) {
        // Drive toward the destination regardless of reporting state.
        let d = self.pos.distance(&self.dest);
        if d <= config.speed {
            self.pos = self.dest;
            self.dest = city.sample_destination(phase, rng);
        } else {
            let step = config.speed / d;
            self.pos = Point::new(
                (self.pos.x
                    + (self.dest.x - self.pos.x) * step
                    + crate::gaussian(rng) * config.jitter)
                    .clamp(0.0, 1.0),
                (self.pos.y
                    + (self.dest.y - self.pos.y) * step
                    + crate::gaussian(rng) * config.jitter)
                    .clamp(0.0, 1.0),
            );
        }
        // On/off signal chain.
        if self.reporting {
            match &mut self.open {
                Some((_, points)) => points.push(self.pos),
                None => self.open = Some((t, vec![self.pos])),
            }
            if rng.random::<f64>() < config.off_prob {
                self.reporting = false;
                self.flush(out);
            }
        } else if rng.random::<f64>() < config.on_prob {
            self.reporting = true;
        }
    }

    fn flush(&mut self, out: &mut Vec<Trajectory>) {
        if let Some((start, points)) = self.open.take() {
            if !points.is_empty() {
                out.push(Trajectory::new(self.user, start, points));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrasyn_geo::Grid;

    fn small() -> TDriveConfig {
        TDriveConfig { taxis: 300, timestamps: 150, ..Default::default() }
    }

    #[test]
    fn generates_fragmented_streams() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = small().generate(&mut rng);
        let stats = ds.stats(&Grid::unit(6));
        // Many more streams than taxis (fragmentation) with a short mean.
        assert!(stats.streams > 300, "streams={}", stats.streams);
        assert!(
            stats.avg_length > 6.0 && stats.avg_length < 25.0,
            "avg_length={}",
            stats.avg_length
        );
        assert_eq!(stats.timestamps, 150);
    }

    #[test]
    fn points_stay_in_unit_square() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = small().generate(&mut rng);
        for t in ds.trajectories() {
            for p in &t.points {
                assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
            }
        }
    }

    #[test]
    fn density_is_skewed_toward_hotspots() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = small().generate(&mut rng);
        let grid = Grid::unit(6);
        let gd = ds.discretize(&grid);
        let totals = gd.total_counts();
        let max = *totals.iter().max().unwrap() as f64;
        let mean = totals.iter().sum::<u64>() as f64 / totals.len() as f64;
        assert!(max > 3.0 * mean, "density not skewed: max={max} mean={mean}");
    }

    #[test]
    fn day_phase_schedule() {
        let day = 144;
        // Hour 8 of 24 -> tick 48 -> morning.
        assert_eq!(DayPhase::of(48, day), DayPhase::Morning);
        // Hour 18 -> tick 108 -> evening.
        assert_eq!(DayPhase::of(108, day), DayPhase::Evening);
        // Hour 0 and hour 13 -> off-peak.
        assert_eq!(DayPhase::of(0, day), DayPhase::OffPeak);
        assert_eq!(DayPhase::of(78, day), DayPhase::OffPeak);
        // Phases repeat daily.
        assert_eq!(DayPhase::of(48 + day, day), DayPhase::Morning);
    }

    #[test]
    fn paper_preset_shape() {
        let c = TDriveConfig::paper();
        assert_eq!(c.taxis, 10_357);
        assert_eq!(c.timestamps, 886);
        let scaled = c.scaled(0.1);
        assert_eq!(scaled.taxis, 1036);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small().generate(&mut StdRng::seed_from_u64(4));
        let b = small().generate(&mut StdRng::seed_from_u64(4));
        assert_eq!(a.trajectories().len(), b.trajectories().len());
        assert_eq!(a.trajectories()[0], b.trajectories()[0]);
    }

    #[test]
    fn streams_mostly_adjacent_on_default_grid() {
        let mut rng = StdRng::seed_from_u64(5);
        let ds = small().generate(&mut rng);
        let grid = Grid::unit(6);
        let gd = ds.discretize(&grid);
        let split_ratio =
            (gd.num_streams() - ds.trajectories().len()) as f64 / ds.trajectories().len() as f64;
        assert!(split_ratio < 0.15, "split ratio {split_ratio}");
    }
}
