//! Controlled synthetic generators for tests and ablations.

use rand::Rng;
use retrasyn_geo::{Point, StreamDataset, Trajectory};

/// Lazy random-walk streams: users start uniformly and take small steps.
/// The simplest well-behaved workload for unit tests and the quickstart.
#[derive(Debug, Clone)]
pub struct RandomWalkConfig {
    /// Number of users (one stream each unless `churn > 0`).
    pub users: usize,
    /// Number of timestamps.
    pub timestamps: u64,
    /// Step length per tick.
    pub step: f64,
    /// Per-tick probability a stream ends (a fresh one enters to replace it
    /// at the next tick), creating enter/quit churn.
    pub churn: f64,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        RandomWalkConfig { users: 500, timestamps: 50, step: 0.03, churn: 0.05 }
    }
}

impl RandomWalkConfig {
    /// Generate the dataset.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> StreamDataset {
        let mut trajectories = Vec::new();
        let mut next_user = 0u64;
        // Each slot holds one alive stream; on churn the slot re-enters.
        let mut slots: Vec<(u64, u64, Vec<Point>, Point)> = (0..self.users)
            .map(|_| {
                let p = Point::new(rng.random::<f64>(), rng.random::<f64>());
                let id = next_user;
                next_user += 1;
                (id, 0u64, vec![p], p)
            })
            .collect();
        for t in 1..self.timestamps {
            for slot in &mut slots {
                if rng.random::<f64>() < self.churn {
                    // Quit: flush and re-enter somewhere new.
                    let (id, start, points, _) = std::mem::replace(slot, {
                        let p = Point::new(rng.random::<f64>(), rng.random::<f64>());
                        let id = next_user;
                        next_user += 1;
                        (id, t, vec![p], p)
                    });
                    trajectories.push(Trajectory::new(id, start, points));
                } else {
                    let angle = rng.random::<f64>() * std::f64::consts::TAU;
                    let p = Point::new(
                        (slot.3.x + self.step * angle.cos()).clamp(0.0, 1.0),
                        (slot.3.y + self.step * angle.sin()).clamp(0.0, 1.0),
                    );
                    slot.2.push(p);
                    slot.3 = p;
                }
            }
        }
        for (id, start, points, _) in slots {
            trajectories.push(Trajectory::new(id, start, points));
        }
        StreamDataset::with_horizon(trajectories, self.timestamps)
    }
}

/// Two-regime flow workload for DMU tests: until `shift_at` the population
/// flows left-to-right along a corridor; afterwards it flows top-to-bottom.
/// The regime change makes a specific subset of transitions "significant"
/// at the shift, which DMU must detect.
#[derive(Debug, Clone)]
pub struct RegimeShiftConfig {
    /// Number of users.
    pub users: usize,
    /// Number of timestamps.
    pub timestamps: u64,
    /// Timestamp at which the flow direction flips.
    pub shift_at: u64,
    /// Step length per tick.
    pub step: f64,
}

impl Default for RegimeShiftConfig {
    fn default() -> Self {
        RegimeShiftConfig { users: 500, timestamps: 60, shift_at: 30, step: 0.04 }
    }
}

impl RegimeShiftConfig {
    /// Generate the dataset.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> StreamDataset {
        let mut trajectories = Vec::with_capacity(self.users);
        for u in 0..self.users {
            // Users sit on a horizontal corridor, drifting right; after the
            // shift they drift downward. Positions wrap around so the flow
            // is stationary within each regime.
            let mut x = rng.random::<f64>();
            let mut y = 0.35 + 0.3 * rng.random::<f64>();
            let mut points = Vec::with_capacity(self.timestamps as usize);
            for t in 0..self.timestamps {
                points.push(Point::new(x, y));
                let jitter = (rng.random::<f64>() - 0.5) * self.step * 0.4;
                if t < self.shift_at {
                    x += self.step + jitter;
                    if x > 1.0 {
                        x -= 1.0;
                    }
                } else {
                    y += self.step + jitter;
                    if y > 1.0 {
                        y -= 1.0;
                    }
                }
                x = x.clamp(0.0, 1.0);
                y = y.clamp(0.0, 1.0);
            }
            trajectories.push(Trajectory::new(u as u64, 0, points));
        }
        StreamDataset::with_horizon(trajectories, self.timestamps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrasyn_geo::Grid;

    #[test]
    fn random_walk_covers_horizon() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = RandomWalkConfig { users: 100, timestamps: 30, ..Default::default() }
            .generate(&mut rng);
        assert_eq!(ds.horizon(), 30);
        // With churn, more streams than users.
        assert!(ds.trajectories().len() > 100);
        // Every timestamp has exactly `users` active streams (slots are
        // always occupied).
        for t in 0..30 {
            assert_eq!(ds.active_count(t), 100, "t={t}");
        }
    }

    #[test]
    fn random_walk_zero_churn_one_stream_per_user() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = RandomWalkConfig { users: 50, timestamps: 20, churn: 0.0, ..Default::default() }
            .generate(&mut rng);
        assert_eq!(ds.trajectories().len(), 50);
        for t in ds.trajectories() {
            assert_eq!(t.len(), 20);
        }
    }

    #[test]
    fn random_walk_steps_are_small() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = RandomWalkConfig { users: 20, timestamps: 40, step: 0.02, churn: 0.0 }
            .generate(&mut rng);
        for t in ds.trajectories() {
            for w in t.points.windows(2) {
                assert!(w[0].distance(&w[1]) <= 0.03);
            }
        }
    }

    #[test]
    fn regime_shift_changes_dominant_transitions() {
        let mut rng = StdRng::seed_from_u64(4);
        let config = RegimeShiftConfig { users: 400, timestamps: 40, shift_at: 20, step: 0.05 };
        let ds = config.generate(&mut rng);
        let grid = Grid::unit(8);
        let gd = ds.discretize(&grid);
        // Count horizontal vs vertical cell moves before and after the shift.
        let mut before = (0u64, 0u64); // (horizontal, vertical)
        let mut after = (0u64, 0u64);
        for s in gd.iter() {
            for (i, w) in s.cells.windows(2).enumerate() {
                let t = s.start + i as u64 + 1;
                let (ax, ay) = grid.cell_xy(w[0]);
                let (bx, by) = grid.cell_xy(w[1]);
                let dx = ax != bx;
                let dy = ay != by;
                let target = if t <= 20 { &mut before } else { &mut after };
                if dx && !dy {
                    target.0 += 1;
                }
                if dy && !dx {
                    target.1 += 1;
                }
            }
        }
        assert!(before.0 > 4 * before.1.max(1), "pre-shift flow not horizontal: {before:?}");
        assert!(after.1 > 4 * after.0.max(1), "post-shift flow not vertical: {after:?}");
    }

    #[test]
    fn regime_shift_full_length_streams() {
        let mut rng = StdRng::seed_from_u64(5);
        let ds = RegimeShiftConfig::default().generate(&mut rng);
        assert_eq!(ds.trajectories().len(), 500);
        for t in ds.trajectories() {
            assert_eq!(t.len(), 60);
        }
    }
}
