//! Procedural road networks with shortest-path routing.
//!
//! Substrate for the Brinkhoff-style generator: a planar graph over the
//! unit square built from a jittered lattice. Edges carry a *speed class*
//! (1 = residential … 3 = highway) that scales traversal speed, mirroring
//! Brinkhoff's road classes. A fraction of lattice edges is deleted to
//! create irregular city blocks; connectivity is restored via a spanning
//! pass so every node can reach every other node.

use rand::Rng;
use retrasyn_geo::Point;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An outgoing edge in the adjacency list.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Destination node.
    pub to: NodeId,
    /// Euclidean length of the edge.
    pub length: f64,
    /// Speed class (1..=3); traversal speed scales with the class.
    pub class: u8,
}

/// Parameters for procedural network generation.
#[derive(Debug, Clone)]
pub struct RoadNetworkConfig {
    /// Lattice side (the network has `side²` nodes).
    pub side: u32,
    /// Positional jitter as a fraction of lattice spacing.
    pub jitter: f64,
    /// Probability of deleting a lattice edge (before the connectivity
    /// repair pass).
    pub delete_prob: f64,
    /// Fraction of rows/columns upgraded to highways (class 3).
    pub highway_fraction: f64,
}

impl Default for RoadNetworkConfig {
    fn default() -> Self {
        RoadNetworkConfig { side: 16, jitter: 0.3, delete_prob: 0.15, highway_fraction: 0.2 }
    }
}

/// An undirected road network over the unit square.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    adj: Vec<Vec<Edge>>,
    /// Trip-attraction weight per node (popularity of the surrounding
    /// block); heavy-tailed, like real city zones. Cumulative form for
    /// O(log n) weighted sampling.
    attraction_cdf: Vec<f64>,
}

impl RoadNetwork {
    /// Generate a network from `config`.
    pub fn generate<R: Rng + ?Sized>(config: &RoadNetworkConfig, rng: &mut R) -> Self {
        let side = config.side.max(2);
        let n = (side * side) as usize;
        let spacing = 1.0 / (side as f64 - 1.0).max(1.0);
        let mut nodes = Vec::with_capacity(n);
        for y in 0..side {
            for x in 0..side {
                let jx = (rng.random::<f64>() - 0.5) * config.jitter * spacing;
                let jy = (rng.random::<f64>() - 0.5) * config.jitter * spacing;
                nodes.push(Point::new(
                    (x as f64 * spacing + jx).clamp(0.0, 1.0),
                    (y as f64 * spacing + jy).clamp(0.0, 1.0),
                ));
            }
        }
        // Highways: a subset of rows and columns get class 3, the rest
        // class 1 or 2.
        let highway_rows: Vec<bool> =
            (0..side).map(|_| rng.random::<f64>() < config.highway_fraction).collect();
        let highway_cols: Vec<bool> =
            (0..side).map(|_| rng.random::<f64>() < config.highway_fraction).collect();

        // Heavy-tailed, spatially clustered attraction: real road maps have
        // popular districts (city centre, satellite towns) whose zones
        // dominate origin/destination choice. Per-node weight = capped
        // power-law tail × Gaussian district field, giving the strong
        // cell-level popularity contrast the trajectory-level metrics key
        // on.
        let districts: [(f64, f64, f64); 3] = [(0.5, 0.5, 5.0), (0.2, 0.75, 3.0), (0.8, 0.2, 2.0)];
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for node in &nodes {
            let u: f64 = rng.random::<f64>();
            let tail = (u.max(1e-9)).powf(-0.5).min(8.0);
            let mut field = 1.0;
            for &(cx, cy, amp) in &districts {
                let d2 = (node.x - cx).powi(2) + (node.y - cy).powi(2);
                field += amp * (-d2 / (2.0 * 0.12f64.powi(2))).exp();
            }
            acc += tail * field;
            cdf.push(acc);
        }

        let id = |x: u32, y: u32| -> usize { (y * side + x) as usize };
        let mut net = RoadNetwork { nodes, adj: vec![Vec::new(); n], attraction_cdf: cdf };
        let mut dsu = Dsu::new(n);
        let mut deleted: Vec<(usize, usize, u8)> = Vec::new();
        for y in 0..side {
            for x in 0..side {
                let a = id(x, y);
                // Rightward edge.
                if x + 1 < side {
                    let b = id(x + 1, y);
                    let class = if highway_rows[y as usize] {
                        3
                    } else if rng.random::<f64>() < 0.3 {
                        2
                    } else {
                        1
                    };
                    if rng.random::<f64>() < config.delete_prob {
                        deleted.push((a, b, class));
                    } else {
                        net.add_edge(a, b, class);
                        dsu.union(a, b);
                    }
                }
                // Upward edge.
                if y + 1 < side {
                    let b = id(x, y + 1);
                    let class = if highway_cols[x as usize] {
                        3
                    } else if rng.random::<f64>() < 0.3 {
                        2
                    } else {
                        1
                    };
                    if rng.random::<f64>() < config.delete_prob {
                        deleted.push((a, b, class));
                    } else {
                        net.add_edge(a, b, class);
                        dsu.union(a, b);
                    }
                }
            }
        }
        // Connectivity repair: re-add deleted edges that bridge components.
        for (a, b, class) in deleted {
            if dsu.find(a) != dsu.find(b) {
                net.add_edge(a, b, class);
                dsu.union(a, b);
            }
        }
        net
    }

    fn add_edge(&mut self, a: usize, b: usize, class: u8) {
        let length = self.nodes[a].distance(&self.nodes[b]);
        self.adj[a].push(Edge { to: NodeId(b as u32), length, class });
        self.adj[b].push(Edge { to: NodeId(a as u32), length, class });
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Position of a node.
    pub fn node(&self, id: NodeId) -> Point {
        self.nodes[id.index()]
    }

    /// Outgoing edges of a node.
    pub fn edges(&self, id: NodeId) -> &[Edge] {
        &self.adj[id.index()]
    }

    /// A uniformly random node.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        NodeId(rng.random_range(0..self.nodes.len() as u32))
    }

    /// A node sampled by trip attraction (popular zones are picked far more
    /// often, like real origin/destination distributions).
    pub fn weighted_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        let total = *self.attraction_cdf.last().expect("non-empty network");
        let pick = rng.random::<f64>() * total;
        let idx = self.attraction_cdf.partition_point(|&c| c < pick);
        NodeId(idx.min(self.nodes.len() - 1) as u32)
    }

    /// Travel-time weight of an edge: length divided by class speed.
    fn weight(e: &Edge) -> f64 {
        e.length / e.class as f64
    }

    /// Dijkstra shortest path by travel time. Returns the node sequence
    /// `from..=to`, or `None` if unreachable (cannot happen after the
    /// connectivity repair pass, but kept total for safety).
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![u32::MAX; n];
        let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        dist[from.index()] = 0.0;
        heap.push(Reverse((OrdF64(0.0), from.0)));
        while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
            if u == to.0 {
                break;
            }
            if d > dist[u as usize] {
                continue;
            }
            for e in &self.adj[u as usize] {
                let nd = d + Self::weight(e);
                if nd < dist[e.to.index()] {
                    dist[e.to.index()] = nd;
                    prev[e.to.index()] = u;
                    heap.push(Reverse((OrdF64(nd), e.to.0)));
                }
            }
        }
        if dist[to.index()].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to.0;
        while cur != from.0 {
            cur = prev[cur as usize];
            path.push(NodeId(cur));
        }
        path.reverse();
        Some(path)
    }

    /// Speed class of the edge `a -> b`, if present.
    pub fn edge_class(&self, a: NodeId, b: NodeId) -> Option<u8> {
        self.adj[a.index()].iter().find(|e| e.to == b).map(|e| e.class)
    }
}

/// Total order on finite f64 for the Dijkstra heap.
#[derive(PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("distances are finite")
    }
}

/// Disjoint-set union for connectivity repair.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, x: usize) -> u32 {
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x as u32;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> RoadNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        RoadNetwork::generate(&RoadNetworkConfig::default(), &mut rng)
    }

    #[test]
    fn generation_shape() {
        let n = net(1);
        assert_eq!(n.num_nodes(), 256);
        // Lattice has 2*16*15 = 480 potential edges; after deletion/repair
        // we keep a connected majority.
        assert!(n.num_edges() > 300, "edges={}", n.num_edges());
        for i in 0..n.num_nodes() {
            let p = n.node(NodeId(i as u32));
            assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
        }
    }

    #[test]
    fn fully_connected_after_repair() {
        for seed in 0..5 {
            let n = net(seed);
            // BFS from node 0 reaches everything.
            let mut seen = vec![false; n.num_nodes()];
            let mut queue = vec![0usize];
            seen[0] = true;
            while let Some(u) = queue.pop() {
                for e in n.edges(NodeId(u as u32)) {
                    if !seen[e.to.index()] {
                        seen[e.to.index()] = true;
                        queue.push(e.to.index());
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "seed {seed} disconnected");
        }
    }

    #[test]
    fn shortest_path_endpoints_and_continuity() {
        let n = net(2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let a = n.random_node(&mut rng);
            let b = n.random_node(&mut rng);
            let path = n.shortest_path(a, b).expect("connected");
            assert_eq!(path[0], a);
            assert_eq!(*path.last().unwrap(), b);
            for w in path.windows(2) {
                assert!(
                    n.edge_class(w[0], w[1]).is_some(),
                    "path step {:?}->{:?} is not an edge",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn shortest_path_self_is_trivial() {
        let n = net(4);
        let a = NodeId(7);
        assert_eq!(n.shortest_path(a, a), Some(vec![a]));
    }

    #[test]
    fn highways_are_preferred() {
        // A direct class-1 detour should lose to a longer class-3 route in
        // travel time; verify via a hand-built network.
        let mut net = RoadNetwork {
            nodes: vec![
                Point::new(0.0, 0.0),
                Point::new(0.5, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.5, 0.4),
            ],
            adj: vec![Vec::new(); 4],
            attraction_cdf: vec![1.0, 2.0, 3.0, 4.0],
        };
        // Slow direct chain 0-1-2 (class 1), fast detour 0-3-2 (class 3).
        net.add_edge(0, 1, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(0, 3, 3);
        net.add_edge(3, 2, 3);
        let path = net.shortest_path(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(path, vec![NodeId(0), NodeId(3), NodeId(2)]);
    }

    #[test]
    fn edge_class_lookup() {
        let n = net(5);
        let e = n.edges(NodeId(0))[0];
        assert_eq!(n.edge_class(NodeId(0), e.to), Some(e.class));
        // Symmetric.
        assert_eq!(n.edge_class(e.to, NodeId(0)), Some(e.class));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = net(42);
        let b = net(42);
        assert_eq!(a.num_edges(), b.num_edges());
        for i in 0..a.num_nodes() {
            assert_eq!(a.node(NodeId(i as u32)), b.node(NodeId(i as u32)));
        }
    }

    #[test]
    fn weighted_node_is_heavy_tailed() {
        let n = net(6);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; n.num_nodes()];
        for _ in 0..20_000 {
            counts[n.weighted_node(&mut rng).index()] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = 20_000.0 / n.num_nodes() as f64;
        // Popular nodes dominate: the top node should far exceed uniform.
        assert!(max > 4.0 * mean, "max={max} mean={mean}");
        // Still a proper distribution over all nodes.
        assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), 20_000);
    }
}
