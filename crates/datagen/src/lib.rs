//! Trajectory stream generators — the evaluation substrates.
//!
//! The paper evaluates on one real dataset (T-Drive) and two datasets
//! produced by Brinkhoff's network-based generator for moving objects
//! (Oldenburg, SanJoaquin). Neither the raw taxi logs nor Brinkhoff's Java
//! tool are available here, so this crate implements the closest synthetic
//! equivalents (documented in DESIGN.md §3):
//!
//! - [`RoadNetwork`]: a procedural road-network substrate (perturbed-grid
//!   planar graph with speed classes) with Dijkstra shortest paths.
//! - [`BrinkhoffConfig`]: network-constrained moving objects — each object
//!   enters at a node, travels a shortest path to a random destination and
//!   quits stochastically; new objects enter every timestamp
//!   ([`BrinkhoffConfig::oldenburg`] and [`BrinkhoffConfig::san_joaquin`]
//!   reproduce Table I at scale 1.0).
//! - [`TDriveConfig`]: a hotspot-gravity taxi simulator with morning/evening
//!   rush-hour flows and GPS dropout that fragments taxis into many short
//!   streams (matching T-Drive's 13.6-point average stream).
//! - [`RandomWalkConfig`] / [`RegimeShiftConfig`]: controlled generators for
//!   unit tests and ablations (the regime shift exercises DMU's
//!   significant-transition detection).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brinkhoff;
pub mod roadnet;
pub mod synthetic;
pub mod tdrive;

pub use brinkhoff::BrinkhoffConfig;
pub use roadnet::{NodeId, RoadNetwork, RoadNetworkConfig};
pub use synthetic::{RandomWalkConfig, RegimeShiftConfig};
pub use tdrive::TDriveConfig;

/// One standard-normal draw (Box–Muller), shared by the generators.
pub(crate) fn gaussian<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}
