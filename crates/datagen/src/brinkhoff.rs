//! Brinkhoff-style network-based moving-object generator.
//!
//! Reproduces the behaviour of Brinkhoff's generator as used in the paper
//! (§V-A): objects enter the road network at random nodes, travel shortest
//! paths toward random destinations at class-dependent speeds, and quit —
//! either on arrival (after possibly chaining a few trips) or by randomly
//! ceasing to report ("users in these two datasets randomly quit sharing
//! their locations"). A fixed number of new objects is injected at every
//! timestamp.
//!
//! Presets reproduce Table I:
//! - [`BrinkhoffConfig::oldenburg`]: 10,000 initial objects + 500/ts over
//!   500 ts → 260,000 streams, average length ≈ 60.
//! - [`BrinkhoffConfig::san_joaquin`]: 10,000 initial + 1,000/ts over
//!   1,000 ts → 1,010,000 streams, average length ≈ 55.

use crate::roadnet::{NodeId, RoadNetwork, RoadNetworkConfig};
use rand::Rng;
use retrasyn_geo::{Point, StreamDataset, Trajectory};

/// Configuration of the network-based generator.
#[derive(Debug, Clone)]
pub struct BrinkhoffConfig {
    /// Objects present at t = 0.
    pub initial_objects: usize,
    /// New objects entering at each subsequent timestamp.
    pub new_per_ts: usize,
    /// Number of timestamps.
    pub timestamps: u64,
    /// Per-timestamp probability that an object stops reporting.
    pub quit_prob: f64,
    /// Probability of chaining a new trip after reaching a destination
    /// (otherwise the object quits).
    pub continue_prob: f64,
    /// Base distance travelled per timestamp on a class-1 road.
    pub base_speed: f64,
    /// Road-network parameters.
    pub network: RoadNetworkConfig,
}

impl Default for BrinkhoffConfig {
    fn default() -> Self {
        BrinkhoffConfig {
            initial_objects: 1000,
            new_per_ts: 50,
            timestamps: 100,
            quit_prob: 1.0 / 60.0,
            continue_prob: 0.8,
            base_speed: 0.012,
            network: RoadNetworkConfig::default(),
        }
    }
}

impl BrinkhoffConfig {
    /// The Oldenburg preset of Table I (use [`Self::scaled`] to shrink).
    pub fn oldenburg() -> Self {
        BrinkhoffConfig {
            initial_objects: 10_000,
            new_per_ts: 500,
            timestamps: 500,
            quit_prob: 1.0 / 85.0,
            continue_prob: 0.9,
            ..Default::default()
        }
    }

    /// The SanJoaquin preset of Table I.
    pub fn san_joaquin() -> Self {
        BrinkhoffConfig {
            initial_objects: 10_000,
            new_per_ts: 1_000,
            timestamps: 1_000,
            quit_prob: 1.0 / 72.0,
            continue_prob: 0.9,
            ..Default::default()
        }
    }

    /// Scale object counts by `f` (time span unchanged). Used to run the
    /// full experiment matrix on laptop-class hardware.
    pub fn scaled(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "scale must be in (0, 1]");
        self.initial_objects = ((self.initial_objects as f64 * f).round() as usize).max(1);
        self.new_per_ts = (self.new_per_ts as f64 * f).round() as usize;
        self
    }

    /// Generate the dataset.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> StreamDataset {
        let network = RoadNetwork::generate(&self.network, rng);
        self.generate_on(&network, rng)
    }

    /// Generate on an existing network (lets tests share one network).
    pub fn generate_on<R: Rng + ?Sized>(
        &self,
        network: &RoadNetwork,
        rng: &mut R,
    ) -> StreamDataset {
        let mut trajectories = Vec::with_capacity(
            self.initial_objects + self.new_per_ts * self.timestamps.saturating_sub(1) as usize,
        );
        let mut active: Vec<MovingObject> = Vec::new();
        let mut next_user = 0u64;
        for t in 0..self.timestamps {
            // Inject new objects.
            let incoming = if t == 0 { self.initial_objects } else { self.new_per_ts };
            for _ in 0..incoming {
                if let Some(obj) = MovingObject::spawn(next_user, t, network, rng) {
                    active.push(obj);
                    next_user += 1;
                }
            }
            // Advance every active object by one tick; retire quitters.
            let mut still_active = Vec::with_capacity(active.len());
            for mut obj in active {
                obj.record_position(network);
                let quits = rng.random::<f64>() < self.quit_prob
                    || !obj.advance(self, network, rng)
                    || t == self.timestamps - 1;
                if quits {
                    trajectories.push(obj.into_trajectory());
                } else {
                    still_active.push(obj);
                }
            }
            active = still_active;
        }
        StreamDataset::with_horizon(trajectories, self.timestamps)
    }
}

/// An in-flight object travelling the network.
struct MovingObject {
    user: u64,
    start: u64,
    points: Vec<Point>,
    /// Remaining path (current edge is `path[leg] -> path[leg+1]`).
    path: Vec<NodeId>,
    leg: usize,
    /// Fraction of the current edge already covered.
    progress: f64,
}

impl MovingObject {
    fn spawn<R: Rng + ?Sized>(
        user: u64,
        start: u64,
        network: &RoadNetwork,
        rng: &mut R,
    ) -> Option<Self> {
        let from = network.weighted_node(rng);
        let to = network.weighted_node(rng);
        let path = network.shortest_path(from, to)?;
        Some(MovingObject { user, start, points: Vec::new(), path, leg: 0, progress: 0.0 })
    }

    /// Current continuous position, interpolated along the current edge.
    fn position(&self, network: &RoadNetwork) -> Point {
        if self.leg + 1 >= self.path.len() {
            return network.node(*self.path.last().unwrap());
        }
        let a = network.node(self.path[self.leg]);
        let b = network.node(self.path[self.leg + 1]);
        Point::new(a.x + (b.x - a.x) * self.progress, a.y + (b.y - a.y) * self.progress)
    }

    fn record_position(&mut self, network: &RoadNetwork) {
        let p = self.position(network);
        self.points.push(p);
    }

    /// Move one tick along the path; on arrival, either chain a new trip or
    /// signal that the object is done (`false`).
    fn advance<R: Rng + ?Sized>(
        &mut self,
        config: &BrinkhoffConfig,
        network: &RoadNetwork,
        rng: &mut R,
    ) -> bool {
        let mut budget = config.base_speed * (0.75 + 0.5 * rng.random::<f64>());
        loop {
            if self.leg + 1 >= self.path.len() {
                // Arrived. Chain a new trip from here?
                if rng.random::<f64>() < config.continue_prob {
                    let here = *self.path.last().unwrap();
                    let dest = network.weighted_node(rng);
                    match network.shortest_path(here, dest) {
                        Some(path) if path.len() > 1 => {
                            self.path = path;
                            self.leg = 0;
                            self.progress = 0.0;
                            continue;
                        }
                        _ => return false,
                    }
                }
                return false;
            }
            let a = self.path[self.leg];
            let b = self.path[self.leg + 1];
            let len = network.node(a).distance(&network.node(b)).max(1e-9);
            let class = network.edge_class(a, b).unwrap_or(1) as f64;
            let speed = budget * class;
            let remaining = (1.0 - self.progress) * len;
            if speed < remaining {
                self.progress += speed / len;
                return true;
            }
            // Consume the rest of this edge and continue on the next one.
            budget -= remaining / class;
            self.leg += 1;
            self.progress = 0.0;
            if budget <= 0.0 {
                return true;
            }
        }
    }

    fn into_trajectory(self) -> Trajectory {
        Trajectory::new(self.user, self.start, self.points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrasyn_geo::Grid;

    fn small() -> BrinkhoffConfig {
        BrinkhoffConfig {
            initial_objects: 200,
            new_per_ts: 20,
            timestamps: 60,
            ..Default::default()
        }
    }

    #[test]
    fn stream_count_matches_injection_schedule() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = small().generate(&mut rng);
        // Every injected object yields exactly one stream.
        assert_eq!(ds.trajectories().len(), 200 + 20 * 59);
        assert_eq!(ds.horizon(), 60);
    }

    #[test]
    fn streams_fit_horizon_and_are_nonempty() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = small().generate(&mut rng);
        for t in ds.trajectories() {
            assert!(!t.points.is_empty());
            assert!(t.end() < 60);
            for p in &t.points {
                assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
            }
        }
    }

    #[test]
    fn average_length_tracks_quit_prob() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = BrinkhoffConfig {
            initial_objects: 600,
            new_per_ts: 30,
            timestamps: 200,
            quit_prob: 1.0 / 20.0,
            ..Default::default()
        };
        let ds = config.generate(&mut rng);
        let stats = ds.stats(&Grid::unit(6));
        // Lifetime is capped by arrival/continue churn and the horizon, so
        // the mean sits below 1/quit_prob but well above 1.
        assert!(
            stats.avg_length > 6.0 && stats.avg_length < 25.0,
            "avg_length={}",
            stats.avg_length
        );
    }

    #[test]
    fn movement_is_mostly_grid_adjacent() {
        // With base_speed ~0.012 and K = 10 (cell width 0.1), consecutive
        // positions should almost always land in adjacent cells.
        let mut rng = StdRng::seed_from_u64(4);
        let ds = small().generate(&mut rng);
        let grid = Grid::unit(10);
        let gd = ds.discretize(&grid);
        let raw_streams = ds.trajectories().len();
        let split_streams = gd.num_streams();
        let split_ratio = (split_streams - raw_streams) as f64 / raw_streams as f64;
        assert!(split_ratio < 0.10, "too many non-adjacent jumps: {split_ratio}");
    }

    #[test]
    fn oldenburg_preset_shape() {
        // Scaled-down Oldenburg still shows the Table-I structure: the
        // stream count equals initial + new_per_ts * (ts − 1).
        let config = BrinkhoffConfig::oldenburg().scaled(0.01);
        let mut rng = StdRng::seed_from_u64(5);
        let ds = config.generate(&mut rng);
        assert_eq!(ds.trajectories().len(), 100 + 5 * 499);
        assert_eq!(ds.horizon(), 500);
    }

    #[test]
    fn san_joaquin_preset_parameters() {
        let c = BrinkhoffConfig::san_joaquin();
        assert_eq!(c.initial_objects, 10_000);
        assert_eq!(c.new_per_ts, 1_000);
        assert_eq!(c.timestamps, 1_000);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small().generate(&mut StdRng::seed_from_u64(9));
        let b = small().generate(&mut StdRng::seed_from_u64(9));
        assert_eq!(a.trajectories().len(), b.trajectories().len());
        assert_eq!(a.trajectories()[5], b.trajectories()[5]);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn scaled_rejects_zero() {
        let _ = BrinkhoffConfig::oldenburg().scaled(0.0);
    }
}
