//! The word-parallel tally must be *bit-exact* with the per-bit reference
//! path it replaced, and the zero-allocation `perturb_into` must match the
//! per-bit perturbation distribution exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrasyn_ldp::{BitReport, Oue};

/// The straightforward per-bit reference tally the seed implementation
/// used: test every position of every report.
fn tally_per_bit(domain: usize, reports: &[BitReport]) -> Vec<u64> {
    let mut ones = vec![0u64; domain];
    for r in reports {
        assert_eq!(r.len(), domain);
        for (i, one) in ones.iter_mut().enumerate() {
            if r.get(i) {
                *one += 1;
            }
        }
    }
    ones
}

fn random_reports(domain: usize, n: usize, density: f64, seed: u64) -> Vec<BitReport> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut r = BitReport::zeros(domain);
            for i in 0..domain {
                if rng.random::<f64>() < density {
                    r.set(i, true);
                }
            }
            r
        })
        .collect()
}

#[test]
fn word_parallel_tally_is_bit_exact() {
    // Awkward domain sizes around word boundaries, across densities.
    for domain in [2usize, 63, 64, 65, 130, 1000] {
        let oue = Oue::new(1.0, domain).unwrap();
        for (density, seed) in [(0.0, 1u64), (0.05, 2), (0.5, 3), (1.0, 4)] {
            let reports = random_reports(domain, 37, density, seed);
            let fast = oue.tally(&reports).unwrap();
            let reference = tally_per_bit(domain, &reports);
            assert_eq!(fast, reference, "domain={domain} density={density}");
        }
    }
}

#[test]
fn tally_into_accumulates_exactly() {
    let domain = 300;
    let oue = Oue::new(0.7, domain).unwrap();
    let reports = random_reports(domain, 25, 0.3, 9);
    let batch = oue.tally(&reports).unwrap();
    let mut incremental = vec![0u64; domain];
    for r in &reports {
        oue.tally_into(&mut incremental, r).unwrap();
    }
    assert_eq!(batch, incremental);
}

#[test]
fn tally_rejects_mismatched_lengths() {
    let oue = Oue::new(1.0, 64).unwrap();
    let bad = BitReport::zeros(65);
    assert!(oue.tally(&[bad]).is_err());
    let good = BitReport::zeros(64);
    let mut short_ones = vec![0u64; 63];
    assert!(oue.tally_into(&mut short_ones, &good).is_err());
}

#[test]
fn perturb_into_reuses_buffer_and_matches_marginals() {
    // Exactness check of the geometric-skipping perturbation: empirical
    // per-position 1-frequencies must match p on the true bit and q
    // elsewhere within tight binomial bounds.
    let domain = 64;
    let eps = 1.0;
    let oue = Oue::new(eps, domain).unwrap();
    let q = oue.q();
    let mut rng = StdRng::seed_from_u64(42);
    let rounds = 60_000u64;
    let value = 17usize;
    let mut ones = vec![0u64; domain];
    let mut scratch = BitReport::zeros(domain);
    for _ in 0..rounds {
        oue.perturb_into(value, &mut scratch, &mut rng).unwrap();
        oue.tally_into(&mut ones, &scratch).unwrap();
    }
    for (i, &c) in ones.iter().enumerate() {
        let expected = if i == value { 0.5 } else { q };
        let sigma = (expected * (1.0 - expected) * rounds as f64).sqrt();
        let diff = (c as f64 - expected * rounds as f64).abs();
        assert!(
            diff < 5.0 * sigma,
            "position {i}: count {c}, expected {}",
            expected * rounds as f64
        );
    }
}

#[test]
fn perturb_and_perturb_into_share_distribution() {
    // The allocating wrapper goes through the same code path; sanity-check
    // total set-bit counts look identical in expectation.
    let domain = 512;
    let oue = Oue::new(2.0, domain).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let rounds = 4_000;
    let mut total_wrapper = 0u64;
    for _ in 0..rounds {
        total_wrapper += oue.perturb(3, &mut rng).unwrap().count_ones();
    }
    let mut total_into = 0u64;
    let mut scratch = BitReport::zeros(domain);
    for _ in 0..rounds {
        oue.perturb_into(3, &mut scratch, &mut rng).unwrap();
        total_into += scratch.count_ones();
    }
    let expected = rounds as f64 * (0.5 + (domain - 1) as f64 * oue.q());
    let sigma = (rounds as f64 * domain as f64 * 0.25).sqrt();
    assert!((total_wrapper as f64 - expected).abs() < 5.0 * sigma);
    assert!((total_into as f64 - expected).abs() < 5.0 * sigma);
}

#[test]
fn reset_reuses_capacity() {
    let mut r = BitReport::zeros(256);
    for i in (0..256).step_by(3) {
        r.set(i, true);
    }
    r.reset(256);
    assert_eq!(r.count_ones(), 0);
    assert_eq!(r.len(), 256);
    // Shrinking then growing within capacity keeps the tail zeroed.
    r.reset(100);
    assert_eq!(r.len(), 100);
    r.reset(200);
    assert_eq!(r.count_ones(), 0);
}
