//! Property-based tests for the LDP mechanisms.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_ldp::{
    binomial, postprocess, FrequencyOracle, Grr, Oue, PrivacyBudget, ReportMode, WEventLedger,
};

proptest! {
    /// OUE parameters always satisfy the exact LDP constraint
    /// (p/q)·((1−q)/(1−p)) = e^ε.
    #[test]
    fn oue_ratio_is_exactly_eps(eps in 0.05f64..6.0, domain in 2usize..512) {
        let oue = Oue::new(eps, domain).unwrap();
        let p = 0.5;
        let q = oue.q();
        let ratio = (p / q) * ((1.0 - q) / (1.0 - p));
        prop_assert!((ratio - eps.exp()).abs() / eps.exp() < 1e-9);
    }

    /// Debiasing is the exact inverse of the expected perturbation: feeding
    /// the *expected* ones-counts back recovers the true frequencies.
    #[test]
    fn oue_debias_inverts_expectation(
        eps in 0.2f64..4.0,
        counts in prop::collection::vec(0u64..100, 2..40),
    ) {
        let n: u64 = counts.iter().sum();
        prop_assume!(n > 0);
        let d = counts.len();
        let oue = Oue::new(eps, d).unwrap();
        let q = oue.q();
        // Expected reported ones per position: c*p + (n−c)*q.
        let expected_ones: Vec<u64> = counts
            .iter()
            .map(|&c| (c as f64 * 0.5 + (n - c) as f64 * q).round() as u64)
            .collect();
        let est = oue.debias(&expected_ones, n);
        for (e, &c) in est.iter().zip(&counts) {
            let truth = c as f64 / n as f64;
            // Rounding the expectation moves each estimate by at most
            // 1/(n·(p−q)).
            let slack = 1.0 / (n as f64 * (0.5 - q)) + 1e-9;
            prop_assert!((e - truth).abs() <= slack, "est {e} vs truth {truth}");
        }
    }

    /// GRR probabilities are a valid distribution and honour p/q = e^ε.
    #[test]
    fn grr_probabilities_consistent(eps in 0.05f64..6.0, domain in 2usize..512) {
        let grr = Grr::new(eps, domain).unwrap();
        let total = grr.p() + (domain as f64 - 1.0) * grr.q();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!((grr.p() / grr.q() - eps.exp()).abs() / eps.exp() < 1e-9);
    }

    /// Binomial samples are always within [0, n], and the two exact paths
    /// agree with the approximate path on the mean within 5 sigma.
    #[test]
    fn binomial_bounds(n in 0u64..200_000, p in 0.0f64..=1.0, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = binomial::sample(n, p, &mut rng);
        prop_assert!(x <= n);
    }

    /// norm_sub always produces a non-negative vector summing to the
    /// target.
    #[test]
    fn norm_sub_invariants(
        mut v in prop::collection::vec(-1.0f64..1.0, 1..64),
        target in 0.0f64..4.0,
    ) {
        postprocess::norm_sub(&mut v, target);
        prop_assert!(v.iter().all(|&x| x >= 0.0));
        let sum: f64 = v.iter().sum();
        prop_assert!((sum - target).abs() < 1e-6, "sum={sum} target={target}");
    }

    /// clamp + normalize yields a probability vector (or uniform fallback).
    #[test]
    fn normalize_invariants(mut v in prop::collection::vec(-1.0f64..1.0, 1..64)) {
        postprocess::clamp_nonnegative(&mut v);
        postprocess::normalize(&mut v);
        let sum: f64 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(v.iter().all(|&x| x >= 0.0));
    }

    /// Budget-division ledgers accept any schedule whose windows fit ε and
    /// reject any schedule with one overfull window.
    #[test]
    fn ledger_budget_schedules(
        w in 1usize..8,
        spends in prop::collection::vec(0.0f64..0.5, 1..40),
    ) {
        let eps = 1.0;
        let mut ledger = WEventLedger::new(eps, w);
        let mut ok = true;
        let mut window: Vec<f64> = Vec::new();
        for (t, &s) in spends.iter().enumerate() {
            window.push(s);
            if window.len() > w {
                window.remove(0);
            }
            if window.iter().sum::<f64>() > eps + 1e-12 {
                ok = false;
            }
            ledger.record_budget(t as u64, s);
        }
        prop_assert_eq!(ledger.verify().is_ok(), ok);
    }

    /// Population ledgers accept exactly the schedules with per-user gaps
    /// >= w.
    #[test]
    fn ledger_population_schedules(
        w in 1u64..8,
        gaps in prop::collection::vec(1u64..12, 1..20),
    ) {
        let mut ledger = WEventLedger::new(1.0, w as usize);
        let mut t = 0u64;
        let mut ok = true;
        ledger.record_user_report(1, t);
        for &g in &gaps {
            if g < w {
                ok = false;
            }
            t += g;
            ledger.record_user_report(1, t);
        }
        prop_assert_eq!(ledger.verify().is_ok(), ok);
    }

    /// PrivacyBudget::split conserves the budget.
    #[test]
    fn split_conserves(eps in 0.01f64..10.0, portion in 0.0f64..=1.0) {
        let b = PrivacyBudget::new(eps).unwrap();
        let (a, rest) = b.split(portion);
        prop_assert!((a + rest - eps).abs() < 1e-12);
        prop_assert!(a >= 0.0 && rest >= 0.0);
    }
}

/// Statistical property (not proptest-randomized): collect() is unbiased —
/// the mean estimate over many rounds converges to the truth.
#[test]
fn oue_collect_unbiased_over_rounds() {
    let domain = 6;
    let oue = Oue::new(0.8, domain).unwrap();
    let values: Vec<usize> = (0..600).map(|i| if i % 3 == 0 { 1 } else { 4 }).collect();
    let mut rng = StdRng::seed_from_u64(99);
    let rounds = 300;
    let mut mean = vec![0.0; domain];
    for _ in 0..rounds {
        let est = oue.collect(&values, ReportMode::Aggregate, &mut rng).unwrap();
        for (m, e) in mean.iter_mut().zip(&est.freqs) {
            *m += e / rounds as f64;
        }
    }
    let sd = (FrequencyOracle::variance(&oue, 600) / rounds as f64).sqrt();
    assert!((mean[1] - 1.0 / 3.0).abs() < 4.0 * sd, "mean[1]={}", mean[1]);
    assert!((mean[4] - 2.0 / 3.0).abs() < 4.0 * sd, "mean[4]={}", mean[4]);
    for j in [0usize, 2, 3, 5] {
        assert!(mean[j].abs() < 4.0 * sd, "mean[{j}]={}", mean[j]);
    }
}

/// Empirical variance of the aggregate path matches Eq. 3 within 25%.
#[test]
fn oue_variance_matches_eq3() {
    let domain = 4;
    let n = 400u64;
    let eps = 1.0;
    let oue = Oue::new(eps, domain).unwrap();
    let values: Vec<usize> = vec![2; n as usize];
    let mut rng = StdRng::seed_from_u64(7);
    let rounds = 400;
    // Variance of the estimate of an *empty* cell (frequency 0): Eq. 3 is
    // the dominant term for rare values.
    let mut samples = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let est = oue.collect(&values, ReportMode::Aggregate, &mut rng).unwrap();
        samples.push(est.freqs[0]);
    }
    let mean: f64 = samples.iter().sum::<f64>() / rounds as f64;
    let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / rounds as f64;
    let expected = FrequencyOracle::variance(&oue, n);
    assert!((var - expected).abs() / expected < 0.25, "empirical {var} vs Eq.3 {expected}");
}
