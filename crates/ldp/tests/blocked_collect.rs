//! Pins for the blocked counter-based collection kernel: the blocked
//! kernel must produce per-position ones counts from exactly the same
//! distribution as the frozen report-buffer reference
//! (`perturb_into` + `tally_into`) in both the dense and sparse regimes,
//! and its output must be invariant to how the `(reporter × domain)`
//! rectangle is partitioned — the property the pooled collection path is
//! built on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrasyn_ldp::{BitReport, Oue, Philox};

/// Two-sample chi-square statistic between histograms `a` and `b` (unequal
/// totals handled by the usual √(N_b/N_a) weighting). Returns the
/// statistic and the degrees of freedom (occupied categories − 1).
fn two_sample_chi_square(a: &[u64], b: &[u64], na: u64, nb: u64) -> (f64, usize) {
    let (ka, kb) = ((nb as f64 / na as f64).sqrt(), (na as f64 / nb as f64).sqrt());
    let mut chi = 0.0;
    let mut occupied = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        if x + y == 0 {
            continue;
        }
        occupied += 1;
        let d = ka * x as f64 - kb * y as f64;
        chi += d * d / (x + y) as f64;
    }
    (chi, occupied.saturating_sub(1))
}

/// Loose 99.9th-percentile bound for chi-square with `dof` degrees of
/// freedom (Wilson–Hilferty plus margin; deliberately conservative so the
/// seeded test never flakes while still catching a wrong distribution).
fn chi2_crit(dof: usize) -> f64 {
    dof as f64 + 4.0 * (2.0 * dof as f64).sqrt() + 10.0
}

/// The frozen report-buffer reference round (exact per-bit OUE process).
fn reference_ones(oue: &Oue, values: &[usize], rng: &mut StdRng) -> Vec<u64> {
    let mut ones = vec![0u64; oue.domain()];
    let mut scratch = BitReport::zeros(oue.domain());
    for &v in values {
        oue.perturb_into(v, &mut scratch, rng).unwrap();
        oue.tally_into(&mut ones, &scratch).unwrap();
    }
    ones
}

fn blocked_ones(oue: &Oue, values: &[usize], ph: &Philox) -> Vec<u64> {
    let mut ones = Vec::new();
    oue.collect_ones_blocked(values, 0, ph, &mut ones).unwrap();
    ones
}

/// The blocked kernel and the report-buffer reference must put their 1s
/// at identically distributed positions. Covers both kernel regimes: the
/// dense halfword threshold pass (ε = 1 and ε = 0.3 → q ≈ 0.27 / 0.43)
/// and the sparse geometric-skipping row walk (ε = 3.5 → q ≈ 0.029 <
/// 0.04).
#[test]
fn blocked_matches_reference_distribution_per_position() {
    for (eps, seed) in [(1.0, 11u64), (0.3, 22), (3.5, 33)] {
        let domain = 128;
        let oue = Oue::new(eps, domain).unwrap();
        // A skewed value mix so the true-bit Bernoulli(p) lands unevenly.
        let values: Vec<usize> = (0..600).map(|i| (i * i + 3 * i) % domain).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ref_hist = vec![0u64; domain];
        let mut blk_hist = vec![0u64; domain];
        for _ in 0..12 {
            for (acc, x) in ref_hist.iter_mut().zip(reference_ones(&oue, &values, &mut rng)) {
                *acc += x;
            }
            let ph = Philox::new(rng.random());
            for (acc, x) in blk_hist.iter_mut().zip(blocked_ones(&oue, &values, &ph)) {
                *acc += x;
            }
        }
        let (rn, bn) = (ref_hist.iter().sum::<u64>(), blk_hist.iter().sum::<u64>());
        assert!(rn > 10_000 && bn > 10_000, "eps={eps}: too few ones: {rn} vs {bn}");
        let sd = (rn.max(bn) as f64).sqrt();
        assert!(
            (rn as f64 - bn as f64).abs() < 6.0 * sd,
            "eps={eps}: ones totals diverge: {rn} vs {bn}"
        );
        let (chi, dof) = two_sample_chi_square(&ref_hist, &blk_hist, rn, bn);
        assert!(
            chi < chi2_crit(dof),
            "eps={eps}: blocked ones diverge from reference: chi={chi:.1} dof={dof} (crit {:.1})",
            chi2_crit(dof)
        );
    }
}

/// Dense regime: merging gang-aligned domain shards reproduces the
/// full-range round bit-for-bit, for aligned and ragged (tail) domains
/// alike — the invariance `CollectionPool` relies on to shard the domain.
#[test]
fn blocked_dense_domain_shards_merge_bit_identically() {
    for domain in [256usize, 100, 321] {
        let oue = Oue::new(1.0, domain).unwrap();
        assert!(oue.blocked_dense());
        let values: Vec<usize> = (0..300).map(|i| (i * 17 + 5) % domain).collect();
        let ph = Philox::new(0xfeed_5eed_0123_4567);
        let full = blocked_ones(&oue, &values, &ph);
        // Two shardings: one mid-domain split and one per-gang split.
        for bounds in [vec![0, 64, domain], vec![0, 64, 128, 192, domain]] {
            let mut merged = vec![0u64; domain];
            for w in bounds.windows(2) {
                let (lo, hi) = (w[0], w[1].min(domain));
                if lo >= hi {
                    continue;
                }
                let mut shard = vec![0u64; hi - lo];
                oue.blocked_tally_range(&values, 0, &ph, lo, hi, &mut shard).unwrap();
                for (m, s) in merged[lo..hi].iter_mut().zip(&shard) {
                    *m += s;
                }
            }
            assert_eq!(merged, full, "domain={domain} bounds={bounds:?}");
        }
    }
}

/// Sparse regime: splitting the reporters across shards (with global row
/// bases) reproduces the unsharded round bit-for-bit.
#[test]
fn blocked_sparse_reporter_shards_merge_bit_identically() {
    let domain = 96;
    let oue = Oue::new(3.5, domain).unwrap();
    assert!(!oue.blocked_dense());
    let values: Vec<usize> = (0..250).map(|i| (i * 29 + 1) % domain).collect();
    let ph = Philox::new(0x0bad_cafe_dead_beef);
    let full = blocked_ones(&oue, &values, &ph);
    let mut merged = vec![0u64; domain];
    for (start, end) in [(0usize, 100usize), (100, 173), (173, 250)] {
        let mut shard = vec![0u64; domain];
        oue.blocked_tally_sparse(&values[start..end], start as u32, &ph, &mut shard).unwrap();
        for (m, s) in merged.iter_mut().zip(&shard) {
            *m += s;
        }
    }
    assert_eq!(merged, full);
}

/// Fixed key → bit-identical output; different keys → different draws.
#[test]
fn blocked_is_deterministic_in_the_key() {
    let oue = Oue::new(1.0, 128).unwrap();
    let values: Vec<usize> = (0..200).map(|i| (i * 7) % 128).collect();
    let a = blocked_ones(&oue, &values, &Philox::new(42));
    let b = blocked_ones(&oue, &values, &Philox::new(42));
    let c = blocked_ones(&oue, &values, &Philox::new(43));
    assert_eq!(a, b);
    assert_ne!(a, c);
}

/// Every per-position count is bounded by the number of reporters, in
/// both regimes.
#[test]
fn blocked_counts_bounded_by_reporters() {
    for eps in [0.2, 1.0, 4.0] {
        let oue = Oue::new(eps, 64).unwrap();
        let values = vec![5usize; 200];
        let ones = blocked_ones(&oue, &values, &Philox::new(9));
        assert!(ones.iter().all(|&c| c <= 200), "eps={eps}: {ones:?}");
    }
}

/// The blocked estimates must be unbiased (debiasing the blocked counts
/// recovers the true frequencies within the mechanism's variance).
#[test]
fn blocked_estimates_are_unbiased() {
    for eps in [1.0, 3.5] {
        let oue = Oue::new(eps, 5).unwrap();
        let n = 5000usize;
        let values: Vec<usize> = (0..n).map(|i| if i % 5 < 3 { 2 } else { 0 }).collect();
        let ones = blocked_ones(&oue, &values, &Philox::new(0x5eed + eps.to_bits()));
        let freqs = oue.debias(&ones, n as u64);
        let sd = Oue::variance(&oue, n as u64).sqrt();
        assert!((freqs[2] - 0.6).abs() < 3.5 * sd, "eps={eps}: est[2]={}", freqs[2]);
        assert!((freqs[0] - 0.4).abs() < 3.5 * sd, "eps={eps}: est[0]={}", freqs[0]);
        assert!(freqs[1].abs() < 3.5 * sd, "eps={eps}");
        assert!(freqs[3].abs() < 3.5 * sd, "eps={eps}");
    }
}

/// Input validation: out-of-domain values and row bases that would
/// overflow the 32-bit counter word are rejected, in both regimes.
#[test]
fn blocked_kernel_validates_inputs() {
    for eps in [1.0, 3.5] {
        let oue = Oue::new(eps, 8).unwrap();
        let ph = Philox::new(0);
        let mut ones = Vec::new();
        assert!(oue.collect_ones_blocked(&[0, 9], 0, &ph, &mut ones).is_err());
        assert!(oue.collect_ones_blocked(&[0, 1], u32::MAX - 1, &ph, &mut ones).is_err());
        // Base + values.len() just fitting is fine.
        assert!(oue.collect_ones_blocked(&[0, 1], u32::MAX - 2, &ph, &mut ones).is_ok());
    }
}
