//! Pins for the fused perturb→tally collection fast path: the fused
//! kernel must produce per-position ones counts from exactly the same
//! distribution as the frozen report-buffer reference
//! (`perturb_into` + `tally_into`), the in-place Aggregate round must
//! reproduce the historical allocating path bit-for-bit (same random
//! stream), and `debias_into` must match `debias`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_ldp::oue::OUE_P;
use retrasyn_ldp::{binomial, BitReport, FrequencyOracle, Oue, ReportMode};

/// Two-sample chi-square statistic between histograms `a` and `b` (unequal
/// totals handled by the usual √(N_b/N_a) weighting). Returns the
/// statistic and the degrees of freedom (occupied categories − 1).
fn two_sample_chi_square(a: &[u64], b: &[u64], na: u64, nb: u64) -> (f64, usize) {
    let (ka, kb) = ((nb as f64 / na as f64).sqrt(), (na as f64 / nb as f64).sqrt());
    let mut chi = 0.0;
    let mut occupied = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        if x + y == 0 {
            continue;
        }
        occupied += 1;
        let d = ka * x as f64 - kb * y as f64;
        chi += d * d / (x + y) as f64;
    }
    (chi, occupied.saturating_sub(1))
}

/// Loose 99.9th-percentile bound for chi-square with `dof` degrees of
/// freedom (Wilson–Hilferty plus margin; deliberately conservative so the
/// seeded test never flakes while still catching a wrong distribution).
fn chi2_crit(dof: usize) -> f64 {
    dof as f64 + 4.0 * (2.0 * dof as f64).sqrt() + 10.0
}

/// The frozen report-buffer reference round: one reused `BitReport` per
/// user folded into the tally — the collection path before the fused
/// kernel existed.
fn reference_ones(oue: &Oue, values: &[usize], rng: &mut StdRng) -> Vec<u64> {
    let mut ones = vec![0u64; oue.domain()];
    let mut scratch = BitReport::zeros(oue.domain());
    for &v in values {
        oue.perturb_into(v, &mut scratch, rng).unwrap();
        oue.tally_into(&mut ones, &scratch).unwrap();
    }
    ones
}

fn fused_ones(oue: &Oue, values: &[usize], rng: &mut StdRng) -> Vec<u64> {
    let mut ones = Vec::new();
    oue.collect_ones_into(values, ReportMode::PerUser, &mut ones, rng).unwrap();
    ones
}

/// The fused kernel and the report-buffer reference must put their 1s at
/// identically distributed positions. Covers both kernel regimes: the
/// dense branchless threshold pass (ε = 1 and ε = 0.3 → q ≈ 0.27 / 0.43)
/// and the sparse geometric-skipping path (ε = 3.5 → q ≈ 0.029 < 0.08).
#[test]
fn fused_matches_reference_distribution_per_position() {
    for (eps, seed) in [(1.0, 11u64), (0.3, 22), (3.5, 33)] {
        let domain = 128;
        let oue = Oue::new(eps, domain).unwrap();
        // A skewed value mix so the true-bit Bernoulli(p) lands unevenly.
        let values: Vec<usize> = (0..600).map(|i| (i * i + 3 * i) % domain).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ref_hist = vec![0u64; domain];
        let mut fus_hist = vec![0u64; domain];
        for _ in 0..12 {
            for (acc, x) in ref_hist.iter_mut().zip(reference_ones(&oue, &values, &mut rng)) {
                *acc += x;
            }
            for (acc, x) in fus_hist.iter_mut().zip(fused_ones(&oue, &values, &mut rng)) {
                *acc += x;
            }
        }
        let (rn, fn_) = (ref_hist.iter().sum::<u64>(), fus_hist.iter().sum::<u64>());
        assert!(rn > 10_000 && fn_ > 10_000, "eps={eps}: too few ones: {rn} vs {fn_}");
        // Totals are sums of the same n·d Bernoullis: equal to within a
        // few sd of Binomial(n·d, ~q).
        let sd = (rn.max(fn_) as f64).sqrt();
        assert!(
            (rn as f64 - fn_ as f64).abs() < 6.0 * sd,
            "eps={eps}: ones totals diverge: {rn} vs {fn_}"
        );
        let (chi, dof) = two_sample_chi_square(&ref_hist, &fus_hist, rn, fn_);
        assert!(
            chi < chi2_crit(dof),
            "eps={eps}: fused ones diverge from reference: chi={chi:.1} dof={dof} (crit {:.1})",
            chi2_crit(dof)
        );
    }
}

/// The fused kernel's estimates must be unbiased, exactly like the
/// reference path's (mirrors the historical `estimates_are_unbiased`).
#[test]
fn fused_estimates_are_unbiased() {
    let oue = Oue::new(1.0, 5).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let n = 5000usize;
    let values: Vec<usize> = (0..n).map(|i| if i % 5 < 3 { 2 } else { 0 }).collect();
    let est = oue.collect(&values, ReportMode::PerUser, &mut rng).unwrap();
    let sd = Oue::variance(&oue, n as u64).sqrt();
    assert!((est.freqs[2] - 0.6).abs() < 3.5 * sd, "est[2]={}", est.freqs[2]);
    assert!((est.freqs[0] - 0.4).abs() < 3.5 * sd, "est[0]={}", est.freqs[0]);
    assert!(est.freqs[1].abs() < 3.5 * sd);
    assert!(est.freqs[3].abs() < 3.5 * sd);
}

/// The in-place Aggregate round must consume the random stream exactly as
/// the historical allocating path did: true counts first, then per
/// position one Binomial(c, p) draw followed by one Binomial(n − c, q)
/// draw, in position order.
#[test]
fn aggregate_round_preserves_historical_random_stream() {
    let domain = 40;
    let oue = Oue::new(1.2, domain).unwrap();
    let values: Vec<usize> = (0..900).map(|i| (7 * i) % domain).collect();
    let n = values.len() as u64;

    // Historical reference, replayed inline.
    let mut rng = StdRng::seed_from_u64(77);
    let mut counts = vec![0u64; domain];
    for &v in &values {
        counts[v] += 1;
    }
    let expected: Vec<u64> = counts
        .iter()
        .map(|&c| binomial::sample(c, OUE_P, &mut rng) + binomial::sample(n - c, oue.q(), &mut rng))
        .collect();

    let mut rng = StdRng::seed_from_u64(77);
    let mut ones = Vec::new();
    oue.collect_ones_into(&values, ReportMode::Aggregate, &mut ones, &mut rng).unwrap();
    assert_eq!(ones, expected);
}

#[test]
fn debias_into_matches_debias_and_reuses_buffer() {
    let oue = Oue::new(0.8, 16).unwrap();
    let ones: Vec<u64> = (0..16).map(|i| (i * i * 13) % 257).collect();
    let mut out = vec![9.0; 3];
    oue.debias_into(&ones, 1000, &mut out);
    assert_eq!(out, oue.debias(&ones, 1000));
    // n = 0 resets to zeros.
    oue.debias_into(&ones, 0, &mut out);
    assert_eq!(out, vec![0.0; 16]);
}

#[test]
fn fused_kernel_validates_inputs() {
    let oue = Oue::new(1.0, 8).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    let mut ones = vec![0u64; 8];
    assert!(oue.perturb_tally_into(8, &mut ones, &mut rng).is_err());
    let mut short = vec![0u64; 7];
    assert!(oue.perturb_tally_into(1, &mut short, &mut rng).is_err());
    // Out-of-domain values surface from the round-level API in both modes.
    let mut buf = Vec::new();
    assert!(oue.collect_ones_into(&[0, 9], ReportMode::PerUser, &mut buf, &mut rng).is_err());
    assert!(oue.collect_ones_into(&[0, 9], ReportMode::Aggregate, &mut buf, &mut rng).is_err());
}

/// Every per-position count is bounded by the number of reporters — the
/// fused walk must never double-count a position within one report.
#[test]
fn fused_counts_bounded_by_reporters() {
    for eps in [0.2, 1.0, 4.0] {
        let oue = Oue::new(eps, 64).unwrap();
        let values = vec![5usize; 200];
        let mut rng = StdRng::seed_from_u64(3);
        let ones = fused_ones(&oue, &values, &mut rng);
        assert!(ones.iter().all(|&c| c <= 200), "eps={eps}: {ones:?}");
    }
}
