//! Error type for the LDP crate.

use std::fmt;

/// Errors produced by LDP mechanisms and accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum LdpError {
    /// The privacy budget is not a positive finite number.
    InvalidBudget(f64),
    /// The value domain is empty or too small for the mechanism.
    InvalidDomain(usize),
    /// An input value lies outside the mechanism's domain.
    ValueOutOfDomain {
        /// The offending value.
        value: usize,
        /// The domain size.
        domain: usize,
    },
    /// The w-event accounting invariant was violated.
    WEventViolation(String),
    /// A report has the wrong shape for the aggregation step.
    MalformedReport(String),
}

impl fmt::Display for LdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdpError::InvalidBudget(eps) => {
                write!(f, "privacy budget must be positive and finite, got {eps}")
            }
            LdpError::InvalidDomain(d) => write!(f, "domain size {d} is invalid (must be >= 2)"),
            LdpError::ValueOutOfDomain { value, domain } => {
                write!(f, "value {value} outside domain of size {domain}")
            }
            LdpError::WEventViolation(msg) => write!(f, "w-event LDP violation: {msg}"),
            LdpError::MalformedReport(msg) => write!(f, "malformed report: {msg}"),
        }
    }
}

impl std::error::Error for LdpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LdpError::InvalidBudget(-1.0);
        assert!(e.to_string().contains("-1"));
        let e = LdpError::ValueOutOfDomain { value: 9, domain: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = LdpError::WEventViolation("window 3..5 exceeds eps".into());
        assert!(e.to_string().contains("window"));
    }
}
