//! Local differential privacy primitives used by RetraSyn.
//!
//! This crate implements the building blocks from §II of the paper:
//!
//! - [`Oue`]: the Optimized Unary Encoding frequency oracle (Wang et al.,
//!   USENIX Security 2017) used for all transition-state collection. It has
//!   the optimal variance `4·e^ε / (n·(e^ε − 1)²)` among unary-encoding
//!   mechanisms (paper Eq. 3).
//! - [`Grr`]: generalized randomized response (k-RR), provided as an
//!   alternative oracle for the frequency-oracle-choice ablation.
//! - [`WEventLedger`]: runtime accounting of the *w-event ε-LDP* guarantee
//!   (Definition 3) for both budget-division (per-timestamp ε split) and
//!   population-division (per-user report spacing) strategies.
//! - [`binomial`]: a fast, dependency-free binomial sampler enabling the
//!   O(|domain|) aggregate simulation of n independent per-user reports.
//! - [`postprocess`]: standard LDP post-processing (clamping,
//!   norm-sub) — free of privacy cost by Theorem 2 (post-processing).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod binomial;
pub mod budget;
pub mod error;
pub mod grr;
pub mod oracle;
pub mod oue;
pub mod philox;
pub mod postprocess;

pub use audit::{audit_grr, audit_oue, AuditReport};
pub use budget::{PrivacyBudget, WEventLedger};
pub use error::LdpError;
pub use grr::Grr;
pub use oracle::{CollectionKernel, Estimate, FrequencyOracle, ReportMode};
pub use oue::{BitReport, Oue, GANG_POS};
pub use philox::{Philox, PhiloxRng};
