//! Optimized Unary Encoding (OUE) frequency oracle.
//!
//! OUE (Wang et al., USENIX Security 2017) encodes a categorical value from a
//! domain of size `d` as a one-hot bit vector and perturbs each bit
//! independently (paper Eq. 2):
//!
//! ```text
//! Pr[report bit = 1 | true bit = 1] = p = 1/2
//! Pr[report bit = 1 | true bit = 0] = q = 1/(e^ε + 1)
//! ```
//!
//! The curator debiases position counts into unbiased frequency estimates
//! `f̂(x) = (ones_x/n − q)/(p − q)` with variance `4·e^ε/(n·(e^ε − 1)²)`
//! (paper Eq. 3). Each user's whole vector satisfies ε-LDP because flipping
//! the input moves exactly two bits, and `(p/q)·((1−q)/(1−p)) = e^ε`.

use crate::binomial;
use crate::error::LdpError;
use crate::philox::{Philox, PhiloxRng};
use rand::Rng;

/// A perturbed unary-encoded report: a packed bit vector of domain length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitReport {
    words: Vec<u64>,
    len: usize,
}

impl BitReport {
    /// An all-zero report of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitReport { words: vec![0u64; len.div_ceil(64)], len }
    }

    /// Number of bit positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the report has no positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to `v`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// The packed 64-bit words backing the report (little-endian bit
    /// order within each word; bits at positions `>= len()` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Clear the report and resize it to `len` positions, reusing the
    /// existing word buffer when large enough — the zero-allocation reset
    /// behind [`Oue::perturb_into`].
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Communication cost of this report in bits (paper §IV-B: the overhead
    /// per report is the encoding-vector length).
    pub fn communication_bits(&self) -> usize {
        self.len
    }
}

/// The OUE mechanism for a fixed domain size and privacy budget.
#[derive(Debug, Clone)]
pub struct Oue {
    eps: f64,
    domain: usize,
    q: f64,
    /// `1 / ln(1−q)`, precomputed for the geometric-skip draw.
    inv_ln_1mq: f64,
    /// `round(q · 2^64)`: `next_u64() < thresh_q` is a Bernoulli(q) draw
    /// with bias below 2^−64 — finer than the 2^−53 granularity of an
    /// `f64` comparison.
    thresh_q: u64,
    /// `⌊q · 2^32⌋`: the 32-bit threshold of the blocked kernel, which
    /// compares one Philox word per position (bias below 2^−32 —
    /// undetectable at any reporter count this side of 2^64 draws).
    thresh_q32: u32,
}

/// The probability a true 1-bit is reported as 1.
pub const OUE_P: f64 = 0.5;

/// `p = 1/2` as an exact 16-bit comparison threshold (`halfword <
/// 2^15`; the tie at 2^15 has a zero low half, so it never extends).
const OUE_P_THRESH16: u32 = 1 << 15;

/// At or above this `q` the **sequential** fused kernel uses the dense
/// branchless Bernoulli pass (one predictable-latency draw per
/// position); below it reports are sparse enough that geometric skipping
/// (one logarithm per reported 1, ≈ d·q of them) is cheaper. The
/// crossover is the ratio of a pipelined `next_u64`+compare+add
/// (measured 1.34 ns/position at x86-64-v3) to a serial `ln` landing
/// (18–21 ns): q* ≈ 1.34/18 ≈ 0.074. Re-measure with
/// `collection_probe` if `BENCH_collection.json` moves on new hardware.
const DENSE_MIN_Q: f64 = 0.08;

/// Dense/sparse crossover of the **blocked** kernel. Blocked dense draws
/// are cheaper than sequential ones (the Philox halfword gangs pipeline
/// with no RNG carry chain: measured 0.77 ns/position at x86-64-v3 vs
/// 1.34 ns fused), while a sparse landing costs the same serial `ln`
/// either way (18–21 ns) — so the crossover sits lower than the
/// sequential kernel's: q* = 0.77/18 ≈ 0.043, i.e. dense pays off
/// already at ε ≲ ln(1/0.04 − 1) ≈ 3.2. Measured by the
/// `collection_probe` crossover sweep; re-measure alongside
/// `DENSE_MIN_Q` if `BENCH_collection.json` regresses on new hardware.
const BLOCKED_DENSE_MIN_Q: f64 = 0.04;

/// Positions covered by one Philox gang: 8 lanes × 8 halfwords per
/// block. The dense blocked kernel spends **16 random bits per
/// Bernoulli draw** — halving the Philox work per position relative to
/// a 32-bit draw — and stays *exact* w.r.t. the 32-bit threshold by
/// spending another 16 addressed bits on the 2^−16-rare halfword that
/// ties the threshold's high half (see [`Oue::blocked_tally_range`]).
/// Public because domain-sharded pooled rounds must align their shard
/// boundaries to it ([`Oue::blocked_tally_range`] requires it).
pub const GANG_POS: usize = 64;

/// Dense blocked-kernel domain tile: positions accumulated per pass over
/// the reporters. 2048 × 8-byte counters = 16 KiB — half a typical L1d,
/// leaving the rest for the streaming gang words — so at large domains
/// the accumulator never falls out of L1 (a multiple of [`GANG_POS`]).
const DOMAIN_TILE: usize = 2048;

impl Oue {
    /// Create an OUE mechanism with budget `eps` over `domain` values.
    pub fn new(eps: f64, domain: usize) -> Result<Self, LdpError> {
        if !eps.is_finite() || eps <= 0.0 {
            return Err(LdpError::InvalidBudget(eps));
        }
        if domain < 2 {
            return Err(LdpError::InvalidDomain(domain));
        }
        let q = 1.0 / (eps.exp() + 1.0);
        // q < 1/2, so q·2^64 < 2^63 never saturates the cast.
        let thresh_q = (q * (u64::MAX as f64 + 1.0)) as u64;
        let thresh_q32 = (q * (u32::MAX as f64 + 1.0)) as u32;
        Ok(Oue { eps, domain, q, inv_ln_1mq: (1.0 - q).ln().recip(), thresh_q, thresh_q32 })
    }

    /// Privacy budget ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Domain size `d`.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// The 0→1 flip probability `q = 1/(e^ε + 1)`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Perturb a single user's value into a bit-vector report (user side;
    /// paper §IV-B user-side computation). Allocating wrapper around
    /// [`Self::perturb_into`].
    pub fn perturb<R: Rng + ?Sized>(
        &self,
        value: usize,
        rng: &mut R,
    ) -> Result<BitReport, LdpError> {
        let mut report = BitReport::zeros(self.domain);
        self.perturb_into(value, &mut report, rng)?;
        Ok(report)
    }

    /// Perturb a single user's value into a caller-provided report buffer —
    /// zero heap allocations once the buffer has reached domain size, so a
    /// collection round over n users reuses one buffer instead of
    /// materializing n reports.
    ///
    /// The 0-bits are sampled by *geometric skipping*: instead of one
    /// Bernoulli(q) draw per position, the gap to the next reported 1 is
    /// drawn as `⌊ln(1−U)/ln(1−q)⌋`, which is distributionally identical to
    /// the independent per-bit process and costs O(d·q) draws instead of
    /// O(d) (for ε = 1, q ≈ 0.27: ~3.7× fewer variates). The true bit is
    /// then overwritten with its Bernoulli(p = 1/2) draw.
    pub fn perturb_into<R: Rng + ?Sized>(
        &self,
        value: usize,
        report: &mut BitReport,
        rng: &mut R,
    ) -> Result<(), LdpError> {
        if value >= self.domain {
            return Err(LdpError::ValueOutOfDomain { value, domain: self.domain });
        }
        report.reset(self.domain);
        self.sparse_walk(value, rng, &mut |i| report.set(i, true));
        Ok(())
    }

    /// The geometric-skipping walk shared by every sparse path
    /// ([`Self::perturb_into`], the sparse regime of
    /// [`Self::perturb_tally_into`] and the blocked kernel's sparse
    /// regime): `emit(i)` is called once for every reported-1 position.
    /// The gap to the next reported 1 is drawn as
    /// `⌊ln(1−u)·inv_ln_1mq⌋` — distributionally identical to the
    /// independent per-bit Bernoulli(q) process — with the cast
    /// saturating and the advance checked so walks that overshoot the
    /// domain terminate. The true position's bit comes solely from its
    /// own Bernoulli(p = 1/2) draw at the end, never from the walk.
    #[inline]
    fn sparse_walk<R: Rng + ?Sized>(
        &self,
        value: usize,
        rng: &mut R,
        emit: &mut impl FnMut(usize),
    ) {
        let mut i = 0usize;
        while i < self.domain {
            let u: f64 = rng.random();
            // (1−u) avoids ln(0); u = 0 gives skip 0. ln(1−q) is finite
            // and negative: q < 1/2 for every valid ε.
            let skip = ((1.0 - u).ln() * self.inv_ln_1mq) as u64;
            i = match usize::try_from(skip).ok().and_then(|s| i.checked_add(s)) {
                Some(next) => next,
                None => break,
            };
            if i >= self.domain {
                break;
            }
            if i != value {
                emit(i);
            }
            i += 1;
        }
        if rng.random::<f64>() < OUE_P {
            emit(value);
        }
    }

    /// Fused perturb→tally for a single user: sample the report's 1s and
    /// increment the `ones` counters directly — no [`BitReport`]
    /// materialization, no word re-scan, no heap allocation.
    ///
    /// Two regimes, both sampling the exact per-bit OUE process:
    ///
    /// - **dense** (`q ≥ 0.08`, e.g. every ε ≤ ~2.4): one branchless
    ///   threshold compare per position, `ones[i] += (x < q·2^64)`.
    ///   Reports carry ≈ d·q ones here, so geometric skipping saves few
    ///   draws while paying an unpredictable branch and a serial `ln` per
    ///   landing; the dense pass instead pipelines at ~1 ns/position with
    ///   zero mispredictions and streams the accumulator sequentially.
    /// - **sparse** (`q < 0.08`, large ε): geometric skipping — the gap
    ///   to the next reported 1 is `⌊ln(1−u)/ln(1−q)⌋` as in
    ///   [`Self::perturb_into`], costing O(d·q) logarithms.
    ///
    /// Distributionally identical to [`Self::perturb_into`] +
    /// [`Self::tally_into`] in either regime (independent Bernoulli(q)
    /// 0-bits, Bernoulli(p) true bit). This is the per-user kernel of the
    /// sharded collection pipeline: each worker folds its reporters into
    /// a private domain-sized accumulator and accumulators merge by
    /// addition.
    pub fn perturb_tally_into<R: Rng + ?Sized>(
        &self,
        value: usize,
        ones: &mut [u64],
        rng: &mut R,
    ) -> Result<(), LdpError> {
        if value >= self.domain {
            return Err(LdpError::ValueOutOfDomain { value, domain: self.domain });
        }
        if ones.len() != self.domain {
            return Err(LdpError::MalformedReport(format!(
                "tally length {} != domain {}",
                ones.len(),
                self.domain
            )));
        }
        if self.q >= DENSE_MIN_Q {
            // Dense branchless pass over the non-true positions (the true
            // bit gets its own Bernoulli(p) draw below). Split at `value`
            // so the hot loops carry no per-position `i != value` branch.
            let (lo, rest) = ones.split_at_mut(value);
            let (value_slot, hi) = rest.split_first_mut().expect("value < domain");
            for one in lo.iter_mut() {
                *one += u64::from(rng.next_u64() < self.thresh_q);
            }
            for one in hi.iter_mut() {
                *one += u64::from(rng.next_u64() < self.thresh_q);
            }
            if rng.random::<f64>() < OUE_P {
                *value_slot += 1;
            }
            return Ok(());
        }
        // Sparse regime: geometric skips between the rare reported 1s.
        self.sparse_walk(value, rng, &mut |i| ones[i] += 1);
        Ok(())
    }

    /// Run one full collection round into a reused ones-count buffer —
    /// zero heap allocations once `ones` has reached domain capacity.
    ///
    /// [`crate::ReportMode::PerUser`] folds every reporter through the
    /// fused [`Self::perturb_tally_into`] kernel.
    /// [`crate::ReportMode::Aggregate`] counts the true values in place
    /// and then replaces each count `c_j` with
    /// `Binomial(c_j, p) + Binomial(n − c_j, q)` — the same sampling order
    /// as the allocating path, so the random stream is unchanged.
    pub fn collect_ones_into<R: Rng + ?Sized>(
        &self,
        values: &[usize],
        mode: crate::oracle::ReportMode,
        ones: &mut Vec<u64>,
        rng: &mut R,
    ) -> Result<(), LdpError> {
        ones.clear();
        ones.resize(self.domain, 0);
        let n = values.len() as u64;
        if n == 0 {
            return Ok(());
        }
        match mode {
            crate::oracle::ReportMode::PerUser => {
                for &v in values {
                    self.perturb_tally_into(v, ones, rng)?;
                }
            }
            crate::oracle::ReportMode::Aggregate => {
                for &v in values {
                    if v >= self.domain {
                        return Err(LdpError::ValueOutOfDomain { value: v, domain: self.domain });
                    }
                    ones[v] += 1;
                }
                for c in ones.iter_mut() {
                    let truth = *c;
                    *c = binomial::sample(truth, OUE_P, rng)
                        + binomial::sample(n - truth, self.q, rng);
                }
            }
        }
        Ok(())
    }

    /// Whether the blocked kernel runs its dense regime at this `q`
    /// (determines how [`crate::CollectionKernel::Blocked`] rounds shard:
    /// dense shards the *domain* range, sparse the reporter range).
    pub fn blocked_dense(&self) -> bool {
        self.q >= BLOCKED_DENSE_MIN_Q
    }

    /// Run one full collection round with the **blocked counter-based
    /// kernel** ([`crate::CollectionKernel::Blocked`]): every
    /// `(reporter, position)` Bernoulli draw is addressed as a pure
    /// function of `ph`'s key, the reporter's global row `base + i` and
    /// the position — no sequential RNG state anywhere in the round.
    ///
    /// Two regimes, both sampling the per-bit OUE process:
    ///
    /// - **dense** (`q ≥ 0.04`, see [`Self::blocked_dense`]): one Philox
    ///   word per position, generated in independent 8-block gangs and
    ///   compared-and-added against the 32-bit threshold with no
    ///   loop-carried dependence (autovectorizable), accumulated through
    ///   L1-resident domain tiles ([`Self::blocked_tally_range`]);
    /// - **sparse** (`q < 0.04`, large ε): the shared geometric-skipping
    ///   walk over a per-reporter [`PhiloxRng`] row stream
    ///   ([`Self::blocked_tally_sparse`]).
    ///
    /// Because every draw is addressed, the merged counts are invariant
    /// to how the `(reporter × position)` rectangle is partitioned — a
    /// pooled round is bit-identical to this sequential one at any
    /// thread count. The stream differs from the sequential kernel's, so
    /// the two kernels are distinct members of the determinism contract.
    pub fn collect_ones_blocked(
        &self,
        values: &[usize],
        base: u32,
        ph: &Philox,
        ones: &mut Vec<u64>,
    ) -> Result<(), LdpError> {
        ones.clear();
        ones.resize(self.domain, 0);
        if self.blocked_dense() {
            self.blocked_tally_range(values, base, ph, 0, self.domain, ones)
        } else {
            self.blocked_tally_sparse(values, base, ph, ones)
        }
    }

    /// Dense-regime blocked tally of domain positions `lo..hi` over all
    /// `values` (reporter rows `base..base + values.len()`), accumulating
    /// into `ones[p - lo]`. `lo` must be [`GANG_POS`]-aligned; `hi` is
    /// either the domain or another aligned shard boundary. The counts
    /// this writes depend only on `(ph, base, values, position)` — never
    /// on the `(lo, hi)` partition — which is what makes domain-sharded
    /// pooled rounds bit-identical to sequential ones.
    ///
    /// Each position consumes a 16-bit **halfword**: position `p` of row
    /// `r` reads bits `16h..16h+16` of word `j` of block
    /// `(8·⌊p/64⌋ + p mod 8, r)`, where `j = ⌊(p mod 64)/16⌋` and
    /// `h = ⌊(p mod 16)/8⌋` — a gang of 8 blocks covers 64 positions in
    /// SoA order without a transpose. The draw is exact against the same
    /// 32-bit threshold as a full-word draw: `hw < ⌊t/2^16⌋` accepts,
    /// and the 2^−16-rare tie `hw = ⌊t/2^16⌋` is resolved by 16 more
    /// addressed bits from the extension block `[blk, row, 1, 0]`
    /// (counter word 2 = 1, a stream no other path touches), accepting
    /// iff `ext < t mod 2^16`. The hot loop only counts `hw < ⌊t/2^16⌋`
    /// and flags ties per gang, so the common path stays branch-free;
    /// tie patching and the true-bit fixup (replacing the position's
    /// Bernoulli(q) credit with its Bernoulli(p = 1/2) draw) both
    /// regenerate single draws in O(1) — counter-based random access
    /// makes them free of any second pass.
    pub fn blocked_tally_range(
        &self,
        values: &[usize],
        base: u32,
        ph: &Philox,
        lo: usize,
        hi: usize,
        ones: &mut [u64],
    ) -> Result<(), LdpError> {
        self.check_blocked_inputs(values, base)?;
        assert!(lo.is_multiple_of(GANG_POS), "range start must be gang-aligned");
        assert!(lo <= hi && hi <= self.domain, "range {lo}..{hi} outside domain {}", self.domain);
        assert_eq!(ones.len(), hi - lo, "accumulator length != range length");
        // High half of the threshold, widened to gang8's 64-bit lanes.
        let t16 = u64::from(self.thresh_q32 >> 16);
        let mut tlo = lo;
        while tlo < hi {
            let thi = (tlo + DOMAIN_TILE).min(hi);
            for (i, &v) in values.iter().enumerate() {
                let row = base + i as u32;
                let mut p = tlo;
                while p + GANG_POS <= thi {
                    let gang = ph.gang8(((p / GANG_POS) * 8) as u32, row);
                    let acc = &mut ones[p - lo..p - lo + GANG_POS];
                    // Ties against the threshold's high half, counted
                    // across the gang (a count, not an OR-fold — masks
                    // subtract straight into lanes with no bool
                    // repacking); nonzero ⇒ patch below (expected once
                    // per ~2^10 gangs).
                    let mut ties = [0u64; 8];
                    for (j, words) in gang.iter().enumerate() {
                        for (l, &w) in words.iter().enumerate() {
                            let (a, b) = (w & 0xffff, w >> 16);
                            acc[j * 16 + l] += u64::from(a < t16);
                            acc[j * 16 + 8 + l] += u64::from(b < t16);
                            ties[l] += u64::from(a == t16) + u64::from(b == t16);
                        }
                    }
                    if ties.iter().any(|&t| t != 0) {
                        for o in 0..GANG_POS {
                            if self.halfword(ph, row, p + o) == t16 as u32 {
                                ones[p + o - lo] += self.tie_break(ph, row, p + o);
                            }
                        }
                    }
                    p += GANG_POS;
                }
                for q in p..thi {
                    ones[q - lo] += self.draw_q16(ph, row, q);
                }
                if v >= tlo && v < thi {
                    // The pass above added this position's Bernoulli(q)
                    // draw; net the slot to its Bernoulli(1/2) draw
                    // (nested events: q < 1/2, so this never underflows).
                    ones[v - lo] += u64::from(self.halfword(ph, row, v) < OUE_P_THRESH16)
                        - self.draw_q16(ph, row, v);
                }
            }
            tlo = thi;
        }
        Ok(())
    }

    /// The 16-bit halfword position `p` of row `row` consumes (the
    /// position-to-bits mapping of [`Self::blocked_tally_range`]).
    fn halfword(&self, ph: &Philox, row: u32, p: usize) -> u32 {
        let o = p % GANG_POS;
        let (j, h, l) = (o / 16, (o % 16) / 8, o % 8);
        let w = ph.block(((p / GANG_POS) * 8 + l) as u32, row)[j];
        (w >> (16 * h)) & 0xffff
    }

    /// The exact Bernoulli(q) draw of `(row, p)` under the blocked dense
    /// kernel: accept below the threshold's high half, extend on a tie.
    fn draw_q16(&self, ph: &Philox, row: u32, p: usize) -> u64 {
        let t16 = self.thresh_q32 >> 16;
        let hw = self.halfword(ph, row, p);
        match hw.cmp(&t16) {
            std::cmp::Ordering::Less => 1,
            std::cmp::Ordering::Equal => self.tie_break(ph, row, p),
            std::cmp::Ordering::Greater => 0,
        }
    }

    /// Resolve a threshold tie at `(row, p)`: 16 extension bits from the
    /// position's block at counter word 2 = 1 — a stream disjoint from
    /// every primary draw — against the threshold's low half. The
    /// composite accept probability is exactly `thresh_q32 / 2^32`.
    fn tie_break(&self, ph: &Philox, row: u32, p: usize) -> u64 {
        let o = p % GANG_POS;
        let (j, h, l) = (o / 16, (o % 16) / 8, o % 8);
        let ew = ph.block_raw([((p / GANG_POS) * 8 + l) as u32, row, 1, 0])[j];
        let ext = (ew >> (16 * h)) & 0xffff;
        u64::from(ext < (self.thresh_q32 & 0xffff))
    }

    /// Sparse-regime blocked tally: each reporter's geometric-skipping
    /// walk draws from its own [`PhiloxRng`] row stream (row
    /// `base + i`), so — like the dense pass — the merged counts are
    /// invariant to how reporters are sharded. `ones` spans the full
    /// domain.
    pub fn blocked_tally_sparse(
        &self,
        values: &[usize],
        base: u32,
        ph: &Philox,
        ones: &mut [u64],
    ) -> Result<(), LdpError> {
        self.check_blocked_inputs(values, base)?;
        if ones.len() != self.domain {
            return Err(LdpError::MalformedReport(format!(
                "tally length {} != domain {}",
                ones.len(),
                self.domain
            )));
        }
        for (i, &v) in values.iter().enumerate() {
            let mut rng = PhiloxRng::new(*ph, base + i as u32);
            self.sparse_walk(v, &mut rng, &mut |p| ones[p] += 1);
        }
        Ok(())
    }

    /// Shared validation of a blocked round: every value in domain, and
    /// the reporter rows must fit the 32-bit counter word.
    fn check_blocked_inputs(&self, values: &[usize], base: u32) -> Result<(), LdpError> {
        if let Some(&v) = values.iter().find(|&&v| v >= self.domain) {
            return Err(LdpError::ValueOutOfDomain { value: v, domain: self.domain });
        }
        if values.len() > (u32::MAX - base) as usize {
            return Err(LdpError::MalformedReport(format!(
                "blocked round of {} reporters at row base {base} overflows the u32 row counter",
                values.len()
            )));
        }
        Ok(())
    }

    /// Aggregate per-user reports into raw ones-counts per position.
    ///
    /// Word-parallel: iterates the set bits of each packed 64-bit word via
    /// `trailing_zeros` instead of testing every position, so cost scales
    /// with the number of reported 1s (≈ d·q + 1 per report) rather than d.
    pub fn tally(&self, reports: &[BitReport]) -> Result<Vec<u64>, LdpError> {
        let mut ones = vec![0u64; self.domain];
        for r in reports {
            self.tally_into(&mut ones, r)?;
        }
        Ok(ones)
    }

    /// Add one report's set bits into `ones` (word-parallel). Combined with
    /// [`Self::perturb_into`] this folds a whole collection round over a
    /// single reused report buffer.
    pub fn tally_into(&self, ones: &mut [u64], report: &BitReport) -> Result<(), LdpError> {
        if report.len() != self.domain || ones.len() != self.domain {
            return Err(LdpError::MalformedReport(format!(
                "report length {} / tally length {} != domain {}",
                report.len(),
                ones.len(),
                self.domain
            )));
        }
        for (wi, &word) in report.words().iter().enumerate() {
            let mut w = word;
            let base = wi * 64;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                ones[base + bit] += 1;
                w &= w - 1;
            }
        }
        Ok(())
    }

    /// Debias raw ones-counts into unbiased frequency estimates
    /// (`f̂(x) = (ones_x/n − q)/(p − q)`, paper §II-A). Estimates may be
    /// negative; see [`crate::postprocess`].
    pub fn debias(&self, ones: &[u64], n: u64) -> Vec<f64> {
        let mut freqs = Vec::new();
        self.debias_into(ones, n, &mut freqs);
        freqs
    }

    /// Debias into a caller-provided buffer — the zero-allocation form of
    /// [`Self::debias`] used by the engine's per-timestamp collection
    /// round.
    pub fn debias_into(&self, ones: &[u64], n: u64, out: &mut Vec<f64>) {
        assert_eq!(ones.len(), self.domain, "ones-count length mismatch");
        out.clear();
        if n == 0 {
            out.resize(self.domain, 0.0);
            return;
        }
        let nf = n as f64;
        let denom = OUE_P - self.q;
        out.extend(ones.iter().map(|&c| (c as f64 / nf - self.q) / denom));
    }

    /// The estimator variance `Var(ε, n) = 4e^ε / (n (e^ε − 1)²)` (Eq. 3).
    /// Returns `+∞` when `n == 0`.
    pub fn variance(&self, n: u64) -> f64 {
        variance(self.eps, n)
    }
}

/// Free-standing OUE variance (Eq. 3), used by DMU and allocation without an
/// oracle instance.
pub fn variance(eps: f64, n: u64) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    let e = eps.exp();
    4.0 * e / (n as f64 * (e - 1.0).powi(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(Oue::new(1.0, 10).is_ok());
        assert!(Oue::new(0.0, 10).is_err());
        assert!(Oue::new(-1.0, 10).is_err());
        assert!(Oue::new(f64::NAN, 10).is_err());
        assert!(Oue::new(1.0, 1).is_err());
        assert!(Oue::new(1.0, 0).is_err());
    }

    #[test]
    fn q_matches_formula() {
        let oue = Oue::new(1.0, 4).unwrap();
        assert!((oue.q() - 1.0 / (1.0f64.exp() + 1.0)).abs() < 1e-12);
        // Larger eps -> smaller q (less noise).
        let oue2 = Oue::new(2.0, 4).unwrap();
        assert!(oue2.q() < oue.q());
    }

    #[test]
    fn perturb_rejects_out_of_domain() {
        let oue = Oue::new(1.0, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            oue.perturb(4, &mut rng),
            Err(LdpError::ValueOutOfDomain { value: 4, domain: 4 })
        ));
    }

    #[test]
    fn bit_report_roundtrip() {
        let mut r = BitReport::zeros(130);
        assert_eq!(r.len(), 130);
        assert!(!r.is_empty());
        r.set(0, true);
        r.set(64, true);
        r.set(129, true);
        assert!(r.get(0) && r.get(64) && r.get(129));
        assert!(!r.get(1) && !r.get(63) && !r.get(128));
        assert_eq!(r.count_ones(), 3);
        r.set(64, false);
        assert_eq!(r.count_ones(), 2);
        assert_eq!(r.communication_bits(), 130);
    }

    #[test]
    fn estimates_are_unbiased() {
        // 5000 users, 60% hold value 2, 40% hold value 0, domain 5.
        let oue = Oue::new(1.0, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 5000u64;
        let mut reports = Vec::with_capacity(n as usize);
        for i in 0..n {
            let v = if i % 5 < 3 { 2 } else { 0 };
            reports.push(oue.perturb(v, &mut rng).unwrap());
        }
        let ones = oue.tally(&reports).unwrap();
        let est = oue.debias(&ones, n);
        // 3 sigma of Eq. 3 with n = 5000, eps = 1: sd ~ 0.019.
        let sd = oue.variance(n).sqrt();
        assert!((est[2] - 0.6).abs() < 3.5 * sd, "est[2]={}", est[2]);
        assert!((est[0] - 0.4).abs() < 3.5 * sd, "est[0]={}", est[0]);
        assert!(est[1].abs() < 3.5 * sd);
        assert!(est[3].abs() < 3.5 * sd);
    }

    #[test]
    fn variance_formula() {
        // eps = 1, n = 100: 4e / (100 (e-1)^2).
        let e = 1.0f64.exp();
        let expected = 4.0 * e / (100.0 * (e - 1.0).powi(2));
        assert!((variance(1.0, 100) - expected).abs() < 1e-12);
        assert_eq!(variance(1.0, 0), f64::INFINITY);
        // Variance decreases in n and in eps.
        assert!(variance(1.0, 200) < variance(1.0, 100));
        assert!(variance(2.0, 100) < variance(1.0, 100));
    }

    #[test]
    fn tally_rejects_mismatched_reports() {
        let oue = Oue::new(1.0, 4).unwrap();
        let bad = BitReport::zeros(5);
        assert!(oue.tally(&[bad]).is_err());
    }

    #[test]
    fn debias_zero_users() {
        let oue = Oue::new(1.0, 3).unwrap();
        assert_eq!(oue.debias(&[0, 0, 0], 0), vec![0.0; 3]);
    }

    /// The vectorized gang pass of `blocked_tally_range` must agree
    /// bit-for-bit with the scalar per-position draw (`draw_q16` plus the
    /// true-bit fixup) — the same function the tail and patch paths use.
    /// Swept across enough keys that threshold ties (the 2^−16-rare
    /// extension path) are actually exercised.
    #[test]
    fn blocked_gang_pass_matches_scalar_draws_including_ties() {
        let domain = 192; // three full gangs — all vector path
        let oue = Oue::new(1.0, domain).unwrap();
        let values: Vec<usize> = (0..40).map(|i| (i * 13 + 2) % domain).collect();
        let t16 = oue.thresh_q32 >> 16;
        let mut ties_seen = 0u64;
        let mut ones = Vec::new();
        for key in 0..1400u64 {
            let ph = Philox::new(key.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            oue.collect_ones_blocked(&values, 0, &ph, &mut ones).unwrap();
            let mut expect = vec![0u64; domain];
            for (i, &v) in values.iter().enumerate() {
                let row = i as u32;
                for (p, e) in expect.iter_mut().enumerate() {
                    ties_seen += u64::from(oue.halfword(&ph, row, p) == t16);
                    *e += if p == v {
                        u64::from(oue.halfword(&ph, row, p) < OUE_P_THRESH16)
                    } else {
                        oue.draw_q16(&ph, row, p)
                    };
                }
            }
            assert_eq!(ones, expect, "key={key}");
        }
        // ~1400·40·192·2^−16 ≈ 164 expected ties; the patch path ran.
        assert!(ties_seen > 20, "tie path never exercised ({ties_seen} ties)");
    }

    #[test]
    fn ldp_ratio_bound_holds_per_vector() {
        // For any two inputs x1 != x2 and any output y, the likelihood ratio
        // is exactly (p/q) * ((1-q)/(1-p)) when y "matches" x1 on both
        // differing bits, which must be <= e^eps. Check analytically.
        for eps in [0.3, 1.0, 2.5] {
            let oue = Oue::new(eps, 8).unwrap();
            let p = OUE_P;
            let q = oue.q();
            let worst = (p / q) * ((1.0 - q) / (1.0 - p));
            assert!(
                worst <= eps.exp() * (1.0 + 1e-12),
                "eps={eps}: worst-case ratio {worst} > e^eps {}",
                eps.exp()
            );
            // And the bound is tight for OUE (equality).
            assert!((worst - eps.exp()).abs() < 1e-9);
        }
    }
}
