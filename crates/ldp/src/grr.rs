//! Generalized randomized response (k-RR).
//!
//! GRR reports the true value with probability `p = e^ε/(e^ε + d − 1)` and
//! any other single value uniformly otherwise. Its variance grows linearly
//! in the domain size, which is why the paper adopts OUE for the large
//! transition-state domain; GRR is provided here for the frequency-oracle
//! ablation and for small-domain use cases.

use crate::error::LdpError;
use rand::Rng;

/// The GRR mechanism for a fixed domain size and privacy budget.
#[derive(Debug, Clone)]
pub struct Grr {
    eps: f64,
    domain: usize,
    p: f64,
    q: f64,
}

impl Grr {
    /// Create a GRR mechanism with budget `eps` over `domain` values.
    pub fn new(eps: f64, domain: usize) -> Result<Self, LdpError> {
        if !eps.is_finite() || eps <= 0.0 {
            return Err(LdpError::InvalidBudget(eps));
        }
        if domain < 2 {
            return Err(LdpError::InvalidDomain(domain));
        }
        let e = eps.exp();
        let p = e / (e + domain as f64 - 1.0);
        let q = 1.0 / (e + domain as f64 - 1.0);
        Ok(Grr { eps, domain, p, q })
    }

    /// Privacy budget ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Domain size.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Probability of reporting the true value.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of reporting any specific false value.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Perturb one user's value (user side, O(1)).
    pub fn perturb<R: Rng + ?Sized>(&self, value: usize, rng: &mut R) -> Result<usize, LdpError> {
        if value >= self.domain {
            return Err(LdpError::ValueOutOfDomain { value, domain: self.domain });
        }
        if rng.random::<f64>() < self.p {
            Ok(value)
        } else {
            // Uniform over the other d-1 values.
            let mut other = rng.random_range(0..self.domain - 1);
            if other >= value {
                other += 1;
            }
            Ok(other)
        }
    }

    /// Tally reported values into counts.
    pub fn tally(&self, reports: &[usize]) -> Result<Vec<u64>, LdpError> {
        let mut counts = vec![0u64; self.domain];
        for &r in reports {
            if r >= self.domain {
                return Err(LdpError::MalformedReport(format!(
                    "reported value {r} outside domain {}",
                    self.domain
                )));
            }
            counts[r] += 1;
        }
        Ok(counts)
    }

    /// Debias counts into unbiased frequency estimates
    /// `f̂(x) = (count_x/n − q)/(p − q)`.
    pub fn debias(&self, counts: &[u64], n: u64) -> Vec<f64> {
        assert_eq!(counts.len(), self.domain, "count length mismatch");
        if n == 0 {
            return vec![0.0; self.domain];
        }
        let nf = n as f64;
        let denom = self.p - self.q;
        counts.iter().map(|&c| (c as f64 / nf - self.q) / denom).collect()
    }

    /// Approximate estimator variance `q(1−q)/(n(p−q)²)` (the dominant,
    /// frequency-independent term).
    pub fn variance(&self, n: u64) -> f64 {
        if n == 0 {
            return f64::INFINITY;
        }
        self.q * (1.0 - self.q) / (n as f64 * (self.p - self.q).powi(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        assert!(Grr::new(1.0, 2).is_ok());
        assert!(Grr::new(0.0, 2).is_err());
        assert!(Grr::new(1.0, 1).is_err());
    }

    #[test]
    fn probabilities_sum_to_one() {
        let grr = Grr::new(1.3, 7).unwrap();
        let total = grr.p() + 6.0 * grr.q();
        assert!((total - 1.0).abs() < 1e-12);
        // LDP constraint: p/q = e^eps exactly.
        assert!((grr.p() / grr.q() - 1.3f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn perturb_within_domain() {
        let grr = Grr::new(0.5, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for v in 0..5 {
            for _ in 0..100 {
                let out = grr.perturb(v, &mut rng).unwrap();
                assert!(out < 5);
            }
        }
        assert!(grr.perturb(5, &mut rng).is_err());
    }

    #[test]
    fn estimates_are_unbiased() {
        let grr = Grr::new(2.0, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000u64;
        let mut reports = Vec::with_capacity(n as usize);
        for i in 0..n {
            let v = if i % 4 == 0 { 1 } else { 3 }; // 25% value 1, 75% value 3
            reports.push(grr.perturb(v, &mut rng).unwrap());
        }
        let counts = grr.tally(&reports).unwrap();
        let est = grr.debias(&counts, n);
        let sd = grr.variance(n).sqrt();
        assert!((est[1] - 0.25).abs() < 4.0 * sd, "est[1]={}", est[1]);
        assert!((est[3] - 0.75).abs() < 4.0 * sd, "est[3]={}", est[3]);
        assert!(est[0].abs() < 4.0 * sd);
        assert!(est[2].abs() < 4.0 * sd);
    }

    #[test]
    fn variance_grows_with_domain() {
        // The reason OUE wins for large domains.
        let small = Grr::new(1.0, 4).unwrap().variance(1000);
        let large = Grr::new(1.0, 400).unwrap().variance(1000);
        assert!(large > small * 10.0);
    }

    #[test]
    fn tally_rejects_out_of_domain() {
        let grr = Grr::new(1.0, 3).unwrap();
        assert!(grr.tally(&[0, 1, 3]).is_err());
    }
}
