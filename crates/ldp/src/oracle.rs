//! A uniform interface over frequency oracles plus the fast aggregate
//! collection path.
//!
//! The curator-side pipeline in the paper is: users perturb their transition
//! state (② and ③ in Fig. 2), the curator tallies and debiases (④). The
//! [`FrequencyOracle`] trait captures that pipeline; [`FrequencyOracle::collect`] runs it
//! end-to-end for a batch of users in either of two statistically equivalent
//! modes:
//!
//! - [`ReportMode::PerUser`] materializes each user's report exactly as a
//!   deployment would — O(n·d) work, used in tests and small examples.
//! - [`ReportMode::Aggregate`] samples the per-position ones-counts directly
//!   from their exact distribution (`Binomial(c_j, p) + Binomial(n−c_j, q)`)
//!   — O(d) work, used by the experiment harness.

use crate::binomial;
use crate::error::LdpError;
use crate::grr::Grr;
use crate::oue::Oue;
use rand::Rng;

/// How to simulate the report collection round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportMode {
    /// Materialize every user's report (exact end-to-end simulation).
    PerUser,
    /// Sample aggregated position counts directly (distributionally
    /// identical, O(domain) instead of O(n·domain)).
    #[default]
    Aggregate,
}

/// Which dense-capable kernel executes a [`ReportMode::PerUser`] OUE
/// collection round. Both kernels sample the per-bit OUE process; they
/// consume **different random streams**, so the choice is part of the
/// determinism contract (fixed `(seed, threads, kernel)` → bit-identical
/// output) and of the engine fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectionKernel {
    /// The historical kernel: one sequential `next_u64` per
    /// (reporter × position) from the caller's (or shard's) xoshiro
    /// stream — one draw chain, loop-carried RNG dependence. Default, and
    /// the stream all pre-existing blessed snapshots were taken under.
    #[default]
    Sequential,
    /// The counter-based kernel ([`crate::Oue::collect_ones_blocked`]):
    /// one Philox4×32-10 key per round, draws addressed by
    /// `(reporter, position)` and generated in independent 8-block gangs
    /// with no carry chain, accumulated through L1-resident domain tiles.
    /// Output is invariant to the `(reporter × domain)` partition, hence
    /// to the collection thread count.
    Blocked,
}

/// The result of one collection round.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Unbiased frequency estimates per domain value (may be negative).
    pub freqs: Vec<f64>,
    /// Number of users that reported.
    pub n: u64,
    /// The estimator variance for this round (Eq. 3 for OUE).
    pub variance: f64,
}

impl Estimate {
    /// An empty estimate (no reporters): all-zero frequencies, infinite
    /// variance.
    pub fn empty(domain: usize) -> Self {
        Estimate { freqs: vec![0.0; domain], n: 0, variance: f64::INFINITY }
    }

    /// Reset in place to the empty estimate over `domain` values, reusing
    /// the frequency buffer — the zero-allocation form of
    /// [`Self::empty`].
    pub fn reset_empty(&mut self, domain: usize) {
        self.freqs.clear();
        self.freqs.resize(domain, 0.0);
        self.n = 0;
        self.variance = f64::INFINITY;
    }
}

impl Default for Estimate {
    /// A zero-length empty estimate, for `std::mem::take`-style scratch
    /// shuttling.
    fn default() -> Self {
        Estimate { freqs: Vec::new(), n: 0, variance: f64::INFINITY }
    }
}

/// A frequency oracle: perturb on the user side, aggregate and debias on the
/// curator side.
pub trait FrequencyOracle {
    /// Domain size `d`.
    fn domain(&self) -> usize;
    /// Privacy budget ε consumed by one report.
    fn eps(&self) -> f64;
    /// Estimator variance with `n` reporters.
    fn variance(&self, n: u64) -> f64;
    /// Run a full collection round over the users' true `values`.
    fn collect<R: Rng + ?Sized>(
        &self,
        values: &[usize],
        mode: ReportMode,
        rng: &mut R,
    ) -> Result<Estimate, LdpError>;
}

/// Count the true occurrences of each domain value.
fn true_counts(values: &[usize], domain: usize) -> Result<Vec<u64>, LdpError> {
    let mut counts = vec![0u64; domain];
    for &v in values {
        if v >= domain {
            return Err(LdpError::ValueOutOfDomain { value: v, domain });
        }
        counts[v] += 1;
    }
    Ok(counts)
}

impl FrequencyOracle for Oue {
    fn domain(&self) -> usize {
        self.domain()
    }

    fn eps(&self) -> f64 {
        self.eps()
    }

    fn variance(&self, n: u64) -> f64 {
        Oue::variance(self, n)
    }

    fn collect<R: Rng + ?Sized>(
        &self,
        values: &[usize],
        mode: ReportMode,
        rng: &mut R,
    ) -> Result<Estimate, LdpError> {
        let n = values.len() as u64;
        if n == 0 {
            return Ok(Estimate::empty(self.domain()));
        }
        // Both modes run through the zero-allocation round: PerUser takes
        // the fused perturb→tally kernel (no report materialization),
        // Aggregate samples the position counts in place with the same
        // random stream as the historical allocating path.
        let mut ones = Vec::new();
        self.collect_ones_into(values, mode, &mut ones, rng)?;
        Ok(Estimate { freqs: self.debias(&ones, n), n, variance: Oue::variance(self, n) })
    }
}

impl FrequencyOracle for Grr {
    fn domain(&self) -> usize {
        self.domain()
    }

    fn eps(&self) -> f64 {
        self.eps()
    }

    fn variance(&self, n: u64) -> f64 {
        Grr::variance(self, n)
    }

    fn collect<R: Rng + ?Sized>(
        &self,
        values: &[usize],
        mode: ReportMode,
        rng: &mut R,
    ) -> Result<Estimate, LdpError> {
        let n = values.len() as u64;
        if n == 0 {
            return Ok(Estimate::empty(self.domain()));
        }
        let counts = match mode {
            ReportMode::PerUser => {
                let reports: Result<Vec<_>, _> =
                    values.iter().map(|&v| self.perturb(v, rng)).collect();
                self.tally(&reports?)?
            }
            ReportMode::Aggregate => {
                // Each of the c_j holders reports j w.p. p; each of the
                // n − c_j others reports j w.p. q. The position counts are
                // not independent across j for GRR (they sum to n), but the
                // marginal of each count is what the debiasing uses; we
                // sample truth-keepers first then scatter the liars to
                // preserve the sum-to-n constraint exactly.
                let d = self.domain();
                let truth = true_counts(values, d)?;
                let mut counts = vec![0u64; d];
                for (j, &c) in truth.iter().enumerate() {
                    let kept = binomial::sample(c, self.p(), rng);
                    counts[j] += kept;
                    // The c − kept liars from group j pick uniformly among
                    // the other d−1 values: an exact multinomial, sampled as
                    // a chain of binomials.
                    let mut remaining = c - kept;
                    let mut slots = (d - 1) as u64;
                    for (k, count) in counts.iter_mut().enumerate() {
                        if k == j || remaining == 0 {
                            continue;
                        }
                        let take = if slots == 1 {
                            remaining
                        } else {
                            binomial::sample(remaining, 1.0 / slots as f64, rng)
                        };
                        *count += take;
                        remaining -= take;
                        slots -= 1;
                    }
                }
                counts
            }
        };
        Ok(Estimate { freqs: self.debias(&counts, n), n, variance: Grr::variance(self, n) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skewed_values(n: usize, domain: usize) -> Vec<usize> {
        // Zipf-ish: value j with weight 1/(j+1).
        let mut vals = Vec::with_capacity(n);
        for i in 0..n {
            let v = (i * i + 7 * i) % domain; // deterministic but spread
            vals.push(v % domain);
        }
        vals
    }

    #[test]
    fn empty_round_gives_empty_estimate() {
        let oue = Oue::new(1.0, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let est = oue.collect(&[], ReportMode::Aggregate, &mut rng).unwrap();
        assert_eq!(est.n, 0);
        assert_eq!(est.freqs, vec![0.0; 6]);
        assert!(est.variance.is_infinite());
    }

    #[test]
    fn per_user_and_aggregate_agree_statistically() {
        // Both modes must estimate the same underlying frequencies within
        // a few standard deviations of Eq. 3.
        let oue = Oue::new(1.0, 10).unwrap();
        let values = skewed_values(4000, 10);
        let mut truth = [0.0; 10];
        for &v in &values {
            truth[v] += 1.0 / values.len() as f64;
        }
        let sd = FrequencyOracle::variance(&oue, 4000).sqrt();

        let mut rng = StdRng::seed_from_u64(11);
        let per_user = oue.collect(&values, ReportMode::PerUser, &mut rng).unwrap();
        let agg = oue.collect(&values, ReportMode::Aggregate, &mut rng).unwrap();
        #[allow(clippy::needless_range_loop)]
        for j in 0..10 {
            assert!(
                (per_user.freqs[j] - truth[j]).abs() < 4.5 * sd,
                "per-user j={j}: {} vs {}",
                per_user.freqs[j],
                truth[j]
            );
            assert!(
                (agg.freqs[j] - truth[j]).abs() < 4.5 * sd,
                "aggregate j={j}: {} vs {}",
                agg.freqs[j],
                truth[j]
            );
        }
    }

    #[test]
    fn aggregate_estimates_sum_near_one() {
        // Debiased frequency estimates should sum to ~1 (the encoding is
        // one-hot, noise is zero-mean).
        let oue = Oue::new(2.0, 50).unwrap();
        let values = skewed_values(5000, 50);
        let mut rng = StdRng::seed_from_u64(3);
        let est = oue.collect(&values, ReportMode::Aggregate, &mut rng).unwrap();
        let total: f64 = est.freqs.iter().sum();
        assert!((total - 1.0).abs() < 0.2, "sum={total}");
    }

    #[test]
    fn grr_collect_modes_agree() {
        let grr = Grr::new(2.0, 8).unwrap();
        let values = skewed_values(20_000, 8);
        let mut truth = [0.0; 8];
        for &v in &values {
            truth[v] += 1.0 / values.len() as f64;
        }
        let sd = FrequencyOracle::variance(&grr, 20_000).sqrt();
        let mut rng = StdRng::seed_from_u64(5);
        for mode in [ReportMode::PerUser, ReportMode::Aggregate] {
            let est = grr.collect(&values, mode, &mut rng).unwrap();
            #[allow(clippy::needless_range_loop)]
            for j in 0..8 {
                assert!(
                    (est.freqs[j] - truth[j]).abs() < 5.0 * sd,
                    "{mode:?} j={j}: {} vs {}",
                    est.freqs[j],
                    truth[j]
                );
            }
        }
    }

    #[test]
    fn collect_rejects_out_of_domain_values() {
        let oue = Oue::new(1.0, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(oue.collect(&[0, 1, 4], ReportMode::Aggregate, &mut rng).is_err());
        assert!(oue.collect(&[0, 1, 4], ReportMode::PerUser, &mut rng).is_err());
    }

    #[test]
    fn variance_reported_matches_mechanism() {
        let oue = Oue::new(1.5, 12).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let est = oue.collect(&[1, 2, 3], ReportMode::Aggregate, &mut rng).unwrap();
        assert!((est.variance - Oue::variance(&oue, 3)).abs() < 1e-12);
    }
}
