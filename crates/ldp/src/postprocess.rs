//! Post-processing of debiased LDP estimates.
//!
//! By Theorem 2 (post-processing) these transformations are free of privacy
//! cost. The unbiased OUE estimator routinely produces small negative
//! frequencies for rare values; downstream consumers that need a probability
//! vector apply one of:
//!
//! - [`clamp_nonnegative`] — the simple projection used by RetraSyn's model
//!   update (frequencies feed Eq. 6 ratios, so only non-negativity matters);
//! - [`norm_sub`] — "Norm-Sub" (Wang et al., VLDB 2020): clamp at zero and
//!   shift the positive entries so the total matches a target sum — the
//!   standard consistency step for full-histogram release;
//! - [`normalize`] — rescale a non-negative vector into a probability
//!   distribution (uniform fallback when the mass is zero).

/// Clamp every entry to be ≥ 0 (in place).
pub fn clamp_nonnegative(freqs: &mut [f64]) {
    for f in freqs.iter_mut() {
        if *f < 0.0 {
            *f = 0.0;
        }
    }
}

/// Norm-Sub: find `delta` such that clamping `f_i − delta` at zero makes the
/// vector sum to `target`, and apply it. Runs in O(d log d).
///
/// If every entry would be clamped (target unreachable), returns the uniform
/// vector summing to `target`.
pub fn norm_sub(freqs: &mut [f64], target: f64) {
    assert!(target >= 0.0 && target.is_finite(), "target must be >= 0");
    let d = freqs.len();
    if d == 0 {
        return;
    }
    if target == 0.0 {
        freqs.iter_mut().for_each(|f| *f = 0.0);
        return;
    }
    // Sort a copy descending; walk the prefix that stays positive.
    let mut sorted: Vec<f64> = freqs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut prefix = 0.0;
    let mut best: Option<f64> = None;
    for (k, &v) in sorted.iter().enumerate() {
        prefix += v;
        let delta = (prefix - target) / (k as f64 + 1.0);
        // Valid if all kept entries stay >= 0 after subtracting delta and
        // the next entry (if any) would be clamped.
        let kept_ok = v - delta >= -1e-12;
        let next_clamped = sorted.get(k + 1).is_none_or(|&nv| nv - delta <= 1e-12);
        if kept_ok && next_clamped {
            best = Some(delta);
            break;
        }
    }
    match best {
        Some(delta) => {
            for f in freqs.iter_mut() {
                *f = (*f - delta).max(0.0);
            }
        }
        None => {
            let u = target / d as f64;
            freqs.iter_mut().for_each(|f| *f = u);
        }
    }
}

/// Normalize a non-negative vector into a probability distribution. Falls
/// back to uniform when the total mass is zero (or not finite).
pub fn normalize(freqs: &mut [f64]) {
    let d = freqs.len();
    if d == 0 {
        return;
    }
    let sum: f64 = freqs.iter().sum();
    if sum > 0.0 && sum.is_finite() {
        freqs.iter_mut().for_each(|f| *f /= sum);
    } else {
        let u = 1.0 / d as f64;
        freqs.iter_mut().for_each(|f| *f = u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_only_touches_negatives() {
        let mut v = vec![0.5, -0.1, 0.0, 0.3, -2.0];
        clamp_nonnegative(&mut v);
        assert_eq!(v, vec![0.5, 0.0, 0.0, 0.3, 0.0]);
    }

    #[test]
    fn norm_sub_reaches_target() {
        let mut v = vec![0.5, 0.4, -0.1, 0.3];
        norm_sub(&mut v, 1.0);
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        assert!(v.iter().all(|&x| x >= 0.0));
        // Order is preserved among survivors.
        assert!(v[0] >= v[1] && v[1] >= v[3] && v[2] == 0.0);
    }

    #[test]
    fn norm_sub_already_consistent_is_identity() {
        let mut v = vec![0.25, 0.25, 0.25, 0.25];
        norm_sub(&mut v, 1.0);
        for x in &v {
            assert!((x - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn norm_sub_zero_target() {
        let mut v = vec![0.3, 0.7];
        norm_sub(&mut v, 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn norm_sub_all_negative_falls_back_to_uniform() {
        let mut v = vec![-0.5, -0.3, -0.2, -0.1];
        norm_sub(&mut v, 1.0);
        let sum: f64 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn norm_sub_empty_is_noop() {
        let mut v: Vec<f64> = vec![];
        norm_sub(&mut v, 1.0);
        assert!(v.is_empty());
    }

    #[test]
    fn normalize_basic() {
        let mut v = vec![1.0, 3.0];
        normalize(&mut v);
        assert!((v[0] - 0.25).abs() < 1e-12);
        assert!((v[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_mass_uniform() {
        let mut v = vec![0.0, 0.0, 0.0, 0.0];
        normalize(&mut v);
        for x in &v {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }
}
