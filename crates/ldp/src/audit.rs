//! Exhaustive ε-LDP auditing of the mechanisms.
//!
//! The ledger (`crate::budget`) verifies the *composition* side of
//! Theorem 3 (w-event accounting); this module verifies the *mechanism*
//! side (Definition 1): for every pair of inputs `x₁, x₂` and every output
//! `y`, `Pr[Ψ(x₁) = y] ≤ e^ε · Pr[Ψ(x₂) = y]`.
//!
//! For small domains the output distributions can be computed exactly —
//! OUE outputs factorize over bits, GRR outputs are categorical — so the
//! audit is *exhaustive*, not sampled: it returns the worst-case
//! log-likelihood ratio over the entire output space, which must be `≤ ε`
//! (and is exactly `ε` for both mechanisms, since their ratios are tight).

use crate::grr::Grr;
use crate::oue::{Oue, OUE_P};

/// Result of an exhaustive audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditReport {
    /// Worst-case log-likelihood ratio `max ln(Pr[y|x₁]/Pr[y|x₂])` found.
    pub worst_log_ratio: f64,
    /// The ε the mechanism claims.
    pub claimed_eps: f64,
    /// Number of (x₁, x₂, y) triples inspected.
    pub triples: u64,
}

impl AuditReport {
    /// Whether the mechanism's claim holds (up to floating-point slack).
    pub fn holds(&self) -> bool {
        self.worst_log_ratio <= self.claimed_eps + 1e-9
    }

    /// Whether the privacy analysis is tight (worst case achieves ε) — a
    /// budget-efficiency property: slack would mean wasted utility.
    pub fn is_tight(&self) -> bool {
        (self.worst_log_ratio - self.claimed_eps).abs() < 1e-6
    }
}

/// Exhaustively audit OUE over all `2^d` outputs and all input pairs.
///
/// # Panics
/// Panics if `oue.domain() > 16` (the output space would exceed 65k
/// vectors; the audit is meant for small-domain verification).
pub fn audit_oue(oue: &Oue) -> AuditReport {
    let d = oue.domain();
    assert!(d <= 16, "exhaustive OUE audit supports domains up to 16 bits");
    let q = oue.q();
    // Pr[bit = 1 | one-hot position] = p, else q.
    let bit_prob = |is_hot: bool, bit_set: bool| -> f64 {
        let p1 = if is_hot { OUE_P } else { q };
        if bit_set {
            p1
        } else {
            1.0 - p1
        }
    };
    let mut worst: f64 = f64::NEG_INFINITY;
    let mut triples = 0u64;
    for x1 in 0..d {
        for x2 in 0..d {
            if x1 == x2 {
                continue;
            }
            for y in 0u32..(1u32 << d) {
                let mut log_ratio = 0.0;
                // Bits other than x1, x2 have identical probabilities under
                // both inputs and cancel; compute only the differing bits.
                for pos in [x1, x2] {
                    let set = y >> pos & 1 == 1;
                    log_ratio += bit_prob(pos == x1, set).ln();
                    log_ratio -= bit_prob(pos == x2, set).ln();
                }
                worst = worst.max(log_ratio);
                triples += 1;
            }
        }
    }
    AuditReport { worst_log_ratio: worst, claimed_eps: oue.eps(), triples }
}

/// Exhaustively audit GRR over all `d` outputs and all input pairs.
pub fn audit_grr(grr: &Grr) -> AuditReport {
    let d = grr.domain();
    let mut worst: f64 = f64::NEG_INFINITY;
    let mut triples = 0u64;
    let prob = |x: usize, y: usize| -> f64 {
        if x == y {
            grr.p()
        } else {
            grr.q()
        }
    };
    for x1 in 0..d {
        for x2 in 0..d {
            if x1 == x2 {
                continue;
            }
            for y in 0..d {
                let ratio = (prob(x1, y) / prob(x2, y)).ln();
                worst = worst.max(ratio);
                triples += 1;
            }
        }
    }
    AuditReport { worst_log_ratio: worst, claimed_eps: grr.eps(), triples }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oue_audit_holds_and_is_tight() {
        for eps in [0.1, 0.5, 1.0, 2.0, 4.0] {
            for d in [2usize, 5, 9] {
                let oue = Oue::new(eps, d).unwrap();
                let report = audit_oue(&oue);
                assert!(report.holds(), "eps={eps} d={d}: {report:?}");
                assert!(report.is_tight(), "eps={eps} d={d}: {report:?}");
                assert_eq!(report.triples, (d * (d - 1)) as u64 * (1u64 << d), "triple count");
            }
        }
    }

    #[test]
    fn grr_audit_holds_and_is_tight() {
        for eps in [0.2, 1.0, 3.0] {
            for d in [2usize, 8, 64] {
                let grr = Grr::new(eps, d).unwrap();
                let report = audit_grr(&grr);
                assert!(report.holds(), "eps={eps} d={d}: {report:?}");
                assert!(report.is_tight(), "eps={eps} d={d}: {report:?}");
            }
        }
    }

    #[test]
    fn audit_detects_a_broken_mechanism() {
        // A mechanism claiming less budget than it spends must fail the
        // audit: build OUE with eps = 2 but claim eps = 1 by auditing the
        // eps=2 perturbation against an eps=1 claim.
        let actual = Oue::new(2.0, 4).unwrap();
        let mut report = audit_oue(&actual);
        report.claimed_eps = 1.0; // the false claim
        assert!(!report.holds());
    }

    #[test]
    #[should_panic(expected = "up to 16 bits")]
    fn oue_audit_rejects_large_domains() {
        let oue = Oue::new(1.0, 20).unwrap();
        let _ = audit_oue(&oue);
    }
}
