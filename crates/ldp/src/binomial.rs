//! Binomial sampling for aggregate report simulation.
//!
//! Simulating `n` independent OUE reports bit-by-bit costs `O(n·|S|)` random
//! draws per timestamp. Because the curator only ever consumes the *sum* of
//! the reported bits at each position, the sum can be sampled directly:
//! for position `j` with `c_j` users whose true bit is 1,
//!
//! ```text
//! ones_j = Binomial(c_j, p) + Binomial(n − c_j, q)
//! ```
//!
//! which is distributionally identical to summing the individual reports and
//! costs `O(|S|)` draws. This module provides the sampler.
//!
//! The sampler is exact for small regimes (Bernoulli summation for `n ≤ 64`,
//! CDF inversion while `n·min(p,1−p) ≤ 20`) and switches to a
//! continuity-corrected normal approximation for large `n·p·(1−p)`. In the
//! large regime the total-variation distance to the exact binomial is
//! O(1/sqrt(n·p·(1−p))) ≤ ~2%, which is orders of magnitude below the OUE
//! perturbation noise it feeds into; the exact per-user path
//! ([`crate::ReportMode::PerUser`]) is retained for validation.

use rand::Rng;

/// Threshold below which we simply sum Bernoulli draws.
const BERNOULLI_MAX_N: u64 = 64;
/// Use CDF inversion while the expected count is at most this.
const INVERSION_MAX_MEAN: f64 = 20.0;

/// Draw one sample from Binomial(n, p).
///
/// # Panics
/// Panics if `p` is not in `[0, 1]` or not finite.
pub fn sample<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p={p} out of range");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Work with the smaller tail for numerical stability.
    if p > 0.5 {
        return n - sample(n, 1.0 - p, rng);
    }
    if n <= BERNOULLI_MAX_N {
        return bernoulli_sum(n, p, rng);
    }
    let mean = n as f64 * p;
    if mean <= INVERSION_MAX_MEAN {
        return inversion(n, p, rng);
    }
    normal_approx(n, p, rng)
}

/// Sum of `n` Bernoulli(p) draws. Exact; O(n).
fn bernoulli_sum<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let mut count = 0;
    for _ in 0..n {
        if rng.random::<f64>() < p {
            count += 1;
        }
    }
    count
}

/// CDF inversion using the pmf recurrence. Exact up to f64 rounding; O(np).
fn inversion<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let q = 1.0 - p;
    // pmf(0) = q^n; np <= 20 here so q^n >= ~e^-20: no underflow concerns.
    let mut pmf = q.powf(n as f64);
    let mut cdf = pmf;
    let mut k: u64 = 0;
    let u = rng.random::<f64>();
    let ratio = p / q;
    while u > cdf && k < n {
        let kf = k as f64;
        pmf *= (n as f64 - kf) / (kf + 1.0) * ratio;
        cdf += pmf;
        k += 1;
        // Guard against f64 rounding leaving cdf slightly below 1 forever.
        if pmf < f64::MIN_POSITIVE {
            break;
        }
    }
    k
}

/// Continuity-corrected normal approximation, clamped to [0, n].
fn normal_approx<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    let z = standard_normal(rng);
    let x = (mean + sd * z + 0.5).floor();
    x.clamp(0.0, n as f64) as u64
}

/// One standard-normal draw via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[u64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = samples.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample(0, 0.5, &mut rng), 0);
        assert_eq!(sample(100, 0.0, &mut rng), 0);
        assert_eq!(sample(100, 1.0, &mut rng), 100);
        assert_eq!(sample(1, 0.0, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample(10, 1.5, &mut rng);
    }

    #[test]
    fn bernoulli_regime_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..20_000).map(|_| sample(40, 0.3, &mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 12.0).abs() < 0.15, "mean={mean}");
        assert!((var - 8.4).abs() < 0.5, "var={var}");
    }

    #[test]
    fn inversion_regime_moments() {
        // n = 1000, p = 0.01 -> mean 10, inversion path.
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<u64> = (0..20_000).map(|_| sample(1000, 0.01, &mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 10.0).abs() < 0.15, "mean={mean}");
        assert!((var - 9.9).abs() < 0.6, "var={var}");
    }

    #[test]
    fn normal_regime_moments() {
        // n = 10_000, p = 0.25 -> normal approximation path.
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<u64> = (0..20_000).map(|_| sample(10_000, 0.25, &mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 2500.0).abs() < 2.0, "mean={mean}");
        let expected_var = 10_000.0 * 0.25 * 0.75;
        assert!((var - expected_var).abs() / expected_var < 0.05, "var={var}");
    }

    #[test]
    fn high_p_mirrors_low_p() {
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<u64> = (0..20_000).map(|_| sample(1000, 0.99, &mut rng)).collect();
        let (mean, _) = moments(&samples);
        assert!((mean - 990.0).abs() < 0.2, "mean={mean}");
        assert!(samples.iter().all(|&x| x <= 1000));
    }

    #[test]
    fn samples_never_exceed_n() {
        let mut rng = StdRng::seed_from_u64(6);
        for &(n, p) in &[(5u64, 0.9), (100, 0.5), (100_000, 0.001), (100_000, 0.6)] {
            for _ in 0..200 {
                assert!(sample(n, p, &mut rng) <= n);
            }
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }
}
