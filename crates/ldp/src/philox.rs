//! Philox4×32-10 counter-based random number generation (Salmon et al.,
//! SC'11: "Parallel random numbers: as easy as 1, 2, 3").
//!
//! Unlike a conventional generator, Philox carries **no sequential state**:
//! the word at draw index `i` is a pure function `philox(key, i)` of the
//! key and a 128-bit counter. That property is what the blocked dense
//! collection kernel ([`crate::Oue::collect_ones_blocked`]) is built on:
//!
//! - **no loop-carried dependence** — blocks at counters `c, c+1, c+2, …`
//!   are independent, so an 8-lane gang ([`Philox::gang8`]) exposes the
//!   full multiply throughput of the machine to the autovectorizer
//!   instead of serializing on one generator state;
//! - **random access** — any `(reporter, position)` draw can be
//!   regenerated in O(1), which lets the kernel tile the *domain* range
//!   for L1 residency and fix up the true-bit position after a branchless
//!   pass, and makes the merged output independent of how the
//!   `(reporter × position)` rectangle is partitioned across worker
//!   threads.
//!
//! The implementation is the canonical Philox4×32 with 10 rounds, pinned
//! against the Random123 known-answer vectors. Each round sends the
//! counter block `(x0, x1, x2, x3)` to
//!
//! ```text
//! (hi(M1·x2) ^ x1 ^ k0,  lo(M1·x2),  hi(M0·x0) ^ x3 ^ k1,  lo(M0·x0))
//! ```
//!
//! with the key Weyl-incremented between rounds.

use rand::RngCore;

/// Philox4×32 round multiplier for the even word.
const PHILOX_M0: u32 = 0xD251_1F53;
/// Philox4×32 round multiplier for the odd word.
const PHILOX_M1: u32 = 0xCD9E_8D57;
/// Weyl increment for key word 0 (⌊2³²·(golden ratio − 1)⌋, odd).
const PHILOX_W0: u32 = 0x9E37_79B9;
/// Weyl increment for key word 1 (⌊2³²·(√3 − 1)⌋, odd).
const PHILOX_W1: u32 = 0xBB67_AE85;
/// Round count of the full-strength variant (Random123's default; 7 is
/// the smallest count that passes BigCrush, 10 adds safety margin).
const ROUNDS: u32 = 10;

/// One Philox round over a single counter block.
#[inline(always)]
fn round(x: [u32; 4], k0: u32, k1: u32) -> [u32; 4] {
    let p0 = u64::from(PHILOX_M0) * u64::from(x[0]);
    let p1 = u64::from(PHILOX_M1) * u64::from(x[2]);
    [((p1 >> 32) as u32) ^ x[1] ^ k0, p1 as u32, ((p0 >> 32) as u32) ^ x[3] ^ k1, p0 as u32]
}

/// One Philox round over an `L`-lane gang held in 64-bit lanes (see
/// [`Philox::gang8`]). Inputs and outputs keep every lane below 2³², so
/// the multiplies are widening 32×32→64 and the xors cannot carry into
/// the high half; the masks are redundant with that invariant but state
/// it where the optimizer can see it.
#[inline(always)]
fn wide_round<const L: usize>(x: [[u64; L]; 4], k0: u64, k1: u64) -> [[u64; L]; 4] {
    const LO: u64 = 0xffff_ffff;
    let [x0, x1, x2, x3] = x;
    let mut n0 = [0u64; L];
    let mut n1 = [0u64; L];
    let mut n2 = [0u64; L];
    let mut n3 = [0u64; L];
    for l in 0..L {
        let p0 = u64::from(PHILOX_M0) * (x0[l] & LO);
        let p1 = u64::from(PHILOX_M1) * (x2[l] & LO);
        n0[l] = (p1 >> 32) ^ x1[l] ^ k0;
        n1[l] = p1 & LO;
        n2[l] = (p0 >> 32) ^ x3[l] ^ k1;
        n3[l] = p0 & LO;
    }
    [n0, n1, n2, n3]
}

/// A keyed Philox4×32-10 bijection: 128-bit counter → 128 random bits.
///
/// `Copy` and two words small — pass it by value into workers; every
/// block is derived from `(key, counter)` alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Philox {
    key: [u32; 2],
}

impl Philox {
    /// Key a generator from a 64-bit seed (the seed's two halves become
    /// the two key words).
    pub fn new(seed: u64) -> Self {
        Philox { key: [seed as u32, (seed >> 32) as u32] }
    }

    /// Key a generator from explicit key words (known-answer tests).
    pub fn from_key(key: [u32; 2]) -> Self {
        Philox { key }
    }

    /// The key words.
    pub fn key(&self) -> [u32; 2] {
        self.key
    }

    /// The full 10-round bijection of one raw 128-bit counter block.
    #[inline]
    pub fn block_raw(&self, mut x: [u32; 4]) -> [u32; 4] {
        let (mut k0, mut k1) = (self.key[0], self.key[1]);
        for r in 0..ROUNDS {
            if r > 0 {
                k0 = k0.wrapping_add(PHILOX_W0);
                k1 = k1.wrapping_add(PHILOX_W1);
            }
            x = round(x, k0, k1);
        }
        x
    }

    /// The block at `(block-in-row, row)` — the counter layout the
    /// collection kernel uses: counter = `[block, row, 0, 0]`. Rows are
    /// (shard-independent) global reporter indices, so any partition of
    /// the reporters or the domain reproduces the same words.
    #[inline]
    pub fn block(&self, block: u32, row: u32) -> [u32; 4] {
        self.block_raw([block, row, 0, 0])
    }

    /// Eight independent blocks at counters `[base+l, row, 0, 0]` for
    /// lanes `l = 0..8`, returned **SoA** — `out[j][l]` is word `j` of
    /// lane `l`, zero-extended into a 64-bit lane.
    ///
    /// The whole gang lives in 64-bit lanes holding 32-bit values: the
    /// multiplies are then exactly the widening 32×32→64 form
    /// (`vpmuludq`), and the hi/lo extraction is a lane shift/mask — no
    /// cross-lane shuffles anywhere, and no dependence between lanes, so
    /// the fixed-width lane loops autovectorize to the machine's full
    /// multiply throughput instead of serializing on one generator
    /// state. Transposing back to block order would cost shuffles, which
    /// is why the dense kernel consumes the words in SoA order (see
    /// [`crate::Oue::collect_ones_blocked`] for the position-to-word
    /// mapping).
    #[inline]
    pub fn gang8(&self, base: u32, row: u32) -> [[u64; 8]; 4] {
        self.gang::<8>(base, row)
    }

    /// [`Self::gang8`] at an arbitrary lane width: `L` independent blocks
    /// at counters `[base+l, row, 0, 0]`. The dense kernel consumes
    /// 8-lane gangs (64 halfword positions each); wider gangs measured
    /// no faster here — the unrolled chain is already multiply-port
    ///-throughput-bound — but the width is a free parameter for other
    /// microarchitectures.
    #[inline]
    pub fn gang<const L: usize>(&self, base: u32, row: u32) -> [[u64; L]; 4] {
        const LO: u64 = 0xffff_ffff;
        let mut x0 = [0u64; L];
        let x1 = [u64::from(row); L];
        let x2 = [0u64; L];
        let x3 = [0u64; L];
        for (l, x) in x0.iter_mut().enumerate() {
            *x = u64::from(base.wrapping_add(l as u32));
        }
        let (k0, k1) = (u64::from(self.key[0]), u64::from(self.key[1]));
        let kr =
            |r: u64| ((k0 + r * u64::from(PHILOX_W0)) & LO, (k1 + r * u64::from(PHILOX_W1)) & LO);
        // The round chain is written fully unrolled (ROUNDS calls in one
        // straight line, keys precomputed) so the every-lane-stays-below-
        // 2³² invariant `wide_round` maintains is visible to the backend
        // across the whole chain: a rolled loop would launder the lanes
        // through block-boundary phis, losing the known-zero high halves
        // and demoting the multiplies from their widening 32×32→64 form
        // to a full 64×64 decomposition.
        const { assert!(ROUNDS == 10) };
        let mut x = [x0, x1, x2, x3];
        x = wide_round(x, k0, k1);
        let (ka, kb) = kr(1);
        x = wide_round(x, ka, kb);
        let (ka, kb) = kr(2);
        x = wide_round(x, ka, kb);
        let (ka, kb) = kr(3);
        x = wide_round(x, ka, kb);
        let (ka, kb) = kr(4);
        x = wide_round(x, ka, kb);
        let (ka, kb) = kr(5);
        x = wide_round(x, ka, kb);
        let (ka, kb) = kr(6);
        x = wide_round(x, ka, kb);
        let (ka, kb) = kr(7);
        x = wide_round(x, ka, kb);
        let (ka, kb) = kr(8);
        x = wide_round(x, ka, kb);
        let (ka, kb) = kr(9);
        wide_round(x, ka, kb)
    }
}

/// A sequential [`RngCore`] view of one Philox row: words are drawn from
/// blocks `[0, row, 0, 0], [1, row, 0, 0], …` in order (word 0 of a
/// block is `x0 | x1 << 32`, word 1 is `x2 | x3 << 32`).
///
/// The blocked kernel's **sparse** regime walks each reporter's row with
/// one of these: every reporter owns an independent stream addressed by
/// its global index, so the walk — like the dense pass — is invariant to
/// how reporters are sharded across threads.
#[derive(Debug, Clone)]
pub struct PhiloxRng {
    ph: Philox,
    row: u32,
    next_block: u32,
    buffered: Option<u64>,
}

impl PhiloxRng {
    /// A fresh stream over `row` under `ph`'s key, starting at block 0.
    pub fn new(ph: Philox, row: u32) -> Self {
        PhiloxRng { ph, row, next_block: 0, buffered: None }
    }
}

impl RngCore for PhiloxRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if let Some(w) = self.buffered.take() {
            return w;
        }
        let b = self.ph.block(self.next_block, self.row);
        self.next_block = self.next_block.wrapping_add(1);
        self.buffered = Some(u64::from(b[2]) | (u64::from(b[3]) << 32));
        u64::from(b[0]) | (u64::from(b[1]) << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Random123 known-answer vectors for philox4x32-10
    /// (`Random123/tests/kat_vectors`): fixed counter/key → fixed words.
    #[test]
    fn known_answer_vectors() {
        let zero = Philox::from_key([0, 0]);
        assert_eq!(
            zero.block_raw([0, 0, 0, 0]),
            [0x6627_e8d5, 0xe169_c58d, 0xbc57_ac4c, 0x9b00_dbd8]
        );
        let ones = Philox::from_key([0xffff_ffff, 0xffff_ffff]);
        assert_eq!(
            ones.block_raw([0xffff_ffff; 4]),
            [0x408f_276d, 0x41c8_3b0e, 0xa20b_c7c6, 0x6d54_51fd]
        );
        let pi = Philox::from_key([0xa409_3822, 0x299f_31d0]);
        assert_eq!(
            pi.block_raw([0x243f_6a88, 0x85a3_08d3, 0x1319_8a2e, 0x0370_7344]),
            [0xd16c_fe09, 0x94fd_cceb, 0x5001_e420, 0x2412_6ea1]
        );
    }

    #[test]
    fn gang_matches_single_blocks() {
        let ph = Philox::new(0x0123_4567_89ab_cdef);
        for (base, row) in [(0u32, 0u32), (17, 3), (u32::MAX - 3, 12345)] {
            let gang = ph.gang8(base, row);
            for l in 0..8u32 {
                let single = ph.block(base.wrapping_add(l), row);
                for (j, words) in gang.iter().enumerate() {
                    assert_eq!(
                        words[l as usize],
                        u64::from(single[j]),
                        "base={base} row={row} lane={l} word={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn seed_key_split_and_determinism() {
        let a = Philox::new(0xdead_beef_cafe_f00d);
        assert_eq!(a.key(), [0xcafe_f00d, 0xdead_beef]);
        assert_eq!(a.block(5, 9), a.block(5, 9));
        assert_ne!(a.block(5, 9), a.block(6, 9));
        assert_ne!(a.block(5, 9), a.block(5, 10));
        assert_ne!(a.block(5, 9), Philox::new(1).block(5, 9));
    }

    #[test]
    fn rng_view_matches_blocks_in_order() {
        let ph = Philox::new(42);
        let mut rng = PhiloxRng::new(ph, 7);
        for block in 0..5u32 {
            let b = ph.block(block, 7);
            assert_eq!(rng.next_u64(), u64::from(b[0]) | (u64::from(b[1]) << 32));
            assert_eq!(rng.next_u64(), u64::from(b[2]) | (u64::from(b[3]) << 32));
        }
        // The RngCore blanket impl provides floats in [0, 1).
        let mut rng = PhiloxRng::new(ph, 8);
        for _ in 0..100 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn words_look_uniform() {
        // Cheap sanity (the real distribution pins live in the OUE
        // chi-square suites): bit balance over a few thousand words.
        let ph = Philox::new(3);
        let mut bit_counts = [0u32; 64];
        let n = 4096u32;
        for i in 0..n {
            let b = ph.block(i, 0);
            let w = u64::from(b[0]) | (u64::from(b[1]) << 32);
            for (bit, c) in bit_counts.iter_mut().enumerate() {
                *c += ((w >> bit) & 1) as u32;
            }
        }
        for (bit, &c) in bit_counts.iter().enumerate() {
            // 4096 draws, sd = 32; allow ±6 sd.
            assert!((c as i64 - 2048).abs() < 192, "bit {bit}: {c}/{n}");
        }
    }
}
