//! Privacy budgets and runtime *w-event ε-LDP* accounting.
//!
//! Definition 3 of the paper requires that for any sliding window of `w`
//! consecutive timestamps, the composed privacy loss for every user is at
//! most `ε`. The two allocation families satisfy this differently:
//!
//! - **Budget division** (Theorem 1, sequential composition): every user may
//!   report at every timestamp, but the per-timestamp budgets `ε_t` must sum
//!   to at most `ε` over any window of `w` timestamps.
//! - **Population division**: each report spends the *full* `ε`, so a user
//!   must report at most once within any window of `w` timestamps (users are
//!   "recycled" `w` steps after reporting; see Algorithm 1, line 9).
//!
//! [`WEventLedger`] records both kinds of events and verifies the invariant,
//! turning the privacy proof of Theorem 3 into an executable check.

use crate::error::LdpError;
use std::collections::BTreeMap;

/// A validated privacy budget ε > 0.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct PrivacyBudget(f64);

impl PrivacyBudget {
    /// Create a budget; rejects non-positive or non-finite values.
    pub fn new(eps: f64) -> Result<Self, LdpError> {
        if !eps.is_finite() || eps <= 0.0 {
            return Err(LdpError::InvalidBudget(eps));
        }
        Ok(PrivacyBudget(eps))
    }

    /// The raw ε value.
    #[inline]
    pub fn eps(self) -> f64 {
        self.0
    }

    /// Sequential composition (Theorem 1): the combined mechanism consumes
    /// the sum of the component budgets.
    pub fn compose(parts: &[PrivacyBudget]) -> f64 {
        parts.iter().map(|b| b.0).sum()
    }

    /// Split the budget into a fraction `portion` and the remainder.
    /// Returns `(portion·ε, (1−portion)·ε)`.
    pub fn split(self, portion: f64) -> (f64, f64) {
        assert!((0.0..=1.0).contains(&portion), "portion={portion}");
        (self.0 * portion, self.0 * (1.0 - portion))
    }
}

impl TryFrom<f64> for PrivacyBudget {
    type Error = LdpError;
    fn try_from(v: f64) -> Result<Self, Self::Error> {
        PrivacyBudget::new(v)
    }
}

/// Numerical slack for floating-point budget sums.
const EPS_TOLERANCE: f64 = 1e-9;

/// Records per-timestamp budget spends and per-user report times, and checks
/// the w-event invariant for both.
#[derive(Debug, Clone)]
pub struct WEventLedger {
    eps_total: f64,
    w: usize,
    /// ε spent at each timestamp by the *budget-division* path
    /// (index = timestamp).
    per_ts_eps: Vec<f64>,
    /// For the *population-division* path: timestamps at which each user
    /// reported (each report spends `eps_total`).
    user_reports: BTreeMap<u64, Vec<u64>>,
}

impl WEventLedger {
    /// New ledger for total budget `eps` and window size `w ≥ 1`.
    pub fn new(eps: f64, w: usize) -> Self {
        assert!(w >= 1, "window size must be >= 1");
        assert!(eps.is_finite() && eps > 0.0, "eps must be positive");
        WEventLedger { eps_total: eps, w, per_ts_eps: Vec::new(), user_reports: BTreeMap::new() }
    }

    /// Total budget ε.
    pub fn eps_total(&self) -> f64 {
        self.eps_total
    }

    /// Window size w.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Record a budget-division spend of `eps` at timestamp `t` (applied to
    /// every reporting user).
    pub fn record_budget(&mut self, t: u64, eps: f64) {
        assert!(eps >= 0.0 && eps.is_finite(), "eps spend must be >= 0");
        let t = t as usize;
        if self.per_ts_eps.len() <= t {
            self.per_ts_eps.resize(t + 1, 0.0);
        }
        self.per_ts_eps[t] += eps;
    }

    /// Record that `user` reported at timestamp `t` with the full budget
    /// (population division).
    pub fn record_user_report(&mut self, user: u64, t: u64) {
        self.user_reports.entry(user).or_default().push(t);
    }

    /// Sum of budget-division spends in the window ending at `t`
    /// (`[t−w+1, t]`, saturating at 0).
    pub fn window_spend(&self, t: u64) -> f64 {
        let t = t as usize;
        let lo = (t + 1).saturating_sub(self.w);
        self.per_ts_eps
            .iter()
            .enumerate()
            .skip(lo)
            .take_while(|(i, _)| *i <= t)
            .map(|(_, e)| *e)
            .sum()
    }

    /// Budget still available at timestamp `t` for the window ending at `t`,
    /// excluding `t` itself: `ε − Σ_{i=t−w+1}^{t−1} ε_i` (paper §III-E).
    pub fn remaining_budget(&self, t: u64) -> f64 {
        let t = t as usize;
        let lo = (t + 1).saturating_sub(self.w);
        let spent: f64 = self
            .per_ts_eps
            .iter()
            .enumerate()
            .skip(lo)
            .take_while(|(i, _)| *i < t)
            .map(|(_, e)| *e)
            .sum();
        (self.eps_total - spent).max(0.0)
    }

    /// Verify the w-event invariant over everything recorded so far.
    pub fn verify(&self) -> Result<(), LdpError> {
        // Budget division: every window sums to <= eps.
        for t in 0..self.per_ts_eps.len() {
            let spend = self.window_spend(t as u64);
            if spend > self.eps_total + EPS_TOLERANCE {
                return Err(LdpError::WEventViolation(format!(
                    "window ending at t={t} spends {spend:.6} > eps={:.6}",
                    self.eps_total
                )));
            }
        }
        // Population division: each user's reports are >= w apart, so any
        // w-window contains at most one full-eps report per user. The map
        // is ordered by user id, so when several users violate the
        // invariant the reported one is always the smallest id — error
        // messages are reproducible across runs and platforms.
        for (user, times) in &self.user_reports {
            let mut sorted = times.clone();
            sorted.sort_unstable();
            for pair in sorted.windows(2) {
                if pair[1] - pair[0] < self.w as u64 {
                    return Err(LdpError::WEventViolation(format!(
                        "user {user} reported at t={} and t={} (< w={} apart)",
                        pair[0], pair[1], self.w
                    )));
                }
                if pair[1] == pair[0] {
                    return Err(LdpError::WEventViolation(format!(
                        "user {user} reported twice at t={}",
                        pair[0]
                    )));
                }
            }
        }
        Ok(())
    }

    /// Number of reports recorded in the population-division path.
    pub fn total_user_reports(&self) -> usize {
        self.user_reports.values().map(Vec::len).sum()
    }

    /// Forget everything recorded, in place; ε and `w` are untouched and
    /// buffer capacity is retained.
    pub fn reset(&mut self) {
        self.per_ts_eps.clear();
        self.user_reports.clear();
    }

    /// Export the recorded state in a deterministic order for external
    /// serialization (checkpoints): the per-timestamp spend column, and
    /// every `(user, t)` report pair sorted by user then time.
    pub fn export_state(&self) -> (Vec<f64>, Vec<(u64, u64)>) {
        let mut reports: Vec<(u64, u64)> = self
            .user_reports
            .iter()
            .flat_map(|(&u, times)| times.iter().map(move |&t| (u, t)))
            .collect();
        reports.sort_unstable();
        (self.per_ts_eps.clone(), reports)
    }

    /// Replace the recorded state with a previously exported one
    /// (inverse of [`Self::export_state`]).
    pub fn import_state(&mut self, per_ts_eps: &[f64], reports: &[(u64, u64)]) {
        self.reset();
        self.per_ts_eps.extend_from_slice(per_ts_eps);
        for &(user, t) in reports {
            self.user_reports.entry(user).or_default().push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_validation() {
        assert!(PrivacyBudget::new(1.0).is_ok());
        assert!(PrivacyBudget::new(0.0).is_err());
        assert!(PrivacyBudget::new(-0.5).is_err());
        assert!(PrivacyBudget::new(f64::NAN).is_err());
        assert!(PrivacyBudget::new(f64::INFINITY).is_err());
    }

    #[test]
    fn compose_sums() {
        let parts = [
            PrivacyBudget::new(0.5).unwrap(),
            PrivacyBudget::new(0.25).unwrap(),
            PrivacyBudget::new(0.25).unwrap(),
        ];
        assert!((PrivacyBudget::compose(&parts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_fractions() {
        let b = PrivacyBudget::new(2.0).unwrap();
        let (a, rest) = b.split(0.25);
        assert!((a - 0.5).abs() < 1e-12);
        assert!((rest - 1.5).abs() < 1e-12);
    }

    #[test]
    fn budget_window_accounting() {
        let mut ledger = WEventLedger::new(1.0, 3);
        ledger.record_budget(0, 0.4);
        ledger.record_budget(1, 0.3);
        ledger.record_budget(2, 0.3);
        assert!((ledger.window_spend(2) - 1.0).abs() < 1e-12);
        assert!(ledger.verify().is_ok());
        // t=3 window is [1,2,3]: 0.3 + 0.3 spent, 0.4 remains.
        assert!((ledger.remaining_budget(3) - 0.4).abs() < 1e-12);
        ledger.record_budget(3, 0.4);
        assert!(ledger.verify().is_ok());
        // Overspend in window [2,3,4].
        ledger.record_budget(4, 0.5);
        assert!(ledger.verify().is_err());
    }

    #[test]
    fn remaining_budget_at_start() {
        let ledger = WEventLedger::new(1.5, 10);
        assert!((ledger.remaining_budget(0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn population_spacing_ok() {
        let mut ledger = WEventLedger::new(1.0, 4);
        ledger.record_user_report(7, 0);
        ledger.record_user_report(7, 4);
        ledger.record_user_report(7, 9);
        ledger.record_user_report(8, 2);
        assert!(ledger.verify().is_ok());
        assert_eq!(ledger.total_user_reports(), 4);
    }

    #[test]
    fn population_spacing_violation() {
        let mut ledger = WEventLedger::new(1.0, 4);
        ledger.record_user_report(7, 0);
        ledger.record_user_report(7, 3); // gap 3 < w = 4
        let err = ledger.verify().unwrap_err();
        assert!(err.to_string().contains("user 7"));
    }

    #[test]
    fn population_duplicate_report_violation() {
        let mut ledger = WEventLedger::new(1.0, 1);
        // w = 1: duplicates at the same timestamp are still violations.
        ledger.record_user_report(3, 5);
        ledger.record_user_report(3, 5);
        assert!(ledger.verify().is_err());
    }

    #[test]
    fn out_of_order_reports_are_sorted() {
        let mut ledger = WEventLedger::new(1.0, 2);
        ledger.record_user_report(1, 10);
        ledger.record_user_report(1, 2);
        ledger.record_user_report(1, 6);
        assert!(ledger.verify().is_ok());
    }

    /// Regression: with several violating users, the reported violation
    /// used to follow HashMap iteration order — a different user (and a
    /// different error message) run to run. The ledger now scans users
    /// in id order, so the smallest violating id is always the one
    /// reported, regardless of recording order.
    #[test]
    fn violation_reporting_is_deterministic() {
        // Record in three different orders; every permutation must
        // produce the identical error message.
        let users: [&[u64]; 3] = [&[30, 20, 10], &[10, 30, 20], &[20, 10, 30]];
        let mut messages = Vec::new();
        for order in users {
            let mut ledger = WEventLedger::new(1.0, 5);
            for &u in order {
                ledger.record_user_report(u, 0);
                ledger.record_user_report(u, 2); // gap 2 < w = 5: violation
            }
            messages.push(ledger.verify().unwrap_err().to_string());
        }
        assert_eq!(messages[0], messages[1]);
        assert_eq!(messages[1], messages[2]);
        assert!(messages[0].contains("user 10"), "smallest id wins: {}", messages[0]);
    }

    #[test]
    fn window_spend_partial_window() {
        let mut ledger = WEventLedger::new(1.0, 5);
        ledger.record_budget(0, 0.2);
        ledger.record_budget(1, 0.2);
        // Window ending at 1 only covers t=0,1.
        assert!((ledger.window_spend(1) - 0.4).abs() < 1e-12);
    }
}
