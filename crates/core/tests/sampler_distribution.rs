//! Seeded distributional tests: the O(1) alias-table draws must be
//! statistically indistinguishable from the O(k) reference scan
//! (`sample_weighted`) they replaced — same expected distribution, verified
//! with Pearson chi-square against the analytic probabilities.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_core::sampler::{sample_weighted, AliasTable};
use retrasyn_core::GlobalMobilityModel;
use retrasyn_geo::{Grid, TransitionTable};

/// Pearson chi-square statistic of observed counts against expected
/// probabilities (categories with zero expected mass must be unobserved).
fn chi_square(counts: &[u64], probs: &[f64], n: u64) -> f64 {
    let mut chi = 0.0;
    for (&c, &p) in counts.iter().zip(probs) {
        if p <= 0.0 {
            assert_eq!(c, 0, "zero-probability category was drawn");
            continue;
        }
        let e = p * n as f64;
        chi += (c as f64 - e).powi(2) / e;
    }
    chi
}

/// 99.9th-percentile chi-square critical values for 1..=15 dof.
fn chi2_crit(dof: usize) -> f64 {
    const CRIT: [f64; 15] = [
        10.83, 13.82, 16.27, 18.47, 20.52, 22.46, 24.32, 26.12, 27.88, 29.59, 31.26, 32.91, 34.53,
        36.12, 37.70,
    ];
    CRIT[dof - 1]
}

#[test]
fn alias_and_scan_agree_on_fixed_weights() {
    // A deliberately awkward weight vector: zeros, negatives (clamped by
    // both samplers), and a dominant mode.
    let weights = [0.2, 0.0, -0.4, 1.4, 0.05, 0.0, 0.35, 0.6];
    let clamped: Vec<f64> = weights.iter().map(|w: &f64| w.max(0.0)).collect();
    let total: f64 = clamped.iter().sum();
    let probs: Vec<f64> = clamped.iter().map(|w| w / total).collect();
    let dof = probs.iter().filter(|&&p| p > 0.0).count() - 1;

    let n = 250_000u64;
    let alias = AliasTable::new(&weights);
    let mut rng = StdRng::seed_from_u64(1001);
    let mut alias_counts = vec![0u64; weights.len()];
    for _ in 0..n {
        alias_counts[alias.sample(&mut rng)] += 1;
    }
    // `sample_weighted` documents non-negative weights (its callers always
    // pre-clamp, as `AliasTable` does internally), so feed it the clamped
    // vector.
    let mut scan_counts = vec![0u64; weights.len()];
    for _ in 0..n {
        scan_counts[sample_weighted(&clamped, &mut rng)] += 1;
    }

    let chi_alias = chi_square(&alias_counts, &probs, n);
    let chi_scan = chi_square(&scan_counts, &probs, n);
    assert!(chi_alias < chi2_crit(dof), "alias chi-square {chi_alias} (counts {alias_counts:?})");
    assert!(chi_scan < chi2_crit(dof), "scan chi-square {chi_scan} (counts {scan_counts:?})");
}

#[test]
fn cached_model_draws_match_scan_distribution_per_cell() {
    let grid = Grid::unit(6);
    let table = TransitionTable::new(&grid);
    // Pseudo-random signed frequencies over the whole domain.
    let freqs: Vec<f64> =
        (0..table.len()).map(|i| (((i * 2654435761) % 97) as f64 - 20.0) * 1e-3).collect();
    let mut model = GlobalMobilityModel::new(table.len());
    model.replace_all(&freqs);
    model.rebuild_samplers(&table);
    let cache = model.sampler().expect("fresh cache").clone();

    let n = 60_000u64;
    let mut rng = StdRng::seed_from_u64(2002);
    for cell in grid.cells() {
        let probs_raw = model.move_probs(&table, cell);
        // The alias row is conditioned on not quitting: renormalize.
        let total: f64 = probs_raw.iter().sum();
        let probs: Vec<f64> = if total > 0.0 {
            probs_raw.iter().map(|p| p / total).collect()
        } else {
            vec![1.0 / probs_raw.len() as f64; probs_raw.len()]
        };
        let targets = table.move_targets(cell);
        let mut counts = vec![0u64; targets.len()];
        for _ in 0..n {
            let to = cache.sample_move(cell, &mut rng);
            counts[targets.iter().position(|&c| c == to).unwrap()] += 1;
        }
        let dof = probs.iter().filter(|&&p| p > 0.0).count().saturating_sub(1).max(1);
        let chi = chi_square(&counts, &probs, n);
        assert!(chi < chi2_crit(dof), "cell {cell:?}: chi-square {chi} > crit({dof})");
    }
}

#[test]
fn cached_enter_draws_match_enter_distribution() {
    let grid = Grid::unit(5);
    let table = TransitionTable::new(&grid);
    let mut freqs = vec![0.0; table.len()];
    for (i, c) in grid.cells().enumerate() {
        freqs[table.enter_index(c)] = (i % 4) as f64 * 0.1;
    }
    let mut model = GlobalMobilityModel::new(table.len());
    model.replace_all(&freqs);
    model.rebuild_samplers(&table);
    let cache = model.sampler().unwrap().clone();

    let probs = model.enter_distribution(&table);
    let n = 150_000u64;
    let mut rng = StdRng::seed_from_u64(3003);
    let mut counts = vec![0u64; grid.num_cells()];
    for _ in 0..n {
        counts[cache.sample_enter(&mut rng).index()] += 1;
    }
    let dof = probs.iter().filter(|&&p| p > 0.0).count() - 1;
    // dof can exceed the table; fall back to a generous normal bound.
    let crit =
        if dof <= 15 { chi2_crit(dof) } else { dof as f64 + 4.0 * (2.0 * dof as f64).sqrt() };
    let chi = chi_square(&counts, &probs, n);
    assert!(chi < crit, "enter chi-square {chi} > {crit}");
}

#[test]
fn cached_and_uncached_synthesis_produce_similar_occupancy() {
    // End-to-end: run the same synthesis schedule with and without the
    // sampler cache; per-cell occupancy distributions of the final state
    // must agree within statistical noise (they share expected dynamics).
    let grid = Grid::unit(4);
    let table = TransitionTable::new(&grid);
    let freqs: Vec<f64> = (0..table.len()).map(|i| ((i % 13) as f64 + 1.0) * 1e-3).collect();

    let run = |cached: bool| {
        let mut model = GlobalMobilityModel::new(table.len());
        model.replace_all(&freqs);
        if cached {
            model.rebuild_samplers(&table);
        }
        let mut db = retrasyn_core::SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(4004);
        for t in 0..30 {
            db.step(t, &model, &table, 8000, 25.0, &mut rng);
        }
        db.occupancy(grid.num_cells())
    };
    let occ_cached = run(true);
    let occ_scan = run(false);
    let total: u64 = occ_cached.iter().sum();
    assert_eq!(total, 8000);
    for (i, (&a, &b)) in occ_cached.iter().zip(&occ_scan).enumerate() {
        // ~500 expected per cell; 5 sigma of a binomial spread.
        let sigma = (a.max(b).max(1) as f64).sqrt();
        assert!(
            (a as f64 - b as f64).abs() < 5.0 * sigma + 25.0,
            "cell {i}: cached {a} vs scan {b}"
        );
    }
}
