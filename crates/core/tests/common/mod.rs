//! Statistical helpers shared by the sharded-equivalence test suites.

/// Two-sample chi-square statistic between histograms `a` and `b` (unequal
/// totals handled by the usual √(N_b/N_a) weighting). Returns the statistic
/// and the degrees of freedom (occupied categories − 1).
pub fn two_sample_chi_square(a: &[u64], b: &[u64], na: u64, nb: u64) -> (f64, usize) {
    let (ka, kb) = ((nb as f64 / na as f64).sqrt(), (na as f64 / nb as f64).sqrt());
    let mut chi = 0.0;
    let mut occupied = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        if x + y == 0 {
            continue;
        }
        occupied += 1;
        let d = ka * x as f64 - kb * y as f64;
        chi += d * d / (x + y) as f64;
    }
    (chi, occupied.saturating_sub(1))
}

/// Loose 99.9th-percentile bound for chi-square with `dof` degrees of
/// freedom (Wilson–Hilferty plus margin; deliberately conservative so the
/// seeded tests never flake while still catching a wrong distribution).
pub fn chi2_crit(dof: usize) -> f64 {
    dof as f64 + 4.0 * (2.0 * dof as f64).sqrt() + 10.0
}
