//! Hardened-ingest suite: `ChannelSource` deadlines, producer failure
//! modes, and the `ValidatedSource` screening guarantee — arbitrary
//! (adversarial) event batches can only yield typed errors or quarantine
//! records, never a panic, in debug *and* release builds.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use proptest::prelude::*;
use retrasyn_core::{
    ChannelSource, EventSource, IngestPolicy, RetraSyn, RetraSynConfig, SessionError, StallPolicy,
    ValidatedSource,
};
use retrasyn_geo::{CellId, Grid, Space, Topology, TransitionState, UserEvent};

fn enter(user: u64, cell: u32) -> UserEvent {
    UserEvent { user, state: TransitionState::Enter(CellId(cell)) }
}

fn topo() -> Arc<Topology> {
    Grid::unit(4).compile_shared()
}

// ---------------------------------------------------------------------------
// ChannelSource deadlines.

#[test]
fn deadline_heartbeat_keeps_session_stepping() {
    let (tx, src) = ChannelSource::bounded(4);
    let mut src = src.with_deadline(Duration::from_millis(20), StallPolicy::Heartbeat);

    tx.send(vec![enter(1, 0)]).unwrap();
    assert_eq!(src.next_batch().unwrap().len(), 1);

    // Producer stalls: the deadline expires and the source synthesizes an
    // empty heartbeat batch instead of blocking the engine forever.
    assert_eq!(src.next_batch().unwrap().len(), 0);
    assert_eq!(src.stalls(), 1);

    // A recovered producer resumes the stream on the same source.
    tx.send(vec![enter(2, 5)]).unwrap();
    assert_eq!(src.next_batch().unwrap().len(), 1);
    assert_eq!(src.stalls(), 1);

    // A dropped producer still ends the stream (no heartbeat forever).
    drop(tx);
    assert!(src.next_batch().is_none());
}

#[test]
fn deadline_end_stream_terminates_on_stall() {
    let (tx, src) = ChannelSource::bounded(4);
    let mut src = src.with_deadline(Duration::from_millis(20), StallPolicy::EndStream);

    tx.send(vec![enter(1, 0)]).unwrap();
    assert_eq!(src.next_batch().unwrap().len(), 1);

    // Producer stalls past the deadline: the stream ends.
    assert!(src.next_batch().is_none());
    assert_eq!(src.stalls(), 1);
}

#[test]
fn sender_dropped_mid_stream_ends_cleanly() {
    let (tx, mut src) = ChannelSource::bounded(2);
    let producer = thread::spawn(move || {
        tx.send(vec![enter(1, 0)]).unwrap();
        tx.send(vec![enter(2, 3)]).unwrap();
        // The producer dies here (tx dropped) while the consumer is still
        // reading: the stream must end, not hang or panic.
    });
    assert_eq!(src.next_batch().unwrap().len(), 1);
    assert_eq!(src.next_batch().unwrap().len(), 1);
    assert!(src.next_batch().is_none());
    producer.join().unwrap();
}

// ---------------------------------------------------------------------------
// Screening guarantee under adversarial input.

/// Decode one fuzzed tuple into a (possibly invalid) event: cells range
/// over 0..40 against a 16-cell grid, so out-of-domain, non-adjacent,
/// duplicate and lifecycle faults all occur.
fn decode(((user, tag), (a, b)): ((u64, u8), (u32, u32))) -> UserEvent {
    let state = match tag {
        0 => TransitionState::Move { from: CellId(a), to: CellId(b) },
        1 => TransitionState::Enter(CellId(a)),
        _ => TransitionState::Quit(CellId(a)),
    };
    UserEvent { user, state }
}

fn small_engine(seed: u64) -> RetraSyn {
    RetraSyn::population_division(RetraSynConfig::new(1.0, 4), Grid::unit(4), seed)
}

proptest! {
    /// Arbitrary batches through `ValidatedSource` + `try_step`: the
    /// screened stream always steps `Ok`, the raw stream only ever yields
    /// typed errors (after which the engine remains steppable), and
    /// `IngestStats` accounts for every single event.
    #[test]
    fn arbitrary_batches_never_panic(
        raw in prop::collection::vec(
            prop::collection::vec(((0u64..6, 0u8..3), (0u32..40, 0u32..40)), 0..8),
            1..6,
        ),
        seed in 0u64..16,
    ) {
        let batches: Vec<Vec<UserEvent>> =
            raw.iter().map(|b| b.iter().map(|&e| decode(e)).collect()).collect();
        let total_events: u64 = batches.iter().map(|b| b.len() as u64).sum();

        // Screened path: every delivered batch satisfies the engine input
        // contract, so stepping can never fail or panic.
        let mut screened = ValidatedSource::new(
            retrasyn_core::IterSource::new(batches.clone().into_iter()),
            topo(),
            IngestPolicy::DropEvents,
        );
        let mut engine = small_engine(seed);
        while let Some(batch) = screened.next_batch() {
            let t = engine.next_timestamp();
            prop_assert!(engine.try_step(t, batch).is_ok());
        }
        let stats = *screened.stats();
        prop_assert_eq!(stats.events, total_events);
        prop_assert_eq!(stats.passed + stats.diverted(), total_events);
        prop_assert_eq!(stats.diverted(), screened.quarantine().count() as u64
            + stats.quarantine_dropped);

        // Raw path: invalid batches surface as typed errors; the engine
        // is untouched by a pre-state error and keeps stepping.
        let mut engine = small_engine(seed + 1000);
        for batch in &batches {
            let t = engine.next_timestamp();
            match engine.try_step(t, batch) {
                Ok(_) => {}
                Err(SessionError::InvalidEvent { t: et, .. }) => {
                    prop_assert_eq!(et, t);
                    // Still steppable at the same timestamp.
                    prop_assert!(engine.try_step(t, &[]).is_ok());
                }
                Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            }
        }
    }

    /// `RejectBatch` delivers only empty heartbeats for tainted batches,
    /// and a `Strict` source latches the first fault as a typed error.
    #[test]
    fn policies_hold_under_arbitrary_input(
        raw in prop::collection::vec(
            prop::collection::vec(((0u64..6, 0u8..3), (0u32..40, 0u32..40)), 0..6),
            1..5,
        ),
    ) {
        let batches: Vec<Vec<UserEvent>> =
            raw.iter().map(|b| b.iter().map(|&e| decode(e)).collect()).collect();

        let mut reject = ValidatedSource::new(
            retrasyn_core::IterSource::new(batches.clone().into_iter()),
            topo(),
            IngestPolicy::RejectBatch,
        );
        let mut delivered = 0u64;
        while let Some(batch) = reject.next_batch() {
            delivered += batch.len() as u64;
        }
        let stats = *reject.stats();
        prop_assert_eq!(delivered, stats.passed);
        prop_assert_eq!(stats.events, stats.passed + stats.diverted() + stats.rejected_events);

        let mut strict = ValidatedSource::new(
            retrasyn_core::IterSource::new(batches.into_iter()),
            topo(),
            IngestPolicy::Strict,
        );
        while strict.next_batch().is_some() {}
        if stats.diverted() > 0 {
            prop_assert!(matches!(strict.error(), Some(SessionError::InvalidEvent { .. })));
        } else {
            prop_assert!(strict.error().is_none());
        }
    }
}
