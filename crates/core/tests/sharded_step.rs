//! Distributional and determinism pins for the fully sharded synthesis
//! step: the pooled quit / shrink / extend passes must make per-stream
//! decisions from exactly the same distributions as the sequential path
//! (verified with two-sample chi-square over retirement locations), be
//! bit-identical across runs for a fixed `(seed, threads)`, and collapse
//! to the sequential path at `threads = 1`.

mod common;

use common::{chi2_crit, two_sample_chi_square};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_core::{GlobalMobilityModel, SyntheticDb};
use retrasyn_geo::{Grid, GriddedDataset, TransitionTable};

/// Informed model (all-positive pseudo-random frequencies, so every cell
/// has movement, enter and quit mass) with the sampler cache built.
fn informed_setup() -> (Grid, TransitionTable, GlobalMobilityModel) {
    let grid = Grid::unit(8);
    let table = TransitionTable::new(&grid);
    let mut model = GlobalMobilityModel::new(table.len());
    let est: Vec<f64> = (0..table.len()).map(|i| ((i * 37 % 11) as f64 + 1.0) * 1e-3).collect();
    model.replace_all(&est);
    model.rebuild_samplers(&table);
    (grid, table, model)
}

/// Histogram of last cells over streams that terminated before the final
/// timestamp (quitters and shrink victims; streams alive at `finish` end
/// exactly at `horizon − 1`).
fn early_end_histogram(ds: &GriddedDataset, horizon: u64, num_cells: usize) -> (Vec<u64>, u64) {
    let mut hist = vec![0u64; num_cells];
    let mut n = 0u64;
    for s in ds.iter() {
        let end = s.start + s.cells.len() as u64 - 1;
        if end < horizon - 1 {
            hist[s.last_cell().index()] += 1;
            n += 1;
        }
    }
    (hist, n)
}

#[test]
fn sharded_quit_decisions_match_sequential_distribution() {
    // Steady-state steps (population pinned at the target) so every early
    // termination is a natural Eq. 8 quit: the fused pooled pass and the
    // sequential pass must retire streams at identically distributed
    // locations.
    let (grid, table, model) = informed_setup();
    let num_cells = grid.num_cells();
    let target = 4000usize;
    let steps = 6u64;
    let mut seq_hist = vec![0u64; num_cells];
    let mut par_hist = vec![0u64; num_cells];
    let (mut seq_n, mut par_n) = (0u64, 0u64);
    for seed in 0..3u64 {
        let mut init = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(100 + seed);
        init.step(0, &model, &table, target, 6.0, &mut rng);

        let mut seq_db = init.clone();
        let mut rng = StdRng::seed_from_u64(200 + seed);
        for t in 1..steps {
            seq_db.step(t, &model, &table, target, 6.0, &mut rng);
        }
        let (h, n) = early_end_histogram(&seq_db.release(&grid, steps), steps, num_cells);
        seq_hist.iter_mut().zip(&h).for_each(|(acc, &x)| *acc += x);
        seq_n += n;

        let mut par_db = init.clone();
        let mut rng = StdRng::seed_from_u64(300 + seed);
        for t in 1..steps {
            par_db.step_parallel(t, &model, &table, target, 6.0, &mut rng, 4);
        }
        let (h, n) = early_end_histogram(&par_db.release(&grid, steps), steps, num_cells);
        par_hist.iter_mut().zip(&h).for_each(|(acc, &x)| *acc += x);
        par_n += n;
    }
    assert!(seq_n > 500 && par_n > 500, "quits too rare: seq={seq_n} par={par_n}");
    let (chi, dof) = two_sample_chi_square(&seq_hist, &par_hist, seq_n, par_n);
    assert!(
        chi < chi2_crit(dof),
        "sharded quit locations diverge: chi={chi:.1} dof={dof} (crit {:.1})",
        chi2_crit(dof)
    );
}

#[test]
fn sharded_shrink_selection_matches_sequential_distribution() {
    // A pure shrink step: λ → ∞ disables natural quitting, the target drop
    // forces retirement of `excess` victims chosen with probability
    // proportional to the quitting distribution at their last cell. The
    // two-phase pooled selection (per-shard Efraimidis–Spirakis keys +
    // global cut) must match the sequential selection's distribution.
    let (grid, table, model) = informed_setup();
    let num_cells = grid.num_cells();
    let (from, to) = (4000usize, 2500usize);
    let mut seq_hist = vec![0u64; num_cells];
    let mut par_hist = vec![0u64; num_cells];
    let (mut seq_n, mut par_n) = (0u64, 0u64);
    for seed in 0..3u64 {
        let mut init = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(400 + seed);
        init.step(0, &model, &table, from, 1e12, &mut rng);
        // A couple of steady steps spread the population over the grid.
        for t in 1..3 {
            init.step(t, &model, &table, from, 1e12, &mut rng);
        }

        let mut seq_db = init.clone();
        let mut rng = StdRng::seed_from_u64(500 + seed);
        seq_db.step(3, &model, &table, to, 1e12, &mut rng);
        assert_eq!(seq_db.active_count(), to);
        let (h, n) = early_end_histogram(&seq_db.release(&grid, 4), 4, num_cells);
        seq_hist.iter_mut().zip(&h).for_each(|(acc, &x)| *acc += x);
        seq_n += n;

        let mut par_db = init.clone();
        let mut rng = StdRng::seed_from_u64(600 + seed);
        par_db.step_parallel(3, &model, &table, to, 1e12, &mut rng, 4);
        assert_eq!(par_db.active_count(), to);
        let (h, n) = early_end_histogram(&par_db.release(&grid, 4), 4, num_cells);
        par_hist.iter_mut().zip(&h).for_each(|(acc, &x)| *acc += x);
        par_n += n;
    }
    // Every early end is a shrink victim: exactly `excess` per run.
    assert_eq!(seq_n, 3 * (from - to) as u64);
    assert_eq!(par_n, 3 * (from - to) as u64);
    let (chi, dof) = two_sample_chi_square(&seq_hist, &par_hist, seq_n, par_n);
    assert!(
        chi < chi2_crit(dof),
        "sharded shrink selection diverges: chi={chi:.1} dof={dof} (crit {:.1})",
        chi2_crit(dof)
    );
}

#[test]
fn fully_sharded_step_bit_identical_per_seed_and_threads() {
    // A schedule that exercises every pooled pass: steady (fused
    // quit+extend), shrinking (two-phase selection) and growth (spawn).
    let (grid, table, model) = informed_setup();
    let targets = [4000usize, 4000, 3000, 3600, 2200, 2600];
    let run_parallel = |threads: usize| {
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(33);
        for (t, &target) in targets.iter().enumerate() {
            db.step_parallel(t as u64, &model, &table, target, 8.0, &mut rng, threads);
            assert_eq!(db.active_count(), target, "t={t}");
        }
        db.release(&grid, targets.len() as u64)
    };
    let run_sequential = || {
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(33);
        for (t, &target) in targets.iter().enumerate() {
            db.step(t as u64, &model, &table, target, 8.0, &mut rng);
        }
        db.release(&grid, targets.len() as u64)
    };
    // Bit-identical across runs for a fixed (seed, threads).
    assert_eq!(run_parallel(4), run_parallel(4));
    // threads = 1 delegates to the sequential path: exact match.
    assert_eq!(run_parallel(1), run_sequential());
    // The pooled path consumes a different RNG stream than the sequential
    // one; divergence proves the pool actually engaged.
    assert_ne!(run_parallel(4), run_sequential());
    // Moves stay grid-adjacent through every pooled pass.
    let released = run_parallel(4);
    for s in released.iter() {
        for w in s.cells.windows(2) {
            assert!(grid.are_adjacent(w[0], w[1]));
        }
    }
}

#[test]
fn pooled_spawn_appends_in_draw_order_with_contiguous_ids() {
    // A pure-growth parallel step: λ → ∞ disables quitting, so the jump
    // from 3000 to 7000 streams forces a pooled spawn spread over every
    // worker. The merge must restore draw order — fresh rows come back
    // as one contiguous id block, exactly the layout of the sequential
    // spawn.
    let (grid, table, model) = informed_setup();
    let mut db = SyntheticDb::new();
    let mut rng = StdRng::seed_from_u64(55);
    db.step_parallel(0, &model, &table, 3000, 1e12, &mut rng, 4);
    db.step_parallel(1, &model, &table, 7000, 1e12, &mut rng, 4);
    assert_eq!(db.active_count(), 7000);
    let released = db.release(&grid, 2);
    let mut spawned: Vec<u64> = Vec::new();
    for s in released.iter() {
        if s.start == 1 {
            assert_eq!(s.cells.len(), 1, "spawned stream extended during its birth step");
            spawned.push(s.id);
        }
    }
    spawned.sort_unstable();
    assert_eq!(spawned, (3000..7000).collect::<Vec<u64>>());
}

#[test]
fn shrink_selection_survives_key_underflow_regime() {
    // 32×32 grid, uniform quitting distribution: per-cell weight ≈ 1e-3,
    // exactly the regime where naive `u^{1/w}` keys underflow to 0.0 and
    // a large one-tick shrink would degrade into positional tie-breaking
    // (victims taken from shard 0, position 0 upward). With log-domain
    // keys the selection stays weighted-random, so every shard keeps
    // roughly its proportional share of survivors.
    let grid = Grid::unit(32);
    let table = TransitionTable::new(&grid);
    let mut model = GlobalMobilityModel::new(table.len());
    model.rebuild_samplers(&table); // uninformed: uniform fallbacks
    let mut db = SyntheticDb::new();
    let mut rng = StdRng::seed_from_u64(77);
    db.step_parallel(0, &model, &table, 4096, 1e12, &mut rng, 4);
    db.step_parallel(1, &model, &table, 1024, 1e12, &mut rng, 4);
    assert_eq!(db.active_count(), 1024);
    let released = db.release(&grid, 2);
    // Streams were spawned with ids 0..4096 in order and never reordered
    // before the shrink, so id / 1024 is the stream's shard.
    let mut kept = [0u32; 4];
    for s in released.iter() {
        let survived = s.start + s.cells.len() as u64 - 1 == 1;
        if survived {
            kept[(s.id / 1024) as usize] += 1;
        }
    }
    // Hypergeometric per shard: mean 256, sd ≈ 12; the bounds are ±~9 sd.
    for (shard, &k) in kept.iter().enumerate() {
        assert!(
            (150..=370).contains(&(k as usize)),
            "shard {shard} kept {k} of 1024 survivors (expected ≈256): {kept:?}"
        );
    }
}
