//! Crash-recovery equivalence: a session reconstructed from its WAL (with
//! or without a checkpoint, after a kill at any point, and continued
//! afterwards) is bit-identical to the uninterrupted run.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_core::wal::{
    CheckpointUse, Checkpointer, FsyncPolicy, WalContents, WalError, WalSource, WalWriter,
};
use retrasyn_core::{
    BaselineKind, Division, EventSource, LdpIds, LdpIdsConfig, RetraSyn, RetraSynConfig,
    StreamingEngine, TimelineSource,
};
use retrasyn_datagen::RandomWalkConfig;
use retrasyn_geo::{Grid, GriddedDataset};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique temp path per call (no tempfile crate offline).
fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("retrasyn-recovery-{}-{tag}-{n}.wal", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(Checkpointer::sidecar(path));
}

fn dataset(seed: u64, users: usize, timestamps: u64) -> GriddedDataset {
    RandomWalkConfig { users, timestamps, churn: 0.08, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(seed))
        .discretize(&Grid::unit(5))
}

fn engine(division: Division, threads: usize, seed: u64) -> RetraSyn {
    let config = RetraSynConfig::new(1.0, 5)
        .with_lambda(10.0)
        .with_synthesis_threads(threads)
        .with_collection_threads(threads);
    RetraSyn::new(config, Grid::unit(5), division, seed)
}

/// Drive `engine` through the first `upto` timestamps of `gridded`,
/// logging every batch to a WAL at `path`; checkpoint every `ckpt_every`
/// timestamps when given.
fn drive_logged(
    engine: &mut RetraSyn,
    gridded: &GriddedDataset,
    path: &PathBuf,
    upto: usize,
    ckpt_every: Option<u64>,
) {
    let writer = WalWriter::create(path, 7, engine.fingerprint(), FsyncPolicy::EveryBatch)
        .expect("create WAL");
    let mut source = WalSource::tee(TimelineSource::from_gridded(gridded), writer);
    let ckpt = ckpt_every.map(|k| Checkpointer::new(path, k));
    for _ in 0..upto {
        let Some(batch) = source.next_batch() else { break };
        engine.step(engine.next_timestamp(), batch);
        if let Some(c) = &ckpt {
            c.maybe_save(engine).expect("checkpoint save");
        }
    }
    let (_, mut writer) = source.into_parts();
    writer.sync().expect("final sync");
}

/// The uninterrupted reference: a fresh engine over the first `upto`
/// timestamps, released.
fn reference(
    division: Division,
    threads: usize,
    gridded: &GriddedDataset,
    upto: usize,
) -> retrasyn_geo::GriddedDataset {
    let mut e = engine(division, threads, 7);
    let mut source = TimelineSource::from_gridded(gridded);
    for _ in 0..upto {
        let Some(batch) = source.next_batch() else { break };
        e.step(e.next_timestamp(), batch);
    }
    e.release()
}

#[test]
fn recover_is_bit_identical_both_divisions() {
    let gridded = dataset(1, 120, 25);
    for division in [Division::Budget, Division::Population] {
        let path = temp_path("clean");
        let mut original = engine(division, 1, 7);
        drive_logged(&mut original, &gridded, &path, 25, None);
        let expected = original.release();

        let mut recovered = engine(division, 1, 7);
        let recovery = recovered.recover(&path).expect("recover");
        assert_eq!(recovery.resumed_from, 0);
        assert_eq!(recovery.replayed, 25);
        assert!(!recovery.truncated);
        assert_eq!(recovery.checkpoint, CheckpointUse::None);
        assert_eq!(recovery.next_timestamp(), 25);
        assert_eq!(recovered.next_timestamp(), 25);
        assert_eq!(recovered.release(), expected, "{division:?}");
        cleanup(&path);
    }
}

#[test]
fn recover_with_checkpoint_matches_full_replay() {
    let gridded = dataset(2, 150, 30);
    let path = temp_path("ckpt");
    let mut original = engine(Division::Population, 1, 7);
    drive_logged(&mut original, &gridded, &path, 30, Some(8));
    let expected = original.release();

    // Checkpoint restored: only the suffix replays.
    let mut recovered = engine(Division::Population, 1, 7);
    let recovery = recovered.recover(&path).expect("recover with checkpoint");
    assert_eq!(recovery.checkpoint, CheckpointUse::Restored { at: 24 });
    assert_eq!(recovery.resumed_from, 24);
    assert_eq!(recovery.replayed, 6);
    assert_eq!(recovered.release(), expected);

    // Ledger state must survive the checkpoint round-trip too.
    let mut again = engine(Division::Population, 1, 7);
    again.recover(&path).expect("recover");
    again.ledger().verify().expect("w-event invariant after checkpointed recovery");

    // A corrupt sidecar is never fatal: recovery reports it and falls
    // back to full replay with the identical result.
    let ckpt = Checkpointer::sidecar(&path);
    let mut bytes = std::fs::read(&ckpt).expect("sidecar exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&ckpt, &bytes).expect("rewrite sidecar");
    let mut fallback = engine(Division::Population, 1, 7);
    let recovery = fallback.recover(&path).expect("recover past corrupt checkpoint");
    assert!(
        matches!(recovery.checkpoint, CheckpointUse::Ignored { .. }),
        "corrupt sidecar not reported: {:?}",
        recovery.checkpoint
    );
    assert_eq!(recovery.resumed_from, 0);
    assert_eq!(fallback.release(), expected);

    // Garbage that fails even magic validation: same graceful fallback.
    std::fs::write(&ckpt, b"not a checkpoint at all").expect("rewrite sidecar");
    let mut garbage = engine(Division::Population, 1, 7);
    let recovery = garbage.recover(&path).expect("recover past garbage checkpoint");
    assert!(matches!(recovery.checkpoint, CheckpointUse::Ignored { .. }));
    assert_eq!(garbage.release(), expected);
    cleanup(&path);
}

#[test]
fn recover_parallel_session_bit_identical() {
    // Above MIN_PARALLEL live streams so the sharded synthesis path (and
    // its per-shard RNG streams) is actually exercised by the replay.
    let gridded = dataset(3, 2600, 8);
    let path = temp_path("parallel");
    let mut original = engine(Division::Population, 4, 7);
    drive_logged(&mut original, &gridded, &path, 8, None);
    let expected = original.release();

    let mut recovered = engine(Division::Population, 4, 7);
    recovered.recover(&path).expect("recover");
    assert_eq!(recovered.release(), expected);
    cleanup(&path);
}

#[test]
fn recover_rejects_mismatched_sessions() {
    let gridded = dataset(4, 80, 10);
    let path = temp_path("mismatch");
    let mut original = engine(Division::Budget, 1, 7);
    drive_logged(&mut original, &gridded, &path, 10, None);

    // Different seed, different config, different division: all rejected.
    for mut other in [
        engine(Division::Budget, 1, 8),
        engine(Division::Population, 1, 7),
        engine(Division::Budget, 4, 7),
    ] {
        match other.recover(&path) {
            Err(WalError::Mismatch { detail }) => {
                assert!(detail.contains("fingerprint") || detail.contains("session"), "{detail}");
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }
    cleanup(&path);
}

#[test]
fn recover_truncated_tail_yields_prefix_session() {
    let gridded = dataset(5, 100, 20);
    let path = temp_path("torn");
    let mut original = engine(Division::Population, 1, 7);
    drive_logged(&mut original, &gridded, &path, 20, None);
    drop(original);

    // Tear mid-record: recovery must land on the longest intact prefix.
    let full = std::fs::read(&path).expect("read WAL");
    std::fs::write(&path, &full[..full.len() - 5]).expect("tear WAL");
    let mut recovered = engine(Division::Population, 1, 7);
    let recovery = recovered.recover(&path).expect("recover torn WAL");
    assert!(recovery.truncated);
    let prefix_len = recovery.next_timestamp();
    assert_eq!(prefix_len, 19, "one torn record discards exactly one timestamp");
    let expected = reference(Division::Population, 1, &gridded, prefix_len as usize);
    assert_eq!(recovered.release(), expected);
    cleanup(&path);
}

#[test]
fn baseline_recover_is_bit_identical() {
    let gridded = dataset(6, 100, 20);
    for kind in [BaselineKind::Lbd, BaselineKind::Lpa] {
        let path = temp_path("baseline");
        let mut original = LdpIds::new(kind, LdpIdsConfig::new(1.0, 5), Grid::unit(5), 11);
        let writer = WalWriter::create(&path, 11, original.fingerprint(), FsyncPolicy::EveryBatch)
            .expect("create WAL");
        let mut source = WalSource::tee(TimelineSource::from_gridded(&gridded), writer);
        while let Some(batch) = source.next_batch() {
            original.step(original.next_timestamp(), batch);
        }
        let expected = original.release();

        // Baselines have no checkpoint support: recovery is a full replay.
        let mut recovered = LdpIds::new(kind, LdpIdsConfig::new(1.0, 5), Grid::unit(5), 11);
        let recovery = recovered.recover(&path).expect("recover baseline");
        assert_eq!(recovery.checkpoint, CheckpointUse::None);
        assert_eq!(recovery.resumed_from, 0);
        assert_eq!(recovered.release(), expected, "{kind:?}");
        cleanup(&path);
    }
}

#[test]
fn reset_reuses_engine_without_respawning_state() {
    // Two back-to-back sessions on one engine equal two fresh engines:
    // the in-place reset keeps pools/scratch but no session state.
    let gridded = dataset(7, 120, 15);
    let mut reused = engine(Division::Population, 2, 7);
    let first = reused.run_gridded(&gridded);
    reused.reset();
    let second = reused.run_gridded(&gridded);
    assert_eq!(first, second, "a reset session must replay bit-identically");
    let fresh = engine(Division::Population, 2, 7).run_gridded(&gridded);
    assert_eq!(first, fresh, "a reset engine must equal a fresh one");
}

proptest! {
    /// Kill the process at an arbitrary timestamp, recover from the WAL
    /// (checkpointed or not), continue the stream durably to the horizon:
    /// the final release is bit-for-bit the uninterrupted run. Exercised
    /// across both divisions and thread counts 1 and 4.
    #[test]
    fn kill_recover_continue_equals_uninterrupted(
        data_seed in 0u64..1000,
        kill_frac in 0.0f64..1.0,
        division_pick in 0u8..2,
        threads_pick in 0u8..2,
        ckpt_pick in 0u8..3,
    ) {
        let division = if division_pick == 0 { Division::Budget } else { Division::Population };
        let threads = if threads_pick == 0 { 1 } else { 4 };
        let horizon = 14usize;
        let gridded = dataset(data_seed, 60, horizon as u64);
        let kill_at = ((kill_frac * horizon as f64) as usize).min(horizon - 1);
        let ckpt_every = match ckpt_pick {
            0 => None,
            1 => Some(3),
            _ => Some(5),
        };

        let expected = reference(division, threads, &gridded, horizon);

        // Phase 1: run to the kill point with a WAL (and checkpoints).
        let path = temp_path("prop");
        let mut doomed = engine(division, threads, 7);
        drive_logged(&mut doomed, &gridded, &path, kill_at, ckpt_every);
        drop(doomed); // the "kill": all in-memory state is gone

        // Phase 2: recover into a fresh engine and continue durably.
        let mut survivor = engine(division, threads, 7);
        let recovery = survivor.recover(&path).map_err(|e| {
            TestCaseError::fail(format!("recover failed: {e}"))
        })?;
        prop_assert_eq!(recovery.next_timestamp(), kill_at as u64);
        prop_assert_eq!(survivor.next_timestamp(), kill_at as u64);

        let contents = WalContents::read(&path).map_err(|e| {
            TestCaseError::fail(format!("reread failed: {e}"))
        })?;
        let writer = WalWriter::reopen(&contents, &path, FsyncPolicy::EveryBatch).map_err(|e| {
            TestCaseError::fail(format!("reopen failed: {e}"))
        })?;
        let mut rest = TimelineSource::from_gridded(&gridded);
        for _ in 0..kill_at {
            rest.next_batch();
        }
        let mut tee = WalSource::tee(rest, writer);
        while let Some(batch) = tee.next_batch() {
            survivor.step(survivor.next_timestamp(), batch);
        }
        prop_assert_eq!(survivor.next_timestamp(), horizon as u64);
        let continued = survivor.release();
        prop_assert_eq!(&continued, &expected);

        // The WAL now covers the whole session: a second recovery of the
        // full log reproduces it again.
        let mut again = engine(division, threads, 7);
        again.recover(&path).map_err(|e| {
            TestCaseError::fail(format!("full recover failed: {e}"))
        })?;
        prop_assert_eq!(&again.release(), &expected);
        cleanup(&path);
    }
}
