//! Property-based tests for the RetraSyn core: DMU optimality, model
//! invariants, allocator bounds, synthesis size tracking.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_core::allocation::Allocator;
use retrasyn_core::{dmu, AllocationKind, GlobalMobilityModel, SyntheticDb};
use retrasyn_geo::{Grid, TransitionTable};

proptest! {
    /// DMU's per-transition rule is globally optimal for Eq. 7: no other
    /// selection achieves lower total error (checked exhaustively for up
    /// to 10 dimensions).
    #[test]
    fn dmu_is_globally_optimal(
        pairs in prop::collection::vec((-0.2f64..1.0, -0.2f64..1.0), 1..10),
        err_upd in 0.0f64..0.2,
    ) {
        let current: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let fresh: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let chosen = dmu::select_significant(&current, &fresh, err_upd);
        let chosen_err = dmu::total_error(&current, &fresh, err_upd, &chosen);
        let d = current.len();
        for mask in 0..(1u32 << d) {
            let candidate: Vec<bool> = (0..d).map(|i| mask >> i & 1 == 1).collect();
            let err = dmu::total_error(&current, &fresh, err_upd, &candidate);
            prop_assert!(chosen_err <= err + 1e-12);
        }
    }

    /// Model distributions are always valid: move probs + quit prob sum to
    /// 1 per source cell; enter/quit distributions are probability vectors.
    #[test]
    fn model_distributions_are_valid(
        k in 1u16..6,
        raw in prop::collection::vec(-0.05f64..0.1, 1..400),
        seed in 0u64..50,
    ) {
        let grid = Grid::unit(k);
        let table = TransitionTable::new(&grid);
        let len = table.len();
        let mut est = vec![0.0; len];
        for (i, v) in raw.iter().enumerate() {
            est[i % len] += v;
        }
        let mut model = GlobalMobilityModel::new(table.len());
        model.replace_all(&est);
        let _ = seed;
        for c in grid.cells() {
            let probs = model.move_probs(&table, c);
            let quit = model.base_quit_prob(&table, c);
            prop_assert!(probs.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
            prop_assert!((0.0..=1.0).contains(&quit));
            let denom = model.move_denominator(&table, c);
            if denom > 0.0 {
                let total: f64 = probs.iter().sum::<f64>() + quit;
                prop_assert!((total - 1.0).abs() < 1e-9, "cell {c:?}: total {total}");
            } else {
                // Uniform fallback over the neighbors, quit = 0.
                let total: f64 = probs.iter().sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                prop_assert_eq!(quit, 0.0);
            }
        }
        let e = model.enter_distribution(&table);
        let q = model.quit_distribution(&table);
        prop_assert!((e.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(e.iter().chain(q.iter()).all(|&p| p >= 0.0));
    }

    /// Adaptive portions always lie in [0, p_max]; Uniform is 1/w; Sample
    /// is {0, 1} with exactly one firing per window.
    #[test]
    fn allocator_portion_bounds(
        w in 1usize..40,
        snapshots in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 4), 0..10),
        sig in prop::collection::vec(0.0f64..1.0, 0..10),
        t in 0u64..200,
    ) {
        let mut a = Allocator::new(AllocationKind::Adaptive, w, 8.0, 5, 0.6);
        for (i, s) in snapshots.iter().enumerate() {
            a.observe(s, sig.get(i).copied().unwrap_or(0.0));
        }
        // The adaptive formula is capped at p_max; the Algorithm-1
        // bootstrap (no history yet) uses 1/w, which may exceed it for
        // tiny windows.
        let p = a.portion(t);
        let bound = 0.6f64.max(1.0 / w as f64);
        prop_assert!((0.0..=bound).contains(&p), "p={p} bound={bound}");

        let u = Allocator::new(AllocationKind::Uniform, w, 8.0, 5, 0.6);
        prop_assert!((u.portion(t) - 1.0 / w as f64).abs() < 1e-12);

        let s = Allocator::new(AllocationKind::Sample, w, 8.0, 5, 0.6);
        let fires: usize = (0..w as u64).map(|i| {
            if s.portion(t / w as u64 * w as u64 + i) == 1.0 { 1 } else { 0 }
        }).sum();
        prop_assert_eq!(fires, 1);
    }

    /// Synthesis keeps the database size exactly on target through
    /// arbitrary target schedules, and every produced stream respects
    /// adjacency.
    #[test]
    fn synthesis_tracks_any_target_schedule(
        targets in prop::collection::vec(0usize..60, 1..25),
        seed in 0u64..100,
    ) {
        let grid = Grid::unit(4);
        let table = TransitionTable::new(&grid);
        let mut model = GlobalMobilityModel::new(table.len());
        // Mildly informative model.
        let est: Vec<f64> = (0..table.len()).map(|i| ((i % 7) as f64) * 1e-3).collect();
        model.replace_all(&est);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for (t, &target) in targets.iter().enumerate() {
            db.step(t as u64, &model, &table, target, 8.0, &mut rng);
            prop_assert_eq!(db.active_count(), target, "t={}", t);
        }
        let horizon = targets.len() as u64;
        let released = db.release(&grid, horizon);
        for s in released.iter() {
            prop_assert!(!s.cells.is_empty());
            prop_assert!(s.end() < horizon);
            for w in s.cells.windows(2) {
                prop_assert!(grid.are_adjacent(w[0], w[1]));
            }
        }
    }

    /// Per-timestamp synthetic occupancy always sums to the live count.
    #[test]
    fn occupancy_sums_to_active(targets in prop::collection::vec(0usize..40, 1..15)) {
        let grid = Grid::unit(3);
        let table = TransitionTable::new(&grid);
        let model = GlobalMobilityModel::new(table.len());
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(5);
        for (t, &target) in targets.iter().enumerate() {
            db.step(t as u64, &model, &table, target, 8.0, &mut rng);
            let occ = db.occupancy(grid.num_cells());
            prop_assert_eq!(occ.iter().sum::<u64>() as usize, db.active_count());
        }
    }
}
