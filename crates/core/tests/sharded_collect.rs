//! Distributional and determinism pins for the sharded collection
//! pipeline: the pooled fused perturb→tally round must produce position
//! counts from exactly the same distributions as the sequential path in
//! every `ReportMode`, be bit-identical across runs for a fixed
//! `(seed, threads)`, and keep full engine runs bit-identical per
//! `(seed, collection_threads)`.

mod common;

use common::{chi2_crit, two_sample_chi_square};
use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_core::{CollectionKernel, CollectionPool, RetraSyn, RetraSynConfig, StreamingEngine};
use retrasyn_datagen::RandomWalkConfig;
use retrasyn_geo::Grid;
use retrasyn_ldp::{Oue, Philox, ReportMode};
use std::sync::Arc;

fn skewed_values(n: usize, domain: usize) -> Vec<usize> {
    (0..n).map(|i| (i * i + 7 * i) % domain).collect()
}

/// Sharded and sequential collection must produce per-position counts
/// from the same distribution in both report modes (sharding a round
/// only re-partitions independent per-user contributions).
#[test]
fn sharded_counts_match_sequential_distribution_across_modes() {
    let domain = 96;
    let oracle = Arc::new(Oue::new(1.0, domain).unwrap());
    let values = skewed_values(1200, domain);
    for (mode, rounds) in [(ReportMode::PerUser, 8u64), (ReportMode::Aggregate, 30)] {
        let mut pool = CollectionPool::new(4);
        let mut seq_hist = vec![0u64; domain];
        let mut par_hist = vec![0u64; domain];
        let mut seq_rng = StdRng::seed_from_u64(100);
        let mut par_rng = StdRng::seed_from_u64(200);
        let mut ones = Vec::new();
        for _ in 0..rounds {
            oracle.collect_ones_into(&values, mode, &mut ones, &mut seq_rng).unwrap();
            for (acc, &x) in seq_hist.iter_mut().zip(&ones) {
                *acc += x;
            }
            pool.collect_ones(&oracle, &values, mode, &mut ones, &mut par_rng).unwrap();
            for (acc, &x) in par_hist.iter_mut().zip(&ones) {
                *acc += x;
            }
        }
        let (sn, pn) = (seq_hist.iter().sum::<u64>(), par_hist.iter().sum::<u64>());
        assert!(sn > 10_000 && pn > 10_000, "{mode:?}: too few ones: {sn} vs {pn}");
        let (chi, dof) = two_sample_chi_square(&seq_hist, &par_hist, sn, pn);
        assert!(
            chi < chi2_crit(dof),
            "{mode:?}: sharded counts diverge: chi={chi:.1} dof={dof} (crit {:.1})",
            chi2_crit(dof)
        );
    }
}

/// A fixed `(seed, threads)` pair must be bit-identical across runs and
/// across pool instances; a different thread count changes the stream.
#[test]
fn pooled_collection_deterministic_per_seed_and_threads() {
    let domain = 64;
    let oracle = Arc::new(Oue::new(1.0, domain).unwrap());
    let values = skewed_values(700, domain);
    let run = |threads: usize, seed: u64, mode: ReportMode| {
        let mut pool = CollectionPool::new(threads);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ones = Vec::new();
        pool.collect_ones(&oracle, &values, mode, &mut ones, &mut rng).unwrap();
        ones
    };
    for mode in [ReportMode::PerUser, ReportMode::Aggregate] {
        assert_eq!(run(4, 5, mode), run(4, 5, mode), "{mode:?}");
        assert_ne!(run(4, 5, mode), run(4, 6, mode), "{mode:?}: seed must matter");
        assert_ne!(run(4, 5, mode), run(2, 5, mode), "{mode:?}: threads shape the stream");
    }
    // Reusing one pool across rounds must not perturb determinism
    // (buffers shuttle, seeds are drawn fresh per round).
    let mut pool = CollectionPool::new(3);
    let mut rng = StdRng::seed_from_u64(9);
    let mut first = Vec::new();
    pool.collect_ones(&oracle, &values, ReportMode::PerUser, &mut first, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let mut again = Vec::new();
    pool.collect_ones(&oracle, &values, ReportMode::PerUser, &mut again, &mut rng).unwrap();
    assert_eq!(first, again);
}

/// Sharded totals agree with sequential totals to within sampling noise:
/// each position count has the same mean under any partition of the
/// reporters.
#[test]
fn sharded_estimates_agree_with_truth() {
    let domain = 10;
    let oracle = Arc::new(Oue::new(1.0, domain).unwrap());
    let n = 4000usize;
    let values = skewed_values(n, domain);
    let mut truth = vec![0.0; domain];
    for &v in &values {
        truth[v] += 1.0 / n as f64;
    }
    let mut pool = CollectionPool::new(4);
    let mut ones = Vec::new();
    let mut rng = StdRng::seed_from_u64(21);
    pool.collect_ones(&oracle, &values, ReportMode::PerUser, &mut ones, &mut rng).unwrap();
    let mut freqs = Vec::new();
    oracle.debias_into(&ones, n as u64, &mut freqs);
    let sd = oracle.variance(n as u64).sqrt();
    for j in 0..domain {
        assert!(
            (freqs[j] - truth[j]).abs() < 4.5 * sd,
            "j={j}: {} vs {} (sd {sd})",
            freqs[j],
            truth[j]
        );
    }
}

fn walk_dataset(seed: u64) -> retrasyn_geo::StreamDataset {
    RandomWalkConfig { users: 400, timestamps: 30, churn: 0.08, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(seed))
}

/// Full engine runs must be bit-identical for a fixed
/// `(seed, collection_threads)` — the acceptance pin for
/// `collection_threads ∈ {1, 4}` — in both report modes and divisions.
/// With `PerUser` reports the pooled stream must actually differ from the
/// sequential one (proof the pool engaged); with the O(domain)
/// `Aggregate` shortcut the engine bypasses the pool entirely, so the
/// thread count must not change the output at all.
#[test]
fn engine_bit_identical_per_seed_and_collection_threads() {
    let ds = walk_dataset(51);
    let grid = Grid::unit(5);
    let run = |threads: usize, per_user: bool, seed: u64| {
        let mut config =
            RetraSynConfig::new(1.0, 5).with_lambda(10.0).with_collection_threads(threads);
        if per_user {
            config = config.per_user_reports();
        }
        let mut engine = RetraSyn::population_division(config, grid.clone(), seed);
        let out = engine.run(&ds);
        engine.ledger().verify().expect("w-event invariant");
        out
    };
    for per_user in [false, true] {
        for threads in [1usize, 4] {
            assert_eq!(
                run(threads, per_user, 42),
                run(threads, per_user, 42),
                "threads={threads} per_user={per_user}"
            );
        }
    }
    // PerUser: the pooled path consumes a different RNG stream than the
    // sequential one; divergence proves the pool actually engaged.
    assert_ne!(run(1, true, 42), run(4, true, 42));
    // Aggregate: sharding would only multiply the O(domain) binomial
    // work, so the engine keeps it sequential — identical output.
    assert_eq!(run(1, false, 42), run(4, false, 42));
}

/// Regression pin for the RandomReport strategy, whose per-user report
/// slots live in an ordered map: a full engine run — released bytes
/// *and* checkpoint bytes — must be bit-identical across runs at each
/// `collection_threads ∈ {1, 4}`. The slot map is consulted inside the
/// eligibility filter every timestamp, so any iteration-order leak from
/// the container into the draw sequence would break this pin.
#[test]
fn random_report_engine_bit_identical_per_thread_count() {
    use retrasyn_core::AllocationKind;
    let ds = walk_dataset(55);
    let grid = Grid::unit(5);
    let run = |threads: usize| {
        let config = RetraSynConfig::new(1.0, 5)
            .with_lambda(10.0)
            .with_collection_threads(threads)
            .with_allocation(AllocationKind::RandomReport)
            .per_user_reports();
        let mut engine = RetraSyn::population_division(config, grid.clone(), 77);
        let gridded = ds.discretize(&grid);
        let timeline = retrasyn_geo::EventTimeline::build(&gridded);
        for t in 0..gridded.horizon() {
            engine.step(t, timeline.at(t));
        }
        let ckpt = engine.checkpoint_bytes().expect("engine checkpoints");
        let out = engine.release();
        engine.ledger().verify().expect("w-event invariant");
        (out, ckpt)
    };
    for threads in [1usize, 4] {
        let (out_a, ckpt_a) = run(threads);
        let (out_b, ckpt_b) = run(threads);
        assert_eq!(out_a, out_b, "threads={threads}: released bytes must pin");
        assert_eq!(ckpt_a, ckpt_b, "threads={threads}: checkpoint bytes must pin");
    }
}

/// Budget division shards too (everyone reports, ε_t per step).
#[test]
fn budget_division_engine_deterministic_with_pooled_collection() {
    let ds = walk_dataset(52);
    let grid = Grid::unit(5);
    let run = |threads: usize| {
        let config = RetraSynConfig::new(1.0, 5)
            .with_lambda(10.0)
            .with_collection_threads(threads)
            .per_user_reports();
        let mut engine = RetraSyn::budget_division(config, grid.clone(), 17);
        let out = engine.run(&ds);
        engine.ledger().verify().expect("w-event invariant");
        out
    };
    assert_eq!(run(4), run(4));
    assert_ne!(run(1), run(4));
}

/// The pooled blocked round must put its 1s at the same positions (in
/// distribution) as the sequential fused kernel — the two kernels sample
/// the identical per-bit OUE process from different random streams.
#[test]
fn pooled_blocked_counts_match_sequential_kernel_distribution() {
    let domain = 96;
    let oracle = Arc::new(Oue::new(1.0, domain).unwrap());
    let values = skewed_values(1200, domain);
    let mut pool = CollectionPool::new(4);
    let mut seq_hist = vec![0u64; domain];
    let mut blk_hist = vec![0u64; domain];
    let mut rng = StdRng::seed_from_u64(300);
    let mut ones = Vec::new();
    for round in 0..8u64 {
        oracle.collect_ones_into(&values, ReportMode::PerUser, &mut ones, &mut rng).unwrap();
        for (acc, &x) in seq_hist.iter_mut().zip(&ones) {
            *acc += x;
        }
        let ph = Philox::new(0x00de_fec8_0000_0000 | round);
        pool.collect_ones_blocked(&oracle, &values, &ph, &mut ones).unwrap();
        for (acc, &x) in blk_hist.iter_mut().zip(&ones) {
            *acc += x;
        }
    }
    let (sn, bn) = (seq_hist.iter().sum::<u64>(), blk_hist.iter().sum::<u64>());
    assert!(sn > 10_000 && bn > 10_000, "too few ones: {sn} vs {bn}");
    let (chi, dof) = two_sample_chi_square(&seq_hist, &blk_hist, sn, bn);
    assert!(
        chi < chi2_crit(dof),
        "pooled blocked counts diverge: chi={chi:.1} dof={dof} (crit {:.1})",
        chi2_crit(dof)
    );
}

/// The blocked kernel's acceptance pin: a full engine run under
/// `CollectionKernel::Blocked` is bit-identical across
/// `collection_threads ∈ {1, 4}` — not merely per `(seed, threads)` —
/// because the round's randomness is one addressed key, not a sharded
/// stream. The blocked stream must still differ from the sequential
/// kernel's (proof the kernel engaged), and `Aggregate` rounds must
/// ignore the kernel entirely.
#[test]
fn blocked_engine_bit_identical_across_collection_threads() {
    let ds = walk_dataset(54);
    let grid = Grid::unit(5);
    let run = |threads: usize, kernel: CollectionKernel, per_user: bool| {
        let mut config = RetraSynConfig::new(1.0, 5)
            .with_lambda(10.0)
            .with_collection_threads(threads)
            .with_collection_kernel(kernel);
        if per_user {
            config = config.per_user_reports();
        }
        let mut engine = RetraSyn::population_division(config, grid.clone(), 42);
        let out = engine.run(&ds);
        engine.ledger().verify().expect("w-event invariant");
        out
    };
    let blocked_seq = run(1, CollectionKernel::Blocked, true);
    // Repeatable, and — the new contract — thread-count invariant.
    assert_eq!(blocked_seq, run(1, CollectionKernel::Blocked, true));
    assert_eq!(blocked_seq, run(4, CollectionKernel::Blocked, true));
    // Different stream than the sequential kernel: the kernel engaged.
    assert_ne!(blocked_seq, run(1, CollectionKernel::Sequential, true));
    // Aggregate rounds have no per-user pass: the kernel is a no-op.
    assert_eq!(
        run(1, CollectionKernel::Blocked, false),
        run(1, CollectionKernel::Sequential, false)
    );
}

/// The collection kernel shapes the released bytes, so it must be part
/// of the session fingerprint (recovery refuses to replay a WAL into an
/// engine configured with the other kernel).
#[test]
fn fingerprint_distinguishes_collection_kernels() {
    let grid = Grid::unit(4);
    let fp = |kernel: CollectionKernel| {
        let config = RetraSynConfig::new(1.0, 5)
            .with_lambda(10.0)
            .per_user_reports()
            .with_collection_kernel(kernel);
        RetraSyn::population_division(config, grid.clone(), 7).fingerprint()
    };
    assert_eq!(fp(CollectionKernel::Sequential), fp(CollectionKernel::Sequential));
    assert_ne!(fp(CollectionKernel::Sequential), fp(CollectionKernel::Blocked));
}

/// Pooled collection must not distort what the engine learns: the
/// sharded engine's released occupancy (summed over all timestamps) may
/// differ from the sequential engine's only by about as much as two
/// sequential runs with different seeds differ from each other —
/// self-calibrated, because within-run occupancy is correlated and a raw
/// two-sample chi-square bound would reject even seed-to-seed noise.
#[test]
fn pooled_engine_releases_similar_occupancy() {
    let ds = walk_dataset(53);
    let grid = Grid::unit(4);
    let occupancy = |threads: usize, seed: u64| {
        let config = RetraSynConfig::new(2.0, 5)
            .with_lambda(10.0)
            .with_collection_threads(threads)
            .per_user_reports();
        let mut engine = RetraSyn::population_division(config, grid.clone(), seed);
        let gridded = ds.discretize(&grid);
        let timeline = retrasyn_geo::EventTimeline::build(&gridded);
        let mut acc = vec![0u64; grid.num_cells()];
        for t in 0..gridded.horizon() {
            engine.step(t, timeline.at(t));
            for (a, x) in acc.iter_mut().zip(engine.synthetic_occupancy()) {
                *a += x;
            }
        }
        acc
    };
    let chi_of = |a: &[u64], b: &[u64]| {
        let (na, nb) = (a.iter().sum::<u64>(), b.iter().sum::<u64>());
        assert!(na > 1000 && nb > 1000, "populations too small: {na} vs {nb}");
        two_sample_chi_square(a, b, na, nb)
    };
    // Null scale: sequential runs under two different seeds.
    let seq_a = occupancy(1, 7);
    let seq_b = occupancy(1, 8);
    let (chi_null, dof) = chi_of(&seq_a, &seq_b);
    // Test statistic: sequential vs pooled at the same seed.
    let par = occupancy(4, 7);
    let (chi_test, _) = chi_of(&seq_a, &par);
    assert!(
        chi_test < 3.0 * chi_null.max(chi2_crit(dof)),
        "pooled occupancy diverges: chi={chi_test:.1} vs null chi={chi_null:.1} dof={dof}"
    );
}
