//! Contract tests of the streaming session API.
//!
//! The load-bearing invariant: the per-timestamp `snapshot()` is a
//! *prefix* of the final `release()` — for every timestamp `t`, every
//! stream visible in the snapshot reappears in the released dataset with
//! identical id/start and the snapshot's cells as a bit-for-bit prefix of
//! its released cells, and the snapshot contains exactly the streams the
//! release says had started by `t`. Pinned across both divisions, the
//! pooled synthesis path (`threads ∈ {1, 4}`) and the NoEQ ablation.
//!
//! Also pinned: the `StreamingEngine`-generic driver reproduces the manual
//! step loop bit-for-bit (for RetraSyn and every baseline), post-release
//! misuse fails with a descriptive panic instead of the old confusing
//! `next_t` assert on a gutted synthesizer, and `reset()` replays
//! identically.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_core::{
    BaselineKind, EventSource, FnSource, IterSource, LdpIds, LdpIdsConfig, RetraSyn,
    RetraSynConfig, StreamingEngine, TimelineSource,
};
use retrasyn_datagen::RandomWalkConfig;
use retrasyn_geo::{CellId, EventTimeline, Grid, GriddedDataset, UserEvent};
use std::collections::BTreeMap;

fn dataset(users: usize, timestamps: u64, seed: u64) -> GriddedDataset {
    let ds = RandomWalkConfig { users, timestamps, churn: 0.06, ..Default::default() }
        .generate(&mut StdRng::seed_from_u64(seed));
    ds.discretize(&Grid::unit(5))
}

/// Materialized snapshot content: (id, start, cells) per stream.
fn materialize(engine: &RetraSyn) -> Vec<(u64, u64, Vec<CellId>)> {
    let snap = engine.snapshot();
    let mut out: Vec<(u64, u64, Vec<CellId>)> = snap
        .streams()
        .map(|s| {
            let mut cells = Vec::new();
            s.cells_into(&mut cells);
            assert_eq!(cells.len(), s.len());
            assert_eq!(*cells.last().unwrap(), s.head());
            (s.id(), s.start(), cells)
        })
        .collect();
    out.sort_unstable_by_key(|&(id, _, _)| id);
    out
}

/// Drive `engine` over `gridded`, capturing a materialized snapshot after
/// every step, then check each against the final release.
fn check_prefix_property(mut engine: RetraSyn, gridded: &GriddedDataset) {
    let timeline = EventTimeline::build(gridded);
    let mut per_t: Vec<Vec<(u64, u64, Vec<CellId>)>> = Vec::new();
    for t in 0..gridded.horizon() {
        let outcome = engine.step(t, timeline.at(t));
        let snap = engine.snapshot();
        assert_eq!(snap.horizon(), t + 1);
        assert_eq!(snap.active_count(), outcome.active);
        assert_eq!(snap.finished_count(), outcome.finished);
        per_t.push(materialize(&engine));
    }
    let released = engine.release();
    let by_id: BTreeMap<u64, _> = released.iter().map(|s| (s.id, s)).collect();
    for (t, snapshot) in per_t.iter().enumerate() {
        // Exactly the streams that had started by t, by construction of
        // the release: no stream may appear in the snapshot and vanish.
        let expected: usize = released.iter().filter(|s| s.start <= t as u64).count();
        assert_eq!(snapshot.len(), expected, "stream set mismatch at t={t}");
        for (id, start, cells) in snapshot {
            let fin = by_id.get(id).unwrap_or_else(|| panic!("stream {id} missing from release"));
            assert_eq!(fin.start, *start, "start drifted for stream {id} at t={t}");
            assert!(
                fin.cells.len() >= cells.len(),
                "released stream {id} shorter than its t={t} snapshot"
            );
            assert_eq!(
                &fin.cells[..cells.len()],
                cells.as_slice(),
                "snapshot at t={t} is not a prefix of the release for stream {id}"
            );
        }
    }
}

#[test]
fn snapshots_are_prefixes_of_release_population() {
    let gridded = dataset(400, 25, 1);
    let config = RetraSynConfig::new(1.0, 5).with_lambda(gridded.avg_length());
    check_prefix_property(RetraSyn::population_division(config, Grid::unit(5), 7), &gridded);
}

#[test]
fn snapshots_are_prefixes_of_release_budget() {
    let gridded = dataset(400, 25, 2);
    let config = RetraSynConfig::new(1.0, 5).with_lambda(gridded.avg_length());
    check_prefix_property(RetraSyn::budget_division(config, Grid::unit(5), 7), &gridded);
}

#[test]
fn snapshots_are_prefixes_of_release_pooled() {
    // Large enough to cross the parallel threshold (MIN_PARALLEL = 2048).
    let gridded = dataset(2600, 8, 3);
    for threads in [1usize, 4] {
        let config = RetraSynConfig::new(1.0, 4)
            .with_lambda(gridded.avg_length())
            .with_synthesis_threads(threads);
        check_prefix_property(RetraSyn::population_division(config, Grid::unit(5), 9), &gridded);
    }
}

#[test]
fn snapshots_are_prefixes_of_release_noeq() {
    let gridded = dataset(300, 20, 4);
    let config = RetraSynConfig::new(1.0, 5).with_lambda(gridded.avg_length()).no_eq();
    check_prefix_property(RetraSyn::population_division(config, Grid::unit(5), 11), &gridded);
}

#[test]
fn generic_driver_reproduces_manual_loop() {
    // The trait-generic driver (TimelineSource -> drive -> release) must be
    // bit-identical to hand-rolling the step loop, for every engine type.
    let gridded = dataset(300, 20, 5);
    fn generic(engine: &mut impl StreamingEngine, ds: &GriddedDataset) -> GriddedDataset {
        engine.run_gridded(ds)
    }

    let mk_retra = || {
        let config = RetraSynConfig::new(1.0, 5).with_lambda(gridded.avg_length());
        RetraSyn::population_division(config, Grid::unit(5), 13)
    };
    let mut manual_engine = mk_retra();
    let timeline = EventTimeline::build(&gridded);
    for t in 0..gridded.horizon() {
        manual_engine.step(t, timeline.at(t));
    }
    let manual = manual_engine.release();
    assert_eq!(generic(&mut mk_retra(), &gridded), manual);

    for kind in BaselineKind::ALL {
        let mk = || LdpIds::new(kind, LdpIdsConfig::new(1.0, 5), Grid::unit(5), 13);
        let mut manual_engine = mk();
        for t in 0..gridded.horizon() {
            manual_engine.step(t, timeline.at(t));
        }
        let manual = manual_engine.release();
        assert_eq!(generic(&mut mk(), &gridded), manual, "{}", kind.name());
    }
}

#[test]
fn all_sources_feed_identically() {
    let gridded = dataset(250, 15, 6);
    let timeline = EventTimeline::build(&gridded);
    let batches: Vec<Vec<UserEvent>> =
        (0..timeline.horizon()).map(|t| timeline.at(t).to_vec()).collect();
    let run = |src: &mut dyn FnMut(&mut RetraSyn) -> GriddedDataset| {
        let config = RetraSynConfig::new(1.0, 5).with_lambda(gridded.avg_length());
        let mut engine = RetraSyn::population_division(config, Grid::unit(5), 17);
        src(&mut engine)
    };
    let via_timeline = run(&mut |e| e.drive(TimelineSource::from_gridded(&gridded)));
    let via_iter = run(&mut |e| e.drive(IterSource::new(batches.clone().into_iter())));
    let b = batches.clone();
    let via_fn = run(&mut |e| e.drive(FnSource::new(|t| b.get(t as usize).cloned())));
    assert_eq!(via_timeline, via_iter);
    assert_eq!(via_timeline, via_fn);
}

#[test]
fn drive_resumes_a_partially_consumed_source() {
    // Step the first half manually off the source, then hand the rest to
    // drive() — same release as driving it whole.
    let gridded = dataset(250, 16, 7);
    let config = RetraSynConfig::new(1.0, 5).with_lambda(gridded.avg_length());
    let mut whole = RetraSyn::population_division(config.clone(), Grid::unit(5), 19);
    let expected = whole.run_gridded(&gridded);

    let mut engine = RetraSyn::population_division(config, Grid::unit(5), 19);
    let mut source = TimelineSource::from_gridded(&gridded);
    for _ in 0..8 {
        let batch = source.next_batch().expect("first half");
        engine.step(engine.next_timestamp(), batch);
    }
    let out = engine.drive(&mut source);
    assert_eq!(out, expected);
}

#[test]
fn mid_stream_release_is_a_prefix_run() {
    // Releasing at t < horizon equals running only the first t timestamps.
    let gridded = dataset(250, 20, 8);
    let config = RetraSynConfig::new(1.0, 5).with_lambda(gridded.avg_length());
    let timeline = EventTimeline::build(&gridded);

    let mut engine = RetraSyn::population_division(config.clone(), Grid::unit(5), 21);
    for t in 0..12 {
        engine.step(t, timeline.at(t));
    }
    let mid = engine.release();
    assert_eq!(mid.horizon(), 12);

    let mut control = RetraSyn::population_division(config, Grid::unit(5), 21);
    for t in 0..12 {
        control.step(t, timeline.at(t));
    }
    assert_eq!(control.release(), mid);
}

#[test]
fn reset_replays_bit_identically() {
    let gridded = dataset(250, 15, 9);
    let config = RetraSynConfig::new(1.0, 5).with_lambda(gridded.avg_length());
    let mut engine = RetraSyn::population_division(config, Grid::unit(5), 23);
    let first = engine.run_gridded(&gridded);
    engine.reset();
    assert_eq!(engine.next_timestamp(), 0);
    let second = engine.run_gridded(&gridded);
    assert_eq!(first, second, "reset must re-seed with the construction seed");

    let mut baseline = LdpIds::new(BaselineKind::Lbd, LdpIdsConfig::new(1.0, 5), Grid::unit(5), 3);
    let first = baseline.run_gridded(&gridded);
    baseline.reset();
    assert_eq!(first, baseline.run_gridded(&gridded));
}

// --- Post-release misuse: descriptive panics, not a confusing t assert. ---

#[test]
#[should_panic(expected = "already released")]
fn step_after_release_panics_descriptively() {
    let gridded = dataset(100, 8, 10);
    let config = RetraSynConfig::new(1.0, 4).with_lambda(5.0);
    let mut engine = RetraSyn::population_division(config, Grid::unit(5), 1);
    let _ = engine.run_gridded(&gridded);
    engine.step(engine.next_timestamp(), &[]);
}

#[test]
#[should_panic(expected = "call reset()")]
fn run_twice_panics_descriptively() {
    // The PR-5 regression: this used to die in the synthesizer's internals
    // (a `next_t` assert on an engine whose synthetic DB had been taken).
    let gridded = dataset(100, 8, 11);
    let config = RetraSynConfig::new(1.0, 4).with_lambda(5.0);
    let mut engine = RetraSyn::population_division(config, Grid::unit(5), 1);
    let _ = engine.run_gridded(&gridded);
    let _ = engine.run_gridded(&gridded);
}

#[test]
#[should_panic(expected = "mid-session")]
fn run_on_a_mid_session_engine_panics_descriptively() {
    // A dataset replay starts at t = 0: feeding it to an engine that has
    // already stepped would silently shift every batch by the engine's
    // current timestamp. The guard makes it loud instead.
    let gridded = dataset(100, 8, 15);
    let config = RetraSynConfig::new(1.0, 4).with_lambda(5.0);
    let mut engine = RetraSyn::population_division(config, Grid::unit(5), 1);
    let timeline = EventTimeline::build(&gridded);
    engine.step(0, timeline.at(0));
    let _ = engine.run_gridded(&gridded);
}

#[test]
#[should_panic(expected = "already released")]
fn occupancy_after_release_panics_descriptively() {
    // Same guard for the occupancy/active accessors, which read the same
    // (now emptied) store.
    let gridded = dataset(100, 8, 17);
    let config = RetraSynConfig::new(1.0, 4).with_lambda(5.0);
    let mut engine = RetraSyn::population_division(config, Grid::unit(5), 1);
    let _ = engine.run_gridded(&gridded);
    let _ = engine.synthetic_occupancy();
}

#[test]
#[should_panic(expected = "already released")]
fn snapshot_after_release_panics_descriptively() {
    // A released engine's store is empty: a silent empty view would read
    // as "population collapsed", so snapshot() refuses loudly instead.
    let gridded = dataset(100, 8, 16);
    let config = RetraSynConfig::new(1.0, 4).with_lambda(5.0);
    let mut engine = RetraSyn::population_division(config, Grid::unit(5), 1);
    let _ = engine.run_gridded(&gridded);
    let _ = engine.snapshot();
}

#[test]
#[should_panic(expected = "already released")]
fn release_twice_panics_descriptively() {
    let gridded = dataset(100, 8, 12);
    let config = RetraSynConfig::new(1.0, 4).with_lambda(5.0);
    let mut engine = RetraSyn::population_division(config, Grid::unit(5), 1);
    let _ = engine.run_gridded(&gridded);
    let _ = engine.release();
}

#[test]
#[should_panic(expected = "already released")]
fn baseline_step_after_release_panics_descriptively() {
    let gridded = dataset(100, 8, 13);
    let mut engine = LdpIds::new(BaselineKind::Lpa, LdpIdsConfig::new(1.0, 4), Grid::unit(5), 1);
    let _ = engine.run_gridded(&gridded);
    engine.step(engine.next_timestamp(), &[]);
}

#[test]
fn run_after_reset_is_supported() {
    // Engine reuse is explicit: release -> reset -> run works.
    let gridded = dataset(100, 8, 14);
    let config = RetraSynConfig::new(1.0, 4).with_lambda(5.0);
    let mut engine = RetraSyn::population_division(config, Grid::unit(5), 1);
    let a = engine.run_gridded(&gridded);
    engine.reset();
    let b = engine.run_gridded(&gridded);
    assert_eq!(a, b);
    engine.ledger().verify().expect("fresh ledger after reset");
}
