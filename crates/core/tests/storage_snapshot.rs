//! Fixed-seed output snapshots of the synthesis paths, captured from the
//! Vec-of-`OpenStream` storage implementation (PR 2) and pinned bit-for-bit
//! across the columnar `StreamStore` refactor: identical RNG draw order,
//! identical stream ordering, identical released cells.
//!
//! The fixture (`tests/snapshots/synthesis_snapshot.txt`) records, per
//! scenario, the released stream count, total cell count, and an FNV-1a
//! hash of the canonical serialization `(id, start, cells…)` in release
//! order. Regenerate with `SNAPSHOT_BLESS=1 cargo test -p retrasyn-core
//! --test storage_snapshot` — but only ever to *extend* the scenario list;
//! changing an existing hash means the storage refactor broke the
//! fixed-seed contract.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retrasyn_core::{GlobalMobilityModel, SyntheticDb};
use retrasyn_geo::{Grid, GriddedDataset, TransitionTable};
use std::fmt::Write as _;

const SNAPSHOT_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/snapshots/synthesis_snapshot.txt");

fn informed_setup(cached: bool) -> (Grid, TransitionTable, GlobalMobilityModel) {
    let grid = Grid::unit(8);
    let table = TransitionTable::new(&grid);
    let mut model = GlobalMobilityModel::new(table.len());
    let est: Vec<f64> = (0..table.len()).map(|i| ((i * 37 % 11) as f64 + 1.0) * 1e-3).collect();
    model.replace_all(&est);
    if cached {
        model.rebuild_samplers(&table);
    }
    (grid, table, model)
}

/// FNV-1a over the canonical `(id, start, cells…)` serialization, in
/// release order, plus the stream and cell totals.
fn canonicalize(ds: &GriddedDataset) -> (usize, usize, u64) {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut feed = |v: u64| {
        for b in v.to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    let mut streams = 0usize;
    let mut cells = 0usize;
    for s in ds.iter() {
        streams += 1;
        cells += s.cells.len();
        feed(s.id);
        feed(s.start);
        feed(s.cells.len() as u64);
        for c in s.cells {
            feed(c.index() as u64);
        }
    }
    (streams, cells, hash)
}

/// One scenario: a target schedule driven through a synthesis path.
fn run_scenario(name: &str) -> GriddedDataset {
    match name {
        // Sequential cached path: fused steady steps, a shrink, a grow.
        "seq_cached" => {
            let (grid, table, model) = informed_setup(true);
            let targets = [3000usize, 3000, 2600, 2800, 2200, 2500];
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(42);
            for (t, &target) in targets.iter().enumerate() {
                db.step(t as u64, &model, &table, target, 8.0, &mut rng);
            }
            db.release(&grid, targets.len() as u64)
        }
        // Sequential scan fallback (no sampler cache built).
        "seq_uncached" => {
            let (grid, table, model) = informed_setup(false);
            let targets = [400usize, 380, 420, 300, 350];
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(43);
            for (t, &target) in targets.iter().enumerate() {
                db.step(t as u64, &model, &table, target, 8.0, &mut rng);
            }
            db.release(&grid, targets.len() as u64)
        }
        // Fully sharded pooled path, 3 workers, mixed schedule.
        "par_t3" => {
            let (grid, table, model) = informed_setup(true);
            let targets = [4000usize, 4000, 3200, 3600, 2400, 2800];
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(44);
            for (t, &target) in targets.iter().enumerate() {
                db.step_parallel(t as u64, &model, &table, target, 8.0, &mut rng, 3);
            }
            db.release(&grid, targets.len() as u64)
        }
        // Pooled path under shrink-heavy swings (λ → ∞ disables natural
        // quits; every retirement is a two-phase shrink selection).
        "par_t4_shrink" => {
            let (grid, table, model) = informed_setup(true);
            let targets = [4096usize, 1024, 3000, 800];
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(45);
            for (t, &target) in targets.iter().enumerate() {
                db.step_parallel(t as u64, &model, &table, target, 1e12, &mut rng, 4);
            }
            db.release(&grid, targets.len() as u64)
        }
        // NoEQ ablation mode: fixed size, no termination.
        "noeq" => {
            let (grid, table, model) = informed_setup(true);
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(46);
            for t in 0..10 {
                db.step_no_eq(t, &model, &table, 500, &mut rng);
            }
            db.release(&grid, 10)
        }
        other => panic!("unknown scenario {other}"),
    }
}

const SCENARIOS: [&str; 5] = ["seq_cached", "seq_uncached", "par_t3", "par_t4_shrink", "noeq"];

#[test]
fn storage_matches_pre_refactor_snapshot() {
    let mut current = String::new();
    for name in SCENARIOS {
        let ds = run_scenario(name);
        let (streams, cells, hash) = canonicalize(&ds);
        writeln!(current, "{name} streams={streams} cells={cells} fnv={hash:016x}").unwrap();
    }
    if std::env::var_os("SNAPSHOT_BLESS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(SNAPSHOT_PATH).parent().unwrap()).unwrap();
        std::fs::write(SNAPSHOT_PATH, &current).unwrap();
        return;
    }
    let pinned = std::fs::read_to_string(SNAPSHOT_PATH)
        .expect("missing snapshot fixture; regenerate with SNAPSHOT_BLESS=1");
    assert_eq!(
        current, pinned,
        "synthesis output diverged from the pre-refactor Vec-storage snapshot"
    );
}
