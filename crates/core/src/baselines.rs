//! LDP-IDS baselines (Ren et al., SIGMOD 2022) adapted to trajectory
//! streams exactly as the paper describes (§V-A):
//!
//! > "we employ its two-step private mechanism to collect the transition
//! > states from users and build the global mobility model. Afterward, we
//! > leverage the same Markov probability model as ours to generate new
//! > points without considering the entering/quitting of users."
//!
//! Each timestamp runs the two-phase scheme: a *dissimilarity* phase
//! estimates how far the stream has drifted from the last release, and a
//! *publication* phase either refreshes the release (spending budget /
//! users according to the strategy) or re-uses the previous release.
//!
//! - **LBD** (budget distribution): dissimilarity gets `ε/(2w)` per
//!   timestamp; a publication spends half of the remaining publication
//!   half-budget in the window (exponentially decreasing).
//! - **LBA** (budget absorption): uniform `ε/(2w)` publication slots;
//!   skipped slots are absorbed by the next publication, which then
//!   nullifies an equal number of following slots.
//! - **LPD** / **LPA**: the population-division analogues — user groups
//!   reporting with the full ε are distributed / absorbed instead of
//!   budget. Their group sizing assumes a fixed user population `n₀`
//!   (the assumption the paper criticizes as unrealistic for dynamic
//!   streams: the group size is derived from the initial population).
//!
//! The baselines collect *movement states only* (no enter/quit modelling):
//! entering/quitting users simply hold no reportable state that timestamp.
//! Synthesis uses the same Markov generator as RetraSyn in NoEQ mode: a
//! fixed-size, randomly initialized synthetic database whose trajectories
//! never terminate — which is why the paper's Table III shows their length
//! error pinned at ln 2.

use crate::model::GlobalMobilityModel;
use crate::population::{UserRegistry, UserStatus};
use crate::session::{check_events, SessionError, StepOutcome, StreamingEngine};
use crate::store::SnapshotView;
use crate::synthesis::SyntheticDb;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use retrasyn_geo::{GriddedDataset, Space, Topology, TransitionState, TransitionTable, UserEvent};
use retrasyn_ldp::{oue, FrequencyOracle, Oue, ReportMode, WEventLedger};
use std::collections::VecDeque;
use std::sync::Arc;

/// The four LDP-IDS mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Budget distribution (exponentially decreasing publication budgets).
    Lbd,
    /// Budget absorption (uniform slots with absorption + nullification).
    Lba,
    /// Population distribution.
    Lpd,
    /// Population absorption.
    Lpa,
}

impl BaselineKind {
    /// All four mechanisms, in the paper's order.
    pub const ALL: [BaselineKind; 4] =
        [BaselineKind::Lbd, BaselineKind::Lba, BaselineKind::Lpd, BaselineKind::Lpa];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::Lbd => "LBD",
            BaselineKind::Lba => "LBA",
            BaselineKind::Lpd => "LPD",
            BaselineKind::Lpa => "LPA",
        }
    }

    /// Whether this is a population-division mechanism.
    pub fn is_population(self) -> bool {
        matches!(self, BaselineKind::Lpd | BaselineKind::Lpa)
    }
}

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct LdpIdsConfig {
    /// Privacy budget ε per window.
    pub eps: f64,
    /// Window size w.
    pub w: usize,
    /// Report simulation mode.
    pub report_mode: ReportMode,
}

impl LdpIdsConfig {
    /// Paper-default baseline configuration.
    pub fn new(eps: f64, w: usize) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive");
        assert!(w >= 1, "window must be >= 1");
        LdpIdsConfig { eps, w, report_mode: ReportMode::Aggregate }
    }
}

/// An LDP-IDS baseline engine.
#[derive(Debug)]
pub struct LdpIds {
    kind: BaselineKind,
    config: LdpIdsConfig,
    table: TransitionTable,
    /// Current release over the movement domain.
    released: Vec<f64>,
    has_release: bool,
    /// Full-domain wrapper for the shared synthesizer (enter/quit zero).
    model: GlobalMobilityModel,
    synthetic: SyntheticDb,
    ledger: WEventLedger,
    registry: UserRegistry,
    rng: StdRng,
    /// Construction seed, kept so [`Self::reset`] replays identically.
    seed: u64,
    next_t: u64,
    /// Set by [`Self::release`]; a released engine refuses to step until
    /// [`Self::reset`].
    session_released: bool,
    fixed_size: Option<usize>,
    /// Fixed-population assumption n₀ (population variants).
    n0: Option<usize>,
    /// Publications (t, ε₂) in the budget variants (window accounting).
    budget_pubs: VecDeque<(u64, f64)>,
    /// Publication groups (t, size) in the population variants.
    group_pubs: VecDeque<(u64, usize)>,
    /// Absorption state (LBA/LPA).
    last_pub_t: Option<u64>,
    nullified_until: Option<u64>,
}

impl LdpIds {
    /// Create a baseline engine over any discretization.
    pub fn new<S: Space>(kind: BaselineKind, config: LdpIdsConfig, space: S, seed: u64) -> Self {
        let table = TransitionTable::new(&space);
        let released = vec![0.0; table.num_moves()];
        let model = GlobalMobilityModel::new(table.len());
        let ledger = WEventLedger::new(config.eps, config.w);
        let registry = UserRegistry::new(config.w);
        LdpIds {
            kind,
            config,
            table,
            released,
            has_release: false,
            model,
            synthetic: SyntheticDb::new(),
            ledger,
            registry,
            rng: StdRng::seed_from_u64(seed),
            seed,
            next_t: 0,
            session_released: false,
            fixed_size: None,
            n0: None,
            budget_pubs: VecDeque::new(),
            group_pubs: VecDeque::new(),
            last_pub_t: None,
            nullified_until: None,
        }
    }

    /// The mechanism kind.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// The privacy ledger.
    pub fn ledger(&self) -> &WEventLedger {
        &self.ledger
    }

    /// The compiled discretization this baseline synthesizes over.
    pub fn topology(&self) -> &Arc<Topology> {
        self.table.topology()
    }

    /// The timestamp the next [`Self::step`] must carry.
    pub fn next_timestamp(&self) -> u64 {
        self.next_t
    }

    /// Whether `t` falls in a nullified stretch (absorption variants).
    fn is_nullified(&self, t: u64) -> bool {
        self.nullified_until.is_some_and(|until| t <= until)
    }

    /// Mean squared per-dimension deviation between an estimate and the
    /// current release, debiased by the estimator variance — the
    /// dissimilarity `dis` of the two-phase mechanism.
    fn dissimilarity(&self, estimate: &[f64], variance: f64) -> f64 {
        let d = estimate.len() as f64;
        let raw: f64 =
            estimate.iter().zip(&self.released).map(|(&e, &r)| (e - r).powi(2)).sum::<f64>() / d;
        (raw - variance).max(0.0)
    }

    fn publish(&mut self, estimate: Vec<f64>) {
        self.released = estimate.into_iter().map(|f| f.max(0.0)).collect();
        self.has_release = true;
        let mut full = vec![0.0; self.table.len()];
        full[..self.table.num_moves()].copy_from_slice(&self.released);
        self.model.replace_all(&full);
    }

    /// Advance one timestamp. Panicking wrapper over [`Self::try_step`].
    pub fn step(&mut self, t: u64, events: &[UserEvent]) -> StepOutcome {
        match self.try_step(t, events) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Advance one timestamp, reporting misuse and malformed events as a
    /// typed [`SessionError`] instead of panicking. Validation is a pure
    /// pre-pass (no RNG consumed, no state mutated), so an `Err` leaves
    /// the baseline untouched and steppable; the historical path
    /// `.expect`ed mid-loop on a non-adjacent `Move`, after the timestamp
    /// had already advanced.
    pub fn try_step(&mut self, t: u64, events: &[UserEvent]) -> Result<StepOutcome, SessionError> {
        if self.session_released {
            return Err(SessionError::Released);
        }
        if t != self.next_t {
            return Err(SessionError::timestamp(self.next_t, t));
        }
        check_events(&self.table, t, events)?;
        self.next_t += 1;

        // Movement states only; enter/quit holders have nothing to report.
        let mut states: Vec<(u64, usize)> = Vec::new();
        let mut target_active = 0usize;
        for e in events {
            if !matches!(e.state, TransitionState::Quit(_)) {
                target_active += 1;
            }
            if let TransitionState::Move { .. } = e.state {
                // Safe after the check_events pre-pass.
                let idx = self.table.index_of(e.state).expect("adjacent move");
                states.push((e.user, idx));
            }
        }

        if self.kind.is_population() {
            self.step_population(t, &states);
        } else {
            self.step_budget(t, &states);
        }

        let size = *self.fixed_size.get_or_insert(target_active.max(1));
        self.synthetic.step_no_eq(t, &self.model, &self.table, size, &mut self.rng);
        Ok(StepOutcome {
            t,
            active: self.synthetic.active_count(),
            finished: self.synthetic.finished_count(),
        })
    }

    /// Borrowed, zero-copy view of the synthetic database as of the last
    /// completed step (post-processing; no privacy cost).
    ///
    /// # Panics
    ///
    /// If the session was already released — the streams moved out with
    /// the release, so an "empty" view here would misread as a population
    /// collapse.
    pub fn snapshot(&self) -> SnapshotView<'_> {
        assert!(
            !self.session_released,
            "baseline already released its session; query the released dataset \
             (or reset() and start a new stream) instead of snapshot()"
        );
        self.synthetic.snapshot(self.next_t)
    }

    /// Close the session and release everything synthesized over
    /// `0..next_timestamp()`. Zero-copy and callable mid-stream;
    /// afterwards the engine refuses to step until [`Self::reset`].
    ///
    /// # Panics
    ///
    /// If the session was already released.
    pub fn release(&mut self) -> GriddedDataset {
        match self.try_release() {
            Ok(dataset) => dataset,
            Err(e) => panic!("{e}"),
        }
    }

    /// Close the session (see [`Self::release`]), failing with
    /// [`SessionError::Released`] instead of panicking when the session
    /// was already released.
    pub fn try_release(&mut self) -> Result<GriddedDataset, SessionError> {
        if self.session_released {
            return Err(SessionError::Released);
        }
        self.session_released = true;
        Ok(self.synthetic.release(self.table.topology(), self.next_t))
    }

    /// Start a new session: restore the freshly-constructed state in
    /// place, re-seeded with the construction seed. Allocated buffers are
    /// retained, so back-to-back sessions re-allocate almost nothing.
    pub fn reset(&mut self) {
        self.released.iter_mut().for_each(|f| *f = 0.0);
        self.has_release = false;
        self.model.reset();
        self.synthetic.reset();
        self.ledger.reset();
        self.registry.reset();
        self.rng = StdRng::seed_from_u64(self.seed);
        self.next_t = 0;
        self.session_released = false;
        self.fixed_size = None;
        self.n0 = None;
        self.budget_pubs.clear();
        self.group_pubs.clear();
        self.last_pub_t = None;
        self.nullified_until = None;
    }

    /// Stable fingerprint of everything that shapes this baseline's
    /// output: mechanism kind, seed, configuration and discretization. WAL
    /// files carry it so recovery refuses to replay a log into a
    /// differently-configured engine.
    pub fn fingerprint(&self) -> u64 {
        let mut f = crate::wal::Fingerprint::new("ldp-ids");
        f.bytes(self.kind.name().as_bytes())
            .u64(self.seed)
            .f64(self.config.eps)
            .usize(self.config.w)
            .u64(match self.config.report_mode {
                ReportMode::PerUser => 0,
                ReportMode::Aggregate => 1,
            })
            .space(self.table.topology().descriptor());
        f.finish()
    }

    /// LBD / LBA: two-phase budget division.
    fn step_budget(&mut self, t: u64, states: &[(u64, usize)]) {
        let w = self.config.w as u64;
        let unit = self.config.eps / (2.0 * self.config.w as f64);
        let domain = self.table.num_moves().max(2);
        let n = states.len() as u64;
        let values: Vec<usize> = states.iter().map(|&(_, s)| s).collect();
        let mut spent = 0.0;

        // Phase 1: dissimilarity estimation with eps1 = unit.
        let dis = if n == 0 {
            0.0
        } else if !self.has_release {
            f64::INFINITY // bootstrap: force the first publication
        } else {
            let oracle = Oue::new(unit, domain).expect("positive unit");
            let est = oracle
                .collect(&values, self.config.report_mode, &mut self.rng)
                .expect("valid states");
            spent += unit;
            self.dissimilarity(&est.freqs, est.variance)
        };

        // Phase 2: candidate publication budget eps2.
        self.budget_pubs.retain(|&(pt, _)| pt + w > t);
        let eps2 = match self.kind {
            BaselineKind::Lbd => {
                let used: f64 = self.budget_pubs.iter().map(|&(_, e)| e).sum();
                ((self.config.eps / 2.0 - used) / 2.0).max(0.0)
            }
            BaselineKind::Lba => {
                if self.is_nullified(t) {
                    0.0
                } else {
                    unit * (self.absorbable_slots(t) + 1) as f64
                }
            }
            _ => unreachable!(),
        };

        let err = if n == 0 || eps2 <= 1e-12 { f64::INFINITY } else { oue::variance(eps2, n) };
        if dis > err {
            let oracle = Oue::new(eps2, domain).expect("positive eps2");
            let est = oracle
                .collect(&values, self.config.report_mode, &mut self.rng)
                .expect("valid states");
            spent += eps2;
            self.publish(est.freqs);
            self.budget_pubs.push_back((t, eps2));
            if self.kind == BaselineKind::Lba {
                let absorbed = self.absorbable_slots(t);
                if absorbed > 0 {
                    self.nullified_until = Some(t + absorbed as u64);
                }
            }
            self.last_pub_t = Some(t);
        }
        self.ledger.record_budget(t, spent);
    }

    /// Number of unspent publication slots absorbable at `t` (LBA/LPA):
    /// slots strictly inside the window, after the last publication and
    /// after any nullified stretch.
    fn absorbable_slots(&self, t: u64) -> usize {
        let w = self.config.w as u64;
        let mut start = (t + 1).saturating_sub(w);
        if let Some(p) = self.last_pub_t {
            start = start.max(p + 1);
        }
        if let Some(nu) = self.nullified_until {
            start = start.max(nu + 1);
        }
        t.saturating_sub(start) as usize
    }

    /// LPD / LPA: two-phase population division.
    fn step_population(&mut self, t: u64, states: &[(u64, usize)]) {
        let domain = self.table.num_moves().max(2);
        for &(u, _) in states {
            self.registry.register(u);
        }
        self.registry.recycle(t);
        // The fixed-set assumption: group sizing uses the population seen
        // at the first timestamp with reporters.
        if self.n0.is_none() && !states.is_empty() {
            self.n0 = Some(self.registry.active_count().max(1));
        }
        let Some(n0) = self.n0 else {
            return;
        };
        let unit = (n0 / (2 * self.config.w)).max(1);

        let mut eligible: Vec<(u64, usize)> = states
            .iter()
            .filter(|&&(u, _)| self.registry.status(u) == Some(UserStatus::Active))
            .copied()
            .collect();
        eligible.sort_unstable_by_key(|&(u, _)| u);
        eligible.shuffle(&mut self.rng);

        // Phase 1: dissimilarity group.
        let m1 = unit.min(eligible.len());
        let group1: Vec<(u64, usize)> = eligible.drain(..m1).collect();
        let dis = if group1.is_empty() {
            0.0
        } else if !self.has_release {
            f64::INFINITY
        } else {
            let values: Vec<usize> = group1.iter().map(|&(_, s)| s).collect();
            let oracle = Oue::new(self.config.eps, domain).expect("positive eps");
            let est = oracle
                .collect(&values, self.config.report_mode, &mut self.rng)
                .expect("valid states");
            self.dissimilarity(&est.freqs, est.variance)
        };
        for &(u, _) in &group1 {
            self.registry.mark_reported(u, t);
            self.ledger.record_user_report(u, t);
        }

        // Phase 2: candidate publication group size.
        let w = self.config.w as u64;
        self.group_pubs.retain(|&(pt, _)| pt + w > t);
        let m2 = match self.kind {
            BaselineKind::Lpd => {
                let used: usize = self.group_pubs.iter().map(|&(_, m)| m).sum();
                (n0 / 2).saturating_sub(used) / 2
            }
            BaselineKind::Lpa => {
                if self.is_nullified(t) {
                    0
                } else {
                    unit * (self.absorbable_slots(t) + 1)
                }
            }
            _ => unreachable!(),
        };

        let err = if m2 == 0 { f64::INFINITY } else { oue::variance(self.config.eps, m2 as u64) };
        if dis > err {
            let m2_actual = m2.min(eligible.len());
            if m2_actual > 0 {
                let group2: Vec<(u64, usize)> = eligible.drain(..m2_actual).collect();
                let values: Vec<usize> = group2.iter().map(|&(_, s)| s).collect();
                let oracle = Oue::new(self.config.eps, domain).expect("positive eps");
                let est = oracle
                    .collect(&values, self.config.report_mode, &mut self.rng)
                    .expect("valid states");
                for &(u, _) in &group2 {
                    self.registry.mark_reported(u, t);
                    self.ledger.record_user_report(u, t);
                }
                self.publish(est.freqs);
                self.group_pubs.push_back((t, m2));
                if self.kind == BaselineKind::Lpa {
                    let absorbed = self.absorbable_slots(t);
                    if absorbed > 0 {
                        self.nullified_until = Some(t + absorbed as u64);
                    }
                }
                self.last_pub_t = Some(t);
            }
        }
    }
}

impl StreamingEngine for LdpIds {
    fn topology(&self) -> &Arc<Topology> {
        LdpIds::topology(self)
    }

    fn next_timestamp(&self) -> u64 {
        LdpIds::next_timestamp(self)
    }

    fn try_step(&mut self, t: u64, events: &[UserEvent]) -> Result<StepOutcome, SessionError> {
        LdpIds::try_step(self, t, events)
    }

    fn snapshot(&self) -> SnapshotView<'_> {
        LdpIds::snapshot(self)
    }

    fn try_release(&mut self) -> Result<GriddedDataset, SessionError> {
        LdpIds::try_release(self)
    }

    fn ledger(&self) -> &WEventLedger {
        LdpIds::ledger(self)
    }

    fn reset(&mut self) {
        LdpIds::reset(self);
    }

    fn fingerprint(&self) -> u64 {
        LdpIds::fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_datagen::RandomWalkConfig;
    use retrasyn_geo::{Grid, StreamDataset};

    fn dataset(seed: u64) -> StreamDataset {
        RandomWalkConfig { users: 300, timestamps: 25, churn: 0.05, ..Default::default() }
            .generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(BaselineKind::ALL.len(), 4);
        assert_eq!(BaselineKind::Lbd.name(), "LBD");
        assert!(!BaselineKind::Lbd.is_population());
        assert!(!BaselineKind::Lba.is_population());
        assert!(BaselineKind::Lpd.is_population());
        assert!(BaselineKind::Lpa.is_population());
    }

    #[test]
    fn all_baselines_run_and_satisfy_ledger() {
        let ds = dataset(1);
        for kind in BaselineKind::ALL {
            let config = LdpIdsConfig::new(1.0, 5);
            let mut engine = LdpIds::new(kind, config, Grid::unit(5), 3);
            let syn = engine.run(&ds);
            assert_eq!(syn.horizon(), 25, "{}", kind.name());
            assert!(!syn.is_empty(), "{}", kind.name());
            engine.ledger().verify().unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }

    #[test]
    fn baseline_streams_never_terminate() {
        let ds = dataset(2);
        let config = LdpIdsConfig::new(1.0, 5);
        let mut engine = LdpIds::new(BaselineKind::Lbd, config, Grid::unit(5), 3);
        let syn = engine.run(&ds);
        // Fixed-size DB: every stream spans the whole horizon.
        for s in syn.iter() {
            assert_eq!(s.start, 0);
            assert_eq!(s.len(), 25);
        }
    }

    #[test]
    fn budget_variants_publish_at_least_once() {
        let ds = dataset(3);
        for kind in [BaselineKind::Lbd, BaselineKind::Lba] {
            let config = LdpIdsConfig::new(2.0, 5);
            let mut engine = LdpIds::new(kind, config, Grid::unit(4), 3);
            let _ = engine.run(&ds);
            assert!(engine.has_release, "{} never published", kind.name());
        }
    }

    #[test]
    fn population_variants_report_users() {
        let ds = dataset(4);
        for kind in [BaselineKind::Lpd, BaselineKind::Lpa] {
            let config = LdpIdsConfig::new(1.0, 5);
            let mut engine = LdpIds::new(kind, config, Grid::unit(4), 3);
            let _ = engine.run(&ds);
            assert!(engine.ledger().total_user_reports() > 0, "{}", kind.name());
            engine.ledger().verify().expect("population ledger");
        }
    }

    #[test]
    fn lba_nullifies_after_absorption() {
        // Construct a stable stream so LBA publishes early, then rarely.
        let ds = dataset(5);
        let config = LdpIdsConfig::new(1.0, 6);
        let mut engine = LdpIds::new(BaselineKind::Lba, config, Grid::unit(4), 7);
        let _ = engine.run(&ds);
        engine.ledger().verify().expect("LBA ledger");
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = dataset(6);
        let run = |seed| {
            let config = LdpIdsConfig::new(1.0, 5);
            let mut engine = LdpIds::new(BaselineKind::Lpd, config, Grid::unit(5), seed);
            engine.run(&ds)
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.num_streams(), b.num_streams());
        assert_eq!(a.stream(3), b.stream(3));
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn out_of_order_step_panics() {
        let config = LdpIdsConfig::new(1.0, 5);
        let mut engine = LdpIds::new(BaselineKind::Lbd, config, Grid::unit(4), 0);
        engine.step(3, &[]);
    }

    #[test]
    fn absorbable_slots_bounds() {
        let config = LdpIdsConfig::new(1.0, 5);
        let mut engine = LdpIds::new(BaselineKind::Lba, config, Grid::unit(4), 0);
        // No history: everything inside the window is absorbable.
        assert_eq!(engine.absorbable_slots(0), 0);
        assert_eq!(engine.absorbable_slots(3), 3);
        assert_eq!(engine.absorbable_slots(10), 4); // capped by w − 1
        engine.last_pub_t = Some(8);
        assert_eq!(engine.absorbable_slots(10), 1);
        engine.nullified_until = Some(9);
        assert_eq!(engine.absorbable_slots(10), 0);
    }
}
