//! Real-time trajectory synthesis (§III-D).
//!
//! The synthetic database is advanced once per timestamp in two phases:
//!
//! 1. **New point generation** — every live synthetic stream first draws a
//!    termination decision with the length-reweighted quit probability
//!    (Eq. 8); survivors extend by one cell sampled from the Markov
//!    movement distribution (Eq. 6, conditioned on not quitting).
//! 2. **Size adjustment** — the live count is matched to the real active
//!    population: missing streams enter at cells drawn from the entering
//!    distribution `E`; excess streams are terminated with probability
//!    proportional to the quitting distribution `Q` at their last location.
//!
//! **Storage.** Live streams are columnar (`StreamStore`): the fused
//! pass walks the contiguous head/len columns and appends one tail-arena
//! node per survivor — no per-stream heap pointer chase, O(1) retirement,
//! and a release path that never materializes a per-stream `Vec`.
//!
//! **Hot-path cost.** When the model's [`SamplerCache`] is fresh (the
//! engine rebuilds it after every model update), each per-user decision is
//! O(1): a cached quit probability and one alias draw, with no heap
//! allocation. Without a fresh cache the code falls back to the O(k) scan
//! over a reused scratch buffer, so standalone callers that never call
//! [`GlobalMobilityModel::rebuild_samplers`] still get correct output.
//!
//! **Parallelism.** [`SyntheticDb::step_parallel`] runs the *entire* step
//! on a persistent [`SynthesisPool`] owned by the database: disjoint index
//! ranges of the store's head columns are copied into per-worker
//! `ShardState`s (five `memcpy`s per shard, reused across steps), each
//! worker runs the fused quit+extend pass over its columns with a
//! per-shard finished region and a private tail buffer, and downward size
//! adjustment is a two-phase parallel selection — workers compute
//! Efraimidis–Spirakis keys per shard, the caller makes the global
//! top-`excess` cut, workers retire their victims and extend the
//! remainder. The merge relocates each shard's tail buffer into the shared
//! arena in shard order and offsets the survivors' links, so a fixed
//! `(seed, threads)` gives identical output.
//!
//! The *NoEQ* mode ([`SyntheticDb::step_no_eq`]) reproduces the baselines
//! and the Table-IV ablation: a fixed-size database initialized at random
//! whose streams never terminate.

use crate::model::GlobalMobilityModel;
use crate::pool::{draw_seeds, PoolError, ShardState, ShardTask, SynthesisPool, MIN_SHRINK_WEIGHT};
use crate::sampler::{sample_weighted, SamplerCache};
use crate::store::{Addr, Columns, SnapshotView, StreamStore, TailArena, TailSink};
use crate::wal::{Dec, Enc};
use rand::Rng;
use retrasyn_geo::{CellId, GriddedDataset, Space, TransitionTable};
use std::cmp::Ordering;
use std::sync::Arc;

/// Below this population the parallel step falls back to the sequential
/// path: dispatch overhead dominates the per-stream work.
const MIN_PARALLEL: usize = 2048;

/// Descending order over Efraimidis–Spirakis keys with a deterministic
/// `(shard, position)` tiebreak, so the global top-`excess` cut selects a
/// unique victim set regardless of `select_nth_unstable_by`'s internal
/// ordering. Keys are compared in the log domain (`ln(u)/w` rather than
/// `u^{1/w}` — the same ordering, but `u^{1/w}` underflows to exactly 0
/// for the tiny weights a large grid produces, which would silently turn
/// big one-tick shrinks into positional selection). With `u ∈ [0, 1)` and
/// `w > 0` a key is in `[−∞, 0)`: never NaN.
fn cmp_keys_desc(a: &(f64, u32, u32), b: &(f64, u32, u32)) -> Ordering {
    b.0.partial_cmp(&a.0)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.1.cmp(&b.1))
        .then_with(|| a.2.cmp(&b.2))
}

/// Extend every stream by one alias-sampled movement: contiguous walk over
/// the head column, one appended tail node per stream. Shared by the
/// sequential cached paths and the pool workers so the two can never
/// diverge (the sink is the global arena sequentially, a shard-local
/// buffer in workers).
pub(crate) fn extend_cols<R: Rng + ?Sized, S: TailSink>(
    cols: &mut Columns,
    sink: &mut S,
    cache: &SamplerCache,
    rng: &mut R,
) {
    for i in 0..cols.len() {
        let to = cache.sample_move(cols.heads[i], rng);
        cols.extend_row(i, to, sink);
    }
}

/// One in-place termination pass (Eq. 8, cached quit probabilities):
/// quitters are `swap_remove`d into the `finished` columns (the swapped-in
/// stream is decided next, so the pass moves O(quits) rows), survivors
/// optionally extend in the same pass. Shared by the sequential cached
/// paths and the pool workers so the two can never diverge.
pub(crate) fn quit_pass_cols<R: Rng + ?Sized, S: TailSink>(
    cols: &mut Columns,
    finished: &mut Columns,
    sink: &mut S,
    cache: &SamplerCache,
    lambda: f64,
    extend: bool,
    rng: &mut R,
) {
    let inv_lambda = 1.0 / lambda;
    let mut i = 0;
    while i < cols.len() {
        let from = cols.heads[i];
        let q = cols.lens[i] as f64 * inv_lambda * cache.base_quit_prob(from);
        if rng.random::<f64>() >= q {
            if extend {
                let to = cache.sample_move(from, rng);
                cols.extend_row(i, to, sink);
            }
            i += 1;
        } else {
            cols.swap_remove_into(i, finished); // xtask:allow(DET003, retirement visits rows in deterministic index order; the row permutation is seed-determined)
        }
    }
}

/// The evolving synthetic trajectory database `T_syn`.
#[derive(Debug, Default)]
pub struct SyntheticDb {
    store: StreamStore,
    next_id: u64,
    initialized: bool,
    /// Persistent worker pool, created lazily on the first parallel step.
    pool: Option<SynthesisPool>,
    /// Reused per-worker shard states (columns, tail buffers, key and
    /// victim buffers all keep their capacity across steps).
    shards: Vec<ShardState>,
    /// Reused per-shard seed buffer.
    seeds: Vec<u64>,
    /// Reused O(k) probability buffer for the scan fallback.
    scan_buf: Vec<f64>,
    /// Reused `(key, shard, position)` buffer for the shrink cut.
    keyed: Vec<(f64, u32, u32)>,
    /// Reused victim-position buffer for the sequential shrink path.
    victims: Vec<u32>,
    /// Reused enter-cell buffer for the pooled upward adjustment (cells
    /// drawn sequentially on the caller, appended on the workers).
    spawn_cells: Vec<CellId>,
    /// Reused spare arena epoch compaction rebuilds into (swapped with the
    /// store's, so chunk allocations recycle across runs).
    compact_spare: TailArena,
    /// Reused cell buffer for compaction chain walks.
    compact_scratch: Vec<CellId>,
}

impl Clone for SyntheticDb {
    fn clone(&self) -> Self {
        // Worker pools are not cloneable state: the clone re-creates its
        // own lazily on the first parallel step.
        SyntheticDb {
            store: self.store.clone(),
            next_id: self.next_id,
            initialized: self.initialized,
            pool: None,
            shards: Vec::new(),
            seeds: Vec::new(),
            scan_buf: Vec::new(),
            keyed: Vec::new(),
            victims: Vec::new(),
            spawn_cells: Vec::new(),
            compact_spare: TailArena::default(),
            compact_scratch: Vec::new(),
        }
    }
}

impl SyntheticDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live synthetic streams.
    pub fn active_count(&self) -> usize {
        self.store.live.len()
    }

    /// Number of completed synthetic streams so far (including streams
    /// drained into the frozen region by epoch compaction).
    pub fn finished_count(&self) -> usize {
        self.store.frozen.num_streams() + self.store.finished.len()
    }

    /// Cells resident in mutable storage: tail-arena nodes plus live and
    /// finished head rows. This is the quantity epoch compaction bounds;
    /// frozen cells are excluded (they are the compactor's flat output).
    pub fn resident_cells(&self) -> usize {
        self.store.resident_cells()
    }

    /// Run one epoch compaction stamped `epoch` (see [`crate::compact`]):
    /// finished streams drain into frozen storage and the arena is rebuilt
    /// around the live chains. Returns `(streams_frozen, cells_frozen)`.
    /// Snapshots and released output are bit-for-bit unchanged.
    pub fn compact(&mut self, epoch: u64) -> (usize, usize) {
        let mut spare = std::mem::take(&mut self.compact_spare);
        let mut scratch = std::mem::take(&mut self.compact_scratch);
        let out = self.store.compact(epoch, &mut spare, &mut scratch);
        self.compact_spare = spare;
        self.compact_scratch = scratch;
        out
    }

    /// Reset to a fresh, uninitialized session in place: all stream
    /// storage is dropped (ids restart at 0) while the worker pool, arena
    /// chunks and every scratch buffer keep their allocations.
    pub fn reset(&mut self) {
        self.store.reset();
        self.next_id = 0;
        self.initialized = false;
    }

    /// Serialize the synthesis state for a checkpoint (counters + the full
    /// stream store).
    pub(crate) fn encode_into(&self, enc: &mut Enc) {
        enc.u64(self.next_id);
        enc.u8(self.initialized as u8);
        self.store.encode_into(enc);
    }

    /// Restore from [`Self::encode_into`] output, keeping the worker pool
    /// and scratch buffers.
    pub(crate) fn decode_from(&mut self, dec: &mut Dec) -> Result<(), String> {
        self.next_id = dec.u64()?;
        self.initialized = dec.u8()? != 0;
        self.store.decode_from(dec)
    }

    /// Per-cell occupancy of the live synthetic population (the real-time
    /// view a streaming consumer monitors; post-processing, no privacy
    /// cost). One contiguous scan of the head column.
    pub fn occupancy(&self, num_cells: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_cells];
        for head in &self.store.live.heads {
            counts[head.index()] += 1;
        }
        counts
    }

    /// Advance one timestamp with full enter/quit modelling (§III-D).
    /// `target` is the real active-stream count at `t` (known to the
    /// curator from participation metadata, not from reports).
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        target: usize,
        lambda: f64,
        rng: &mut R,
    ) {
        let cache = model.sampler().cloned();
        if !self.initialized {
            // Initialization of T_syn (Alg. 1 line 5): spawn `target`
            // streams from the entering distribution.
            self.spawn(t, model, table, cache.as_deref(), target, rng);
            self.initialized = true;
            return;
        }
        if self.store.live.len() <= target {
            // Fast path (the steady state: the population is not
            // shrinking, so downward adjustment is impossible no matter
            // how the quit draws fall): termination and extension fuse
            // into ONE compacting pass — per stream, one cached quit
            // probability, one alias draw, zero allocations, contiguous
            // column traffic.
            self.quit_and_extend_fused(model, table, cache.as_deref(), lambda, rng);
        } else {
            // Phase 1a: natural termination via Eq. 8.
            self.quit_phase(model, table, cache.as_deref(), lambda, rng);
            // Phase 2a: size adjustment downward *before* extension, so
            // the terminated streams end at their `t−1` location.
            self.shrink_to_target(model, table, cache.as_deref(), target, rng);
            // Phase 1b: extension — survivors move to a neighbor drawn
            // from the movement distribution conditioned on not quitting.
            self.extend_all(model, table, cache.as_deref(), rng);
        }
        // Phase 2b: size adjustment upward via the entering distribution.
        if self.store.live.len() < target {
            let missing = target - self.store.live.len();
            self.spawn(t, model, table, cache.as_deref(), missing, rng);
        }
    }

    /// Fused phases 1a + 1b for steps that cannot shrink: decide
    /// termination and extend survivors in a single in-place pass. Only
    /// valid when no downward size adjustment can occur
    /// (`live.len() <= target` before the quit draws).
    ///
    /// Survivors stay in place; a quitter's columns are `swap_remove`d and
    /// the row swapped into its slot is decided next, so the pass moves
    /// O(quits) rows instead of compacting all n. The draw order is a
    /// deterministic function of the quit pattern — identical for a fixed
    /// seed.
    fn quit_and_extend_fused<R: Rng + ?Sized>(
        &mut self,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        cache: Option<&SamplerCache>,
        lambda: f64,
        rng: &mut R,
    ) {
        let StreamStore { live, finished, tail, .. } = &mut self.store;
        match cache {
            Some(cache) => {
                quit_pass_cols(live, finished, tail, cache, lambda, true, rng);
            }
            None => {
                let mut buf = std::mem::take(&mut self.scan_buf);
                let mut i = 0;
                while i < live.len() {
                    let from = live.heads[i];
                    let q = model.quit_prob(table, from, live.lens[i] as u64, lambda);
                    if rng.random::<f64>() >= q {
                        model.move_probs_into(table, from, &mut buf);
                        let pos = sample_weighted(&buf, rng);
                        live.extend_row(i, table.move_targets(from)[pos], tail);
                        i += 1;
                    } else {
                        live.swap_remove_into(i, finished); // xtask:allow(DET003, retirement visits rows in deterministic index order; the row permutation is seed-determined)
                    }
                }
                self.scan_buf = buf;
            }
        }
    }

    /// Phase 1b: extend every live stream by one movement draw.
    fn extend_all<R: Rng + ?Sized>(
        &mut self,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        cache: Option<&SamplerCache>,
        rng: &mut R,
    ) {
        let StreamStore { live, tail, .. } = &mut self.store;
        match cache {
            Some(cache) => extend_cols(live, tail, cache, rng),
            None => {
                let mut buf = std::mem::take(&mut self.scan_buf);
                for i in 0..live.len() {
                    let from = live.heads[i];
                    model.move_probs_into(table, from, &mut buf);
                    let pos = sample_weighted(&buf, rng);
                    live.extend_row(i, table.move_targets(from)[pos], tail);
                }
                self.scan_buf = buf;
            }
        }
    }

    /// Phase 1a: draw per-stream termination decisions and retire quitters.
    ///
    /// One in-place pass moving O(quits) rows: survivors stay put, a
    /// quitter is `swap_remove`d and the swapped-in stream decided next —
    /// deterministic for a fixed seed, no per-step allocation.
    fn quit_phase<R: Rng + ?Sized>(
        &mut self,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        cache: Option<&SamplerCache>,
        lambda: f64,
        rng: &mut R,
    ) {
        let StreamStore { live, finished, tail, .. } = &mut self.store;
        if let Some(cache) = cache {
            return quit_pass_cols(live, finished, tail, cache, lambda, false, rng);
        }
        let mut i = 0;
        while i < live.len() {
            let from = live.heads[i];
            let q = model.quit_prob(table, from, live.lens[i] as u64, lambda);
            if rng.random::<f64>() >= q {
                i += 1;
            } else {
                live.swap_remove_into(i, finished); // xtask:allow(DET003, retirement visits rows in deterministic index order; the row permutation is seed-determined)
            }
        }
    }

    /// Phase 2a: weighted sampling without replacement of `excess` victims
    /// (Efraimidis–Spirakis keys, keep the largest), retiring them at
    /// their `t−1` location with probability proportional to the quitting
    /// distribution.
    ///
    /// With a fresh cache the per-stream weight is an O(1) lookup into the
    /// cached quitting distribution; only the cold fallback allocates the
    /// O(cells) vector. Victim selection is a partial
    /// `select_nth_unstable_by` — only the `excess` largest keys are
    /// needed, not a full sort.
    fn shrink_to_target<R: Rng + ?Sized>(
        &mut self,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        cache: Option<&SamplerCache>,
        target: usize,
        rng: &mut R,
    ) {
        if self.store.live.len() <= target {
            return;
        }
        let excess = self.store.live.len() - target;
        self.keyed.clear();
        match cache {
            Some(cache) => {
                for (i, &head) in self.store.live.heads.iter().enumerate() {
                    let w = cache.quit_weight(head).max(MIN_SHRINK_WEIGHT);
                    let u: f64 = rng.random::<f64>();
                    self.keyed.push((u.ln() / w, 0, i as u32));
                }
            }
            None => {
                let quit_dist = model.quit_distribution(table);
                for (i, &head) in self.store.live.heads.iter().enumerate() {
                    let w = quit_dist[head.index()].max(MIN_SHRINK_WEIGHT);
                    let u: f64 = rng.random::<f64>();
                    self.keyed.push((u.ln() / w, 0, i as u32));
                }
            }
        }
        if excess < self.keyed.len() {
            self.keyed.select_nth_unstable_by(excess - 1, cmp_keys_desc);
        }
        self.victims.clear();
        self.victims.extend(self.keyed[..excess].iter().map(|&(_, _, i)| i));
        // `swap_remove` from the highest position down: each removal moves
        // the current last row, which sits past every remaining (smaller)
        // victim position.
        self.victims.sort_unstable_by(|a, b| b.cmp(a));
        let StreamStore { live, finished, .. } = &mut self.store;
        for k in 0..self.victims.len() {
            live.swap_remove_into(self.victims[k] as usize, finished); // xtask:order(victims are sorted descending just above, so removals never disturb pending positions)
        }
        self.victims.clear();
    }

    /// Advance one timestamp in NoEQ / baseline mode: fixed size
    /// (`init_size` at the first call), random initialization, no
    /// termination, no size adjustment.
    pub fn step_no_eq<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        init_size: usize,
        rng: &mut R,
    ) {
        if !self.initialized {
            let cells = table.num_cells() as u32;
            for _ in 0..init_size {
                self.store.spawn(self.next_id, t, CellId(rng.random_range(0..cells)));
                self.next_id += 1;
            }
            self.initialized = true;
            return;
        }
        self.extend_all(model, table, model.sampler().map(Arc::as_ref), rng);
    }

    /// Parallel variant of [`Self::step`] — the acceleration the paper
    /// names as future work (§VII: "study acceleration techniques (e.g.,
    /// parallel computing)").
    ///
    /// The *entire* step runs on a persistent worker pool owned by this
    /// database (created on first use, re-created if `threads` changes):
    ///
    /// - steady state (no shrink possible): one dispatch of the fused
    ///   quit+extend pass; quitters retire into per-shard finished columns;
    /// - shrinking: two dispatches — workers draw quits and compute one
    ///   Efraimidis–Spirakis key per survivor, the caller makes the global
    ///   top-`excess` cut across all shards, then workers retire their
    ///   victims and extend the remainder;
    /// - growing: the caller draws the missing enter cells sequentially
    ///   (preserving the sequential spawn's RNG stream exactly), then one
    ///   dispatch appends the fresh rows on the workers.
    ///
    /// Shards are disjoint index ranges of the store's head columns;
    /// workers receive them as owned column copies and return them in
    /// place. Semantically identical invariants to [`Self::step`] (exact
    /// size tracking, adjacency, identical per-stream decision
    /// distributions); the random stream differs from the sequential path
    /// but is deterministic for a fixed `(seed, threads)`. Falls back to
    /// the sequential step for small databases where dispatch overhead
    /// dominates, and whenever the model has no fresh [`SamplerCache`]
    /// (workers sample exclusively through the cache snapshot).
    #[allow(clippy::too_many_arguments)]
    pub fn step_parallel<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        target: usize,
        lambda: f64,
        rng: &mut R,
        threads: usize,
    ) {
        match self.try_step_parallel(t, model, table, target, lambda, rng, threads) {
            Ok(()) => {}
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Self::step_parallel`]: a dead pool worker surfaces as a
    /// typed [`PoolError`] instead of a panic. On `Err` the database is in
    /// an unspecified state (the dead worker held shard columns) and the
    /// poisoned pool has been dropped — the owning session must be
    /// recovered or reset, after which the next parallel step re-spawns a
    /// fresh pool.
    #[allow(clippy::too_many_arguments)]
    pub fn try_step_parallel<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        target: usize,
        lambda: f64,
        rng: &mut R,
        threads: usize,
    ) -> Result<(), PoolError> {
        let result = self.step_parallel_inner(t, model, table, target, lambda, rng, threads);
        if result.is_err() {
            self.pool = None;
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn step_parallel_inner<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        target: usize,
        lambda: f64,
        rng: &mut R,
        threads: usize,
    ) -> Result<(), PoolError> {
        let cache = model.sampler().cloned();
        let parallel_ok = threads > 1 && self.store.live.len() >= MIN_PARALLEL && cache.is_some();
        if !parallel_ok {
            self.step(t, model, table, target, lambda, rng);
            return Ok(());
        }
        let cache: Arc<SamplerCache> = cache.unwrap();
        // An uninitialized database has no live streams, so the
        // MIN_PARALLEL guard above already routed initialization through
        // the sequential step.
        debug_assert!(self.initialized);

        self.ensure_pool(threads);
        let live = self.store.live.len();
        let num_shards = self.shard_live(threads);
        let pool = self.pool.as_ref().expect("pool created above");
        if live <= target {
            // Steady state: one dispatch of the fused quit+extend pass
            // (downward adjustment is impossible no matter how the quit
            // draws fall).
            draw_seeds(&mut self.seeds, num_shards, rng);
            pool.run_shards(
                &mut self.shards[..num_shards],
                &self.seeds,
                &cache,
                ShardTask::QuitExtend { lambda },
            )?;
        } else {
            // Two-phase parallel downward adjustment. Pass 1: quit draws
            // plus one Efraimidis–Spirakis key per survivor, per shard.
            draw_seeds(&mut self.seeds, num_shards, rng);
            pool.run_shards(
                &mut self.shards[..num_shards],
                &self.seeds,
                &cache,
                ShardTask::QuitKeys { lambda },
            )?;
            // Global top-`excess` cut over all shards' keys on the caller.
            let survivors: usize = self.shards[..num_shards].iter().map(|s| s.cols.len()).sum();
            let excess = survivors.saturating_sub(target);
            if excess > 0 {
                self.keyed.clear();
                for (si, shard) in self.shards[..num_shards].iter().enumerate() {
                    debug_assert_eq!(shard.keys.len(), shard.cols.len());
                    for (pos, &key) in shard.keys.iter().enumerate() {
                        self.keyed.push((key, si as u32, pos as u32));
                    }
                }
                if excess < self.keyed.len() {
                    self.keyed.select_nth_unstable_by(excess - 1, cmp_keys_desc);
                }
                for &(_, si, pos) in &self.keyed[..excess] {
                    self.shards[si as usize].victims.push(pos);
                }
                for shard in &mut self.shards[..num_shards] {
                    // Descending, so the workers' `swap_remove`s stay valid.
                    shard.victims.sort_unstable_by(|a, b| b.cmp(a));
                }
            }
            // Pass 2: workers retire their victims and extend the rest.
            draw_seeds(&mut self.seeds, num_shards, rng);
            pool.run_shards(
                &mut self.shards[..num_shards],
                &self.seeds,
                &cache,
                ShardTask::RetireExtend,
            )?;
        }
        self.merge_shards(num_shards);

        // Phase 2b: upward size adjustment, on the pool. The enter draws
        // stay sequential on the caller (identical RNG consumption to the
        // sequential spawn at every thread count); only the column
        // appends move to the workers.
        if self.store.live.len() < target {
            let missing = target - self.store.live.len();
            self.spawn_pooled(t, &cache, missing, rng)?;
        }
        Ok(())
    }

    /// Pooled upward adjustment: draw `missing` enter cells sequentially
    /// into the reused buffer — bit-for-bit the RNG consumption of the
    /// sequential [`Self::spawn`] — then split the draws into contiguous
    /// shard ranges with contiguous id ranges and run the row appends as
    /// a [`ShardTask::Spawn`] pass. Merging in shard order restores draw
    /// order, so the resulting store is identical to a sequential spawn
    /// regardless of thread count.
    fn spawn_pooled<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        cache: &Arc<SamplerCache>,
        missing: usize,
        rng: &mut R,
    ) -> Result<(), PoolError> {
        self.spawn_cells.clear();
        self.spawn_cells.extend((0..missing).map(|_| cache.sample_enter(rng)));
        let threads = self.pool.as_ref().expect("pool created above").threads();
        let chunk_len = missing.div_ceil(threads).max(1);
        let num_shards = missing.div_ceil(chunk_len);
        if self.shards.len() < num_shards {
            self.shards.resize_with(num_shards, ShardState::default);
        }
        for (k, shard) in self.shards[..num_shards].iter_mut().enumerate() {
            let lo = k * chunk_len;
            let hi = (lo + chunk_len).min(missing);
            debug_assert!(shard.cols.is_empty(), "shards merged before spawn");
            shard.spawn_cells.clear();
            shard.spawn_cells.extend_from_slice(&self.spawn_cells[lo..hi]);
            shard.spawn_base = self.next_id + lo as u64;
        }
        self.next_id += missing as u64;
        // The spawn pass uses no worker randomness, so no per-shard seeds
        // are drawn — the caller's RNG stream stays identical to the
        // sequential spawn's.
        self.seeds.clear();
        self.seeds.resize(num_shards, 0);
        let pool = self.pool.as_ref().expect("pool created above");
        pool.run_shards(
            &mut self.shards[..num_shards],
            &self.seeds,
            cache,
            ShardTask::Spawn { t },
        )?;
        for shard in &mut self.shards[..num_shards] {
            self.store.live.append(&mut shard.cols);
        }
        Ok(())
    }

    /// Create or resize the persistent pool for `threads` workers.
    fn ensure_pool(&mut self, threads: usize) {
        match &self.pool {
            Some(pool) if pool.threads() == threads => {}
            _ => self.pool = Some(SynthesisPool::new(threads)),
        }
    }

    /// Copy the live columns into disjoint fixed-size shard ranges
    /// (buffers reused across steps); returns the shard count.
    fn shard_live(&mut self, threads: usize) -> usize {
        let n = self.store.live.len();
        debug_assert!(n < u32::MAX as usize, "positions are u32");
        let chunk_len = n.div_ceil(threads).max(1);
        let num_shards = n.div_ceil(chunk_len);
        if self.shards.len() < num_shards {
            self.shards.resize_with(num_shards, ShardState::default);
        }
        for (k, shard) in self.shards[..num_shards].iter_mut().enumerate() {
            let lo = k * chunk_len;
            let hi = (lo + chunk_len).min(n);
            shard.cols.clear();
            shard.cols.extend_from_range(&self.store.live, lo, hi);
        }
        self.store.live.clear();
        num_shards
    }

    /// Re-assemble shard results in shard order: each shard's tail buffer
    /// relocates to the end of the shared arena and the survivors' links
    /// gain the shard's base offset (every live row extends exactly once
    /// per extending pass, so appended nodes' `prev` pointers are pre-pass
    /// global addresses and only the live links need rebasing); survivor
    /// columns append back onto `live`, per-shard finished columns onto
    /// the store's finished region (id-sorted once at [`Self::finish`]).
    /// Every buffer keeps its capacity for the next step.
    fn merge_shards(&mut self, num_shards: usize) {
        for shard in &mut self.shards[..num_shards] {
            let base = self.store.tail.len() as Addr;
            self.store.tail.extend_from_slice(&shard.appended);
            shard.appended.clear();
            if base > 0 {
                for link in &mut shard.cols.links {
                    *link += base;
                }
            }
            self.store.live.append(&mut shard.cols);
            self.store.finished.append(&mut shard.finished);
        }
    }

    fn spawn<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        cache: Option<&SamplerCache>,
        count: usize,
        rng: &mut R,
    ) {
        match cache {
            Some(cache) => {
                for _ in 0..count {
                    let cell = cache.sample_enter(rng);
                    self.store.spawn(self.next_id, t, cell);
                    self.next_id += 1;
                }
            }
            None => {
                let enter_dist = model.enter_distribution(table);
                for _ in 0..count {
                    let cell = CellId(sample_weighted(&enter_dist, rng) as u32);
                    self.store.spawn(self.next_id, t, cell);
                    self.next_id += 1;
                }
            }
        }
    }

    /// Borrow the current synthetic database as a read-only per-timestamp
    /// view covering `0..horizon` — the streaming release surface.
    /// Zero-copy: the view walks the live head columns, the finished
    /// region and the tail arena in place.
    pub fn snapshot(&self, horizon: u64) -> SnapshotView<'_> {
        self.store.snapshot(horizon)
    }

    /// Close all live streams and assemble the released synthetic
    /// database: one id-sorted columnar [`GriddedDataset`] built straight
    /// from the store — no per-stream `Vec` copies (the store's cells move
    /// into the dataset).
    ///
    /// Non-consuming: afterwards the database is reset to a fresh,
    /// uninitialized session (ids restart at 0) while the worker pool and
    /// every scratch buffer keep their capacity, so a long-lived service
    /// can release one stream and immediately begin the next.
    pub fn release<S: Space>(&mut self, space: S, horizon: u64) -> GriddedDataset {
        let store = std::mem::take(&mut self.store);
        self.initialized = false;
        self.next_id = 0;
        store.into_dataset(space, horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrasyn_geo::{Grid, TransitionState};

    fn setup() -> (Grid, TransitionTable, GlobalMobilityModel) {
        let grid = Grid::unit(4);
        let table = TransitionTable::new(&grid);
        let model = GlobalMobilityModel::new(table.len());
        (grid, table, model)
    }

    /// Model where everyone enters at (0,0), marches right, and quits at
    /// the east edge.
    fn eastward_model(grid: &Grid, table: &TransitionTable) -> GlobalMobilityModel {
        let mut est = vec![0.0; table.len()];
        est[table.enter_index(grid.cell_at(0, 0))] = 1.0;
        for y in 0..4 {
            for x in 0..4 {
                let from = grid.cell_at(x, y);
                if x + 1 < 4 {
                    let to = grid.cell_at(x + 1, y);
                    let idx = table.index_of(TransitionState::Move { from, to }).unwrap();
                    est[idx] = 0.5;
                } else {
                    est[table.quit_index(from)] = 0.5;
                }
            }
        }
        let mut model = GlobalMobilityModel::new(table.len());
        model.replace_all(&est);
        model
    }

    /// Same model with the alias sampler cache built.
    fn eastward_model_cached(grid: &Grid, table: &TransitionTable) -> GlobalMobilityModel {
        let mut model = eastward_model(grid, table);
        model.rebuild_samplers(table);
        model
    }

    #[test]
    fn initialization_spawns_target_from_enter_dist() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(1);
        db.step(0, &model, &table, 50, 10.0, &mut rng);
        assert_eq!(db.active_count(), 50);
        let released = db.release(&grid, 1);
        for s in released.iter() {
            assert_eq!(s.first_cell(), grid.cell_at(0, 0));
            assert_eq!(s.start, 0);
        }
    }

    #[test]
    fn initialization_spawns_from_cached_enter_dist() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(1);
        db.step(0, &model, &table, 50, 10.0, &mut rng);
        assert_eq!(db.active_count(), 50);
        let released = db.release(&grid, 1);
        for s in released.iter() {
            assert_eq!(s.first_cell(), grid.cell_at(0, 0));
        }
    }

    #[test]
    fn size_adjustment_matches_target_exactly() {
        let (grid, table, _) = setup();
        for cached in [false, true] {
            let model = if cached {
                eastward_model_cached(&grid, &table)
            } else {
                eastward_model(&grid, &table)
            };
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(2);
            db.step(0, &model, &table, 30, 100.0, &mut rng);
            for (t, target) in [(1u64, 45usize), (2, 10), (3, 10), (4, 60), (5, 0), (6, 5)] {
                db.step(t, &model, &table, target, 100.0, &mut rng);
                assert_eq!(db.active_count(), target, "cached={cached} t={t}");
            }
        }
    }

    #[test]
    fn streams_follow_movement_distribution() {
        let (grid, table, _) = setup();
        for cached in [false, true] {
            let model = if cached {
                eastward_model_cached(&grid, &table)
            } else {
                eastward_model(&grid, &table)
            };
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(3);
            for t in 0..4 {
                db.step(t, &model, &table, 40, 1000.0, &mut rng);
            }
            let released = db.release(&grid, 4);
            // Every move in every stream is rightward (the only nonzero
            // moves).
            for s in released.iter() {
                for w in s.cells.windows(2) {
                    let (ax, ay) = grid.cell_xy(w[0]);
                    let (bx, by) = grid.cell_xy(w[1]);
                    assert_eq!(by, ay, "cached={cached}");
                    assert_eq!(bx, ax + 1, "cached={cached}");
                }
            }
        }
    }

    #[test]
    fn eq8_no_quitting_when_lambda_huge() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(4);
        db.step(0, &model, &table, 20, 1e12, &mut rng);
        db.step(1, &model, &table, 20, 1e12, &mut rng);
        // With lambda -> inf nothing quits naturally, and target is stable,
        // so no stream finished.
        assert_eq!(db.finished_count(), 0);
    }

    #[test]
    fn eq8_short_lambda_terminates_streams() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(5);
        for t in 0..10 {
            db.step(t, &model, &table, 50, 1.0, &mut rng);
        }
        // lambda = 1 makes quitting aggressive once streams hit the east
        // edge; finished streams accumulate while size stays on target.
        assert!(db.finished_count() > 0);
        assert_eq!(db.active_count(), 50);
    }

    #[test]
    fn no_eq_mode_never_terminates_and_keeps_size() {
        let (grid, table, model) = setup();
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(6);
        for t in 0..20 {
            db.step_no_eq(t, &model, &table, 25, &mut rng);
        }
        assert_eq!(db.active_count(), 25);
        assert_eq!(db.finished_count(), 0);
        let released = db.release(&grid, 20);
        for s in released.iter() {
            assert_eq!(s.len(), 20);
            assert_eq!(s.start, 0);
        }
    }

    #[test]
    fn uninformed_model_still_synthesizes_adjacent_moves() {
        let (grid, table, mut model) = setup();
        // Build the cache for the all-zero model: uniform fallbacks.
        model.rebuild_samplers(&table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(7);
        for t in 0..6 {
            db.step(t, &model, &table, 15, 10.0, &mut rng);
        }
        let released = db.release(&grid, 6);
        for s in released.iter() {
            for w in s.cells.windows(2) {
                assert!(grid.are_adjacent(w[0], w[1]));
            }
        }
    }

    #[test]
    fn finish_produces_sorted_complete_dataset() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(8);
        for t in 0..5 {
            db.step(t, &model, &table, 10, 2.0, &mut rng);
        }
        let total_streams = db.finished_count() + db.active_count();
        let released = db.release(&grid, 5);
        assert_eq!(released.num_streams(), total_streams);
        assert_eq!(released.horizon(), 5);
        let ids: Vec<u64> = released.iter().map(|s| s.id).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn parallel_step_keeps_invariants() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(12);
        // Large enough to cross the parallel threshold.
        db.step_parallel(0, &model, &table, 4000, 50.0, &mut rng, 2);
        for (t, target) in [(1u64, 4000usize), (2, 3500), (3, 4200), (4, 100)] {
            db.step_parallel(t, &model, &table, target, 50.0, &mut rng, 2);
            assert_eq!(db.active_count(), target, "t={t}");
        }
        let released = db.release(&grid, 5);
        for s in released.iter() {
            for w in s.cells.windows(2) {
                assert!(grid.are_adjacent(w[0], w[1]));
            }
        }
    }

    #[test]
    fn parallel_step_single_thread_matches_sequential() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let run = |parallel: bool| {
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(13);
            for t in 0..6 {
                if parallel {
                    db.step_parallel(t, &model, &table, 50, 10.0, &mut rng, 1);
                } else {
                    db.step(t, &model, &table, 50, 10.0, &mut rng);
                }
            }
            db.release(&grid, 6)
        };
        // threads = 1 delegates to the sequential path: identical output.
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn parallel_step_deterministic_per_seed() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let run = || {
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(14);
            for t in 0..4 {
                db.step_parallel(t, &model, &table, 3000, 50.0, &mut rng, 3);
            }
            db.release(&grid, 4)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pooled_step_reuses_one_pool_across_steps() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(15);
        for t in 0..5 {
            db.step_parallel(t, &model, &table, 5000, 50.0, &mut rng, 2);
        }
        let pool = db.pool.as_ref().expect("pool created by parallel steps");
        assert_eq!(pool.threads(), 2);
        // Changing the thread count re-creates the pool at the new size.
        db.step_parallel(5, &model, &table, 5000, 50.0, &mut rng, 4);
        assert_eq!(db.pool.as_ref().unwrap().threads(), 4);
        let released = db.release(&grid, 6);
        for s in released.iter() {
            for w in s.cells.windows(2) {
                assert!(grid.are_adjacent(w[0], w[1]));
            }
        }
    }

    #[test]
    fn reset_keeps_pool_workers_alive() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(16);
        for t in 0..3 {
            db.step_parallel(t, &model, &table, 5000, 50.0, &mut rng, 2);
        }
        let ids = db.pool.as_ref().expect("pool created").worker_ids();
        db.reset();
        assert!(db.pool.is_some(), "reset dropped the worker pool");
        let mut rng = StdRng::seed_from_u64(16);
        for t in 0..3 {
            db.step_parallel(t, &model, &table, 5000, 50.0, &mut rng, 2);
        }
        assert_eq!(
            db.pool.as_ref().unwrap().worker_ids(),
            ids,
            "reset re-spawned pool workers instead of reusing them"
        );
        let _ = db.release(&grid, 3);
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let weights = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..100 {
            assert_eq!(sample_weighted(&weights, &mut rng), 2);
        }
        // Zero mass falls back to uniform but stays in range.
        let zeros = [0.0; 5];
        for _ in 0..100 {
            assert!(sample_weighted(&zeros, &mut rng) < 5);
        }
    }
}
