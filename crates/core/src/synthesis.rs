//! Real-time trajectory synthesis (§III-D).
//!
//! The synthetic database is advanced once per timestamp in two phases:
//!
//! 1. **New point generation** — every live synthetic stream first draws a
//!    termination decision with the length-reweighted quit probability
//!    (Eq. 8); survivors extend by one cell sampled from the Markov
//!    movement distribution (Eq. 6, conditioned on not quitting).
//! 2. **Size adjustment** — the live count is matched to the real active
//!    population: missing streams enter at cells drawn from the entering
//!    distribution `E`; excess streams are terminated with probability
//!    proportional to the quitting distribution `Q` at their last location.
//!
//! The *NoEQ* mode ([`SyntheticDb::step_no_eq`]) reproduces the baselines
//! and the Table-IV ablation: a fixed-size database initialized at random
//! whose streams never terminate.

use crate::model::GlobalMobilityModel;
use rand::Rng;
use retrasyn_geo::{CellId, Grid, GriddedDataset, GriddedStream, TransitionTable};

/// A live synthetic stream.
#[derive(Debug, Clone)]
struct OpenStream {
    id: u64,
    start: u64,
    cells: Vec<CellId>,
}

/// The evolving synthetic trajectory database `T_syn`.
#[derive(Debug, Clone, Default)]
pub struct SyntheticDb {
    alive: Vec<OpenStream>,
    finished: Vec<GriddedStream>,
    next_id: u64,
    initialized: bool,
}

/// Sample an index from non-negative weights; uniform fallback when the
/// total mass is zero. Assumes `weights` is non-empty.
fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return rng.random_range(0..weights.len());
    }
    let mut pick = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if pick < w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

impl SyntheticDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live synthetic streams.
    pub fn active_count(&self) -> usize {
        self.alive.len()
    }

    /// Number of completed synthetic streams so far.
    pub fn finished_count(&self) -> usize {
        self.finished.len()
    }

    /// Per-cell occupancy of the live synthetic population (the real-time
    /// view a streaming consumer monitors; post-processing, no privacy
    /// cost).
    pub fn occupancy(&self, num_cells: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_cells];
        for s in &self.alive {
            counts[s.cells.last().expect("streams are non-empty").index()] += 1;
        }
        counts
    }

    /// Advance one timestamp with full enter/quit modelling (§III-D).
    /// `target` is the real active-stream count at `t` (known to the
    /// curator from participation metadata, not from reports).
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        target: usize,
        lambda: f64,
        rng: &mut R,
    ) {
        if !self.initialized {
            // Initialization of T_syn (Alg. 1 line 5): spawn `target`
            // streams from the entering distribution.
            self.spawn(t, model, table, target, rng);
            self.initialized = true;
            return;
        }
        // Phase 1a: natural termination via Eq. 8.
        let mut survivors = Vec::with_capacity(self.alive.len());
        for stream in self.alive.drain(..) {
            let from = *stream.cells.last().unwrap();
            let q = model.quit_prob(table, from, stream.cells.len() as u64, lambda);
            if rng.random::<f64>() < q {
                Self::retire(&mut self.finished, stream);
            } else {
                survivors.push(stream);
            }
        }
        self.alive = survivors;
        // Phase 2a: size adjustment downward *before* extension, so the
        // terminated streams end at their `t−1` location (Pr(quit | c_last)
        // = Pr(q_j), §III-D). Weighted sampling without replacement in one
        // pass (Efraimidis–Spirakis keys: u^{1/w}, keep the `excess`
        // largest).
        if self.alive.len() > target {
            let quit_dist = model.quit_distribution(table);
            let excess = self.alive.len() - target;
            let mut keyed: Vec<(f64, usize)> = self
                .alive
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let w = quit_dist[s.cells.last().unwrap().index()].max(1e-12);
                    let u: f64 = rng.random::<f64>();
                    (u.powf(1.0 / w), i)
                })
                .collect();
            keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let mut victims: Vec<usize> = keyed[..excess].iter().map(|&(_, i)| i).collect();
            // Remove from the back so indices stay valid.
            victims.sort_unstable_by(|a, b| b.cmp(a));
            for v in victims {
                let stream = self.alive.swap_remove(v);
                Self::retire(&mut self.finished, stream);
            }
        }
        // Phase 1b: extension — survivors move to a neighbor drawn from the
        // movement distribution conditioned on not quitting.
        for stream in &mut self.alive {
            let from = *stream.cells.last().unwrap();
            let probs = model.move_probs(table, from);
            let pos = sample_weighted(&probs, rng);
            stream.cells.push(table.move_targets(from)[pos]);
        }
        // Phase 2b: size adjustment upward via the entering distribution.
        if self.alive.len() < target {
            let missing = target - self.alive.len();
            self.spawn(t, model, table, missing, rng);
        }
    }

    /// Advance one timestamp in NoEQ / baseline mode: fixed size
    /// (`init_size` at the first call), random initialization, no
    /// termination, no size adjustment.
    pub fn step_no_eq<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        grid: &Grid,
        init_size: usize,
        rng: &mut R,
    ) {
        if !self.initialized {
            let cells = grid.num_cells() as u16;
            for _ in 0..init_size {
                self.alive.push(OpenStream {
                    id: self.next_id,
                    start: t,
                    cells: vec![CellId(rng.random_range(0..cells))],
                });
                self.next_id += 1;
            }
            self.initialized = true;
            return;
        }
        for stream in &mut self.alive {
            let from = *stream.cells.last().unwrap();
            let probs = model.move_probs(table, from);
            let pos = sample_weighted(&probs, rng);
            stream.cells.push(table.move_targets(from)[pos]);
        }
    }

    /// Parallel variant of [`Self::step`] — the acceleration the paper
    /// names as future work (§VII: "study acceleration techniques (e.g.,
    /// parallel computing)"). Semantically identical invariants (exact
    /// size tracking, adjacency); the random stream differs from the
    /// sequential path but is deterministic for a fixed `(seed, threads)`.
    /// Falls back to the sequential step for small databases where thread
    /// startup dominates.
    #[allow(clippy::too_many_arguments)]
    pub fn step_parallel<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        target: usize,
        lambda: f64,
        rng: &mut R,
        threads: usize,
    ) {
        const MIN_PARALLEL: usize = 2048;
        if threads <= 1 || self.alive.len() < MIN_PARALLEL {
            return self.step(t, model, table, target, lambda, rng);
        }
        if !self.initialized {
            self.spawn(t, model, table, target, rng);
            self.initialized = true;
            return;
        }
        use rand::SeedableRng;
        let chunk_len = self.alive.len().div_ceil(threads);

        // Phase 1a (parallel): quit decisions.
        let quit_flags: Vec<bool> = {
            let chunks: Vec<&[OpenStream]> = self.alive.chunks(chunk_len).collect();
            let seeds: Vec<u64> = chunks.iter().map(|_| rng.random()).collect();
            let mut flags: Vec<Vec<bool>> = Vec::with_capacity(chunks.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .iter()
                    .zip(&seeds)
                    .map(|(chunk, &seed)| {
                        scope.spawn(move || {
                            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                            chunk
                                .iter()
                                .map(|s| {
                                    let from = *s.cells.last().unwrap();
                                    let q = model.quit_prob(
                                        table,
                                        from,
                                        s.cells.len() as u64,
                                        lambda,
                                    );
                                    rng.random::<f64>() < q
                                })
                                .collect::<Vec<bool>>()
                        })
                    })
                    .collect();
                for h in handles {
                    flags.push(h.join().expect("synthesis worker panicked"));
                }
            });
            flags.concat()
        };
        let mut survivors = Vec::with_capacity(self.alive.len());
        for (stream, quit) in self.alive.drain(..).zip(quit_flags) {
            if quit {
                Self::retire(&mut self.finished, stream);
            } else {
                survivors.push(stream);
            }
        }
        self.alive = survivors;

        // Phase 2a (sequential; rarely large): downward size adjustment.
        if self.alive.len() > target {
            let quit_dist = model.quit_distribution(table);
            let excess = self.alive.len() - target;
            let mut keyed: Vec<(f64, usize)> = self
                .alive
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let w = quit_dist[s.cells.last().unwrap().index()].max(1e-12);
                    let u: f64 = rng.random::<f64>();
                    (u.powf(1.0 / w), i)
                })
                .collect();
            keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let mut victims: Vec<usize> = keyed[..excess].iter().map(|&(_, i)| i).collect();
            victims.sort_unstable_by(|a, b| b.cmp(a));
            for v in victims {
                let stream = self.alive.swap_remove(v);
                Self::retire(&mut self.finished, stream);
            }
        }

        // Phase 1b (parallel): extension.
        {
            let chunk_len = self.alive.len().div_ceil(threads).max(1);
            let seeds: Vec<u64> =
                (0..self.alive.len().div_ceil(chunk_len)).map(|_| rng.random()).collect();
            std::thread::scope(|scope| {
                for (chunk, &seed) in self.alive.chunks_mut(chunk_len).zip(&seeds) {
                    scope.spawn(move || {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                        for stream in chunk {
                            let from = *stream.cells.last().unwrap();
                            let probs = model.move_probs(table, from);
                            let pos = sample_weighted(&probs, &mut rng);
                            stream.cells.push(table.move_targets(from)[pos]);
                        }
                    });
                }
            });
        }

        // Phase 2b: upward size adjustment.
        if self.alive.len() < target {
            let missing = target - self.alive.len();
            self.spawn(t, model, table, missing, rng);
        }
    }

    fn spawn<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        count: usize,
        rng: &mut R,
    ) {
        let enter_dist = model.enter_distribution(table);
        for _ in 0..count {
            let cell = CellId(sample_weighted(&enter_dist, rng) as u16);
            self.alive.push(OpenStream { id: self.next_id, start: t, cells: vec![cell] });
            self.next_id += 1;
        }
    }

    fn retire(finished: &mut Vec<GriddedStream>, stream: OpenStream) {
        finished.push(GriddedStream { id: stream.id, start: stream.start, cells: stream.cells });
    }

    /// Close all live streams and assemble the released synthetic database.
    pub fn finish(mut self, grid: &Grid, horizon: u64) -> GriddedDataset {
        for stream in self.alive.drain(..) {
            Self::retire(&mut self.finished, stream);
        }
        self.finished.sort_by_key(|s| s.id);
        GriddedDataset::from_streams(grid.clone(), self.finished, horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrasyn_geo::{Grid, TransitionState};

    fn setup() -> (Grid, TransitionTable, GlobalMobilityModel) {
        let grid = Grid::unit(4);
        let table = TransitionTable::new(&grid);
        let model = GlobalMobilityModel::new(table.len());
        (grid, table, model)
    }

    /// Model where everyone enters at (0,0), marches right, and quits at
    /// the east edge.
    fn eastward_model(grid: &Grid, table: &TransitionTable) -> GlobalMobilityModel {
        let mut est = vec![0.0; table.len()];
        est[table.enter_index(grid.cell_at(0, 0))] = 1.0;
        for y in 0..4 {
            for x in 0..4 {
                let from = grid.cell_at(x, y);
                if x + 1 < 4 {
                    let to = grid.cell_at(x + 1, y);
                    let idx = table.index_of(TransitionState::Move { from, to }).unwrap();
                    est[idx] = 0.5;
                } else {
                    est[table.quit_index(from)] = 0.5;
                }
            }
        }
        let mut model = GlobalMobilityModel::new(table.len());
        model.replace_all(&est);
        model
    }

    #[test]
    fn initialization_spawns_target_from_enter_dist() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(1);
        db.step(0, &model, &table, 50, 10.0, &mut rng);
        assert_eq!(db.active_count(), 50);
        let released = db.finish(&grid, 1);
        for s in released.streams() {
            assert_eq!(s.first_cell(), grid.cell_at(0, 0));
            assert_eq!(s.start, 0);
        }
    }

    #[test]
    fn size_adjustment_matches_target_exactly() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(2);
        db.step(0, &model, &table, 30, 100.0, &mut rng);
        for (t, target) in [(1u64, 45usize), (2, 10), (3, 10), (4, 60), (5, 0), (6, 5)] {
            db.step(t, &model, &table, target, 100.0, &mut rng);
            assert_eq!(db.active_count(), target, "t={t}");
        }
    }

    #[test]
    fn streams_follow_movement_distribution() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(3);
        for t in 0..4 {
            db.step(t, &model, &table, 40, 1000.0, &mut rng);
        }
        let released = db.finish(&grid, 4);
        // Every move in every stream is rightward (the only nonzero moves).
        for s in released.streams() {
            for w in s.cells.windows(2) {
                let (ax, ay) = grid.cell_xy(w[0]);
                let (bx, by) = grid.cell_xy(w[1]);
                assert_eq!(by, ay);
                assert_eq!(bx, ax + 1);
            }
        }
    }

    #[test]
    fn eq8_no_quitting_when_lambda_huge() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(4);
        db.step(0, &model, &table, 20, 1e12, &mut rng);
        db.step(1, &model, &table, 20, 1e12, &mut rng);
        // With lambda -> inf nothing quits naturally, and target is stable,
        // so no stream finished.
        assert_eq!(db.finished_count(), 0);
    }

    #[test]
    fn eq8_short_lambda_terminates_streams() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(5);
        for t in 0..10 {
            db.step(t, &model, &table, 50, 1.0, &mut rng);
        }
        // lambda = 1 makes quitting aggressive once streams hit the east
        // edge; finished streams accumulate while size stays on target.
        assert!(db.finished_count() > 0);
        assert_eq!(db.active_count(), 50);
    }

    #[test]
    fn no_eq_mode_never_terminates_and_keeps_size() {
        let (grid, table, model) = setup();
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(6);
        for t in 0..20 {
            db.step_no_eq(t, &model, &table, &grid, 25, &mut rng);
        }
        assert_eq!(db.active_count(), 25);
        assert_eq!(db.finished_count(), 0);
        let released = db.finish(&grid, 20);
        for s in released.streams() {
            assert_eq!(s.len(), 20);
            assert_eq!(s.start, 0);
        }
    }

    #[test]
    fn uninformed_model_still_synthesizes_adjacent_moves() {
        let (grid, table, model) = setup();
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(7);
        for t in 0..6 {
            db.step(t, &model, &table, 15, 10.0, &mut rng);
        }
        let released = db.finish(&grid, 6);
        for s in released.streams() {
            for w in s.cells.windows(2) {
                assert!(grid.are_adjacent(w[0], w[1]));
            }
        }
    }

    #[test]
    fn finish_produces_sorted_complete_dataset() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(8);
        for t in 0..5 {
            db.step(t, &model, &table, 10, 2.0, &mut rng);
        }
        let total_streams = db.finished_count() + db.active_count();
        let released = db.finish(&grid, 5);
        assert_eq!(released.streams().len(), total_streams);
        assert_eq!(released.horizon(), 5);
        for w in released.streams().windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn parallel_step_keeps_invariants() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(12);
        // Large enough to cross the parallel threshold.
        db.step_parallel(0, &model, &table, 4000, 50.0, &mut rng, 2);
        for (t, target) in [(1u64, 4000usize), (2, 3500), (3, 4200), (4, 100)] {
            db.step_parallel(t, &model, &table, target, 50.0, &mut rng, 2);
            assert_eq!(db.active_count(), target, "t={t}");
        }
        let released = db.finish(&grid, 5);
        for s in released.streams() {
            for w in s.cells.windows(2) {
                assert!(grid.are_adjacent(w[0], w[1]));
            }
        }
    }

    #[test]
    fn parallel_step_single_thread_matches_sequential() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let run = |parallel: bool| {
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(13);
            for t in 0..6 {
                if parallel {
                    db.step_parallel(t, &model, &table, 50, 10.0, &mut rng, 1);
                } else {
                    db.step(t, &model, &table, 50, 10.0, &mut rng);
                }
            }
            db.finish(&grid, 6)
        };
        // threads = 1 delegates to the sequential path: identical output.
        assert_eq!(run(true).streams(), run(false).streams());
    }

    #[test]
    fn parallel_step_deterministic_per_seed() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let run = || {
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(14);
            for t in 0..4 {
                db.step_parallel(t, &model, &table, 3000, 50.0, &mut rng, 3);
            }
            db.finish(&grid, 4)
        };
        assert_eq!(run().streams(), run().streams());
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let weights = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..100 {
            assert_eq!(sample_weighted(&weights, &mut rng), 2);
        }
        // Zero mass falls back to uniform but stays in range.
        let zeros = [0.0; 5];
        for _ in 0..100 {
            assert!(sample_weighted(&zeros, &mut rng) < 5);
        }
    }
}
