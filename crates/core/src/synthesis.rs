//! Real-time trajectory synthesis (§III-D).
//!
//! The synthetic database is advanced once per timestamp in two phases:
//!
//! 1. **New point generation** — every live synthetic stream first draws a
//!    termination decision with the length-reweighted quit probability
//!    (Eq. 8); survivors extend by one cell sampled from the Markov
//!    movement distribution (Eq. 6, conditioned on not quitting).
//! 2. **Size adjustment** — the live count is matched to the real active
//!    population: missing streams enter at cells drawn from the entering
//!    distribution `E`; excess streams are terminated with probability
//!    proportional to the quitting distribution `Q` at their last location.
//!
//! **Hot-path cost.** When the model's [`SamplerCache`] is fresh (the
//! engine rebuilds it after every model update), each per-user decision is
//! O(1): a cached quit probability and one alias draw, with no heap
//! allocation. Without a fresh cache the code falls back to the O(k) scan
//! over a reused scratch buffer, so standalone callers that never call
//! [`GlobalMobilityModel::rebuild_samplers`] still get correct output.
//!
//! **Parallelism.** [`SyntheticDb::step_parallel`] runs the *entire* step
//! on a persistent [`SynthesisPool`] owned by the database: streams are
//! moved into per-worker shards (reused across steps), each worker runs
//! the fused quit+extend pass over its shard with a per-shard finished
//! list, and downward size adjustment is a two-phase parallel selection —
//! workers compute Efraimidis–Spirakis keys per shard, the caller makes
//! the global top-`excess` cut, workers retire their victims and extend
//! the remainder. Each shard is seeded deterministically from the caller's
//! RNG and results are re-assembled in shard order — fixed
//! `(seed, threads)` gives identical output.
//!
//! The *NoEQ* mode ([`SyntheticDb::step_no_eq`]) reproduces the baselines
//! and the Table-IV ablation: a fixed-size database initialized at random
//! whose streams never terminate.

use crate::model::GlobalMobilityModel;
use crate::pool::{draw_seeds, ShardState, ShardTask, SynthesisPool, MIN_SHRINK_WEIGHT};
use crate::sampler::{sample_weighted, SamplerCache};
use rand::Rng;
use retrasyn_geo::{CellId, Grid, GriddedDataset, GriddedStream, TransitionTable};
use std::cmp::Ordering;
use std::sync::Arc;

/// A live synthetic stream.
#[derive(Debug, Clone)]
pub(crate) struct OpenStream {
    pub(crate) id: u64,
    pub(crate) start: u64,
    pub(crate) cells: Vec<CellId>,
}

impl OpenStream {
    /// Close the stream into its released form.
    pub(crate) fn into_finished(self) -> GriddedStream {
        GriddedStream { id: self.id, start: self.start, cells: self.cells }
    }
}

/// Below this population the parallel step falls back to the sequential
/// path: dispatch overhead dominates the per-stream work.
const MIN_PARALLEL: usize = 2048;

/// Descending order over Efraimidis–Spirakis keys with a deterministic
/// `(shard, position)` tiebreak, so the global top-`excess` cut selects a
/// unique victim set regardless of `select_nth_unstable_by`'s internal
/// ordering. Keys are compared in the log domain (`ln(u)/w` rather than
/// `u^{1/w}` — the same ordering, but `u^{1/w}` underflows to exactly 0
/// for the tiny weights a large grid produces, which would silently turn
/// big one-tick shrinks into positional selection). With `u ∈ [0, 1)` and
/// `w > 0` a key is in `[−∞, 0)`: never NaN.
fn cmp_keys_desc(a: &(f64, u32, u32), b: &(f64, u32, u32)) -> Ordering {
    b.0.partial_cmp(&a.0)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.1.cmp(&b.1))
        .then_with(|| a.2.cmp(&b.2))
}

/// Extend every stream by one alias-sampled movement. Shared by the
/// sequential cached paths and the pool workers so the two can never
/// diverge.
pub(crate) fn extend_streams<R: Rng + ?Sized>(
    streams: &mut [OpenStream],
    cache: &SamplerCache,
    rng: &mut R,
) {
    for stream in streams {
        let from = *stream.cells.last().expect("streams are non-empty");
        stream.cells.push(cache.sample_move(from, rng));
    }
}

/// One in-place termination pass (Eq. 8, cached quit probabilities):
/// quitters are `swap_remove`d into `finished` (the swapped-in stream is
/// decided next, so the pass moves O(quits) elements), survivors
/// optionally extend in the same pass. Shared by the sequential cached
/// paths and the pool workers so the two can never diverge.
pub(crate) fn quit_pass<R: Rng + ?Sized>(
    streams: &mut Vec<OpenStream>,
    finished: &mut Vec<GriddedStream>,
    cache: &SamplerCache,
    lambda: f64,
    extend: bool,
    rng: &mut R,
) {
    let inv_lambda = 1.0 / lambda;
    let mut i = 0;
    while i < streams.len() {
        let stream = &mut streams[i];
        let from = *stream.cells.last().expect("streams are non-empty");
        let q = stream.cells.len() as f64 * inv_lambda * cache.base_quit_prob(from);
        if rng.random::<f64>() >= q {
            if extend {
                stream.cells.push(cache.sample_move(from, rng));
            }
            i += 1;
        } else {
            let quitter = streams.swap_remove(i);
            finished.push(quitter.into_finished());
        }
    }
}

/// The evolving synthetic trajectory database `T_syn`.
#[derive(Debug, Default)]
pub struct SyntheticDb {
    alive: Vec<OpenStream>,
    finished: Vec<GriddedStream>,
    next_id: u64,
    initialized: bool,
    /// Persistent worker pool, created lazily on the first parallel step.
    pool: Option<SynthesisPool>,
    /// Reused per-worker shard states (stream, finished, key and victim
    /// buffers all keep their capacity across steps).
    shards: Vec<ShardState>,
    /// Reused per-shard seed buffer.
    seeds: Vec<u64>,
    /// Reused O(k) probability buffer for the scan fallback.
    scan_buf: Vec<f64>,
    /// Reused `(key, shard, position)` buffer for the shrink cut.
    keyed: Vec<(f64, u32, u32)>,
    /// Reused victim-position buffer for the sequential shrink path.
    victims: Vec<u32>,
}

impl Clone for SyntheticDb {
    fn clone(&self) -> Self {
        // Worker pools are not cloneable state: the clone re-creates its
        // own lazily on the first parallel step.
        SyntheticDb {
            alive: self.alive.clone(),
            finished: self.finished.clone(),
            next_id: self.next_id,
            initialized: self.initialized,
            pool: None,
            shards: Vec::new(),
            seeds: Vec::new(),
            scan_buf: Vec::new(),
            keyed: Vec::new(),
            victims: Vec::new(),
        }
    }
}

impl SyntheticDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live synthetic streams.
    pub fn active_count(&self) -> usize {
        self.alive.len()
    }

    /// Number of completed synthetic streams so far.
    pub fn finished_count(&self) -> usize {
        self.finished.len()
    }

    /// Per-cell occupancy of the live synthetic population (the real-time
    /// view a streaming consumer monitors; post-processing, no privacy
    /// cost).
    pub fn occupancy(&self, num_cells: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_cells];
        for s in &self.alive {
            counts[s.cells.last().expect("streams are non-empty").index()] += 1;
        }
        counts
    }

    /// Advance one timestamp with full enter/quit modelling (§III-D).
    /// `target` is the real active-stream count at `t` (known to the
    /// curator from participation metadata, not from reports).
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        target: usize,
        lambda: f64,
        rng: &mut R,
    ) {
        let cache = model.sampler().cloned();
        if !self.initialized {
            // Initialization of T_syn (Alg. 1 line 5): spawn `target`
            // streams from the entering distribution.
            self.spawn(t, model, table, cache.as_deref(), target, rng);
            self.initialized = true;
            return;
        }
        if self.alive.len() <= target {
            // Fast path (the steady state: the population is not
            // shrinking, so downward adjustment is impossible no matter
            // how the quit draws fall): termination and extension fuse
            // into ONE compacting pass — per stream, one cached quit
            // probability, one alias draw, zero allocations.
            self.quit_and_extend_fused(model, table, cache.as_deref(), lambda, rng);
        } else {
            // Phase 1a: natural termination via Eq. 8.
            self.quit_phase(model, table, cache.as_deref(), lambda, rng);
            // Phase 2a: size adjustment downward *before* extension, so
            // the terminated streams end at their `t−1` location.
            self.shrink_to_target(model, table, cache.as_deref(), target, rng);
            // Phase 1b: extension — survivors move to a neighbor drawn
            // from the movement distribution conditioned on not quitting.
            self.extend_all(model, table, cache.as_deref(), rng);
        }
        // Phase 2b: size adjustment upward via the entering distribution.
        if self.alive.len() < target {
            let missing = target - self.alive.len();
            self.spawn(t, model, table, cache.as_deref(), missing, rng);
        }
    }

    /// Fused phases 1a + 1b for steps that cannot shrink: decide
    /// termination and extend survivors in a single in-place pass. Only
    /// valid when no downward size adjustment can occur
    /// (`alive.len() <= target` before the quit draws).
    ///
    /// Survivors stay in place; a quitter is `swap_remove`d and the stream
    /// swapped into its slot is decided next, so the pass moves O(quits)
    /// elements instead of compacting all n. The draw order is a
    /// deterministic function of the quit pattern — identical for a fixed
    /// seed.
    fn quit_and_extend_fused<R: Rng + ?Sized>(
        &mut self,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        cache: Option<&SamplerCache>,
        lambda: f64,
        rng: &mut R,
    ) {
        match cache {
            Some(cache) => {
                quit_pass(&mut self.alive, &mut self.finished, cache, lambda, true, rng);
            }
            None => {
                let mut buf = std::mem::take(&mut self.scan_buf);
                let mut i = 0;
                while i < self.alive.len() {
                    let from = *self.alive[i].cells.last().unwrap();
                    let len = self.alive[i].cells.len() as u64;
                    let q = model.quit_prob(table, from, len, lambda);
                    if rng.random::<f64>() >= q {
                        model.move_probs_into(table, from, &mut buf);
                        let pos = sample_weighted(&buf, rng);
                        self.alive[i].cells.push(table.move_targets(from)[pos]);
                        i += 1;
                    } else {
                        let quitter = self.alive.swap_remove(i);
                        Self::retire(&mut self.finished, quitter);
                    }
                }
                self.scan_buf = buf;
            }
        }
    }

    /// Phase 1b: extend every live stream by one movement draw.
    fn extend_all<R: Rng + ?Sized>(
        &mut self,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        cache: Option<&SamplerCache>,
        rng: &mut R,
    ) {
        match cache {
            Some(cache) => extend_streams(&mut self.alive, cache, rng),
            None => {
                let mut buf = std::mem::take(&mut self.scan_buf);
                for stream in &mut self.alive {
                    let from = *stream.cells.last().unwrap();
                    model.move_probs_into(table, from, &mut buf);
                    let pos = sample_weighted(&buf, rng);
                    stream.cells.push(table.move_targets(from)[pos]);
                }
                self.scan_buf = buf;
            }
        }
    }

    /// Phase 1a: draw per-stream termination decisions and retire quitters.
    ///
    /// One in-place pass moving O(quits) elements: survivors stay put, a
    /// quitter is `swap_remove`d and the swapped-in stream decided next —
    /// deterministic for a fixed seed, no per-step allocation.
    fn quit_phase<R: Rng + ?Sized>(
        &mut self,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        cache: Option<&SamplerCache>,
        lambda: f64,
        rng: &mut R,
    ) {
        if let Some(cache) = cache {
            return quit_pass(&mut self.alive, &mut self.finished, cache, lambda, false, rng);
        }
        let mut i = 0;
        while i < self.alive.len() {
            let from = *self.alive[i].cells.last().unwrap();
            let len = self.alive[i].cells.len() as u64;
            let q = model.quit_prob(table, from, len, lambda);
            if rng.random::<f64>() >= q {
                i += 1;
            } else {
                let quitter = self.alive.swap_remove(i);
                Self::retire(&mut self.finished, quitter);
            }
        }
    }

    /// Phase 2a: weighted sampling without replacement of `excess` victims
    /// (Efraimidis–Spirakis keys `u^{1/w}`, keep the largest), retiring
    /// them at their `t−1` location with probability proportional to the
    /// quitting distribution.
    ///
    /// With a fresh cache the per-stream weight is an O(1) lookup into the
    /// cached quitting distribution; only the cold fallback allocates the
    /// O(cells) vector. Victim selection is a partial
    /// `select_nth_unstable_by` — only the `excess` largest keys are
    /// needed, not a full sort.
    fn shrink_to_target<R: Rng + ?Sized>(
        &mut self,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        cache: Option<&SamplerCache>,
        target: usize,
        rng: &mut R,
    ) {
        if self.alive.len() <= target {
            return;
        }
        let excess = self.alive.len() - target;
        self.keyed.clear();
        match cache {
            Some(cache) => {
                for (i, s) in self.alive.iter().enumerate() {
                    let w = cache.quit_weight(*s.cells.last().unwrap()).max(MIN_SHRINK_WEIGHT);
                    let u: f64 = rng.random::<f64>();
                    self.keyed.push((u.ln() / w, 0, i as u32));
                }
            }
            None => {
                let quit_dist = model.quit_distribution(table);
                for (i, s) in self.alive.iter().enumerate() {
                    let w = quit_dist[s.cells.last().unwrap().index()].max(MIN_SHRINK_WEIGHT);
                    let u: f64 = rng.random::<f64>();
                    self.keyed.push((u.ln() / w, 0, i as u32));
                }
            }
        }
        if excess < self.keyed.len() {
            self.keyed.select_nth_unstable_by(excess - 1, cmp_keys_desc);
        }
        self.victims.clear();
        self.victims.extend(self.keyed[..excess].iter().map(|&(_, _, i)| i));
        // `swap_remove` from the highest position down: each removal moves
        // the current last element, which sits past every remaining
        // (smaller) victim position.
        self.victims.sort_unstable_by(|a, b| b.cmp(a));
        for k in 0..self.victims.len() {
            let stream = self.alive.swap_remove(self.victims[k] as usize);
            Self::retire(&mut self.finished, stream);
        }
        self.victims.clear();
    }

    /// Advance one timestamp in NoEQ / baseline mode: fixed size
    /// (`init_size` at the first call), random initialization, no
    /// termination, no size adjustment.
    pub fn step_no_eq<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        grid: &Grid,
        init_size: usize,
        rng: &mut R,
    ) {
        if !self.initialized {
            let cells = grid.num_cells() as u16;
            for _ in 0..init_size {
                self.alive.push(OpenStream {
                    id: self.next_id,
                    start: t,
                    cells: vec![CellId(rng.random_range(0..cells))],
                });
                self.next_id += 1;
            }
            self.initialized = true;
            return;
        }
        match model.sampler() {
            Some(cache) => extend_streams(&mut self.alive, cache, rng),
            None => {
                let mut buf = std::mem::take(&mut self.scan_buf);
                for stream in &mut self.alive {
                    let from = *stream.cells.last().unwrap();
                    model.move_probs_into(table, from, &mut buf);
                    let pos = sample_weighted(&buf, rng);
                    stream.cells.push(table.move_targets(from)[pos]);
                }
                self.scan_buf = buf;
            }
        }
    }

    /// Parallel variant of [`Self::step`] — the acceleration the paper
    /// names as future work (§VII: "study acceleration techniques (e.g.,
    /// parallel computing)").
    ///
    /// The *entire* step runs on a persistent worker pool owned by this
    /// database (created on first use, re-created if `threads` changes):
    ///
    /// - steady state (no shrink possible): one dispatch of the fused
    ///   quit+extend pass; quitters retire into per-shard finished lists;
    /// - shrinking: two dispatches — workers draw quits and compute one
    ///   Efraimidis–Spirakis key per survivor, the caller makes the global
    ///   top-`excess` cut across all shards, then workers retire their
    ///   victims and extend the remainder.
    ///
    /// Semantically identical invariants to [`Self::step`] (exact size
    /// tracking, adjacency, identical per-stream decision distributions);
    /// the random stream differs from the sequential path but is
    /// deterministic for a fixed `(seed, threads)`. Falls back to the
    /// sequential step for small databases where dispatch overhead
    /// dominates, and whenever the model has no fresh [`SamplerCache`]
    /// (workers sample exclusively through the cache snapshot).
    #[allow(clippy::too_many_arguments)]
    pub fn step_parallel<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        target: usize,
        lambda: f64,
        rng: &mut R,
        threads: usize,
    ) {
        let cache = model.sampler().cloned();
        let parallel_ok = threads > 1 && self.alive.len() >= MIN_PARALLEL && cache.is_some();
        if !parallel_ok {
            return self.step(t, model, table, target, lambda, rng);
        }
        let cache: Arc<SamplerCache> = cache.unwrap();
        // An uninitialized database has no live streams, so the
        // MIN_PARALLEL guard above already routed initialization through
        // the sequential step.
        debug_assert!(self.initialized);

        self.ensure_pool(threads);
        let live = self.alive.len();
        let num_shards = self.shard_alive(threads);
        let pool = self.pool.as_ref().expect("pool created above");
        if live <= target {
            // Steady state: one dispatch of the fused quit+extend pass
            // (downward adjustment is impossible no matter how the quit
            // draws fall).
            draw_seeds(&mut self.seeds, num_shards, rng);
            pool.run_shards(
                &mut self.shards[..num_shards],
                &self.seeds,
                &cache,
                ShardTask::QuitExtend { lambda },
            );
        } else {
            // Two-phase parallel downward adjustment. Pass 1: quit draws
            // plus one Efraimidis–Spirakis key per survivor, per shard.
            draw_seeds(&mut self.seeds, num_shards, rng);
            pool.run_shards(
                &mut self.shards[..num_shards],
                &self.seeds,
                &cache,
                ShardTask::QuitKeys { lambda },
            );
            // Global top-`excess` cut over all shards' keys on the caller.
            let survivors: usize = self.shards[..num_shards].iter().map(|s| s.streams.len()).sum();
            let excess = survivors.saturating_sub(target);
            if excess > 0 {
                self.keyed.clear();
                for (si, shard) in self.shards[..num_shards].iter().enumerate() {
                    debug_assert_eq!(shard.keys.len(), shard.streams.len());
                    for (pos, &key) in shard.keys.iter().enumerate() {
                        self.keyed.push((key, si as u32, pos as u32));
                    }
                }
                if excess < self.keyed.len() {
                    self.keyed.select_nth_unstable_by(excess - 1, cmp_keys_desc);
                }
                for &(_, si, pos) in &self.keyed[..excess] {
                    self.shards[si as usize].victims.push(pos);
                }
                for shard in &mut self.shards[..num_shards] {
                    // Descending, so the workers' `swap_remove`s stay valid.
                    shard.victims.sort_unstable_by(|a, b| b.cmp(a));
                }
            }
            // Pass 2: workers retire their victims and extend the rest.
            draw_seeds(&mut self.seeds, num_shards, rng);
            pool.run_shards(
                &mut self.shards[..num_shards],
                &self.seeds,
                &cache,
                ShardTask::RetireExtend,
            );
        }
        self.merge_shards(num_shards);

        // Phase 2b: upward size adjustment.
        if self.alive.len() < target {
            let missing = target - self.alive.len();
            self.spawn(t, model, table, Some(&cache), missing, rng);
        }
    }

    /// The PR-1 parallelization, kept as the benchmark reference: quit
    /// draws and downward adjustment run sequentially on the caller
    /// thread; only the extension phase is dispatched to the pool. Same
    /// guards and determinism contract as [`Self::step_parallel`].
    #[allow(clippy::too_many_arguments)]
    pub fn step_parallel_extend_only<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        target: usize,
        lambda: f64,
        rng: &mut R,
        threads: usize,
    ) {
        let cache = model.sampler().cloned();
        let parallel_ok = threads > 1 && self.alive.len() >= MIN_PARALLEL && cache.is_some();
        if !parallel_ok {
            return self.step(t, model, table, target, lambda, rng);
        }
        let cache: Arc<SamplerCache> = cache.unwrap();
        // An uninitialized database has no live streams, so the
        // MIN_PARALLEL guard above already routed initialization through
        // the sequential step.
        debug_assert!(self.initialized);

        self.quit_phase(model, table, Some(&cache), lambda, rng);
        self.shrink_to_target(model, table, Some(&cache), target, rng);

        if !self.alive.is_empty() {
            self.ensure_pool(threads);
            let num_shards = self.shard_alive(threads);
            draw_seeds(&mut self.seeds, num_shards, rng);
            let pool = self.pool.as_ref().expect("pool created above");
            pool.run_shards(&mut self.shards[..num_shards], &self.seeds, &cache, ShardTask::Extend);
            self.merge_shards(num_shards);
        }

        if self.alive.len() < target {
            let missing = target - self.alive.len();
            self.spawn(t, model, table, Some(&cache), missing, rng);
        }
    }

    /// Create or resize the persistent pool for `threads` workers.
    fn ensure_pool(&mut self, threads: usize) {
        match &self.pool {
            Some(pool) if pool.threads() == threads => {}
            _ => self.pool = Some(SynthesisPool::new(threads)),
        }
    }

    /// Move the live streams into contiguous fixed-size shard prefixes
    /// (buffers reused across steps); returns the shard count.
    fn shard_alive(&mut self, threads: usize) -> usize {
        debug_assert!(self.alive.len() < u32::MAX as usize, "positions are u32");
        let chunk_len = self.alive.len().div_ceil(threads).max(1);
        let num_shards = self.alive.len().div_ceil(chunk_len);
        if self.shards.len() < num_shards {
            self.shards.resize_with(num_shards, ShardState::default);
        }
        for (i, stream) in self.alive.drain(..).enumerate() {
            self.shards[i / chunk_len].streams.push(stream);
        }
        num_shards
    }

    /// Re-assemble shard results in shard order: survivors back into
    /// `alive`, per-shard finished lists into the database's finished list
    /// (id-sorted once at [`Self::finish`]). `append` leaves every
    /// buffer's capacity in place for the next step.
    fn merge_shards(&mut self, num_shards: usize) {
        for shard in &mut self.shards[..num_shards] {
            self.alive.append(&mut shard.streams);
            self.finished.append(&mut shard.finished);
        }
    }

    fn spawn<R: Rng + ?Sized>(
        &mut self,
        t: u64,
        model: &GlobalMobilityModel,
        table: &TransitionTable,
        cache: Option<&SamplerCache>,
        count: usize,
        rng: &mut R,
    ) {
        match cache {
            Some(cache) => {
                for _ in 0..count {
                    let cell = cache.sample_enter(rng);
                    self.alive.push(OpenStream { id: self.next_id, start: t, cells: vec![cell] });
                    self.next_id += 1;
                }
            }
            None => {
                let enter_dist = model.enter_distribution(table);
                for _ in 0..count {
                    let cell = CellId(sample_weighted(&enter_dist, rng) as u16);
                    self.alive.push(OpenStream { id: self.next_id, start: t, cells: vec![cell] });
                    self.next_id += 1;
                }
            }
        }
    }

    fn retire(finished: &mut Vec<GriddedStream>, stream: OpenStream) {
        finished.push(stream.into_finished());
    }

    /// Close all live streams and assemble the released synthetic database.
    pub fn finish(mut self, grid: &Grid, horizon: u64) -> GriddedDataset {
        for stream in self.alive.drain(..) {
            Self::retire(&mut self.finished, stream);
        }
        self.finished.sort_by_key(|s| s.id);
        GriddedDataset::from_streams(grid.clone(), self.finished, horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use retrasyn_geo::{Grid, TransitionState};

    fn setup() -> (Grid, TransitionTable, GlobalMobilityModel) {
        let grid = Grid::unit(4);
        let table = TransitionTable::new(&grid);
        let model = GlobalMobilityModel::new(table.len());
        (grid, table, model)
    }

    /// Model where everyone enters at (0,0), marches right, and quits at
    /// the east edge.
    fn eastward_model(grid: &Grid, table: &TransitionTable) -> GlobalMobilityModel {
        let mut est = vec![0.0; table.len()];
        est[table.enter_index(grid.cell_at(0, 0))] = 1.0;
        for y in 0..4 {
            for x in 0..4 {
                let from = grid.cell_at(x, y);
                if x + 1 < 4 {
                    let to = grid.cell_at(x + 1, y);
                    let idx = table.index_of(TransitionState::Move { from, to }).unwrap();
                    est[idx] = 0.5;
                } else {
                    est[table.quit_index(from)] = 0.5;
                }
            }
        }
        let mut model = GlobalMobilityModel::new(table.len());
        model.replace_all(&est);
        model
    }

    /// Same model with the alias sampler cache built.
    fn eastward_model_cached(grid: &Grid, table: &TransitionTable) -> GlobalMobilityModel {
        let mut model = eastward_model(grid, table);
        model.rebuild_samplers(table);
        model
    }

    #[test]
    fn initialization_spawns_target_from_enter_dist() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(1);
        db.step(0, &model, &table, 50, 10.0, &mut rng);
        assert_eq!(db.active_count(), 50);
        let released = db.finish(&grid, 1);
        for s in released.streams() {
            assert_eq!(s.first_cell(), grid.cell_at(0, 0));
            assert_eq!(s.start, 0);
        }
    }

    #[test]
    fn initialization_spawns_from_cached_enter_dist() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(1);
        db.step(0, &model, &table, 50, 10.0, &mut rng);
        assert_eq!(db.active_count(), 50);
        let released = db.finish(&grid, 1);
        for s in released.streams() {
            assert_eq!(s.first_cell(), grid.cell_at(0, 0));
        }
    }

    #[test]
    fn size_adjustment_matches_target_exactly() {
        let (grid, table, _) = setup();
        for cached in [false, true] {
            let model = if cached {
                eastward_model_cached(&grid, &table)
            } else {
                eastward_model(&grid, &table)
            };
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(2);
            db.step(0, &model, &table, 30, 100.0, &mut rng);
            for (t, target) in [(1u64, 45usize), (2, 10), (3, 10), (4, 60), (5, 0), (6, 5)] {
                db.step(t, &model, &table, target, 100.0, &mut rng);
                assert_eq!(db.active_count(), target, "cached={cached} t={t}");
            }
        }
    }

    #[test]
    fn streams_follow_movement_distribution() {
        let (grid, table, _) = setup();
        for cached in [false, true] {
            let model = if cached {
                eastward_model_cached(&grid, &table)
            } else {
                eastward_model(&grid, &table)
            };
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(3);
            for t in 0..4 {
                db.step(t, &model, &table, 40, 1000.0, &mut rng);
            }
            let released = db.finish(&grid, 4);
            // Every move in every stream is rightward (the only nonzero
            // moves).
            for s in released.streams() {
                for w in s.cells.windows(2) {
                    let (ax, ay) = grid.cell_xy(w[0]);
                    let (bx, by) = grid.cell_xy(w[1]);
                    assert_eq!(by, ay, "cached={cached}");
                    assert_eq!(bx, ax + 1, "cached={cached}");
                }
            }
        }
    }

    #[test]
    fn eq8_no_quitting_when_lambda_huge() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(4);
        db.step(0, &model, &table, 20, 1e12, &mut rng);
        db.step(1, &model, &table, 20, 1e12, &mut rng);
        // With lambda -> inf nothing quits naturally, and target is stable,
        // so no stream finished.
        assert_eq!(db.finished_count(), 0);
    }

    #[test]
    fn eq8_short_lambda_terminates_streams() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(5);
        for t in 0..10 {
            db.step(t, &model, &table, 50, 1.0, &mut rng);
        }
        // lambda = 1 makes quitting aggressive once streams hit the east
        // edge; finished streams accumulate while size stays on target.
        assert!(db.finished_count() > 0);
        assert_eq!(db.active_count(), 50);
    }

    #[test]
    fn no_eq_mode_never_terminates_and_keeps_size() {
        let (grid, table, model) = setup();
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(6);
        for t in 0..20 {
            db.step_no_eq(t, &model, &table, &grid, 25, &mut rng);
        }
        assert_eq!(db.active_count(), 25);
        assert_eq!(db.finished_count(), 0);
        let released = db.finish(&grid, 20);
        for s in released.streams() {
            assert_eq!(s.len(), 20);
            assert_eq!(s.start, 0);
        }
    }

    #[test]
    fn uninformed_model_still_synthesizes_adjacent_moves() {
        let (grid, table, mut model) = setup();
        // Build the cache for the all-zero model: uniform fallbacks.
        model.rebuild_samplers(&table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(7);
        for t in 0..6 {
            db.step(t, &model, &table, 15, 10.0, &mut rng);
        }
        let released = db.finish(&grid, 6);
        for s in released.streams() {
            for w in s.cells.windows(2) {
                assert!(grid.are_adjacent(w[0], w[1]));
            }
        }
    }

    #[test]
    fn finish_produces_sorted_complete_dataset() {
        let (grid, table, _) = setup();
        let model = eastward_model(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(8);
        for t in 0..5 {
            db.step(t, &model, &table, 10, 2.0, &mut rng);
        }
        let total_streams = db.finished_count() + db.active_count();
        let released = db.finish(&grid, 5);
        assert_eq!(released.streams().len(), total_streams);
        assert_eq!(released.horizon(), 5);
        for w in released.streams().windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn parallel_step_keeps_invariants() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(12);
        // Large enough to cross the parallel threshold.
        db.step_parallel(0, &model, &table, 4000, 50.0, &mut rng, 2);
        for (t, target) in [(1u64, 4000usize), (2, 3500), (3, 4200), (4, 100)] {
            db.step_parallel(t, &model, &table, target, 50.0, &mut rng, 2);
            assert_eq!(db.active_count(), target, "t={t}");
        }
        let released = db.finish(&grid, 5);
        for s in released.streams() {
            for w in s.cells.windows(2) {
                assert!(grid.are_adjacent(w[0], w[1]));
            }
        }
    }

    #[test]
    fn parallel_step_single_thread_matches_sequential() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let run = |parallel: bool| {
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(13);
            for t in 0..6 {
                if parallel {
                    db.step_parallel(t, &model, &table, 50, 10.0, &mut rng, 1);
                } else {
                    db.step(t, &model, &table, 50, 10.0, &mut rng);
                }
            }
            db.finish(&grid, 6)
        };
        // threads = 1 delegates to the sequential path: identical output.
        assert_eq!(run(true).streams(), run(false).streams());
    }

    #[test]
    fn parallel_step_deterministic_per_seed() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let run = || {
            let mut db = SyntheticDb::new();
            let mut rng = StdRng::seed_from_u64(14);
            for t in 0..4 {
                db.step_parallel(t, &model, &table, 3000, 50.0, &mut rng, 3);
            }
            db.finish(&grid, 4)
        };
        assert_eq!(run().streams(), run().streams());
    }

    #[test]
    fn pooled_step_reuses_one_pool_across_steps() {
        let (grid, table, _) = setup();
        let model = eastward_model_cached(&grid, &table);
        let mut db = SyntheticDb::new();
        let mut rng = StdRng::seed_from_u64(15);
        for t in 0..5 {
            db.step_parallel(t, &model, &table, 5000, 50.0, &mut rng, 2);
        }
        let pool = db.pool.as_ref().expect("pool created by parallel steps");
        assert_eq!(pool.threads(), 2);
        // Changing the thread count re-creates the pool at the new size.
        db.step_parallel(5, &model, &table, 5000, 50.0, &mut rng, 4);
        assert_eq!(db.pool.as_ref().unwrap().threads(), 4);
        let released = db.finish(&grid, 6);
        for s in released.streams() {
            for w in s.cells.windows(2) {
                assert!(grid.are_adjacent(w[0], w[1]));
            }
        }
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let weights = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..100 {
            assert_eq!(sample_weighted(&weights, &mut rng), 2);
        }
        // Zero mass falls back to uniform but stays in range.
        let zeros = [0.0; 5];
        for _ in 0..100 {
            assert!(sample_weighted(&zeros, &mut rng) < 5);
        }
    }
}
