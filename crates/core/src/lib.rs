//! RetraSyn core: the paper's primary contribution.
//!
//! - [`GlobalMobilityModel`] (§III-B): curator-side movement / entering /
//!   quitting distributions over the reachability-constrained transition
//!   domain, maintained from debiased OUE estimates (Eq. 6).
//! - [`dmu`] (§III-C): the Dynamic Mobility Update mechanism — selects the
//!   *significant transitions* whose approximation bias exceeds the OUE
//!   perturbation variance (Eq. 7) and refreshes only those.
//! - [`SyntheticDb`] (§III-D): real-time synthesis — Markov-chain point
//!   generation with length-reweighted termination (Eq. 8) and size
//!   adjustment against the live population.
//! - [`allocation`] (§III-E): portion-based adaptive allocation (Eq. 9–10)
//!   plus the Uniform / Sample / one-report-per-window comparison
//!   strategies, in both budget-division and population-division forms.
//! - [`UserRegistry`] (§III-F): the dynamic active-user set with w-window
//!   recycling of Algorithm 1.
//! - [`RetraSyn`] (§III-F, Algorithm 1): the end-to-end streaming engine,
//!   with runtime w-event accounting and per-component timing (Table V).
//! - [`baselines`]: the four LDP-IDS mechanisms (LBD, LBA, LPD, LPA)
//!   adapted to transition-state collection exactly as the paper describes
//!   (§V-A), sharing the Markov synthesizer but without enter/quit
//!   modelling.
//! - [`sampler`]: the alias-table sampler subsystem behind the real-time
//!   budget (§IV-B) — O(1) movement/enter draws through a [`SamplerCache`]
//!   owned by the model and rebuilt incrementally after each DMU step.
//! - [`pool`]: the task-generic persistent worker pool (§VII
//!   acceleration) with deterministic per-shard seeding, instantiated by
//!   both the synthesis and the collection pipelines.
//! - [`collect`]: the sharded LDP collection pipeline — reporter values
//!   split into disjoint ranges, fused perturb→tally per worker into
//!   private accumulators, merged by addition.
//! - [`session`]: the streaming session API — the [`StreamingEngine`]
//!   trait unifying [`RetraSyn`] and the [`LdpIds`] baselines
//!   (`step` / `snapshot` / `release` / `ledger`), plus pluggable
//!   [`EventSource`]s (timeline replay, iterator / closure feeds, bounded
//!   channels) so an engine can be driven live without ever materializing
//!   a dataset; batch `run(&dataset)` is the special case of driving a
//!   [`TimelineSource`].
//! - [`store`]: the columnar [`SyntheticDb`] stream storage — SoA head
//!   columns, a chunked append-only tail arena, and an O(1) finished
//!   region feeding the zero-copy release path — and its public read-only
//!   view layer: the borrowed per-timestamp [`SnapshotView`] the session
//!   API publishes between steps.
//! - [`wal`]: the durable event write-ahead log — CRC-framed per-timestamp
//!   batches behind a [`WalSource`] tee, crash recovery via
//!   [`StreamingEngine::recover`] (bit-identical replay, torn tails
//!   truncated to the last intact timestamp), and [`Checkpointer`]
//!   sidecars bounding replay time.
//! - [`compact`]: epoch compaction — finished chains drain out of the tail
//!   arena into frozen flat storage under a [`CompactionPolicy`] high-water
//!   mark, so resident memory tracks the live population while snapshots
//!   and release stay bit-identical to the non-compacting path.
//! - [`ingest`]: validation and quarantine for untrusted live sources —
//!   [`ValidatedSource`] screens every batch against the engine input
//!   contract (domain, adjacency, uniqueness, lifecycle), diverting bad
//!   events to a bounded quarantine under a pluggable [`IngestPolicy`].
//! - [`supervise`]: crash-supervised sessions — [`Supervisor`] runs each
//!   step under `catch_unwind` with WAL-backed retry/recovery and
//!   quarantines deterministic poison batches to a sidecar, so one bad
//!   batch can no longer take down a long-running stream.
//!
//! Ablation variants are configuration flags: `dmu: false` reproduces
//! *AllUpdate*, `enter_quit: false` reproduces *NoEQ* (Table IV).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod baselines;
pub mod collect;
pub mod compact;
pub mod config;
pub mod dmu;
pub mod engine;
pub mod ingest;
pub mod model;
pub mod pool;
pub mod population;
pub mod sampler;
pub mod session;
pub mod store;
pub mod supervise;
pub mod synthesis;
pub mod wal;

pub use allocation::AllocationKind;
pub use baselines::{BaselineKind, LdpIds, LdpIdsConfig};
pub use collect::{CollectError, CollectionPool};
pub use compact::{CompactionPolicy, CompactionStats};
pub use config::{Division, RetraSynConfig};
pub use engine::{RetraSyn, StepTimings, TimingReport};
pub use ingest::{IngestPolicy, IngestStats, QuarantinedEvent, ValidatedSource};
pub use model::GlobalMobilityModel;
pub use pool::{PoolError, SynthesisPool};
pub use population::{UserRegistry, UserStatus};
pub use retrasyn_ldp::CollectionKernel;
pub use sampler::{AliasTable, SamplerCache};
pub use session::{
    BatchSender, ChannelSource, EventFault, EventSource, FnSource, IterSource, SessionError,
    StallPolicy, StepOutcome, StreamingEngine, TimelineSource,
};
pub use store::{SnapshotStream, SnapshotView};
pub use supervise::{StepVerdict, SuperviseError, Supervisor, SupervisorStats};
pub use synthesis::SyntheticDb;
pub use wal::{
    CheckpointUse, Checkpointer, FsyncPolicy, Recovery, WalContents, WalError, WalReplay,
    WalSource, WalWriter,
};
