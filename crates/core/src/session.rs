//! The streaming session API: pluggable event sources and the unified
//! engine trait.
//!
//! The paper's defining property is that a synthetic database is published
//! **at every timestamp** of an infinite stream (§III-D, Algorithm 1).
//! This module shapes the public API around that deployment pattern:
//!
//! - an [`EventSource`] hands the engine one batch of [`UserEvent`]s per
//!   timestamp — from a prebuilt [`EventTimeline`], an iterator, a
//!   closure, or a bounded channel fed by a live producer thread;
//! - a [`StreamingEngine`] ingests each batch with
//!   [`step`](StreamingEngine::step), exposes the current synthetic
//!   database between steps as a borrowed, zero-copy
//!   [`snapshot`](StreamingEngine::snapshot), and
//!   [`release`](StreamingEngine::release)s the accumulated database —
//!   mid-stream or at the horizon — without consuming the engine;
//! - [`drive`](StreamingEngine::drive) wires a source to an engine, so
//!   batch mode (`run(&dataset)`) is just the special case of driving a
//!   [`TimelineSource`] derived from a recorded dataset.
//!
//! Both [`RetraSyn`](crate::RetraSyn) and the
//! [`LdpIds`](crate::baselines::LdpIds) baselines implement
//! [`StreamingEngine`], so benchmarks, metrics and deployment glue are
//! written once, generically.
//!
//! ```
//! use retrasyn_core::{RetraSyn, RetraSynConfig, StreamingEngine, TimelineSource};
//! use retrasyn_geo::Grid;
//! use rand::{rngs::StdRng, SeedableRng};
//! # use retrasyn_datagen::RandomWalkConfig;
//! # let dataset = RandomWalkConfig { users: 50, timestamps: 10, ..Default::default() }
//! #     .generate(&mut StdRng::seed_from_u64(1));
//! let grid = Grid::unit(4);
//! let gridded = dataset.discretize(&grid);
//! let mut engine =
//!     RetraSyn::population_division(RetraSynConfig::new(1.0, 5), grid, 7);
//! let mut source = TimelineSource::from_gridded(&gridded);
//! // Ingest one timestamp at a time; observe the live database in between.
//! use retrasyn_core::EventSource;
//! while let Some(batch) = source.next_batch() {
//!     let outcome = engine.step(engine.next_timestamp(), batch);
//!     let snapshot = engine.snapshot(); // borrowed, zero-copy
//!     assert_eq!(snapshot.active_count(), outcome.active);
//! }
//! let released = engine.release();
//! assert_eq!(released.horizon(), gridded.horizon());
//! ```

use crate::pool::PoolError;
use crate::store::SnapshotView;
use crate::wal::{Recovery, WalError};
use retrasyn_geo::{
    EventTimeline, GriddedDataset, StreamDataset, Topology, TransitionState, TransitionTable,
    UserEvent,
};
use retrasyn_ldp::WEventLedger;
use std::fmt;
use std::path::Path;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// Why a single [`UserEvent`] was rejected — the shared vocabulary of the
/// engines' hard validation ([`StreamingEngine::try_step`]) and the
/// [`ValidatedSource`](crate::ingest::ValidatedSource) screening layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventFault {
    /// A cell index outside the engine's compiled discretization.
    OutOfDomain,
    /// A `Move` between two cells that are not adjacent in the topology.
    NonAdjacentMove,
    /// A second report from the same user within one batch.
    DuplicateReporter,
    /// A `Move` or `Quit` from a user that never entered the stream.
    NotEntered,
    /// An `Enter` from a user that is already active.
    ReEnter,
}

impl fmt::Display for EventFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EventFault::OutOfDomain => "cell outside the discretization",
            EventFault::NonAdjacentMove => "movement between non-adjacent cells",
            EventFault::DuplicateReporter => "duplicate report from one user in a single batch",
            EventFault::NotEntered => "report from a user that never entered the stream",
            EventFault::ReEnter => "re-entry of an already active user",
        })
    }
}

/// Typed failure of a fallible session operation
/// ([`try_step`](StreamingEngine::try_step) /
/// [`try_release`](StreamingEngine::try_release) /
/// [`try_run_gridded`](StreamingEngine::try_run_gridded)).
///
/// The panicking wrappers (`step`, `release`, `run_gridded`) panic with
/// exactly the [`Display`](fmt::Display) rendering of these variants, so
/// pre-existing callers observe the same messages they always did.
///
/// Variants split into two classes. *Pre-state* errors
/// ([`TimestampGap`](Self::TimestampGap),
/// [`TimestampRegression`](Self::TimestampRegression),
/// [`Released`](Self::Released), [`TopologyMismatch`](Self::TopologyMismatch),
/// [`MidSession`](Self::MidSession), [`InvalidEvent`](Self::InvalidEvent))
/// are detected *before* any engine state mutates: the session is untouched
/// and further steps may proceed. *Mid-step* errors
/// ([`Collection`](Self::Collection), [`Pool`](Self::Pool)) leave the
/// engine in an unspecified state — recover the session from its WAL
/// (e.g. via a [`Supervisor`](crate::supervise::Supervisor)) or
/// [`reset`](StreamingEngine::reset) it.
#[derive(Debug)]
pub enum SessionError {
    /// The step's timestamp is ahead of the expected consecutive timestamp.
    TimestampGap {
        /// The timestamp the engine expected ([`StreamingEngine::next_timestamp`]).
        expected: u64,
        /// The timestamp the caller supplied.
        got: u64,
    },
    /// The step's timestamp is behind the expected consecutive timestamp.
    TimestampRegression {
        /// The timestamp the engine expected ([`StreamingEngine::next_timestamp`]).
        expected: u64,
        /// The timestamp the caller supplied.
        got: u64,
    },
    /// The session was already released; `reset()` starts a new one.
    Released,
    /// A dataset's discretization does not match the engine's topology.
    TopologyMismatch {
        /// Descriptor of the engine's compiled topology.
        expected: String,
        /// Descriptor of the dataset's discretization.
        got: String,
    },
    /// A full-dataset replay was requested on an engine that is not fresh.
    MidSession {
        /// The timestamp the engine would ingest next.
        next: u64,
    },
    /// A batch contained an event that fails hard validation. Detected
    /// before any state mutates — the offending batch was not ingested.
    InvalidEvent {
        /// The timestamp of the offending batch.
        t: u64,
        /// The reporting user.
        user: u64,
        /// What was wrong with the event.
        fault: EventFault,
    },
    /// The LDP collection round failed mid-step.
    Collection {
        /// The underlying mechanism error.
        detail: String,
    },
    /// A worker pool died mid-step (a worker panicked or hung up). The
    /// owning engine drops the poisoned pool; a fresh one is spawned on
    /// the next parallel step after recovery.
    Pool(PoolError),
    /// A checkpoint could not be written or restored.
    Checkpoint {
        /// The underlying failure.
        detail: String,
    },
    /// A WAL operation failed while the session was being persisted or
    /// recovered.
    Wal(WalError),
}

impl SessionError {
    /// Classify a non-consecutive timestamp as gap (ahead) or regression
    /// (behind).
    pub(crate) fn timestamp(expected: u64, got: u64) -> Self {
        if got > expected {
            SessionError::TimestampGap { expected, got }
        } else {
            SessionError::TimestampRegression { expected, got }
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::TimestampGap { expected, got } => write!(
                f,
                "timestamps must be consecutive from 0: expected {expected}, got {got} (gap)"
            ),
            SessionError::TimestampRegression { expected, got } => write!(
                f,
                "timestamps must be consecutive from 0: expected {expected}, got {got} (regression)"
            ),
            SessionError::Released => f.write_str(
                "engine already released its session; call reset() to start a new stream",
            ),
            SessionError::TopologyMismatch { expected, got } => write!(
                f,
                "dataset discretization mismatch: engine compiled {expected}, dataset carries {got}"
            ),
            SessionError::MidSession { next } => write!(
                f,
                "run replays a dataset from t = 0 but the engine is mid-session or \
                 already released (next timestamp {next}); call reset() to start a fresh \
                 session (or feed the remaining batches through drive())"
            ),
            SessionError::InvalidEvent { t, user, fault } => {
                write!(f, "invalid event at t = {t} from user {user}: {fault}")
            }
            SessionError::Collection { detail } => write!(f, "collection round failed: {detail}"),
            SessionError::Pool(e) => write!(f, "{e}"),
            SessionError::Checkpoint { detail } => write!(f, "checkpoint failure: {detail}"),
            SessionError::Wal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Pool(e) => Some(e),
            SessionError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PoolError> for SessionError {
    fn from(e: PoolError) -> Self {
        SessionError::Pool(e)
    }
}

impl From<WalError> for SessionError {
    fn from(e: WalError) -> Self {
        SessionError::Wal(e)
    }
}

/// Hard per-event validation shared by every engine's
/// [`try_step`](StreamingEngine::try_step): cell indices must lie inside
/// the compiled topology and `Move`s must connect adjacent cells. Runs as
/// a pure pre-pass — before any engine state (timestamps, registries, RNG
/// streams) mutates — so a failed batch leaves the session untouched and
/// steppable.
///
/// Lifecycle faults (duplicates, moves of never-entered users) are *not*
/// checked here: the engines tolerate them by construction, and the
/// [`ValidatedSource`](crate::ingest::ValidatedSource) screening layer
/// handles them at the ingest boundary.
pub(crate) fn check_events(
    table: &TransitionTable,
    t: u64,
    events: &[UserEvent],
) -> Result<(), SessionError> {
    let topo = table.topology();
    let cells = topo.num_cells();
    for e in events {
        let fault = match e.state {
            TransitionState::Move { from, to } => {
                if from.index() >= cells || to.index() >= cells {
                    Some(EventFault::OutOfDomain)
                } else if !topo.are_adjacent(from, to) {
                    Some(EventFault::NonAdjacentMove)
                } else {
                    None
                }
            }
            TransitionState::Enter(c) | TransitionState::Quit(c) => {
                (c.index() >= cells).then_some(EventFault::OutOfDomain)
            }
        };
        if let Some(fault) = fault {
            return Err(SessionError::InvalidEvent { t, user: e.user, fault });
        }
    }
    Ok(())
}

/// What one completed [`StreamingEngine::step`] reports back to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// The timestamp that was just ingested.
    pub t: u64,
    /// Live synthetic streams after the step.
    pub active: usize,
    /// Synthetic streams terminated so far (live + finished is the size of
    /// the database a release at this point would contain).
    pub finished: usize,
}

/// A per-timestamp feed of transition events — the engine-facing shape of
/// "users report their states at every timestamp" (Algorithm 1 line 1).
///
/// A source yields batches for *consecutive* timestamps: the `n`-th call to
/// [`next_batch`](EventSource::next_batch) is the event batch the driving
/// engine ingests at its `n`-th step. `None` ends the stream. Sources may
/// block (e.g. [`ChannelSource`] waits for a live producer), so the engine
/// never needs a materialized dataset.
pub trait EventSource {
    /// The next timestamp's batch, or `None` when the stream ends. The
    /// returned slice borrows the source's internal buffer and is valid
    /// until the next call.
    fn next_batch(&mut self) -> Option<&[UserEvent]>;
}

/// Forwarding impl so `drive(&mut source)` can resume the same source later
/// (e.g. alternate between driving and manual stepping).
impl<S: EventSource + ?Sized> EventSource for &mut S {
    fn next_batch(&mut self) -> Option<&[UserEvent]> {
        (**self).next_batch()
    }
}

/// [`EventSource`] over a prebuilt [`EventTimeline`] — the batch-mode
/// adapter: replays a recorded dataset one timestamp at a time.
#[derive(Debug, Clone)]
pub struct TimelineSource {
    timeline: EventTimeline,
    next: u64,
}

impl TimelineSource {
    /// Replay `timeline` from timestamp 0.
    pub fn new(timeline: EventTimeline) -> Self {
        TimelineSource { timeline, next: 0 }
    }

    /// Derive the timeline of a discretized dataset and replay it.
    pub fn from_gridded(dataset: &GriddedDataset) -> Self {
        Self::new(EventTimeline::build(dataset))
    }
}

impl EventSource for TimelineSource {
    fn next_batch(&mut self) -> Option<&[UserEvent]> {
        if self.next >= self.timeline.horizon() {
            return None;
        }
        let batch = self.timeline.at(self.next);
        self.next += 1;
        Some(batch)
    }
}

/// [`EventSource`] over any iterator of per-timestamp batches (e.g. a
/// decoder yielding one `Vec<UserEvent>` per tick).
#[derive(Debug)]
pub struct IterSource<I> {
    iter: I,
    buf: Vec<UserEvent>,
}

impl<I> IterSource<I>
where
    I: Iterator<Item = Vec<UserEvent>>,
{
    /// Wrap an iterator of batches.
    pub fn new(iter: I) -> Self {
        IterSource { iter, buf: Vec::new() }
    }
}

impl<I> EventSource for IterSource<I>
where
    I: Iterator<Item = Vec<UserEvent>>,
{
    fn next_batch(&mut self) -> Option<&[UserEvent]> {
        self.buf = self.iter.next()?;
        Some(&self.buf)
    }
}

/// [`EventSource`] backed by a closure `FnMut(u64) -> Option<Vec<UserEvent>>`
/// called with the 0-based batch index — the lightest way to synthesize a
/// live feed ("at tick `t`, these users report …").
#[derive(Debug)]
pub struct FnSource<F> {
    f: F,
    t: u64,
    buf: Vec<UserEvent>,
}

impl<F> FnSource<F>
where
    F: FnMut(u64) -> Option<Vec<UserEvent>>,
{
    /// Wrap a batch-producing closure.
    pub fn new(f: F) -> Self {
        FnSource { f, t: 0, buf: Vec::new() }
    }
}

impl<F> EventSource for FnSource<F>
where
    F: FnMut(u64) -> Option<Vec<UserEvent>>,
{
    fn next_batch(&mut self) -> Option<&[UserEvent]> {
        self.buf = (self.f)(self.t)?;
        self.t += 1;
        Some(&self.buf)
    }
}

/// [`EventSource`] over a bounded channel: a producer thread (collector
/// frontend, network ingest, simulator) sends one `Vec<UserEvent>` per
/// timestamp and the engine consumes them in order, blocking when the
/// producer is slower and back-pressuring it when the engine is. Dropping
/// the sender ends the stream.
///
/// [`ChannelSource::bounded`] allocates one `Vec` per batch on the
/// producer side; [`ChannelSource::recycling`] adds a return channel that
/// sends consumed batch buffers back to the producer, so a long-lived
/// session reaches a steady state of zero allocations per batch.
#[derive(Debug)]
pub struct ChannelSource {
    rx: Receiver<Vec<UserEvent>>,
    buf: Vec<UserEvent>,
    /// Return channel for consumed buffers (the recycling variant).
    ret: Option<SyncSender<Vec<UserEvent>>>,
    /// How long to wait for a producer before invoking the stall policy.
    deadline: Option<Duration>,
    /// What a deadline expiry does to the stream.
    stall: StallPolicy,
    /// How many deadlines have expired so far.
    stalls: u64,
}

/// What a [`ChannelSource`] with a deadline does when the producer misses
/// it (no batch arrives within the configured window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StallPolicy {
    /// Synthesize an empty heartbeat batch: the engine steps the timestamp
    /// with zero reports (every active synthetic stream extends from the
    /// unchanged model) and the stream keeps its consecutive-timestamp
    /// contract. A producer that wakes back up resumes seamlessly — its
    /// batches simply land at later timestamps.
    #[default]
    Heartbeat,
    /// End the stream (as if the producer hung up): `next_batch` returns
    /// `None`, and the driver releases whatever was synthesized so far.
    EndStream,
}

impl ChannelSource {
    /// A bounded channel holding at most `capacity` in-flight batches;
    /// returns the producer handle and the source.
    pub fn bounded(capacity: usize) -> (SyncSender<Vec<UserEvent>>, ChannelSource) {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
        (tx, ChannelSource::new(rx, None))
    }

    /// Like [`ChannelSource::bounded`], but consumed batch buffers flow
    /// back to the producer through a return channel: ask the
    /// [`BatchSender`] for a [`buffer`](BatchSender::buffer), fill it, and
    /// [`send`](BatchSender::send) it. Once the pipeline is warm every
    /// batch reuses a previously sent allocation.
    pub fn recycling(capacity: usize) -> (BatchSender, ChannelSource) {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
        // One extra slot so the consumer's return of batch n never blocks
        // while the producer still holds slot capacity.
        let (ret_tx, ret_rx) = std::sync::mpsc::sync_channel(capacity + 1);
        (BatchSender { tx, pool: ret_rx }, ChannelSource::new(rx, Some(ret_tx)))
    }

    fn new(rx: Receiver<Vec<UserEvent>>, ret: Option<SyncSender<Vec<UserEvent>>>) -> Self {
        ChannelSource {
            rx,
            buf: Vec::new(),
            ret,
            deadline: None,
            stall: StallPolicy::default(),
            stalls: 0,
        }
    }

    /// Bound how long the engine waits for the producer: if no batch
    /// arrives within `deadline`, apply `policy` (synthesize an empty
    /// heartbeat batch, or end the stream) instead of blocking forever on
    /// a wedged producer. Composes with both the
    /// [`bounded`](ChannelSource::bounded) and
    /// [`recycling`](ChannelSource::recycling) constructors.
    pub fn with_deadline(mut self, deadline: Duration, policy: StallPolicy) -> Self {
        self.deadline = Some(deadline);
        self.stall = policy;
        self
    }

    /// How many producer deadlines have expired so far (each one either
    /// produced a heartbeat batch or ended the stream, per the policy).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

impl EventSource for ChannelSource {
    fn next_batch(&mut self) -> Option<&[UserEvent]> {
        // Recycle the previous batch's buffer before blocking on the next
        // one. `try_send` so a slow (or gone) producer can never wedge the
        // engine — worst case the buffer is simply dropped.
        if let Some(ret) = &self.ret {
            if self.buf.capacity() > 0 {
                let mut spare = std::mem::take(&mut self.buf);
                spare.clear();
                if let Err(TrySendError::Full(b) | TrySendError::Disconnected(b)) =
                    ret.try_send(spare)
                {
                    drop(b);
                }
            }
        }
        match self.deadline {
            None => self.buf = self.rx.recv().ok()?,
            Some(deadline) => match self.rx.recv_timeout(deadline) {
                Ok(batch) => self.buf = batch,
                Err(RecvTimeoutError::Disconnected) => return None,
                Err(RecvTimeoutError::Timeout) => {
                    self.stalls += 1;
                    match self.stall {
                        StallPolicy::Heartbeat => self.buf.clear(),
                        StallPolicy::EndStream => return None,
                    }
                }
            },
        }
        Some(&self.buf)
    }
}

/// Producer handle of [`ChannelSource::recycling`]: a bounded batch sender
/// plus the pool of buffers the consumer has handed back.
#[derive(Debug)]
pub struct BatchSender {
    tx: SyncSender<Vec<UserEvent>>,
    pool: Receiver<Vec<UserEvent>>,
}

impl BatchSender {
    /// An empty batch buffer: a recycled one if the consumer has returned
    /// any, otherwise fresh. The buffer arrives cleared with its capacity
    /// intact.
    pub fn buffer(&self) -> Vec<UserEvent> {
        self.pool.try_recv().unwrap_or_default()
    }

    /// Send the batch for the next timestamp, blocking while the channel
    /// is at capacity. Fails only when the consumer is gone.
    pub fn send(&self, batch: Vec<UserEvent>) -> Result<(), SendError<Vec<UserEvent>>> {
        self.tx.send(batch)
    }
}

/// The unified streaming interface of every synthesis engine
/// ([`RetraSyn`](crate::RetraSyn) and the four
/// [`LdpIds`](crate::baselines::LdpIds) baselines).
///
/// A session is: zero or more [`step`](Self::step)s at consecutive
/// timestamps, with [`snapshot`](Self::snapshot) available between any two
/// of them, ended by one [`release`](Self::release). After a release the
/// engine refuses further steps with a descriptive panic until
/// [`reset`](Self::reset) begins a new session (re-seeded, so an identical
/// replay produces an identical release).
///
/// Batch mode is a special case: [`run`](Self::run) /
/// [`run_gridded`](Self::run_gridded) replay a recorded dataset through
/// [`drive`](Self::drive) with a [`TimelineSource`].
pub trait StreamingEngine {
    /// The compiled spatial discretization this engine synthesizes over —
    /// a uniform grid, a quad tree, or any other space compiled into a
    /// [`Topology`].
    fn topology(&self) -> &Arc<Topology>;

    /// The timestamp the next [`step`](Self::step) must carry (0 for a
    /// fresh engine; timestamps are consecutive within a session).
    fn next_timestamp(&self) -> u64;

    /// Ingest the event batch of timestamp `t` and advance the synthetic
    /// database by one timestamp.
    ///
    /// Fails with a typed [`SessionError`] instead of panicking: on a
    /// *pre-state* error (wrong timestamp, released session, invalid
    /// event) the engine is untouched and remains steppable; on a
    /// *mid-step* error (collection / pool failure) the session state is
    /// unspecified and must be recovered or [`reset`](Self::reset) — see
    /// the [`SessionError`] variant docs for the classification.
    ///
    /// Validation of the batch itself is a pure pre-pass (no RNG is
    /// consumed, no state mutates), so for well-formed input `try_step` is
    /// bit-identical to what [`step`](Self::step) always did.
    fn try_step(&mut self, t: u64, events: &[UserEvent]) -> Result<StepOutcome, SessionError>;

    /// Ingest the event batch of timestamp `t` and advance the synthetic
    /// database by one timestamp — the panicking wrapper over
    /// [`try_step`](Self::try_step).
    ///
    /// # Panics
    ///
    /// If `t` is not [`next_timestamp`](Self::next_timestamp), if the
    /// session was already released (call [`reset`](Self::reset) first),
    /// or on any other [`SessionError`] — the panic message is the error's
    /// [`Display`](std::fmt::Display) rendering.
    fn step(&mut self, t: u64, events: &[UserEvent]) -> StepOutcome {
        match self.try_step(t, events) {
            Ok(outcome) => outcome,
            // xtask:allow(ERR001, documented panicking wrapper; callers needing errors use the try_* twin and the message is should_panic-pinned)
            Err(e) => panic!("{e}"),
        }
    }

    /// Borrowed, zero-copy view of the synthetic database as of the last
    /// completed step — the per-timestamp release of Algorithm 1. Reading
    /// it is post-processing (Theorem 2): no additional privacy cost.
    ///
    /// # Panics
    ///
    /// If the session was already released — the streams moved out with
    /// the release, so an empty view here would misread as a population
    /// collapse.
    fn snapshot(&self) -> SnapshotView<'_>;

    /// Terminate the session and hand out everything synthesized so far as
    /// an id-sorted [`GriddedDataset`] with horizon
    /// [`next_timestamp`](Self::next_timestamp). Zero-copy (the cells move
    /// out of the engine's store) and callable mid-stream; afterwards the
    /// engine is in the *released* state: `step`/`snapshot`/`release`
    /// refuse until [`reset`](Self::reset), while plain accessors (ledger,
    /// topology, timings) keep reporting the closed session.
    ///
    /// Fails with [`SessionError::Released`] if the session was already
    /// released.
    fn try_release(&mut self) -> Result<GriddedDataset, SessionError>;

    /// Terminate the session — the panicking wrapper over
    /// [`try_release`](Self::try_release).
    ///
    /// # Panics
    ///
    /// If the session was already released.
    fn release(&mut self) -> GriddedDataset {
        match self.try_release() {
            Ok(dataset) => dataset,
            // xtask:allow(ERR001, documented panicking wrapper; callers needing errors use the try_* twin and the message is should_panic-pinned)
            Err(e) => panic!("{e}"),
        }
    }

    /// The runtime w-event privacy ledger of the current session.
    fn ledger(&self) -> &WEventLedger;

    /// Begin a new session: restore the engine to its freshly-constructed
    /// state, re-seeded with the construction seed (an identical replay
    /// yields a bit-identical release). Warm resources — worker pools,
    /// scratch buffers, arena chunks — are retained, so resetting (and
    /// recovery replay, which starts with one) is cheap.
    fn reset(&mut self);

    /// FNV-1a hash of the session's immutable identity: seed, engine
    /// kind, configuration (everything output-affecting, including thread
    /// counts) and discretization. Two engines with equal fingerprints produce
    /// bit-identical sessions from the same events; the WAL header records
    /// it so a log can only be replayed into a matching engine.
    fn fingerprint(&self) -> u64;

    /// Serialize the engine's full mutable state for a
    /// [`Checkpointer`](crate::wal::Checkpointer), or `None` if this
    /// engine does not support checkpoints (recovery then always replays
    /// the full WAL).
    fn checkpoint_bytes(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restore state serialized by [`checkpoint_bytes`](Self::checkpoint_bytes).
    /// On error the engine may be partially mutated — callers must
    /// [`reset`](Self::reset) before relying on it (recovery does).
    fn restore_checkpoint(&mut self, _payload: &[u8]) -> Result<(), String> {
        Err("this engine does not support checkpoints".to_string())
    }

    /// Reconstruct the session recorded in the WAL at `wal_path`:
    /// validate the header fingerprint against this engine, restore the
    /// newest usable checkpoint sidecar (if any), and replay the logged
    /// batches through [`step`](Self::step). Determinism makes the result
    /// bit-identical to the uninterrupted run over the same prefix; a
    /// torn or corrupt WAL tail truncates the session to the last intact
    /// timestamp (see [`Recovery::truncated`]) instead of failing.
    ///
    /// The engine must be constructed exactly as the logged session was
    /// (same seed, config, discretization — enforced via
    /// [`fingerprint`](Self::fingerprint)); any prior state is discarded
    /// with [`reset`](Self::reset). To *continue* the recovered session
    /// durably, [`WalWriter::reopen`](crate::wal::WalWriter::reopen) the
    /// same WAL and keep feeding through a
    /// [`WalSource`](crate::wal::WalSource).
    fn recover(&mut self, wal_path: &Path) -> Result<Recovery, WalError> {
        crate::wal::recover_engine(self, wal_path)
    }

    /// Drive this engine from `source` until it is exhausted, then
    /// [`release`](Self::release). Pass `&mut source` to keep the source
    /// (and continue it later); pass by value to consume it.
    fn drive<S: EventSource>(&mut self, mut source: S) -> GriddedDataset
    where
        Self: Sized,
    {
        while let Some(batch) = source.next_batch() {
            self.step(self.next_timestamp(), batch);
        }
        self.release()
    }

    /// Batch mode over a raw dataset: discretize against
    /// [`topology`](Self::topology), derive the event timeline, drive every
    /// timestamp and release.
    ///
    /// # Panics
    ///
    /// If the engine is mid-session (a dataset replay starts at `t = 0`,
    /// so the engine must be fresh — [`reset`](Self::reset) first).
    fn run(&mut self, dataset: &StreamDataset) -> GriddedDataset
    where
        Self: Sized,
    {
        let gridded = dataset.discretize(self.topology());
        self.run_gridded(&gridded)
    }

    /// Batch mode over an already-discretized dataset.
    ///
    /// # Panics
    ///
    /// If the engine is mid-session (a dataset replay starts at `t = 0`,
    /// so the engine must be fresh — [`reset`](Self::reset) first), or if
    /// the dataset's discretization does not match the engine's topology.
    fn run_gridded(&mut self, dataset: &GriddedDataset) -> GriddedDataset
    where
        Self: Sized,
    {
        match self.try_run_gridded(dataset) {
            Ok(released) => released,
            // xtask:allow(ERR001, documented panicking wrapper; callers needing errors use the try_* twin and the message is should_panic-pinned)
            Err(e) => panic!("{e}"),
        }
    }

    /// Batch mode over an already-discretized dataset, with typed errors:
    /// the fallible counterpart of [`run_gridded`](Self::run_gridded).
    /// Fails with [`SessionError::TopologyMismatch`] if the dataset's
    /// discretization differs from the engine's,
    /// [`SessionError::MidSession`] if the engine is not fresh, or any
    /// error a [`try_step`](Self::try_step) / [`try_release`](Self::try_release)
    /// along the replay reports.
    fn try_run_gridded(&mut self, dataset: &GriddedDataset) -> Result<GriddedDataset, SessionError>
    where
        Self: Sized,
    {
        if dataset.topology().descriptor() != self.topology().descriptor() {
            return Err(SessionError::TopologyMismatch {
                expected: format!("{:?}", self.topology().descriptor()),
                got: format!("{:?}", dataset.topology().descriptor()),
            });
        }
        if self.next_timestamp() != 0 {
            return Err(SessionError::MidSession { next: self.next_timestamp() });
        }
        let mut source = TimelineSource::from_gridded(dataset);
        while let Some(batch) = source.next_batch() {
            self.try_step(self.next_timestamp(), batch)?;
        }
        self.try_release()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::{CellId, TransitionState};

    fn batch(users: &[u64]) -> Vec<UserEvent> {
        users
            .iter()
            .map(|&u| UserEvent { user: u, state: TransitionState::Enter(CellId(0)) })
            .collect()
    }

    #[test]
    fn iter_source_yields_batches_in_order() {
        let batches = vec![batch(&[1, 2]), batch(&[3])];
        let mut src = IterSource::new(batches.into_iter());
        assert_eq!(src.next_batch().unwrap().len(), 2);
        assert_eq!(src.next_batch().unwrap()[0].user, 3);
        assert!(src.next_batch().is_none());
    }

    #[test]
    fn fn_source_counts_timestamps() {
        let mut src = FnSource::new(|t| if t < 3 { Some(batch(&[t])) } else { None });
        let mut seen = Vec::new();
        while let Some(b) = src.next_batch() {
            seen.push(b[0].user);
        }
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn channel_source_ends_on_disconnect() {
        let (tx, mut src) = ChannelSource::bounded(2);
        let producer = std::thread::spawn(move || {
            for t in 0..4u64 {
                tx.send(batch(&[t])).unwrap();
            }
            // Dropping tx ends the stream.
        });
        let mut seen = Vec::new();
        while let Some(b) = src.next_batch() {
            seen.push(b[0].user);
        }
        producer.join().unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recycling_channel_source_reuses_buffers() {
        let (sender, mut src) = ChannelSource::recycling(2);
        // First two batches: fresh allocations (pool is empty).
        let mut b1 = sender.buffer();
        b1.reserve(64);
        b1.extend(batch(&[1]));
        let p1 = b1.as_ptr();
        sender.send(b1).unwrap();
        let mut b2 = sender.buffer();
        b2.extend(batch(&[2]));
        sender.send(b2).unwrap();
        // Consume both: b1's buffer is returned to the pool when the
        // consumer moves on to b2.
        assert_eq!(src.next_batch().unwrap()[0].user, 1);
        assert_eq!(src.next_batch().unwrap()[0].user, 2);
        // The producer now gets b1's allocation back: same pointer, same
        // capacity, cleared.
        let b3 = sender.buffer();
        assert_eq!(b3.as_ptr(), p1, "buffer was not recycled");
        assert!(b3.capacity() >= 64);
        assert!(b3.is_empty());
        // The plain bounded variant never recycles.
        let (tx, mut plain) = ChannelSource::bounded(1);
        tx.send(batch(&[7])).unwrap();
        drop(tx);
        assert_eq!(plain.next_batch().unwrap()[0].user, 7);
        assert!(plain.next_batch().is_none());
    }

    #[test]
    fn recycling_consumer_never_blocks_on_full_pool() {
        // Producer sends but never drains the pool: the consumer's
        // try_send path must drop buffers instead of wedging.
        let (sender, mut src) = ChannelSource::recycling(1);
        for t in 0..5u64 {
            sender.send(batch(&[t])).unwrap();
            assert_eq!(src.next_batch().unwrap()[0].user, t);
        }
        drop(sender);
        assert!(src.next_batch().is_none());
    }

    #[test]
    fn mut_ref_source_forwards() {
        // A `&mut S` is itself a source (S = &mut IterSource here), so
        // generic drivers can borrow a source instead of consuming it.
        fn drain<S: EventSource>(mut s: S) -> Vec<u64> {
            let mut out = Vec::new();
            while let Some(b) = s.next_batch() {
                out.extend(b.iter().map(|e| e.user));
            }
            out
        }
        let mut src = IterSource::new(vec![batch(&[9]), batch(&[4])].into_iter());
        assert_eq!(drain(&mut src), vec![9, 4]);
        assert!(src.next_batch().is_none(), "the borrowed source was fully drained");
    }
}
