//! Sharded LDP collection pipeline (§IV-B user-side computation, §VII
//! acceleration).
//!
//! Per-user OUE perturbation dominates per-timestamp cost (Table V) and is
//! embarrassingly parallel across users: no reporter's randomness depends
//! on another's. The [`CollectionPool`] mirrors the proven synthesis-pool
//! architecture on the task-generic `WorkerPool`:
//!
//! - the reporter values are sharded into `threads` disjoint contiguous
//!   ranges (fixed sizes, a pure function of `(n, threads)`);
//! - one seed per shard is drawn from the caller's RNG *in shard order*,
//!   whether or not the shard is empty, so RNG consumption depends only on
//!   the thread count;
//! - each worker runs the fused perturb→tally round
//!   ([`Oue::collect_ones_into`]) over its shard into a private
//!   domain-sized ones accumulator;
//! - the caller merges accumulators by addition (`u64` addition is exact
//!   and commutative, so arrival order cannot affect the result).
//!
//! Determinism contract — identical to synthesis: a fixed
//! `(seed, threads)` pair is bit-identical across runs, and the merged
//! counts are distributionally equivalent to the sequential path (each
//! position count is a sum of independent per-user Bernoulli/binomial
//! contributions however the users are partitioned).
//!
//! Shard buffers (values and ones) shuttle between the caller and the
//! workers and keep their capacity, so a steady-state collection round
//! performs zero heap allocations after warm-up.

use crate::pool::{draw_seeds, PoolJob, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrasyn_ldp::{LdpError, Oue, ReportMode};
use std::sync::Arc;

/// One worker's owned slice of a collection round plus its private
/// accumulator.
#[derive(Debug, Default)]
struct CollectShard {
    /// The reporter values assigned to this shard (a contiguous range of
    /// the round's value slice).
    values: Vec<usize>,
    /// Private domain-sized ones accumulator, merged by addition.
    ones: Vec<u64>,
}

/// One unit of collection work: the shard plus an `Arc` snapshot of the
/// oracle and the shard's seed.
struct CollectJob {
    shard: CollectShard,
    oracle: Arc<Oue>,
    mode: ReportMode,
    seed: u64,
    result: Result<(), LdpError>,
}

impl PoolJob for CollectJob {
    fn run(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.result = self.oracle.collect_ones_into(
            &self.shard.values,
            self.mode,
            &mut self.shard.ones,
            &mut rng,
        );
    }
}

/// The collection instantiation of `WorkerPool`: a persistent pool of
/// fused perturb→tally workers plus the reusable shard buffers.
pub struct CollectionPool {
    pool: WorkerPool<CollectJob>,
    /// Reused shard states, indexed by shard; buffer capacity survives the
    /// worker round-trip.
    shards: Vec<CollectShard>,
    /// Reused per-shard seed buffer.
    seeds: Vec<u64>,
}

impl std::fmt::Debug for CollectionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectionPool").field("threads", &self.pool.threads()).finish()
    }
}

impl CollectionPool {
    /// Spawn `threads` collection workers (at least one).
    pub fn new(threads: usize) -> Self {
        let pool = WorkerPool::new(threads, "retrasyn-collect");
        let shards = (0..pool.threads()).map(|_| CollectShard::default()).collect();
        CollectionPool { pool, shards, seeds: Vec::new() }
    }

    /// Number of workers (= shards per round).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Run one sharded collection round over the reporters' true `values`,
    /// filling `ones` with the merged per-position counts.
    ///
    /// Exactly `threads` seeds are drawn from `rng` in shard order
    /// regardless of shard occupancy; empty shards contribute nothing.
    /// Zero heap allocations after warm-up. Returns the number of
    /// reporters.
    pub fn collect_ones<R: Rng + ?Sized>(
        &mut self,
        oracle: &Arc<Oue>,
        values: &[usize],
        mode: ReportMode,
        ones: &mut Vec<u64>,
        rng: &mut R,
    ) -> Result<u64, LdpError> {
        let shard_count = self.pool.threads();
        draw_seeds(&mut self.seeds, shard_count, rng);
        let chunk = values.len().div_ceil(shard_count).max(1);
        let mut outstanding = 0usize;
        for (idx, shard) in self.shards.iter_mut().enumerate() {
            let lo = (idx * chunk).min(values.len());
            let hi = ((idx + 1) * chunk).min(values.len());
            shard.values.clear();
            shard.values.extend_from_slice(&values[lo..hi]);
            if shard.values.is_empty() {
                continue;
            }
            self.pool.submit(
                idx,
                CollectJob {
                    shard: std::mem::take(shard),
                    oracle: Arc::clone(oracle),
                    mode,
                    seed: self.seeds[idx],
                    result: Ok(()),
                },
            );
            outstanding += 1;
        }
        ones.clear();
        ones.resize(oracle.domain(), 0);
        let mut err: Option<(usize, LdpError)> = None;
        for _ in 0..outstanding {
            let (idx, job) = self.pool.recv();
            match job.result {
                // Addition is exact and commutative: merging in arrival
                // order is bit-identical to merging in shard order.
                Ok(()) => {
                    for (acc, &x) in ones.iter_mut().zip(&job.shard.ones) {
                        *acc += x;
                    }
                }
                // Keep the lowest-shard error so the reported failure is
                // scheduling-independent (like the sequential path, which
                // surfaces the first offending value in input order).
                Err(e) => {
                    if err.as_ref().is_none_or(|&(i, _)| idx < i) {
                        err = Some((idx, e));
                    }
                }
            }
            self.shards[idx] = job.shard;
        }
        match err {
            Some((_, e)) => Err(e),
            None => Ok(values.len() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_spawns_and_shuts_down() {
        let pool = CollectionPool::new(3);
        assert_eq!(pool.threads(), 3);
        drop(pool); // must not hang
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(CollectionPool::new(0).threads(), 1);
    }

    #[test]
    fn merged_counts_bound_by_reporters() {
        // Every position count is at most n, and the true-bit position of
        // each reporter contributes at most one — structural sanity of the
        // shard merge.
        let oracle = Arc::new(Oue::new(1.0, 32).unwrap());
        let values: Vec<usize> = (0..500).map(|i| i % 32).collect();
        let mut pool = CollectionPool::new(4);
        let mut ones = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        let n =
            pool.collect_ones(&oracle, &values, ReportMode::PerUser, &mut ones, &mut rng).unwrap();
        assert_eq!(n, 500);
        assert_eq!(ones.len(), 32);
        assert!(ones.iter().all(|&c| c <= 500));
        assert!(ones.iter().sum::<u64>() > 0);
    }

    #[test]
    fn out_of_domain_value_is_reported() {
        let oracle = Arc::new(Oue::new(1.0, 8).unwrap());
        let mut pool = CollectionPool::new(2);
        let mut ones = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        let res = pool.collect_ones(&oracle, &[1, 2, 8], ReportMode::PerUser, &mut ones, &mut rng);
        assert!(res.is_err());
    }

    #[test]
    fn empty_round_is_all_zero() {
        let oracle = Arc::new(Oue::new(1.0, 8).unwrap());
        let mut pool = CollectionPool::new(2);
        let mut ones = vec![7u64; 3];
        let mut rng = StdRng::seed_from_u64(1);
        let n =
            pool.collect_ones(&oracle, &[], ReportMode::Aggregate, &mut ones, &mut rng).unwrap();
        assert_eq!(n, 0);
        assert_eq!(ones, vec![0u64; 8]);
    }
}
