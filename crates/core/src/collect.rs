//! Sharded LDP collection pipeline (§IV-B user-side computation, §VII
//! acceleration).
//!
//! Per-user OUE perturbation dominates per-timestamp cost (Table V) and is
//! embarrassingly parallel across users: no reporter's randomness depends
//! on another's. The [`CollectionPool`] mirrors the proven synthesis-pool
//! architecture on the task-generic `WorkerPool` and runs either
//! collection kernel (`CollectionKernel`):
//!
//! - **Sequential** ([`CollectionPool::collect_ones`]): the reporter
//!   values are sharded into `threads` disjoint contiguous ranges (fixed
//!   sizes, a pure function of `(n, threads)`); one seed per shard is
//!   drawn from the caller's RNG *in shard order*, whether or not the
//!   shard is empty, so RNG consumption depends only on the thread count;
//!   each worker runs the fused perturb→tally round
//!   ([`Oue::collect_ones_into`]) over its shard into a private
//!   domain-sized ones accumulator; the caller merges accumulators by
//!   addition (`u64` addition is exact and commutative, so arrival order
//!   cannot affect the result).
//! - **Blocked** ([`CollectionPool::collect_ones_blocked`]): every draw
//!   is a pure function of `(key, reporter row, position)`, so the round
//!   needs exactly **one** key however many workers run it, and the
//!   merged counts are *bit-identical* at any thread count — not merely
//!   distribution-equivalent. Dense rounds shard the **domain** into
//!   [`GANG_POS`]-aligned ranges (each worker sweeps all reporters over
//!   its range, [`Oue::blocked_tally_range`]) and the caller stitches
//!   the disjoint ranges; sparse rounds shard the **reporters** with
//!   global row bases ([`Oue::blocked_tally_sparse`]) and merge by
//!   addition.
//!
//! Determinism contract: under `Sequential`, a fixed `(seed, threads)`
//! pair is bit-identical across runs and the merged counts are
//! distributionally equivalent to the sequential path; under `Blocked`,
//! a fixed seed is bit-identical across runs *and* thread counts.
//!
//! Shard buffers (values and ones) shuttle between the caller and the
//! workers and keep their capacity, so a steady-state collection round
//! performs zero heap allocations after warm-up.

use crate::pool::{draw_seeds, PoolError, PoolJob, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrasyn_ldp::{LdpError, Oue, Philox, ReportMode, GANG_POS};
use std::sync::Arc;

/// Why a sharded collection round failed.
#[derive(Debug)]
pub enum CollectError {
    /// The LDP mechanism itself rejected the round (e.g. an out-of-domain
    /// reporter value). Deterministic: the same inputs fail the same way
    /// on every replay.
    Ldp(LdpError),
    /// The worker pool died mid-round. The pool is poisoned and must be
    /// dropped; the partially merged accumulator is unusable.
    Pool(PoolError),
}

impl std::fmt::Display for CollectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectError::Ldp(e) => write!(f, "{e}"),
            CollectError::Pool(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CollectError {}

impl From<LdpError> for CollectError {
    fn from(e: LdpError) -> Self {
        CollectError::Ldp(e)
    }
}

impl From<PoolError> for CollectError {
    fn from(e: PoolError) -> Self {
        CollectError::Pool(e)
    }
}

/// One worker's owned slice of a collection round plus its private
/// accumulator.
#[derive(Debug, Default)]
struct CollectShard {
    /// The reporter values assigned to this shard: a contiguous range of
    /// the round's value slice (sequential / blocked-sparse), or a full
    /// copy of it (blocked-dense, where the *domain* is sharded instead).
    values: Vec<usize>,
    /// Private ones accumulator — domain-sized and merged by addition,
    /// except blocked-dense where it is range-sized and stitched.
    ones: Vec<u64>,
}

/// What one collection worker runs over its shard.
enum CollectTask {
    /// Fused perturb→tally over this shard's reporters, seeded per shard.
    Sequential { mode: ReportMode, seed: u64 },
    /// Blocked dense tally of domain range `lo..hi` over *all* reporters.
    BlockedDense { ph: Philox, lo: usize, hi: usize },
    /// Blocked sparse walk over this shard's reporters at global row
    /// `base`, into a domain-sized accumulator.
    BlockedSparse { ph: Philox, base: u32 },
}

/// One unit of collection work: the shard, an `Arc` snapshot of the
/// oracle, and the task to run.
struct CollectJob {
    shard: CollectShard,
    oracle: Arc<Oue>,
    task: CollectTask,
    result: Result<(), LdpError>,
}

impl PoolJob for CollectJob {
    fn run(&mut self) {
        self.result = match self.task {
            CollectTask::Sequential { mode, seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                self.oracle.collect_ones_into(
                    &self.shard.values,
                    mode,
                    &mut self.shard.ones,
                    &mut rng,
                )
            }
            CollectTask::BlockedDense { ref ph, lo, hi } => {
                self.shard.ones.clear();
                self.shard.ones.resize(hi - lo, 0);
                self.oracle.blocked_tally_range(
                    &self.shard.values,
                    0,
                    ph,
                    lo,
                    hi,
                    &mut self.shard.ones,
                )
            }
            CollectTask::BlockedSparse { ref ph, base } => {
                self.shard.ones.clear();
                self.shard.ones.resize(self.oracle.domain(), 0);
                self.oracle.blocked_tally_sparse(&self.shard.values, base, ph, &mut self.shard.ones)
            }
        };
    }
}

/// The collection instantiation of `WorkerPool`: a persistent pool of
/// fused perturb→tally workers plus the reusable shard buffers.
pub struct CollectionPool {
    pool: WorkerPool<CollectJob>,
    /// Reused shard states, indexed by shard; buffer capacity survives the
    /// worker round-trip.
    shards: Vec<CollectShard>,
    /// Reused per-shard seed buffer.
    seeds: Vec<u64>,
}

impl std::fmt::Debug for CollectionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectionPool").field("threads", &self.pool.threads()).finish()
    }
}

impl CollectionPool {
    /// Spawn `threads` collection workers (at least one).
    pub fn new(threads: usize) -> Self {
        let pool = WorkerPool::new(threads, "retrasyn-collect");
        let shards = (0..pool.threads()).map(|_| CollectShard::default()).collect();
        CollectionPool { pool, shards, seeds: Vec::new() }
    }

    /// Number of workers (= shards per round).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Run one sharded collection round over the reporters' true `values`,
    /// filling `ones` with the merged per-position counts.
    ///
    /// Exactly `threads` seeds are drawn from `rng` in shard order
    /// regardless of shard occupancy; empty shards contribute nothing.
    /// Zero heap allocations after warm-up. Returns the number of
    /// reporters.
    pub fn collect_ones<R: Rng + ?Sized>(
        &mut self,
        oracle: &Arc<Oue>,
        values: &[usize],
        mode: ReportMode,
        ones: &mut Vec<u64>,
        rng: &mut R,
    ) -> Result<u64, CollectError> {
        let shard_count = self.pool.threads();
        draw_seeds(&mut self.seeds, shard_count, rng);
        let chunk = values.len().div_ceil(shard_count).max(1);
        let mut outstanding = 0usize;
        for (idx, shard) in self.shards.iter_mut().enumerate() {
            let lo = (idx * chunk).min(values.len());
            let hi = ((idx + 1) * chunk).min(values.len());
            shard.values.clear();
            shard.values.extend_from_slice(&values[lo..hi]);
            if shard.values.is_empty() {
                continue;
            }
            self.pool.submit(
                idx,
                CollectJob {
                    shard: std::mem::take(shard),
                    oracle: Arc::clone(oracle),
                    task: CollectTask::Sequential { mode, seed: self.seeds[idx] },
                    result: Ok(()),
                },
            )?;
            outstanding += 1;
        }
        ones.clear();
        ones.resize(oracle.domain(), 0);
        self.drain(outstanding, ones).map(|()| values.len() as u64)
    }

    /// Run one **blocked-kernel** collection round keyed by `ph`, filling
    /// `ones` with the per-position counts. Bit-identical to
    /// [`Oue::collect_ones_blocked`]`(values, 0, ph, ones)` at **any**
    /// thread count, because every Bernoulli draw is addressed by
    /// `(key, row, position)` rather than consumed from shared RNG state:
    ///
    /// - dense regime ([`Oue::blocked_dense`]): the *domain* is sharded
    ///   into [`GANG_POS`]-aligned ranges — each worker sweeps every
    ///   reporter over its own range, keeping its accumulator tile
    ///   L1-resident — and the disjoint ranges are stitched back;
    /// - sparse regime: the *reporters* are sharded with their global row
    ///   bases and the domain-sized accumulators merge by exact addition.
    ///
    /// No seeds are drawn here — the single `ph` key is the round's entire
    /// randomness. Zero heap allocations after warm-up. Returns the number
    /// of reporters.
    pub fn collect_ones_blocked(
        &mut self,
        oracle: &Arc<Oue>,
        values: &[usize],
        ph: &Philox,
        ones: &mut Vec<u64>,
    ) -> Result<u64, CollectError> {
        let shard_count = self.pool.threads();
        ones.clear();
        ones.resize(oracle.domain(), 0);
        if values.is_empty() {
            return Ok(0);
        }
        let mut outstanding = 0usize;
        if oracle.blocked_dense() {
            // Domain-sharded: gang-aligned ranges, full reporter copy per
            // worker.
            let gangs = oracle.domain().div_ceil(GANG_POS);
            let chunk = gangs.div_ceil(shard_count).max(1) * GANG_POS;
            for (idx, shard) in self.shards.iter_mut().enumerate() {
                let lo = (idx * chunk).min(oracle.domain());
                let hi = ((idx + 1) * chunk).min(oracle.domain());
                if lo >= hi {
                    continue;
                }
                shard.values.clear();
                shard.values.extend_from_slice(values);
                self.pool.submit(
                    idx,
                    CollectJob {
                        shard: std::mem::take(shard),
                        oracle: Arc::clone(oracle),
                        task: CollectTask::BlockedDense { ph: *ph, lo, hi },
                        result: Ok(()),
                    },
                )?;
                outstanding += 1;
            }
        } else {
            // Reporter-sharded: contiguous value ranges with global row
            // bases.
            let chunk = values.len().div_ceil(shard_count).max(1);
            for (idx, shard) in self.shards.iter_mut().enumerate() {
                let lo = (idx * chunk).min(values.len());
                let hi = ((idx + 1) * chunk).min(values.len());
                shard.values.clear();
                shard.values.extend_from_slice(&values[lo..hi]);
                if shard.values.is_empty() {
                    continue;
                }
                self.pool.submit(
                    idx,
                    CollectJob {
                        shard: std::mem::take(shard),
                        oracle: Arc::clone(oracle),
                        task: CollectTask::BlockedSparse { ph: *ph, base: lo as u32 },
                        result: Ok(()),
                    },
                )?;
                outstanding += 1;
            }
        }
        self.drain(outstanding, ones).map(|()| values.len() as u64)
    }

    /// Receive `outstanding` finished jobs, folding each successful
    /// shard's accumulator into `ones` (stitched for blocked-dense range
    /// shards, exact addition otherwise — both bit-identical regardless
    /// of arrival order) and returning the lowest-shard error if any
    /// worker failed, so the reported failure is scheduling-independent.
    /// A [`PoolError`] (dead worker) aborts the drain immediately — the
    /// remaining replies can never arrive.
    fn drain(&mut self, outstanding: usize, ones: &mut [u64]) -> Result<(), CollectError> {
        let mut err: Option<(usize, LdpError)> = None;
        for _ in 0..outstanding {
            let (idx, job) = self.pool.recv()?;
            match job.result {
                Ok(()) => {
                    let dst = match job.task {
                        CollectTask::BlockedDense { lo, hi, .. } => &mut ones[lo..hi],
                        _ => &mut ones[..],
                    };
                    for (acc, &x) in dst.iter_mut().zip(&job.shard.ones) {
                        *acc += x;
                    }
                }
                Err(e) => {
                    if err.as_ref().is_none_or(|&(i, _)| idx < i) {
                        err = Some((idx, e));
                    }
                }
            }
            self.shards[idx] = job.shard;
        }
        match err {
            Some((_, e)) => Err(CollectError::Ldp(e)),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_spawns_and_shuts_down() {
        let pool = CollectionPool::new(3);
        assert_eq!(pool.threads(), 3);
        drop(pool); // must not hang
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(CollectionPool::new(0).threads(), 1);
    }

    #[test]
    fn merged_counts_bound_by_reporters() {
        // Every position count is at most n, and the true-bit position of
        // each reporter contributes at most one — structural sanity of the
        // shard merge.
        let oracle = Arc::new(Oue::new(1.0, 32).unwrap());
        let values: Vec<usize> = (0..500).map(|i| i % 32).collect();
        let mut pool = CollectionPool::new(4);
        let mut ones = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        let n =
            pool.collect_ones(&oracle, &values, ReportMode::PerUser, &mut ones, &mut rng).unwrap();
        assert_eq!(n, 500);
        assert_eq!(ones.len(), 32);
        assert!(ones.iter().all(|&c| c <= 500));
        assert!(ones.iter().sum::<u64>() > 0);
    }

    #[test]
    fn out_of_domain_value_is_reported() {
        let oracle = Arc::new(Oue::new(1.0, 8).unwrap());
        let mut pool = CollectionPool::new(2);
        let mut ones = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        let res = pool.collect_ones(&oracle, &[1, 2, 8], ReportMode::PerUser, &mut ones, &mut rng);
        assert!(res.is_err());
    }

    #[test]
    fn empty_round_is_all_zero() {
        let oracle = Arc::new(Oue::new(1.0, 8).unwrap());
        let mut pool = CollectionPool::new(2);
        let mut ones = vec![7u64; 3];
        let mut rng = StdRng::seed_from_u64(1);
        let n =
            pool.collect_ones(&oracle, &[], ReportMode::Aggregate, &mut ones, &mut rng).unwrap();
        assert_eq!(n, 0);
        assert_eq!(ones, vec![0u64; 8]);
    }

    #[test]
    fn blocked_pool_is_bit_identical_to_unsharded_kernel() {
        // Dense (ε = 1 → q ≈ 0.27) shards the domain, sparse (ε = 3.5 →
        // q ≈ 0.029) shards the reporters; both must reproduce the
        // unsharded blocked round bit-for-bit at every thread count. The
        // ragged 321-position domain exercises the stitched tail shard.
        for eps in [1.0, 3.5] {
            let oracle = Arc::new(Oue::new(eps, 321).unwrap());
            let values: Vec<usize> = (0..500).map(|i| (i * 13 + 7) % 321).collect();
            let ph = Philox::new(0xabad_1dea_0042_0099);
            let mut expect = Vec::new();
            oracle.collect_ones_blocked(&values, 0, &ph, &mut expect).unwrap();
            for threads in [1usize, 3, 4, 7] {
                let mut pool = CollectionPool::new(threads);
                let mut ones = Vec::new();
                let n = pool.collect_ones_blocked(&oracle, &values, &ph, &mut ones).unwrap();
                assert_eq!(n, 500);
                assert_eq!(ones, expect, "eps={eps} threads={threads}");
            }
        }
    }

    #[test]
    fn blocked_pool_reports_out_of_domain() {
        for eps in [1.0, 3.5] {
            let oracle = Arc::new(Oue::new(eps, 8).unwrap());
            let mut pool = CollectionPool::new(2);
            let mut ones = Vec::new();
            let res = pool.collect_ones_blocked(&oracle, &[1, 2, 8], &Philox::new(1), &mut ones);
            assert!(res.is_err(), "eps={eps}");
        }
    }

    #[test]
    fn blocked_pool_empty_round_is_all_zero() {
        let oracle = Arc::new(Oue::new(1.0, 8).unwrap());
        let mut pool = CollectionPool::new(2);
        let mut ones = vec![7u64; 3];
        let n = pool.collect_ones_blocked(&oracle, &[], &Philox::new(5), &mut ones).unwrap();
        assert_eq!(n, 0);
        assert_eq!(ones, vec![0u64; 8]);
    }
}
