//! Durable event write-ahead log (WAL) for streaming sessions.
//!
//! Because a session is bit-deterministic from `(seed, events, threads)`,
//! durability reduces to logging the events: replaying a recorded WAL
//! through a freshly constructed engine reproduces the *exact* session —
//! every snapshot, every release, bit for bit. This module provides the
//! log itself, a tee adapter so any [`EventSource`] gains durability, and
//! the checkpoint sidecar that bounds replay time.
//!
//! # On-disk format
//!
//! All integers are little-endian. A WAL file is a 28-byte header followed
//! by zero or more records, one per timestamp, in timestamp order:
//!
//! ```text
//! header: magic "RSWAL002" (8) | seed u64 | fingerprint u64 | crc32 u32
//! record: len u32 | payload (len bytes) | crc32 u32
//! payload: t u64 | count u32 | count × event
//! event:  user u64 | tag u8 (0=Move 1=Enter 2=Quit) | a u32 | b u32
//! ```
//!
//! (Format 002 widened the cell operands from u16 to u32 so adaptive
//! discretizations can exceed 65 535 cells; 001 logs are not readable.)
//!
//! The header CRC covers the magic and both fields; each record CRC covers
//! the length prefix *and* the payload, so any single-bit corruption —
//! including in the framing — is detected. The `fingerprint` is the
//! engine's [`StreamingEngine::fingerprint`]: an FNV-1a hash over seed,
//! engine kind, configuration and the discretization descriptor, so a WAL
//! can only be replayed into an identically configured session.
//!
//! # Torn and corrupt tails
//!
//! A crash can leave a partially written record at the end of the file.
//! [`WalContents::read`] validates records in order and stops at the first
//! framing or CRC failure, keeping the valid prefix: recovery yields the
//! session as of the last fully persisted timestamp instead of failing
//! outright. Only a corrupt *header* is a hard error — nothing after it
//! can be trusted.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] trades durability for throughput: `EveryBatch` fsyncs
//! after each timestamp (a crash loses nothing that was acknowledged),
//! `EveryN(k)` fsyncs every `k` batches (bounded loss window), `Never`
//! leaves flushing to the OS (contents survive process crashes but not
//! host crashes).
//!
//! # Checkpoints
//!
//! Replay from t=0 is O(session length). A [`Checkpointer`] serializes
//! the engine's full mutable state (store columns, model, ledger,
//! registry, allocator, RNG) to an atomically replaced sidecar file every
//! `k` timestamps, so [`StreamingEngine::recover`] only replays the WAL
//! suffix after the last checkpoint. A corrupt or stale checkpoint is
//! *never* fatal: recovery reports it in
//! [`Recovery::checkpoint`] and falls back to full replay.

use std::fmt;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::session::{EventSource, StreamingEngine};
use retrasyn_geo::{CellId, SpaceDescriptor, Topology, TransitionState, UserEvent};

/// Magic bytes opening every WAL file.
const WAL_MAGIC: &[u8; 8] = b"RSWAL002";
/// Magic bytes opening every checkpoint sidecar.
const CKPT_MAGIC: &[u8; 8] = b"RSCKPT01";
/// Header: magic + seed + fingerprint + crc32.
const HEADER_LEN: usize = 8 + 8 + 8 + 4;
/// Fixed per-event encoding size: user u64 + tag u8 + two u32 operands.
const EVENT_LEN: usize = 8 + 1 + 4 + 4;
/// Fixed payload prefix: t u64 + count u32.
const PAYLOAD_PREFIX: usize = 8 + 4;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected), hand-rolled — no external crates.

static CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC32 of `bytes` (the polynomial used by zip/PNG/Ethernet).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Little-endian `u32` at `off`. Callers bounds-check the enclosing
/// region before decoding fixed fields, so this centralizes the
/// fixed-width reads that would otherwise each carry a
/// `try_into().expect(…)` on the recovery path.
fn le_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

/// Little-endian `u64` at `off`; same contract as [`le_u32`].
fn le_u64(bytes: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(b)
}

// ---------------------------------------------------------------------------
// FNV-1a fingerprinting (session identity).

/// Incremental FNV-1a hasher used to fingerprint a session's immutable
/// identity (seed, engine kind, config, discretization). Not cryptographic
/// — it guards against accidental mismatches, not adversaries.
#[derive(Debug, Clone)]
pub(crate) struct Fingerprint(u64);

impl Fingerprint {
    pub(crate) fn new(kind: &str) -> Self {
        let mut f = Fingerprint(0xCBF2_9CE4_8422_2325);
        f.bytes(kind.as_bytes());
        f
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self
    }

    pub(crate) fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub(crate) fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    pub(crate) fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Fold a discretization's full identity in: the variant tag, the
    /// exact bit patterns of the bounding box, and the structure — grid
    /// resolution for uniform spaces; depth and every leaf for quad
    /// spaces, so changing a single split changes the fingerprint.
    pub(crate) fn space(&mut self, d: &SpaceDescriptor) -> &mut Self {
        match d {
            SpaceDescriptor::Uniform { k, bbox } => {
                self.u64(0).u64(*k as u64);
                self.f64(bbox.min.x).f64(bbox.min.y).f64(bbox.max.x).f64(bbox.max.y)
            }
            SpaceDescriptor::Quad { bbox, depth, leaves } => {
                self.u64(1).u64(*depth as u64);
                self.f64(bbox.min.x).f64(bbox.min.y).f64(bbox.max.x).f64(bbox.max.y);
                self.usize(leaves.len());
                for l in leaves {
                    self.u64(l.x as u64).u64(l.y as u64).u64(l.depth as u64);
                }
                self
            }
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Errors.

/// Failure reading, writing or replaying a WAL or checkpoint.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file's contents are invalid at `offset` (header damage,
    /// semantic corruption that survived the CRC, or a corrupt
    /// checkpoint). Torn/corrupt *tail records* are not errors — they
    /// truncate the replay to the valid prefix instead.
    Corrupt {
        /// Byte offset of the first invalid content.
        offset: u64,
        /// Human-readable description of what failed to validate.
        detail: String,
    },
    /// The WAL belongs to a differently configured session (fingerprint
    /// mismatch).
    Mismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::Corrupt { offset, detail } => {
                write!(f, "corrupt WAL data at byte {offset}: {detail}")
            }
            WalError::Mismatch { detail } => write!(f, "WAL/session mismatch: {detail}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Little-endian encode/decode helpers (shared with engine checkpoints).

/// Append-only little-endian byte encoder.
#[derive(Debug, Default)]
pub(crate) struct Enc {
    pub(crate) buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Cursor-style little-endian decoder with descriptive errors.
#[derive(Debug)]
pub(crate) struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() - self.pos < n {
            return Err(format!(
                "unexpected end of data: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(le_u32(self.take(4)?, 0))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(le_u64(self.take(8)?, 0))
    }
    pub(crate) fn usize(&mut self) -> Result<usize, String> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| format!("value {v} does not fit in usize"))
    }
    pub(crate) fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Assert the payload was consumed exactly.
    pub(crate) fn finish(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after payload", self.bytes.len() - self.pos))
        }
    }
}

// ---------------------------------------------------------------------------
// Event encoding.

fn encode_event(enc: &mut Enc, e: &UserEvent) {
    enc.u64(e.user);
    match e.state {
        TransitionState::Move { from, to } => {
            enc.u8(0);
            enc.u32(from.0);
            enc.u32(to.0);
        }
        TransitionState::Enter(c) => {
            enc.u8(1);
            enc.u32(c.0);
            enc.u32(0);
        }
        TransitionState::Quit(c) => {
            enc.u8(2);
            enc.u32(c.0);
            enc.u32(0);
        }
    }
}

fn decode_event(dec: &mut Dec<'_>) -> Result<UserEvent, String> {
    let user = dec.u64()?;
    let tag = dec.u8()?;
    let a = dec.u32()?;
    let b = dec.u32()?;
    let state = match tag {
        0 => TransitionState::Move { from: CellId(a), to: CellId(b) },
        1 => TransitionState::Enter(CellId(a)),
        2 => TransitionState::Quit(CellId(a)),
        other => return Err(format!("invalid event tag {other}")),
    };
    Ok(UserEvent { user, state })
}

// ---------------------------------------------------------------------------
// Writer.

/// When the WAL writer forces appended records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended batch: an acknowledged timestamp is
    /// never lost, at one sync per step.
    EveryBatch,
    /// `fsync` after every `k` batches (`k ≥ 1`): at most `k − 1` recent
    /// timestamps can be lost to a host crash.
    EveryN(u64),
    /// Never force; the OS flushes at its leisure. Survives process
    /// crashes (the kernel holds the pages) but not host crashes.
    Never,
}

/// Appends length-prefixed, CRC-framed per-timestamp batches to a WAL
/// file. Create with [`WalWriter::create`] for a fresh session or
/// [`WalWriter::reopen`] to continue a recovered one.
#[derive(Debug)]
pub struct WalWriter {
    file: io::BufWriter<fs::File>,
    path: PathBuf,
    policy: FsyncPolicy,
    next_t: u64,
    since_sync: u64,
    buf: Vec<u8>,
    /// Byte offset the next record will be written at — the length of the
    /// header plus every appended record. Lets a supervisor roll back a
    /// suspect batch with [`WalWriter::truncate_to`].
    offset: u64,
}

impl WalWriter {
    /// Create (truncating) a WAL at `path` for a session identified by
    /// `(seed, fingerprint)`. The header is written and synced
    /// immediately.
    pub fn create(
        path: impl AsRef<Path>,
        seed: u64,
        fingerprint: u64,
        policy: FsyncPolicy,
    ) -> Result<Self, WalError> {
        if let FsyncPolicy::EveryN(k) = policy {
            assert!(k >= 1, "FsyncPolicy::EveryN requires k >= 1");
        }
        let path = path.as_ref().to_path_buf();
        let file = fs::OpenOptions::new().write(true).create(true).truncate(true).open(&path)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&seed.to_le_bytes());
        header.extend_from_slice(&fingerprint.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        let mut file = io::BufWriter::new(file);
        file.write_all(&header)?;
        file.flush()?;
        file.get_ref().sync_data()?;
        Ok(WalWriter {
            file,
            path,
            policy,
            next_t: 0,
            since_sync: 0,
            buf: Vec::new(),
            offset: HEADER_LEN as u64,
        })
    }

    /// Reopen an existing WAL to continue appending after recovery. The
    /// torn/corrupt tail (everything past `contents.valid_len`) is
    /// truncated away and the writer positions at the end of the valid
    /// prefix, expecting timestamp `contents.batches.len()` next.
    pub fn reopen(
        contents: &WalContents,
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> Result<Self, WalError> {
        if let FsyncPolicy::EveryN(k) = policy {
            assert!(k >= 1, "FsyncPolicy::EveryN requires k >= 1");
        }
        let path = path.as_ref().to_path_buf();
        let file = fs::OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(contents.valid_len)?;
        let mut file = io::BufWriter::new(file);
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            path,
            policy,
            next_t: contents.batches.len() as u64,
            since_sync: 0,
            buf: Vec::new(),
            offset: contents.valid_len,
        })
    }

    /// Append the batch for timestamp `t`, which must be the next
    /// consecutive timestamp.
    pub fn append_batch(&mut self, t: u64, events: &[UserEvent]) -> Result<(), WalError> {
        assert_eq!(t, self.next_t, "WAL batches must cover consecutive timestamps");
        let payload_len = PAYLOAD_PREFIX + EVENT_LEN * events.len();
        assert!(payload_len <= u32::MAX as usize, "batch too large for WAL framing");
        self.buf.clear();
        self.buf.extend_from_slice(&(payload_len as u32).to_le_bytes());
        let mut enc = Enc { buf: std::mem::take(&mut self.buf) };
        enc.u64(t);
        enc.u32(events.len() as u32);
        for e in events {
            encode_event(&mut enc, e);
        }
        self.buf = enc.buf;
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.file.write_all(&self.buf)?;
        self.offset += self.buf.len() as u64;
        self.next_t += 1;
        self.since_sync += 1;
        match self.policy {
            FsyncPolicy::EveryBatch => self.sync()?,
            FsyncPolicy::EveryN(k) if self.since_sync >= k => self.sync()?,
            _ => {}
        }
        Ok(())
    }

    /// Flush buffered records and force them to stable storage.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.since_sync = 0;
        Ok(())
    }

    /// Number of batches appended so far (equivalently: the next expected
    /// timestamp).
    pub fn batches_written(&self) -> u64 {
        self.next_t
    }

    /// Byte offset the next record will land at (header plus every record
    /// appended so far). A supervisor captures it before an append to be
    /// able to roll that append back (crate-internal `truncate_to`).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Roll the WAL back to `offset` (a value previously returned by
    /// [`offset`](Self::offset)), discarding every record appended since,
    /// and rewind the expected timestamp to `next_t`. The truncation is
    /// synced before returning, so a crash immediately afterwards recovers
    /// the rolled-back log, never the suspect records. Used by the
    /// supervisor to remove a batch whose replay keeps crashing the
    /// engine.
    pub(crate) fn truncate_to(&mut self, offset: u64, next_t: u64) -> Result<(), WalError> {
        debug_assert!(offset >= HEADER_LEN as u64 && offset <= self.offset);
        self.file.flush()?;
        self.file.get_ref().set_len(offset)?;
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.get_ref().sync_data()?;
        self.offset = offset;
        self.next_t = next_t;
        self.since_sync = 0;
        Ok(())
    }

    /// The WAL file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// Reader.

/// A parsed WAL: the session identity from the header plus every fully
/// persisted batch, in timestamp order.
#[derive(Debug, Clone)]
pub struct WalContents {
    /// Seed recorded in the header.
    pub seed: u64,
    /// Session fingerprint recorded in the header.
    pub fingerprint: u64,
    /// One event batch per timestamp, `batches[t]` covering timestamp `t`.
    pub batches: Vec<Vec<UserEvent>>,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: u64,
    /// Whether a torn or corrupt tail was discarded after `valid_len`.
    pub truncated: bool,
}

impl WalContents {
    /// Read and validate a WAL file. A corrupt header is an error; a torn
    /// or corrupt tail truncates to the last intact timestamp and sets
    /// [`WalContents::truncated`].
    pub fn read(path: impl AsRef<Path>) -> Result<Self, WalError> {
        let mut bytes = Vec::new();
        fs::File::open(path.as_ref())?.read_to_end(&mut bytes)?;
        Self::parse(&bytes)
    }

    /// Parse an in-memory WAL image (see [`WalContents::read`]).
    pub fn parse(bytes: &[u8]) -> Result<Self, WalError> {
        if bytes.len() < HEADER_LEN {
            return Err(WalError::Corrupt {
                offset: bytes.len() as u64,
                detail: format!(
                    "file is {} bytes, shorter than the {HEADER_LEN}-byte header",
                    bytes.len()
                ),
            });
        }
        if &bytes[..8] != WAL_MAGIC {
            return Err(WalError::Corrupt {
                offset: 0,
                detail: format!("bad magic {:02x?}, expected \"RSWAL002\"", &bytes[..8]),
            });
        }
        let stored_crc = le_u32(bytes, HEADER_LEN - 4);
        if crc32(&bytes[..HEADER_LEN - 4]) != stored_crc {
            return Err(WalError::Corrupt {
                offset: 0,
                detail: "header checksum mismatch".to_string(),
            });
        }
        let seed = le_u64(bytes, 8);
        let fingerprint = le_u64(bytes, 16);

        let mut batches = Vec::new();
        let mut pos = HEADER_LEN;
        let mut truncated = false;
        while pos < bytes.len() {
            match parse_record(&bytes[pos..], batches.len() as u64) {
                Ok((events, consumed)) => {
                    batches.push(events);
                    pos += consumed;
                }
                // Any framing/CRC/semantic failure in a record: keep the
                // prefix up to the previous record. Framing past a flip
                // can't be trusted, so no attempt is made to resynchronize.
                Err(_) => {
                    truncated = true;
                    break;
                }
            }
        }
        Ok(WalContents { seed, fingerprint, batches, valid_len: pos as u64, truncated })
    }
}

/// Parse one record at the start of `bytes`; returns the events and the
/// bytes consumed, or a description of why the record is torn/corrupt.
fn parse_record(bytes: &[u8], expected_t: u64) -> Result<(Vec<UserEvent>, usize), String> {
    if bytes.len() < 4 {
        return Err("torn length prefix".to_string());
    }
    let payload_len = le_u32(bytes, 0) as usize;
    let record_len = 4 + payload_len + 4;
    if bytes.len() < record_len {
        return Err("torn record body".to_string());
    }
    let stored_crc = le_u32(bytes, 4 + payload_len);
    if crc32(&bytes[..4 + payload_len]) != stored_crc {
        return Err("record checksum mismatch".to_string());
    }
    let mut dec = Dec::new(&bytes[4..4 + payload_len]);
    let t = dec.u64()?;
    if t != expected_t {
        return Err(format!("record timestamp {t}, expected {expected_t}"));
    }
    let count = dec.u32()? as usize;
    if payload_len != PAYLOAD_PREFIX + EVENT_LEN * count {
        return Err(format!("payload length {payload_len} disagrees with event count {count}"));
    }
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        events.push(decode_event(&mut dec)?);
    }
    dec.finish()?;
    Ok((events, record_len))
}

// ---------------------------------------------------------------------------
// Replay source.

/// An [`EventSource`] that replays a recorded WAL, batch by batch. Open
/// one with [`WalSource::replay`] (or [`WalReplay::open`]); drive it into
/// a fresh engine to reconstruct the logged session exactly.
#[derive(Debug, Clone)]
pub struct WalReplay {
    contents: WalContents,
    pos: usize,
}

impl WalReplay {
    /// Open `path` for replay. Torn/corrupt tails are truncated to the
    /// valid prefix (see [`WalContents::read`]); inspect
    /// [`WalReplay::contents`] to find out.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, WalError> {
        Ok(WalReplay { contents: WalContents::read(path)?, pos: 0 })
    }

    /// Replay directly from parsed contents.
    pub fn from_contents(contents: WalContents) -> Self {
        WalReplay { contents, pos: 0 }
    }

    /// The parsed WAL this source replays.
    pub fn contents(&self) -> &WalContents {
        &self.contents
    }
}

impl EventSource for WalReplay {
    fn next_batch(&mut self) -> Option<&[UserEvent]> {
        let batch = self.contents.batches.get(self.pos)?;
        self.pos += 1;
        Some(batch)
    }
}

// ---------------------------------------------------------------------------
// Tee source.

/// Tee adapter giving any [`EventSource`] durability: every batch the
/// inner source yields is appended to the WAL before the engine sees it,
/// so the log always covers at least what the session has ingested.
///
/// A WAL write failure panics with a descriptive message rather than
/// silently dropping events — a WAL that quietly diverges from the
/// session it claims to record would defeat the purpose of having one.
#[derive(Debug)]
pub struct WalSource<S> {
    inner: S,
    writer: WalWriter,
    next_t: u64,
}

impl<S: EventSource> WalSource<S> {
    /// Wrap `inner`, logging every yielded batch to `writer`. The writer's
    /// next expected timestamp must match the inner source's next batch
    /// (0 for a fresh session; the recovery point when continuing after
    /// [`WalWriter::reopen`]).
    pub fn tee(inner: S, writer: WalWriter) -> Self {
        let next_t = writer.batches_written();
        WalSource { inner, writer, next_t }
    }

    /// Unwrap, returning the inner source and the writer (e.g. to `sync`
    /// at session end).
    pub fn into_parts(self) -> (S, WalWriter) {
        (self.inner, self.writer)
    }

    /// The underlying writer.
    pub fn writer(&mut self) -> &mut WalWriter {
        &mut self.writer
    }
}

impl WalSource<WalReplay> {
    /// Open a recorded WAL for replay; the result is itself an
    /// [`EventSource`]. Equivalent to [`WalReplay::open`].
    pub fn replay(path: impl AsRef<Path>) -> Result<WalReplay, WalError> {
        WalReplay::open(path)
    }
}

impl<S: EventSource> EventSource for WalSource<S> {
    fn next_batch(&mut self) -> Option<&[UserEvent]> {
        let batch = self.inner.next_batch()?;
        self.writer
            .append_batch(self.next_t, batch)
            // xtask:allow(ERR001, EventSource has no error channel; the supervisor catches the unwind and rolls the WAL back)
            .unwrap_or_else(|e| panic!("failed to append batch t={} to WAL: {e}", self.next_t));
        self.next_t += 1;
        Some(batch)
    }
}

// ---------------------------------------------------------------------------
// Checkpoints.

/// Writes the engine's serialized state to an atomically replaced sidecar
/// file (`<wal>.ckpt`) every `every` timestamps, bounding recovery replay
/// to the last checkpoint interval.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    path: PathBuf,
    every: u64,
}

impl Checkpointer {
    /// Checkpoint the session of the WAL at `wal_path` every `every`
    /// timestamps (`every ≥ 1`) into the conventional sidecar path.
    pub fn new(wal_path: impl AsRef<Path>, every: u64) -> Self {
        assert!(every >= 1, "checkpoint interval must be >= 1");
        Checkpointer { path: Self::sidecar(wal_path), every }
    }

    /// The conventional checkpoint sidecar path for a WAL: `<wal>.ckpt`.
    pub fn sidecar(wal_path: impl AsRef<Path>) -> PathBuf {
        let mut os = wal_path.as_ref().as_os_str().to_os_string();
        os.push(".ckpt");
        PathBuf::from(os)
    }

    /// The sidecar file this checkpointer writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Save a checkpoint if the engine's clock is on the interval. Call
    /// after each `step`. Returns whether a checkpoint was written
    /// (`false` off-interval or for engines without checkpoint support).
    pub fn maybe_save<E: StreamingEngine + ?Sized>(&self, engine: &E) -> Result<bool, WalError> {
        let t = engine.next_timestamp();
        if t == 0 || !t.is_multiple_of(self.every) {
            return Ok(false);
        }
        self.save(engine)
    }

    /// Save a checkpoint unconditionally (`false` only for engines
    /// without checkpoint support). The sidecar is written to a temporary
    /// file, synced, then renamed over the old checkpoint — a crash
    /// mid-write leaves the previous checkpoint intact.
    pub fn save<E: StreamingEngine + ?Sized>(&self, engine: &E) -> Result<bool, WalError> {
        let Some(payload) = engine.checkpoint_bytes() else {
            return Ok(false);
        };
        let mut bytes = Vec::with_capacity(HEADER_LEN + 8 + payload.len() + 4);
        bytes.extend_from_slice(CKPT_MAGIC);
        bytes.extend_from_slice(&engine.fingerprint().to_le_bytes());
        bytes.extend_from_slice(&engine.next_timestamp().to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());

        let mut tmp = self.path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &self.path)?;
        Ok(true)
    }
}

/// Load and validate a checkpoint sidecar. `Ok(None)` if the file does
/// not exist; `Err` if it exists but is corrupt or belongs to a different
/// session (callers fall back to full WAL replay).
pub(crate) fn load_checkpoint(
    path: &Path,
    fingerprint: u64,
) -> Result<Option<(u64, Vec<u8>)>, WalError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let corrupt = |offset: usize, detail: String| WalError::Corrupt {
        offset: offset as u64,
        detail: format!("checkpoint {}: {detail}", path.display()),
    };
    if bytes.len() < 8 + 8 + 8 + 8 + 4 {
        return Err(corrupt(bytes.len(), "file shorter than fixed fields".to_string()));
    }
    if &bytes[..8] != CKPT_MAGIC {
        return Err(corrupt(0, format!("bad magic {:02x?}", &bytes[..8])));
    }
    let stored_crc = le_u32(&bytes, bytes.len() - 4);
    if crc32(&bytes[..bytes.len() - 4]) != stored_crc {
        return Err(corrupt(0, "checksum mismatch".to_string()));
    }
    let fp = le_u64(&bytes, 8);
    if fp != fingerprint {
        return Err(WalError::Mismatch {
            detail: format!(
                "checkpoint {} fingerprint {fp:#018x} does not match session {fingerprint:#018x}",
                path.display()
            ),
        });
    }
    let t = le_u64(&bytes, 16);
    let payload_len = le_u64(&bytes, 24) as usize;
    if bytes.len() != 32 + payload_len + 4 {
        return Err(corrupt(
            24,
            format!("payload length field {payload_len} disagrees with file size"),
        ));
    }
    Ok(Some((t, bytes[32..32 + payload_len].to_vec())))
}

// ---------------------------------------------------------------------------
// Recovery.

/// How a recovery used the checkpoint sidecar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointUse {
    /// No checkpoint sidecar existed.
    None,
    /// State was restored from a checkpoint taken after timestamp
    /// `at − 1`; only the WAL suffix from `at` was replayed.
    Restored {
        /// First replayed timestamp.
        at: u64,
    },
    /// A sidecar existed but could not be used (corrupt, mismatched, or
    /// ahead of the WAL's valid prefix); recovery fell back to full
    /// replay.
    Ignored {
        /// Why the checkpoint was unusable.
        reason: String,
    },
}

/// Outcome of [`StreamingEngine::recover`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// First timestamp replayed from the WAL (0 unless a checkpoint was
    /// restored).
    pub resumed_from: u64,
    /// Number of batches replayed through `step`.
    pub replayed: u64,
    /// Whether a torn/corrupt WAL tail was discarded — the session is the
    /// bit-identical prefix up to the last intact timestamp.
    pub truncated: bool,
    /// Checkpoint usage.
    pub checkpoint: CheckpointUse,
}

impl Recovery {
    /// The session's next timestamp after recovery (= batches replayed +
    /// checkpoint base).
    pub fn next_timestamp(&self) -> u64 {
        self.resumed_from + self.replayed
    }
}

/// Validate that a batch only contains events the engine can ingest
/// without panicking: cells inside the discretization and movements
/// between adjacent cells. CRC framing makes reaching this check with bad
/// data astronomically unlikely; it converts the residual risk into a
/// descriptive error instead of a replay panic.
fn validate_batch(topo: &Topology, t: u64, events: &[UserEvent]) -> Result<(), WalError> {
    let cells = topo.num_cells();
    let bad = |detail: String| WalError::Corrupt {
        offset: 0,
        detail: format!("batch t={t} passed its checksum but is semantically invalid: {detail}"),
    };
    for e in events {
        match e.state {
            TransitionState::Move { from, to } => {
                if from.index() >= cells || to.index() >= cells {
                    return Err(bad(format!("move {from:?}->{to:?} outside the grid")));
                }
                if !topo.are_adjacent(from, to) {
                    return Err(bad(format!("move {from:?}->{to:?} between non-adjacent cells")));
                }
            }
            TransitionState::Enter(c) | TransitionState::Quit(c) => {
                if c.index() >= cells {
                    return Err(bad(format!("cell {c:?} outside the grid")));
                }
            }
        }
    }
    Ok(())
}

/// Shared implementation behind [`StreamingEngine::recover`].
pub(crate) fn recover_engine<E: StreamingEngine + ?Sized>(
    engine: &mut E,
    wal_path: &Path,
) -> Result<Recovery, WalError> {
    let wal = WalContents::read(wal_path)?;
    let fingerprint = engine.fingerprint();
    if wal.fingerprint != fingerprint {
        return Err(WalError::Mismatch {
            detail: format!(
                "WAL {} was recorded by session {:#018x}, this engine is {fingerprint:#018x} \
                 (seed, engine kind, config and discretization must all match)",
                wal_path.display(),
                wal.fingerprint
            ),
        });
    }
    // Pre-validate every batch before mutating the engine, so a semantic
    // failure surfaces as an error, never a half-replayed panic.
    for (t, batch) in wal.batches.iter().enumerate() {
        validate_batch(engine.topology(), t as u64, batch)?;
    }

    engine.reset();
    let mut resumed_from = 0u64;
    let mut checkpoint = CheckpointUse::None;
    let ckpt_path = Checkpointer::sidecar(wal_path);
    match load_checkpoint(&ckpt_path, fingerprint) {
        Ok(None) => {}
        Ok(Some((t, payload))) => {
            if t > wal.batches.len() as u64 {
                checkpoint = CheckpointUse::Ignored {
                    reason: format!(
                        "checkpoint covers t={t} but the WAL only has {} valid timestamps",
                        wal.batches.len()
                    ),
                };
            } else {
                match engine.restore_checkpoint(&payload) {
                    Ok(()) => {
                        debug_assert_eq!(engine.next_timestamp(), t);
                        resumed_from = t;
                        checkpoint = CheckpointUse::Restored { at: t };
                    }
                    Err(reason) => {
                        // A partial restore may have touched state: start
                        // over from a clean reset and replay everything.
                        engine.reset();
                        checkpoint = CheckpointUse::Ignored { reason };
                    }
                }
            }
        }
        Err(e) => {
            checkpoint = CheckpointUse::Ignored { reason: e.to_string() };
        }
    }

    for (i, batch) in wal.batches.iter().enumerate().skip(resumed_from as usize) {
        engine.step(i as u64, batch);
    }
    Ok(Recovery {
        resumed_from,
        replayed: wal.batches.len() as u64 - resumed_from,
        truncated: wal.truncated,
        checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp path per test invocation (no tempfile crate offline).
    pub(crate) fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("retrasyn-wal-{}-{tag}-{n}.wal", std::process::id()))
    }

    fn sample_batches() -> Vec<Vec<UserEvent>> {
        vec![
            vec![
                UserEvent { user: 3, state: TransitionState::Enter(CellId(5)) },
                UserEvent { user: 9, state: TransitionState::Enter(CellId(0)) },
            ],
            vec![],
            vec![
                UserEvent {
                    user: 3,
                    state: TransitionState::Move { from: CellId(5), to: CellId(6) },
                },
                UserEvent { user: 9, state: TransitionState::Quit(CellId(0)) },
            ],
        ]
    }

    fn write_sample(path: &Path, policy: FsyncPolicy) -> Vec<Vec<UserEvent>> {
        let batches = sample_batches();
        let mut w = WalWriter::create(path, 42, 0xDEAD_BEEF, policy).unwrap();
        for (t, b) in batches.iter().enumerate() {
            w.append_batch(t as u64, b).unwrap();
        }
        w.sync().unwrap();
        batches
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_write_read() {
        let path = temp_path("roundtrip");
        let batches = write_sample(&path, FsyncPolicy::EveryBatch);
        let wal = WalContents::read(&path).unwrap();
        assert_eq!(wal.seed, 42);
        assert_eq!(wal.fingerprint, 0xDEAD_BEEF);
        assert_eq!(wal.batches, batches);
        assert!(!wal.truncated);
        assert_eq!(wal.valid_len, fs::metadata(&path).unwrap().len());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn every_n_and_never_policies_accept_appends() {
        for policy in [FsyncPolicy::EveryN(2), FsyncPolicy::Never] {
            let path = temp_path("policy");
            let batches = write_sample(&path, policy);
            let wal = WalContents::read(&path).unwrap();
            assert_eq!(wal.batches, batches);
            let _ = fs::remove_file(&path);
        }
    }

    #[test]
    fn replay_is_an_event_source() {
        let path = temp_path("replay");
        let batches = write_sample(&path, FsyncPolicy::Never);
        let mut src = WalSource::replay(&path).unwrap();
        let mut seen = Vec::new();
        while let Some(b) = src.next_batch() {
            seen.push(b.to_vec());
        }
        assert_eq!(seen, batches);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncation_keeps_valid_prefix() {
        let path = temp_path("truncate");
        write_sample(&path, FsyncPolicy::Never);
        let full = fs::read(&path).unwrap();
        let wal = WalContents::parse(&full).unwrap();
        assert_eq!(wal.batches.len(), 3);
        // Chop every byte length from just-after-header to full-1: each
        // must parse to a prefix (never error, never panic).
        for cut in HEADER_LEN..full.len() {
            let part = WalContents::parse(&full[..cut]).unwrap();
            assert!(part.batches.len() <= wal.batches.len());
            assert_eq!(part.batches[..], wal.batches[..part.batches.len()]);
            assert!(part.valid_len <= cut as u64);
            // Re-parsing only the valid prefix is clean.
            let clean = WalContents::parse(&full[..part.valid_len as usize]).unwrap();
            assert!(!clean.truncated);
            assert_eq!(clean.batches, part.batches);
        }
        // Chopping into the header is a hard, descriptive error.
        for cut in 0..HEADER_LEN {
            let err = WalContents::parse(&full[..cut]).unwrap_err();
            assert!(matches!(err, WalError::Corrupt { .. }), "cut={cut}: {err}");
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn bit_flips_detected_everywhere() {
        let path = temp_path("bitflip");
        write_sample(&path, FsyncPolicy::Never);
        let full = fs::read(&path).unwrap();
        let baseline = WalContents::parse(&full).unwrap();
        for offset in 0..full.len() {
            for bit in [0u8, 3, 7] {
                let mut corrupted = full.clone();
                corrupted[offset] ^= 1 << bit;
                match WalContents::parse(&corrupted) {
                    // Header flips must error out.
                    Err(WalError::Corrupt { .. }) => assert!(offset < HEADER_LEN),
                    Err(e) => panic!("unexpected error kind at offset {offset}: {e}"),
                    // Record flips must truncate to a strict prefix that
                    // matches the baseline bit-for-bit.
                    Ok(wal) => {
                        assert!(offset >= HEADER_LEN, "header flip at {offset} not caught");
                        assert!(wal.truncated);
                        assert!(wal.batches.len() < baseline.batches.len());
                        assert_eq!(wal.batches[..], baseline.batches[..wal.batches.len()]);
                    }
                }
            }
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn reopen_truncates_torn_tail_and_continues() {
        let path = temp_path("reopen");
        write_sample(&path, FsyncPolicy::Never);
        // Tear the last record.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        let wal = WalContents::read(&path).unwrap();
        assert!(wal.truncated);
        assert_eq!(wal.batches.len(), 2);
        // Reopen and append the repaired timestamp 2 plus a new one.
        let mut w = WalWriter::reopen(&wal, &path, FsyncPolicy::EveryBatch).unwrap();
        assert_eq!(w.batches_written(), 2);
        let repaired = sample_batches()[2].clone();
        w.append_batch(2, &repaired).unwrap();
        w.append_batch(3, &[]).unwrap();
        drop(w);
        let wal = WalContents::read(&path).unwrap();
        assert!(!wal.truncated);
        assert_eq!(wal.batches.len(), 4);
        assert_eq!(wal.batches[2], repaired);
        let _ = fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "consecutive timestamps")]
    fn writer_rejects_timestamp_gaps() {
        let path = temp_path("gap");
        let mut w = WalWriter::create(&path, 1, 2, FsyncPolicy::Never).unwrap();
        let _ = fs::remove_file(&path);
        w.append_batch(5, &[]).unwrap();
    }

    #[test]
    fn tee_logs_what_it_yields() {
        use crate::session::IterSource;
        let path = temp_path("tee");
        let batches = sample_batches();
        let writer = WalWriter::create(&path, 7, 11, FsyncPolicy::EveryBatch).unwrap();
        let mut src = WalSource::tee(IterSource::new(batches.clone().into_iter()), writer);
        let mut n = 0;
        while src.next_batch().is_some() {
            n += 1;
        }
        assert_eq!(n, batches.len());
        let (_, mut writer) = src.into_parts();
        writer.sync().unwrap();
        let wal = WalContents::read(&path).unwrap();
        assert_eq!((wal.seed, wal.fingerprint), (7, 11));
        assert_eq!(wal.batches, batches);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_sidecar_roundtrip_and_corruption() {
        let path = temp_path("ckpt");
        let ckpt = Checkpointer::sidecar(&path);
        assert!(ckpt.to_string_lossy().ends_with(".wal.ckpt"));
        // Missing file: Ok(None).
        assert!(load_checkpoint(&ckpt, 1).unwrap().is_none());
        // Hand-rolled valid sidecar.
        let payload = vec![1u8, 2, 3, 4, 5];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CKPT_MAGIC);
        bytes.extend_from_slice(&9u64.to_le_bytes()); // fingerprint
        bytes.extend_from_slice(&17u64.to_le_bytes()); // t
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        fs::write(&ckpt, &bytes).unwrap();
        assert_eq!(load_checkpoint(&ckpt, 9).unwrap(), Some((17, payload)));
        // Fingerprint mismatch.
        assert!(matches!(load_checkpoint(&ckpt, 8), Err(WalError::Mismatch { .. })));
        // Any single-bit flip: descriptive error, never Ok.
        for offset in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x10;
            fs::write(&ckpt, &bad).unwrap();
            assert!(load_checkpoint(&ckpt, 9).is_err(), "flip at {offset} accepted");
        }
        let _ = fs::remove_file(&ckpt);
    }
}
