//! Persistent worker pools for the parallel phases (§VII acceleration).
//!
//! The seed implementation spawned fresh scoped threads on every timestamp,
//! paying thread startup on the critical per-step path. The task-generic
//! `WorkerPool` keeps workers alive for the lifetime of their owner and
//! shuttles owned job state through channels — no locks, no shared mutable
//! state, and no `unsafe` lifetime erasure (the crate forbids `unsafe`).
//!
//! A `PoolJob` is a self-contained unit of shard work: it owns its input
//! buffers, its seed and an `Arc` snapshot of whatever read-only state the
//! pass needs, and is transformed in place by `PoolJob::run`. Two
//! subsystems instantiate the pool:
//!
//! - [`SynthesisPool`] (this module) runs the synthesis passes over
//!   `ShardState` column shards;
//! - [`crate::collect::CollectionPool`] runs fused perturb→tally collection
//!   rounds over reporter-value shards.
//!
//! Determinism contract shared by both: each shard is seeded from the
//! caller's RNG in shard order, shards are fixed-size disjoint ranges, and
//! replies are re-assembled by shard index, so a fixed `(seed, threads)`
//! pair yields identical output regardless of worker scheduling.
//!
//! # Synthesis shards
//!
//! A synthesis shard is a disjoint index range of the store's head columns,
//! copied into the shard's own `Columns` (five contiguous `memcpy`s).
//! Workers append tail-arena nodes into a private per-shard buffer with
//! shard-local addresses; the caller's merge relocates each buffer to the
//! end of the shared arena in shard order and offsets the survivors' links.
//! A `ShardTask` selects the pass a worker performs over its shard:
//!
//! - `ShardTask::QuitExtend` — the fused steady-state pass: per stream,
//!   one cached quit draw; quitters retire into the shard's own finished
//!   columns, survivors extend by one alias draw.
//! - `ShardTask::QuitKeys` — phase one of the two-phase parallel
//!   downward adjustment: quit draws as above, then one log-domain
//!   Efraimidis–Spirakis key `ln(u)/w` per survivor (weight `w` = the
//!   cached quitting-distribution mass at the stream's last cell; the log
//!   form orders identically to `u^{1/w}` without underflowing for tiny
//!   weights). The caller performs the global top-`excess` cut over all
//!   shards' keys.
//! - `ShardTask::RetireExtend` — phase two: retire the pre-selected
//!   victims (positions sorted descending so `swap_remove` stays valid),
//!   then extend the remaining streams.
//! - `ShardTask::Spawn` — upward size adjustment: append the shard's
//!   pre-drawn enter cells as fresh length-1 rows with ids contiguous
//!   from the shard's base. The enter draws themselves happen on the
//!   caller in a single sequential pass (RNG consumption identical to
//!   the sequential spawn at every thread count), so this pass touches
//!   no randomness at all — only the column pushes move off the caller.
//!
//! [`SyntheticDb`]: crate::synthesis::SyntheticDb

use crate::sampler::SamplerCache;
use crate::store::{Columns, TailNode, NO_LINK};
use crate::synthesis::{extend_cols, quit_pass_cols};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retrasyn_geo::CellId;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Floor for Efraimidis–Spirakis weights so zero-mass cells keep a strict
/// ordering (matches the sequential shrink path).
pub(crate) const MIN_SHRINK_WEIGHT: f64 = 1e-12;

/// A worker pool died mid-batch: a worker panicked, or every worker hung
/// up. The pool is *poisoned* after this error — outstanding shard state
/// held by the dead worker is lost, so the owner must drop the pool (a
/// fresh one is spawned on the next parallel pass) and treat the
/// in-progress step as failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// A single worker thread panicked mid-job; `worker` is its index in
    /// spawn order (shards `idx` with `idx % threads == worker` were routed
    /// to it).
    WorkerPanicked {
        /// Index of the dead worker, in spawn order.
        worker: usize,
    },
    /// Every worker exited — the reply channel disconnected.
    Disconnected,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked { worker } => {
                write!(f, "pool worker {worker} panicked mid-job")
            }
            PoolError::Disconnected => f.write_str("all pool workers exited unexpectedly"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A self-contained unit of shard work: owns its inputs and result
/// buffers, is transformed in place on a worker thread.
pub(crate) trait PoolJob: Send + 'static {
    /// Perform the work. Runs on a pool worker; must not panic on valid
    /// input (a panicking worker fails the whole pool loudly).
    fn run(&mut self);
}

/// One queued job, tagged with its shard position so replies re-assemble
/// deterministically.
struct Tagged<J> {
    idx: usize,
    job: J,
}

/// A fixed-size pool of persistent workers executing `PoolJob`s.
///
/// Usage contract: every [`WorkerPool::submit`] must be matched by one
/// [`WorkerPool::recv`] before the next batch begins; the pool itself
/// keeps no outstanding-job state.
pub(crate) struct WorkerPool<J: PoolJob> {
    senders: Vec<Sender<Tagged<J>>>,
    replies: Receiver<Tagged<J>>,
    handles: Vec<JoinHandle<()>>,
}

impl<J: PoolJob> std::fmt::Debug for WorkerPool<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.senders.len()).finish()
    }
}

impl<J: PoolJob> WorkerPool<J> {
    /// Spawn `threads` workers (at least one), named `{name}-{i}`.
    pub(crate) fn new(threads: usize, name: &str) -> Self {
        let threads = threads.max(1);
        let (reply_tx, replies) = channel::<Tagged<J>>();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let (tx, rx) = channel::<Tagged<J>>();
            let reply_tx = reply_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("{name}-{worker}"))
                .spawn(move || worker_loop(rx, reply_tx))
                .expect("failed to spawn pool worker");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool { senders, replies, handles }
    }

    /// Number of workers.
    pub(crate) fn threads(&self) -> usize {
        self.senders.len()
    }

    /// OS thread ids of the workers, in spawn order — an identity witness:
    /// equal id lists across a session reset prove the pool was reused,
    /// not silently re-spawned.
    pub(crate) fn worker_ids(&self) -> Vec<std::thread::ThreadId> {
        self.handles.iter().map(|h| h.thread().id()).collect()
    }

    /// Queue `job` for shard `idx` on worker `idx % threads`. Fails with
    /// [`PoolError::WorkerPanicked`] if that worker is gone (its job
    /// channel disconnected).
    pub(crate) fn submit(&self, idx: usize, job: J) -> Result<(), PoolError> {
        let worker = idx % self.senders.len();
        self.senders[worker]
            .send(Tagged { idx, job })
            .map_err(|_| PoolError::WorkerPanicked { worker })
    }

    /// Receive one completed job and its shard index, detecting a dead
    /// worker instead of hanging forever: a panicked worker never sends
    /// its reply, and the shared channel only disconnects when *every*
    /// worker is gone, so a bare blocking `recv` would wait permanently on
    /// the first worker panic. The caller decides whether a [`PoolError`]
    /// is recoverable (drop the pool, recover the session) or fatal (the
    /// legacy infallible paths panic loudly with the error's message).
    pub(crate) fn recv(&self) -> Result<(usize, J), PoolError> {
        use std::sync::mpsc::RecvTimeoutError;
        loop {
            match self.replies.recv_timeout(std::time::Duration::from_millis(100)) {
                Ok(Tagged { idx, job }) => return Ok((idx, job)),
                Err(RecvTimeoutError::Timeout) => {
                    // Workers only exit when their job channel disconnects
                    // (pool drop) or they panic; during a batch the senders
                    // are alive, so a finished worker means a panic.
                    if let Some(worker) = self.handles.iter().position(|h| h.is_finished()) {
                        return Err(PoolError::WorkerPanicked { worker });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(PoolError::Disconnected),
            }
        }
    }
}

impl<J: PoolJob> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        // Disconnecting the job channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<J: PoolJob>(rx: Receiver<Tagged<J>>, reply_tx: Sender<Tagged<J>>) {
    while let Ok(Tagged { idx, mut job }) = rx.recv() {
        job.run();
        if reply_tx.send(Tagged { idx, job }).is_err() {
            return;
        }
    }
}

/// Which pass a synthesis worker runs over its shard.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ShardTask {
    /// Fused quit + extend (steady state: no downward adjustment possible).
    QuitExtend {
        /// Length-reweighting constant of Eq. 8.
        lambda: f64,
    },
    /// Quit draws, then one Efraimidis–Spirakis key per survivor (shrink
    /// pending; no extension yet).
    QuitKeys {
        /// Length-reweighting constant of Eq. 8.
        lambda: f64,
    },
    /// Retire the shard's pre-selected victims, then extend the remainder.
    RetireExtend,
    /// Append the shard's pre-drawn enter cells as fresh length-1 rows
    /// starting at timestamp `t` (upward size adjustment; no RNG use).
    Spawn {
        /// Timestamp the spawned streams begin at.
        t: u64,
    },
}

/// One worker's owned slice of the synthetic database plus its reusable
/// result buffers. Buffers keep their capacity as the state shuttles
/// between the caller and the workers, so the steady-state step performs
/// no heap allocation.
#[derive(Debug, Default)]
pub(crate) struct ShardState {
    /// The live stream columns owned by this shard (a disjoint index range
    /// of the store's live columns).
    pub(crate) cols: Columns,
    /// Columns of streams retired by this shard during the current step;
    /// drained into the store's finished region when shards merge
    /// (id-sorted at `finish`).
    pub(crate) finished: Columns,
    /// Tail nodes appended by this shard during the current pass, with
    /// shard-local addresses; the merge relocates them into the shared
    /// arena and offsets the survivors' links.
    pub(crate) appended: Vec<TailNode>,
    /// Efraimidis–Spirakis keys, parallel to `cols` after a
    /// `ShardTask::QuitKeys` pass.
    pub(crate) keys: Vec<f64>,
    /// Victim positions for `ShardTask::RetireExtend`, sorted descending.
    pub(crate) victims: Vec<u32>,
    /// Pre-drawn enter cells for `ShardTask::Spawn` (drawn sequentially
    /// by the caller; consumed by the worker's column pushes).
    pub(crate) spawn_cells: Vec<CellId>,
    /// First stream id of this shard's spawn range; ids are contiguous
    /// from here, in draw order.
    pub(crate) spawn_base: u64,
}

/// One unit of synthesis work: the shard state plus the pass selector and
/// an `Arc` snapshot of the sampler cache.
struct SynthJob {
    state: ShardState,
    cache: Arc<SamplerCache>,
    seed: u64,
    task: ShardTask,
}

impl PoolJob for SynthJob {
    fn run(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let state = &mut self.state;
        state.appended.clear();
        match self.task {
            ShardTask::QuitExtend { lambda } => {
                quit_pass_cols(
                    &mut state.cols,
                    &mut state.finished,
                    &mut state.appended,
                    &self.cache,
                    lambda,
                    true,
                    &mut rng,
                );
            }
            ShardTask::QuitKeys { lambda } => {
                quit_pass_cols(
                    &mut state.cols,
                    &mut state.finished,
                    &mut state.appended,
                    &self.cache,
                    lambda,
                    false,
                    &mut rng,
                );
                state.keys.clear();
                for &head in &state.cols.heads {
                    let w = self.cache.quit_weight(head).max(MIN_SHRINK_WEIGHT);
                    let u: f64 = rng.random();
                    state.keys.push(u.ln() / w);
                }
            }
            ShardTask::RetireExtend => {
                // Victims arrive sorted descending, so each `swap_remove`
                // moves a row from past the remaining victim positions.
                for k in 0..state.victims.len() {
                    // xtask:order(victims arrive sorted descending, per the comment above)
                    state.cols.swap_remove_into(state.victims[k] as usize, &mut state.finished);
                }
                state.victims.clear();
                extend_cols(&mut state.cols, &mut state.appended, &self.cache, &mut rng);
            }
            ShardTask::Spawn { t } => {
                for (k, &cell) in state.spawn_cells.iter().enumerate() {
                    state.cols.push(state.spawn_base + k as u64, t, cell, 1, NO_LINK);
                }
                state.spawn_cells.clear();
            }
        }
    }
}

/// The synthesis instantiation of `WorkerPool`.
pub struct SynthesisPool {
    pool: WorkerPool<SynthJob>,
}

impl std::fmt::Debug for SynthesisPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthesisPool").field("threads", &self.pool.threads()).finish()
    }
}

impl SynthesisPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        SynthesisPool { pool: WorkerPool::new(threads, "retrasyn-synth") }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// OS thread ids of the workers (see `WorkerPool::worker_ids`).
    pub fn worker_ids(&self) -> Vec<std::thread::ThreadId> {
        self.pool.worker_ids()
    }

    /// Run `task` over every non-empty shard, in parallel.
    ///
    /// `shards[i]` is processed by worker `i % threads` with
    /// `StdRng::seed_from_u64(seeds[i])`; shard states come back in place,
    /// preserving both order and buffer capacity.
    ///
    /// On a [`PoolError`] the pass is incomplete: shard states held by the
    /// dead worker are lost, so the owning database is in an unspecified
    /// state and must be recovered or reset, and this pool must be
    /// dropped.
    pub(crate) fn run_shards(
        &self,
        shards: &mut [ShardState],
        seeds: &[u64],
        cache: &Arc<SamplerCache>,
        task: ShardTask,
    ) -> Result<(), PoolError> {
        debug_assert_eq!(shards.len(), seeds.len());
        let mut outstanding = 0usize;
        for (idx, state) in shards.iter_mut().enumerate() {
            // A shard with no work returns unchanged without a dispatch;
            // spawn shards carry their work in `spawn_cells`, not `cols`.
            let empty = match task {
                ShardTask::Spawn { .. } => state.spawn_cells.is_empty(),
                _ => state.cols.is_empty(),
            };
            if empty {
                continue;
            }
            self.pool.submit(
                idx,
                SynthJob {
                    state: std::mem::take(state),
                    cache: Arc::clone(cache),
                    seed: seeds[idx],
                    task,
                },
            )?;
            outstanding += 1;
        }
        for _ in 0..outstanding {
            let (idx, job) = self.pool.recv()?;
            shards[idx] = job.state;
        }
        Ok(())
    }
}

/// Draw one seed per shard from the caller's RNG, in shard order, into the
/// reusable `seeds` buffer.
pub(crate) fn draw_seeds<R: Rng + ?Sized>(seeds: &mut Vec<u64>, count: usize, rng: &mut R) {
    seeds.clear();
    seeds.extend((0..count).map(|_| rng.random::<u64>()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_spawns_and_shuts_down() {
        let pool = SynthesisPool::new(3);
        assert_eq!(pool.threads(), 3);
        drop(pool); // must not hang
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = SynthesisPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    /// The generic pool re-assembles replies by shard index and preserves
    /// job state across the worker round-trip.
    #[test]
    fn generic_pool_round_trips_jobs_by_index() {
        struct Doubler {
            xs: Vec<u64>,
        }
        impl PoolJob for Doubler {
            fn run(&mut self) {
                for x in &mut self.xs {
                    *x *= 2;
                }
            }
        }
        let pool: WorkerPool<Doubler> = WorkerPool::new(3, "test-pool");
        for idx in 0..8 {
            pool.submit(idx, Doubler { xs: vec![idx as u64; 4] }).unwrap();
        }
        let mut seen = [false; 8];
        for _ in 0..8 {
            let (idx, job) = pool.recv().unwrap();
            assert!(!seen[idx]);
            seen[idx] = true;
            assert_eq!(job.xs, vec![2 * idx as u64; 4]);
        }
        assert!(seen.iter().all(|&s| s));
    }

    /// A panicking job surfaces as a typed `PoolError` carrying the dead
    /// worker's index — never a process abort, never a permanent hang —
    /// and the pool still shuts down cleanly afterwards.
    #[test]
    fn worker_panic_reports_typed_error_with_index() {
        struct Bomb {
            explode: bool,
        }
        impl PoolJob for Bomb {
            fn run(&mut self) {
                if self.explode {
                    panic!("injected worker fault");
                }
            }
        }
        let pool: WorkerPool<Bomb> = WorkerPool::new(2, "bomb-pool");
        pool.submit(0, Bomb { explode: false }).unwrap();
        pool.submit(1, Bomb { explode: true }).unwrap();
        let mut errors = Vec::new();
        for _ in 0..2 {
            if let Err(e) = pool.recv() {
                errors.push(e);
            }
        }
        assert_eq!(errors, vec![PoolError::WorkerPanicked { worker: 1 }]);
        assert!(errors[0].to_string().contains("panicked"));
        drop(pool); // the dead worker must not wedge the shutdown join
    }
}
