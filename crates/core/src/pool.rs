//! Persistent worker pool for parallel synthesis (§VII acceleration).
//!
//! The seed implementation spawned fresh scoped threads on every timestamp,
//! paying thread startup on the critical per-step path. This pool keeps the
//! workers alive for the lifetime of the [`SyntheticDb`] and hands each one
//! an owned [`ShardState`] plus an `Arc` snapshot of the model's
//! [`SamplerCache`] per step — no locks, no shared mutable state, and no
//! `unsafe` lifetime erasure (the crate forbids `unsafe`).
//!
//! A shard is a disjoint index range of the store's head columns, copied
//! into the shard's own [`Columns`] (five contiguous `memcpy`s — the
//! per-stream `Vec` shuffle of the old layout is gone). Workers append
//! tail-arena nodes into a private per-shard buffer with shard-local
//! addresses; the caller's merge relocates each buffer to the end of the
//! shared arena in shard order and offsets the survivors' links.
//!
//! The whole synthesis step runs on the pool, not just the extension
//! phase. A [`ShardTask`] selects the pass a worker performs over its
//! shard:
//!
//! - [`ShardTask::QuitExtend`] — the fused steady-state pass: per stream,
//!   one cached quit draw; quitters retire into the shard's own finished
//!   columns, survivors extend by one alias draw.
//! - [`ShardTask::QuitKeys`] — phase one of the two-phase parallel
//!   downward adjustment: quit draws as above, then one log-domain
//!   Efraimidis–Spirakis key `ln(u)/w` per survivor (weight `w` = the
//!   cached quitting-distribution mass at the stream's last cell; the log
//!   form orders identically to `u^{1/w}` without underflowing for tiny
//!   weights). The caller performs the global top-`excess` cut over all
//!   shards' keys.
//! - [`ShardTask::RetireExtend`] — phase two: retire the pre-selected
//!   victims (positions sorted descending so `swap_remove` stays valid),
//!   then extend the remaining streams.
//!
//! Determinism: each shard is seeded from the caller's RNG in shard order,
//! shards are fixed-size index ranges of the live columns, and replies are
//! re-assembled by shard index, so a fixed `(seed, threads)` pair yields an
//! identical database regardless of worker scheduling.
//!
//! [`SyntheticDb`]: crate::synthesis::SyntheticDb

use crate::sampler::SamplerCache;
use crate::store::{Columns, TailNode};
use crate::synthesis::{extend_cols, quit_pass_cols};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Floor for Efraimidis–Spirakis weights so zero-mass cells keep a strict
/// ordering (matches the sequential shrink path).
pub(crate) const MIN_SHRINK_WEIGHT: f64 = 1e-12;

/// Which pass a worker runs over its shard.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ShardTask {
    /// Fused quit + extend (steady state: no downward adjustment possible).
    QuitExtend {
        /// Length-reweighting constant of Eq. 8.
        lambda: f64,
    },
    /// Quit draws, then one Efraimidis–Spirakis key per survivor (shrink
    /// pending; no extension yet).
    QuitKeys {
        /// Length-reweighting constant of Eq. 8.
        lambda: f64,
    },
    /// Retire the shard's pre-selected victims, then extend the remainder.
    RetireExtend,
}

/// One worker's owned slice of the synthetic database plus its reusable
/// result buffers. Buffers keep their capacity as the state shuttles
/// between the caller and the workers, so the steady-state step performs
/// no heap allocation.
#[derive(Debug, Default)]
pub(crate) struct ShardState {
    /// The live stream columns owned by this shard (a disjoint index range
    /// of the store's live columns).
    pub(crate) cols: Columns,
    /// Columns of streams retired by this shard during the current step;
    /// drained into the store's finished region when shards merge
    /// (id-sorted at `finish`).
    pub(crate) finished: Columns,
    /// Tail nodes appended by this shard during the current pass, with
    /// shard-local addresses; the merge relocates them into the shared
    /// arena and offsets the survivors' links.
    pub(crate) appended: Vec<TailNode>,
    /// Efraimidis–Spirakis keys, parallel to `cols` after a
    /// [`ShardTask::QuitKeys`] pass.
    pub(crate) keys: Vec<f64>,
    /// Victim positions for [`ShardTask::RetireExtend`], sorted descending.
    pub(crate) victims: Vec<u32>,
}

/// One unit of work for a pool worker. Workers exit when their job channel
/// disconnects, so shutdown is simply dropping the senders.
struct Job {
    idx: usize,
    state: ShardState,
    cache: Arc<SamplerCache>,
    seed: u64,
    task: ShardTask,
}

/// A completed shard, tagged with its position.
struct Reply {
    idx: usize,
    state: ShardState,
}

/// A fixed-size pool of synthesis workers.
pub struct SynthesisPool {
    senders: Vec<Sender<Job>>,
    replies: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for SynthesisPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthesisPool").field("threads", &self.senders.len()).finish()
    }
}

impl SynthesisPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (reply_tx, replies) = channel::<Reply>();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let (tx, rx) = channel::<Job>();
            let reply_tx = reply_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("retrasyn-synth-{worker}"))
                .spawn(move || worker_loop(rx, reply_tx))
                .expect("failed to spawn synthesis worker");
            senders.push(tx);
            handles.push(handle);
        }
        SynthesisPool { senders, replies, handles }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Run `task` over every non-empty shard, in parallel.
    ///
    /// `shards[i]` is processed by worker `i % threads` with
    /// `StdRng::seed_from_u64(seeds[i])`; shard states come back in place,
    /// preserving both order and buffer capacity.
    pub(crate) fn run_shards(
        &self,
        shards: &mut [ShardState],
        seeds: &[u64],
        cache: &Arc<SamplerCache>,
        task: ShardTask,
    ) {
        debug_assert_eq!(shards.len(), seeds.len());
        let mut outstanding = 0usize;
        for (idx, state) in shards.iter_mut().enumerate() {
            if state.cols.is_empty() {
                continue;
            }
            let job = Job {
                idx,
                state: std::mem::take(state),
                cache: Arc::clone(cache),
                seed: seeds[idx],
                task,
            };
            self.senders[idx % self.senders.len()]
                .send(job)
                .expect("synthesis worker exited unexpectedly");
            outstanding += 1;
        }
        for _ in 0..outstanding {
            let Reply { idx, state } = self.recv_reply();
            shards[idx] = state;
        }
    }

    /// Receive one reply, panicking loudly if a worker died instead of
    /// hanging forever: a panicked worker never sends its reply, and the
    /// shared channel only disconnects when *every* worker is gone, so a
    /// bare `recv` would block permanently on the first worker panic.
    fn recv_reply(&self) -> Reply {
        use std::sync::mpsc::RecvTimeoutError;
        loop {
            match self.replies.recv_timeout(std::time::Duration::from_millis(100)) {
                Ok(reply) => return reply,
                Err(RecvTimeoutError::Timeout) => {
                    // Workers only exit when their job channel disconnects
                    // (pool drop) or they panic; during a step the senders
                    // are alive, so a finished worker means a panic.
                    assert!(
                        !self.handles.iter().any(|h| h.is_finished()),
                        "synthesis worker panicked"
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("all synthesis workers exited unexpectedly")
                }
            }
        }
    }
}

impl Drop for SynthesisPool {
    fn drop(&mut self) {
        // Disconnecting the job channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: Receiver<Job>, reply_tx: Sender<Reply>) {
    while let Ok(Job { idx, mut state, cache, seed, task }) = rx.recv() {
        let mut rng = StdRng::seed_from_u64(seed);
        state.appended.clear();
        match task {
            ShardTask::QuitExtend { lambda } => {
                quit_pass_cols(
                    &mut state.cols,
                    &mut state.finished,
                    &mut state.appended,
                    &cache,
                    lambda,
                    true,
                    &mut rng,
                );
            }
            ShardTask::QuitKeys { lambda } => {
                quit_pass_cols(
                    &mut state.cols,
                    &mut state.finished,
                    &mut state.appended,
                    &cache,
                    lambda,
                    false,
                    &mut rng,
                );
                state.keys.clear();
                for &head in &state.cols.heads {
                    let w = cache.quit_weight(head).max(MIN_SHRINK_WEIGHT);
                    let u: f64 = rng.random();
                    state.keys.push(u.ln() / w);
                }
            }
            ShardTask::RetireExtend => {
                // Victims arrive sorted descending, so each `swap_remove`
                // moves a row from past the remaining victim positions.
                for k in 0..state.victims.len() {
                    state.cols.swap_remove_into(state.victims[k] as usize, &mut state.finished);
                }
                state.victims.clear();
                extend_cols(&mut state.cols, &mut state.appended, &cache, &mut rng);
            }
        }
        if reply_tx.send(Reply { idx, state }).is_err() {
            return;
        }
    }
}

/// Draw one seed per shard from the caller's RNG, in shard order, into the
/// reusable `seeds` buffer.
pub(crate) fn draw_seeds<R: Rng + ?Sized>(seeds: &mut Vec<u64>, count: usize, rng: &mut R) {
    seeds.clear();
    seeds.extend((0..count).map(|_| rng.random::<u64>()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_spawns_and_shuts_down() {
        let pool = SynthesisPool::new(3);
        assert_eq!(pool.threads(), 3);
        drop(pool); // must not hang
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = SynthesisPool::new(0);
        assert_eq!(pool.threads(), 1);
    }
}
