//! Persistent worker pool for parallel synthesis (§VII acceleration).
//!
//! The seed implementation spawned fresh scoped threads on every timestamp,
//! paying thread startup on the critical per-step path. This pool keeps the
//! workers alive for the lifetime of the [`SyntheticDb`] and hands each one
//! an owned shard of streams plus an `Arc` snapshot of the model's
//! [`SamplerCache`] per step — no locks, no shared mutable state, and no
//! `unsafe` lifetime erasure (the crate forbids `unsafe`).
//!
//! Determinism: each shard is seeded from the caller's RNG in shard order,
//! shards are fixed-size prefixes of the stream list, and replies are
//! re-assembled by shard index, so a fixed `(seed, threads)` pair yields an
//! identical database regardless of worker scheduling.
//!
//! [`SyntheticDb`]: crate::synthesis::SyntheticDb

use crate::sampler::SamplerCache;
use crate::synthesis::OpenStream;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One unit of work for a pool worker: extend every stream in `shard` by
/// one alias-sampled movement. Workers exit when their job channel
/// disconnects, so shutdown is simply dropping the senders.
struct Job {
    idx: usize,
    shard: Vec<OpenStream>,
    cache: Arc<SamplerCache>,
    seed: u64,
}

/// A completed shard, tagged with its position.
struct Reply {
    idx: usize,
    shard: Vec<OpenStream>,
}

/// A fixed-size pool of synthesis workers.
pub struct SynthesisPool {
    senders: Vec<Sender<Job>>,
    replies: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for SynthesisPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthesisPool").field("threads", &self.senders.len()).finish()
    }
}

impl SynthesisPool {
    /// Spawn `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (reply_tx, replies) = channel::<Reply>();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let (tx, rx) = channel::<Job>();
            let reply_tx = reply_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("retrasyn-synth-{worker}"))
                .spawn(move || worker_loop(rx, reply_tx))
                .expect("failed to spawn synthesis worker");
            senders.push(tx);
            handles.push(handle);
        }
        SynthesisPool { senders, replies, handles }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Extend every stream in every shard by one movement, in parallel.
    ///
    /// `shards[i]` is processed by worker `i % threads` with
    /// `StdRng::seed_from_u64(seeds[i])`; shards come back in place,
    /// preserving both order and capacity.
    pub(crate) fn extend_shards(
        &self,
        shards: &mut [Vec<OpenStream>],
        seeds: &[u64],
        cache: &Arc<SamplerCache>,
    ) {
        debug_assert_eq!(shards.len(), seeds.len());
        let mut outstanding = 0usize;
        for (idx, shard) in shards.iter_mut().enumerate() {
            if shard.is_empty() {
                continue;
            }
            let job = Job {
                idx,
                shard: std::mem::take(shard),
                cache: Arc::clone(cache),
                seed: seeds[idx],
            };
            self.senders[idx % self.senders.len()]
                .send(job)
                .expect("synthesis worker exited unexpectedly");
            outstanding += 1;
        }
        for _ in 0..outstanding {
            let Reply { idx, shard } =
                self.replies.recv().expect("synthesis worker dropped its reply channel");
            shards[idx] = shard;
        }
    }
}

impl Drop for SynthesisPool {
    fn drop(&mut self) {
        // Disconnecting the job channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: Receiver<Job>, reply_tx: Sender<Reply>) {
    while let Ok(Job { idx, mut shard, cache, seed }) = rx.recv() {
        let mut rng = StdRng::seed_from_u64(seed);
        for stream in &mut shard {
            let from = *stream.cells.last().expect("streams are non-empty");
            stream.cells.push(cache.sample_move(from, &mut rng));
        }
        if reply_tx.send(Reply { idx, shard }).is_err() {
            return;
        }
    }
}

/// Draw one seed per shard from the caller's RNG, in shard order, into the
/// reusable `seeds` buffer.
pub(crate) fn draw_seeds<R: Rng + ?Sized>(seeds: &mut Vec<u64>, count: usize, rng: &mut R) {
    seeds.clear();
    seeds.extend((0..count).map(|_| rng.random::<u64>()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_spawns_and_shuts_down() {
        let pool = SynthesisPool::new(3);
        assert_eq!(pool.threads(), 3);
        drop(pool); // must not hang
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = SynthesisPool::new(0);
        assert_eq!(pool.threads(), 1);
    }
}
