//! Configuration of the RetraSyn engine.

use crate::allocation::AllocationKind;
use crate::compact::CompactionPolicy;
use retrasyn_ldp::{CollectionKernel, ReportMode};

/// How the w-event budget is spread over the window (§III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Division {
    /// Budget division: every user reports at every timestamp with a
    /// per-timestamp budget `ε_t`, `Σ_window ε_t ≤ ε` (RetraSyn_b).
    Budget,
    /// Population division: a sampled user group reports with the full `ε`;
    /// each user reports at most once per window (RetraSyn_p).
    Population,
}

/// Full engine configuration. Defaults follow the paper's experimental
/// setup (§V-A): `α = 8`, `κ = 5`, `p_max = 0.6`, adaptive allocation.
#[derive(Debug, Clone)]
pub struct RetraSynConfig {
    /// Privacy budget ε for any window of `w` timestamps.
    pub eps: f64,
    /// Window size w.
    pub w: usize,
    /// Allocation strategy (Adaptive / Uniform / Sample / RandomReport).
    pub allocation: AllocationKind,
    /// Adaptive-allocation scale hyperparameter α (Eq. 10).
    pub alpha: f64,
    /// Number of recent timestamps κ considered by Eq. 9–10.
    pub kappa: usize,
    /// Maximum portion `p_max` per timestamp (Eq. 10).
    pub p_max: f64,
    /// Termination restriction factor λ (Eq. 8); the paper sets it to the
    /// dataset's average stream length.
    pub lambda: f64,
    /// Report simulation mode (see `retrasyn_ldp::ReportMode`).
    pub report_mode: ReportMode,
    /// Enable the DMU significant-transition selection (§III-C). Disabling
    /// reproduces the *AllUpdate* ablation of Table IV.
    pub dmu: bool,
    /// Model entering/quitting transitions (§III-B/D). Disabling reproduces
    /// the *NoEQ* ablation of Table IV: movement-only domain, fixed-size
    /// randomly-initialized synthetic database that never terminates.
    pub enter_quit: bool,
    /// Worker threads for the synthesis phase (the paper's §VII
    /// future-work acceleration). 1 = sequential (default); >1 changes the
    /// random stream but stays deterministic per `(seed, threads)`.
    pub synthesis_threads: usize,
    /// Worker threads for the LDP collection phase (per-user perturbation
    /// and tallying). 1 = sequential (default); >1 shards the reporters
    /// across a persistent collection pool — a different random stream,
    /// deterministic per `(seed, threads)` and distributionally
    /// equivalent to the sequential round. Applies to
    /// [`ReportMode::PerUser`] rounds, where the per-user work is what
    /// parallelizes; the O(domain) [`ReportMode::Aggregate`] shortcut
    /// always runs sequentially.
    pub collection_threads: usize,
    /// Collection kernel for [`ReportMode::PerUser`] rounds (see
    /// [`CollectionKernel`]). `Sequential` (default) keeps the historical
    /// fused perturb→tally stream; `Blocked` switches to the
    /// counter-based Philox kernel — a different (still
    /// distribution-identical) random stream that is bit-identical
    /// across `collection_threads` values, not just across runs.
    /// [`ReportMode::Aggregate`] rounds ignore the kernel: their
    /// O(domain) binomial shortcut has no per-user pass to accelerate.
    pub collection_kernel: CollectionKernel,
    /// Epoch compaction policy (`None` = never compact, the default).
    /// When set, a step that leaves more resident cells than the policy's
    /// high-water mark drains finished streams out of the tail arena into
    /// frozen storage, bounding resident memory by the live population.
    /// Purely operational: released output and snapshots are bit-for-bit
    /// unaffected, so it is deliberately excluded from the session
    /// fingerprint (a recovered session may use a different mark).
    pub compaction: Option<CompactionPolicy>,
}

impl RetraSynConfig {
    /// Paper-default configuration for budget `eps` and window `w`.
    pub fn new(eps: f64, w: usize) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive");
        assert!(w >= 1, "window must be >= 1");
        RetraSynConfig {
            eps,
            w,
            allocation: AllocationKind::Adaptive,
            alpha: 8.0,
            kappa: 5,
            p_max: 0.6,
            lambda: 20.0,
            report_mode: ReportMode::Aggregate,
            dmu: true,
            enter_quit: true,
            synthesis_threads: 1,
            collection_threads: 1,
            collection_kernel: CollectionKernel::Sequential,
            compaction: None,
        }
    }

    /// Set the termination factor λ (usually the dataset's average length).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        self.lambda = lambda;
        self
    }

    /// Set the allocation strategy.
    pub fn with_allocation(mut self, allocation: AllocationKind) -> Self {
        self.allocation = allocation;
        self
    }

    /// Disable DMU (the *AllUpdate* ablation).
    pub fn all_update(mut self) -> Self {
        self.dmu = false;
        self
    }

    /// Disable enter/quit modelling (the *NoEQ* ablation).
    pub fn no_eq(mut self) -> Self {
        self.enter_quit = false;
        self
    }

    /// Use exact per-user report simulation (slower; for validation).
    pub fn per_user_reports(mut self) -> Self {
        self.report_mode = ReportMode::PerUser;
        self
    }

    /// Parallelize the synthesis phase over `threads` workers.
    pub fn with_synthesis_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.synthesis_threads = threads;
        self
    }

    /// Parallelize the collection phase over `threads` workers.
    pub fn with_collection_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one thread");
        self.collection_threads = threads;
        self
    }

    /// Select the collection kernel for per-user rounds.
    pub fn with_collection_kernel(mut self, kernel: CollectionKernel) -> Self {
        self.collection_kernel = kernel;
        self
    }

    /// Enable epoch compaction above `high_water_cells` resident cells.
    pub fn with_compaction(mut self, high_water_cells: usize) -> Self {
        assert!(high_water_cells >= 1, "high-water mark must be >= 1");
        self.compaction = Some(CompactionPolicy::new(high_water_cells));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RetraSynConfig::new(1.0, 20);
        assert_eq!(c.alpha, 8.0);
        assert_eq!(c.kappa, 5);
        assert_eq!(c.p_max, 0.6);
        assert_eq!(c.allocation, AllocationKind::Adaptive);
        assert!(c.dmu);
        assert!(c.enter_quit);
        assert_eq!(c.report_mode, ReportMode::Aggregate);
        assert_eq!(c.collection_kernel, CollectionKernel::Sequential);
    }

    #[test]
    fn builders() {
        let c = RetraSynConfig::new(1.0, 10)
            .with_lambda(13.6)
            .with_allocation(AllocationKind::Uniform)
            .all_update()
            .no_eq()
            .per_user_reports()
            .with_synthesis_threads(2)
            .with_collection_threads(4)
            .with_collection_kernel(CollectionKernel::Blocked)
            .with_compaction(10_000);
        assert_eq!(c.lambda, 13.6);
        assert_eq!(c.allocation, AllocationKind::Uniform);
        assert!(!c.dmu);
        assert!(!c.enter_quit);
        assert_eq!(c.report_mode, ReportMode::PerUser);
        assert_eq!(c.synthesis_threads, 2);
        assert_eq!(c.collection_threads, 4);
        assert_eq!(c.collection_kernel, CollectionKernel::Blocked);
        assert_eq!(c.compaction, Some(CompactionPolicy::new(10_000)));
        assert_eq!(RetraSynConfig::new(1.0, 10).compaction, None);
    }

    #[test]
    #[should_panic(expected = "thread")]
    fn rejects_zero_collection_threads() {
        let _ = RetraSynConfig::new(1.0, 10).with_collection_threads(0);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn rejects_bad_eps() {
        let _ = RetraSynConfig::new(0.0, 10);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn rejects_bad_window() {
        let _ = RetraSynConfig::new(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_bad_lambda() {
        let _ = RetraSynConfig::new(1.0, 10).with_lambda(0.0);
    }
}
