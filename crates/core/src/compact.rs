//! Epoch compaction: memory-bounding the tail arena for unbounded streams.
//!
//! The paper's setting is an in-principle endless stream, but the
//! [`TailArena`](crate::store) is append-only for the life of a session:
//! every cell a finished stream ever reported stays resident, so memory
//! grows with *total history* rather than the live population. Compaction
//! fixes that by draining the finished region out of the arena into
//! epoch-stamped **frozen** storage:
//!
//! 1. every finished stream's chain is walked once, backward, and written
//!    forward into a flat cell column (`FrozenStore`) stamped with the
//!    timestamp the compaction ran at;
//! 2. the arena is rebuilt to hold only the live chains (O(live cells)),
//!    and the spare arena's chunks are recycled between runs so steady-state
//!    compaction allocates nothing.
//!
//! After a compaction, resident arena memory is exactly the live
//! population's history; frozen cells are flat, contiguous, and never
//! touched again until release. `SnapshotView` and
//! `StreamStore::into_dataset` serve transparently across both regions, so
//! snapshots and the released dataset are **bit-for-bit identical** whether
//! or not compaction ever ran (the release path merges regions by stream
//! id, which is unique).
//!
//! The engine triggers compaction from a [`CompactionPolicy`] high-water
//! mark on resident cells, checked after each step. If the *live*
//! population alone exceeds the mark, compaction cannot get below it; the
//! engine records the overflow in [`CompactionStats`] and keeps going
//! (graceful degradation — log and compact, never abort).

use crate::store::{SnapshotStream, StreamStore, TailArena, TailNode, NO_LINK};
use crate::wal::{Dec, Enc};
use retrasyn_geo::CellId;

/// When to run epoch compaction: once the store's resident cells (arena
/// nodes + head rows) exceed `high_water_cells` after a step.
///
/// Pick the mark from the memory budget: resident cells cost ~8 bytes each
/// in the arena. Compaction itself is O(resident), so a mark well above
/// the expected live population amortizes to a small constant per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Resident-cell high-water mark that triggers a compaction.
    pub high_water_cells: usize,
}

impl CompactionPolicy {
    /// Policy triggering compaction above `high_water_cells` resident
    /// cells.
    pub fn new(high_water_cells: usize) -> Self {
        CompactionPolicy { high_water_cells }
    }
}

/// Counters describing the compactions a session has run (informational;
/// compaction never changes released output).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Number of compactions run.
    pub runs: u64,
    /// Streams drained into the frozen region, total.
    pub frozen_streams: u64,
    /// Cells drained into the frozen region, total.
    pub frozen_cells: u64,
    /// Steps that ended above the high-water mark even after compacting —
    /// the live population alone exceeds the mark (graceful-degradation
    /// path: logged, never fatal).
    pub overflows: u64,
}

/// Boundary of one compaction epoch inside the frozen region: streams
/// `..streams_end` / cells `..cells_end` were frozen at or before
/// timestamp `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EpochMark {
    pub(crate) epoch: u64,
    pub(crate) streams_end: usize,
    pub(crate) cells_end: usize,
}

/// Flat, forward-ordered storage for compacted (frozen) streams. Appended
/// to only by compaction, read by snapshots and release; cells of stream
/// `i` are the contiguous slice `cells[offsets[i]..offsets[i + 1]]`.
#[derive(Debug, Clone, Default)]
pub(crate) struct FrozenStore {
    pub(crate) ids: Vec<u64>,
    pub(crate) starts: Vec<u64>,
    /// `ids.len() + 1` entries once non-empty; `offsets[0] == 0`.
    pub(crate) offsets: Vec<usize>,
    pub(crate) cells: Vec<CellId>,
    /// Epoch stamps, in compaction order.
    pub(crate) epochs: Vec<EpochMark>,
}

impl FrozenStore {
    /// Number of frozen streams.
    #[inline]
    pub(crate) fn num_streams(&self) -> usize {
        self.ids.len()
    }

    /// Total frozen cells.
    #[inline]
    pub(crate) fn total_cells(&self) -> usize {
        self.cells.len()
    }

    /// Cells of frozen stream `i`, oldest first.
    #[inline]
    pub(crate) fn cells_of(&self, i: usize) -> &[CellId] {
        &self.cells[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Frozen stream `i` as a snapshot stream.
    #[inline]
    pub(crate) fn stream(&self, i: usize) -> SnapshotStream<'_> {
        SnapshotStream::from_flat(self.ids[i], self.starts[i], self.cells_of(i))
    }

    /// Drop all frozen streams, keeping buffer capacity.
    pub(crate) fn clear(&mut self) {
        self.ids.clear();
        self.starts.clear();
        self.offsets.clear();
        self.cells.clear();
        self.epochs.clear();
    }

    /// Append one stream's cells (oldest first).
    fn push_stream(&mut self, id: u64, start: u64, cells: &[CellId]) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.ids.push(id);
        self.starts.push(start);
        self.cells.extend_from_slice(cells);
        self.offsets.push(self.cells.len());
    }

    /// Serialize the frozen region (checkpoint format): per-stream header
    /// columns with lengths, the flat cell column, the epoch marks.
    pub(crate) fn encode_into(&self, enc: &mut Enc) {
        let n = self.num_streams();
        enc.usize(n);
        for i in 0..n {
            enc.u64(self.ids[i]);
            enc.u64(self.starts[i]);
            enc.usize(self.cells_of(i).len());
        }
        enc.usize(self.cells.len());
        for &c in &self.cells {
            enc.u32(c.0);
        }
        enc.usize(self.epochs.len());
        for m in &self.epochs {
            enc.u64(m.epoch);
            enc.usize(m.streams_end);
            enc.usize(m.cells_end);
        }
    }

    /// Rebuild from [`Self::encode_into`] output, reusing allocations. All
    /// structural invariants (offset consistency, epoch-mark bounds) are
    /// re-derived or checked — an inconsistent payload is an `Err`, never a
    /// panic.
    pub(crate) fn decode_from(&mut self, dec: &mut Dec) -> Result<(), String> {
        self.clear();
        let n = dec.usize()?;
        for i in 0..n {
            if self.offsets.is_empty() {
                self.offsets.push(0);
            }
            self.ids.push(dec.u64()?);
            self.starts.push(dec.u64()?);
            let len = dec.usize()?;
            if len == 0 {
                return Err(format!("frozen stream {i} has length 0"));
            }
            let last = *self.offsets.last().expect("seeded above");
            self.offsets
                .push(last.checked_add(len).ok_or_else(|| "frozen offsets overflow".to_string())?);
        }
        let total = dec.usize()?;
        if n > 0 && total != self.offsets[n] {
            return Err(format!(
                "frozen cell count {total} disagrees with stream lengths ({})",
                self.offsets[n]
            ));
        }
        if n == 0 && total != 0 {
            return Err(format!("frozen region has {total} cells but no streams"));
        }
        self.cells.reserve(total);
        for _ in 0..total {
            self.cells.push(CellId(dec.u32()?));
        }
        let marks = dec.usize()?;
        let mut prev = EpochMark { epoch: 0, streams_end: 0, cells_end: 0 };
        for i in 0..marks {
            let mark =
                EpochMark { epoch: dec.u64()?, streams_end: dec.usize()?, cells_end: dec.usize()? };
            let monotone = mark.streams_end > prev.streams_end
                && mark.cells_end >= prev.cells_end
                && mark.streams_end <= n
                && mark.cells_end <= total;
            if !monotone {
                return Err(format!("epoch mark {i} out of order or out of bounds"));
            }
            self.epochs.push(mark);
            prev = mark;
        }
        if marks > 0 && (prev.streams_end != n || prev.cells_end != total) {
            return Err("last epoch mark does not cover the frozen region".to_string());
        }
        if marks == 0 && n > 0 {
            return Err("frozen streams present without an epoch mark".to_string());
        }
        Ok(())
    }
}

impl StreamStore {
    /// Run one epoch compaction stamped with timestamp `epoch`: drain the
    /// finished region into the frozen store and rebuild the tail arena
    /// with only the live chains. `spare` is the arena to rebuild into
    /// (swapped with the current one, so chunk allocations are recycled
    /// across runs); `scratch` is a reusable cell buffer.
    ///
    /// Returns `(streams_frozen, cells_frozen)`. Snapshots and release
    /// output are bit-for-bit unchanged by this call.
    pub(crate) fn compact(
        &mut self,
        epoch: u64,
        spare: &mut TailArena,
        scratch: &mut Vec<CellId>,
    ) -> (usize, usize) {
        // Phase 1: freeze the finished region.
        let n = self.finished.len();
        let cells_before = self.frozen.total_cells();
        for i in 0..n {
            let len = self.finished.lens[i] as usize;
            scratch.clear();
            scratch.resize(len, CellId(0));
            self.write_cells(self.finished.heads[i], len, self.finished.links[i], scratch);
            let (id, start) = (self.finished.ids[i], self.finished.starts[i]);
            self.frozen.push_stream(id, start, scratch);
        }
        if n > 0 {
            self.frozen.epochs.push(EpochMark {
                epoch,
                streams_end: self.frozen.num_streams(),
                cells_end: self.frozen.total_cells(),
            });
        }
        self.finished.clear();

        // Phase 2: rebuild the arena with only the live chains. Each chain
        // is walked backward into `scratch` (oldest first), then re-linked
        // forward into `spare` — addresses change, lengths and cells do
        // not.
        spare.clear();
        for i in 0..self.live.len() {
            let len = self.live.lens[i] as usize;
            if len == 1 {
                debug_assert_eq!(self.live.links[i], NO_LINK);
                continue;
            }
            scratch.clear();
            scratch.resize(len - 1, CellId(0));
            let mut addr = self.live.links[i];
            for slot in scratch.iter_mut().rev() {
                let node = self.tail.get(addr);
                *slot = node.cell;
                addr = node.prev;
            }
            debug_assert_eq!(addr, NO_LINK, "chain length disagrees with len column");
            let mut link = NO_LINK;
            for &cell in scratch.iter() {
                link = spare.push(TailNode { cell, prev: link });
            }
            self.live.links[i] = link;
        }
        std::mem::swap(&mut self.tail, spare);
        (n, self.frozen.total_cells() - cells_before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retrasyn_geo::Grid;

    /// Build a store with a mix of finished and live streams, extended
    /// enough to have real chains. Cells stay inside a 2×2 sub-grid where
    /// every pair is adjacent, so releases satisfy the reachability
    /// invariant regardless of row reordering.
    fn build_store(grid: &Grid) -> StreamStore {
        let mut store = StreamStore::default();
        for id in 0..6u64 {
            store.spawn(id, id % 3, grid.cell_at((id % 2) as u16, 0));
        }
        for round in 1..5u16 {
            let n = store.live.len();
            for row in 0..n {
                let StreamStore { live, tail, .. } = &mut store;
                live.extend_row(row, grid.cell_at(round % 2, (row % 2) as u16), tail);
            }
            // Retire one stream per round.
            let StreamStore { live, finished, .. } = &mut store;
            if live.len() > 2 {
                live.swap_remove_into(0, finished);
            }
        }
        store
    }

    fn snapshot_sorted(store: &StreamStore) -> Vec<(u64, u64, Vec<CellId>)> {
        let mut out: Vec<_> = store
            .snapshot(10)
            .streams()
            .map(|s| {
                let mut cells = Vec::new();
                s.cells_into(&mut cells);
                (s.id(), s.start(), cells)
            })
            .collect();
        out.sort_by_key(|&(id, ..)| id);
        out
    }

    #[test]
    fn compaction_preserves_snapshot_and_release() {
        let grid = Grid::unit(4);
        let plain = build_store(&grid);
        let mut compacted = build_store(&grid);

        let before = snapshot_sorted(&compacted);
        let mut spare = TailArena::default();
        let mut scratch = Vec::new();
        let (streams, cells) = compacted.compact(4, &mut spare, &mut scratch);
        assert_eq!(streams, plain.finished.len());
        assert!(cells >= streams); // every stream has >= 1 cell
        assert_eq!(compacted.finished.len(), 0);
        assert_eq!(compacted.frozen.num_streams(), streams);
        assert_eq!(compacted.frozen.epochs.len(), 1);
        assert_eq!(compacted.frozen.epochs[0].epoch, 4);

        // The arena now holds only live chains.
        let live_tail: usize = compacted.live.lens.iter().map(|&l| l as usize - 1).sum();
        assert_eq!(compacted.tail.len(), live_tail);
        assert!(compacted.resident_cells() < plain.resident_cells());

        // Snapshots are identical (modulo region ordering) before and
        // after, and against the non-compacting store.
        assert_eq!(snapshot_sorted(&compacted), before);
        assert_eq!(snapshot_sorted(&compacted), snapshot_sorted(&plain));
        assert_eq!(compacted.snapshot(10).finished_count(), plain.snapshot(10).finished_count());

        // Release is bit-identical.
        let a = plain.into_dataset(grid.clone(), 10);
        let b = compacted.into_dataset(grid.clone(), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_compaction_is_idempotent_when_nothing_finished() {
        let grid = Grid::unit(4);
        let mut store = build_store(&grid);
        let mut spare = TailArena::default();
        let mut scratch = Vec::new();
        store.compact(4, &mut spare, &mut scratch);
        let snap = snapshot_sorted(&store);
        let resident = store.resident_cells();
        // Nothing finished since: freezes nothing, no new epoch mark.
        let (streams, cells) = store.compact(5, &mut spare, &mut scratch);
        assert_eq!((streams, cells), (0, 0));
        assert_eq!(store.frozen.epochs.len(), 1);
        assert_eq!(store.resident_cells(), resident);
        assert_eq!(snapshot_sorted(&store), snap);
    }

    #[test]
    fn reset_clears_frozen_region() {
        let grid = Grid::unit(4);
        let mut store = build_store(&grid);
        let mut spare = TailArena::default();
        let mut scratch = Vec::new();
        store.compact(4, &mut spare, &mut scratch);
        assert!(store.frozen.num_streams() > 0);
        store.reset();
        assert_eq!(store.frozen.num_streams(), 0);
        assert_eq!(store.resident_cells(), 0);
        assert!(store.snapshot(0).is_empty());
    }
}
