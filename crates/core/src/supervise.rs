//! Crash-supervised streaming sessions: WAL-backed retry, recovery and
//! poison-batch quarantine.
//!
//! [`Supervisor`] owns an engine together with its [`WalWriter`] and
//! (optionally) a [`Checkpointer`], and runs every step under
//! [`catch_unwind`](std::panic::catch_unwind). The durable WAL makes the
//! engine *unwind-safe by reconstruction*: whatever inconsistent state a
//! panic leaves behind is never observed, because the supervisor rebuilds
//! the session from the log before touching the engine again.
//!
//! ```text
//!                    step(batch)
//!                        │
//!               append batch to WAL
//!                        │
//!                        ▼
//!              ┌──── try_step ────┐
//!          Ok  │                  │  panic / SessionError
//!              ▼                  ▼
//!        ┌──────────┐    roll the batch out of the WAL
//!        │ Stepped  │    recover() engine from the log
//!        └──────────┘             │
//!        (+checkpoint     ┌───────┴────────┐
//!         on interval)    │ attempts left? │
//!                         └───────┬────────┘
//!                      yes │              │ no
//!                          ▼              ▼
//!                   re-append batch   write poison record
//!                   retry try_step    to `<wal>.poison`
//!                          │              │
//!                      Ok  ▼              ▼
//!                   ┌───────────┐   ┌──────────┐
//!                   │ Recovered │   │ Poisoned │  (batch skipped,
//!                   └───────────┘   └──────────┘   session continues)
//! ```
//!
//! A batch that crashes the engine on every attempt (default: 2) is a
//! *poison batch*: it is quarantined — removed from the WAL, recorded in
//! the `<wal>.poison` sidecar with timestamp, attempt count and fault —
//! and the session continues with the next batch taking its timestamp.
//! The supervised session over a stream with poison batches is therefore
//! bit-identical to an unsupervised session over the same stream with
//! those batches deleted.
//!
//! Only step faults are absorbed; faults of the supervision machinery
//! itself (WAL I/O, checkpoint I/O, sidecar I/O) surface as
//! [`SuperviseError`] — losing durability silently would turn every later
//! recovery promise into a lie.

use std::fmt;
use std::fs;
use std::io::Write;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use retrasyn_geo::{GriddedDataset, UserEvent};

use crate::session::{EventSource, SessionError, StepOutcome, StreamingEngine};
use crate::wal::{Checkpointer, FsyncPolicy, Recovery, WalContents, WalError, WalWriter};

/// Failure of the supervision machinery itself (never of a supervised
/// step — those are retried, recovered or quarantined).
#[derive(Debug)]
pub enum SuperviseError {
    /// The WAL could not be appended, rolled back or replayed.
    Wal(WalError),
    /// The session refused an operation outside a supervised step (e.g.
    /// releasing an already-released session).
    Session(SessionError),
    /// The poison sidecar could not be written.
    Io(std::io::Error),
}

impl fmt::Display for SuperviseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperviseError::Wal(e) => write!(f, "supervisor WAL failure: {e}"),
            SuperviseError::Session(e) => write!(f, "supervisor session failure: {e}"),
            SuperviseError::Io(e) => write!(f, "supervisor poison-sidecar I/O failure: {e}"),
        }
    }
}

impl std::error::Error for SuperviseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SuperviseError::Wal(e) => Some(e),
            SuperviseError::Session(e) => Some(e),
            SuperviseError::Io(e) => Some(e),
        }
    }
}

impl From<WalError> for SuperviseError {
    fn from(e: WalError) -> Self {
        SuperviseError::Wal(e)
    }
}

impl From<SessionError> for SuperviseError {
    fn from(e: SessionError) -> Self {
        SuperviseError::Session(e)
    }
}

impl From<std::io::Error> for SuperviseError {
    fn from(e: std::io::Error) -> Self {
        SuperviseError::Io(e)
    }
}

/// How a supervised step concluded. Every variant leaves the session
/// steppable; none loses durability.
#[derive(Debug)]
pub enum StepVerdict {
    /// The step succeeded on the first attempt.
    Stepped(StepOutcome),
    /// The step crashed at least once; the engine was rebuilt from the
    /// WAL and a retry succeeded. The session is bit-identical to one
    /// that never crashed.
    Recovered {
        /// Outcome of the successful retry.
        outcome: StepOutcome,
        /// Total attempts, including the successful one.
        attempts: u32,
        /// Rendering of the last fault (panic message or error display).
        fault: String,
    },
    /// The batch crashed the engine on every attempt and was quarantined:
    /// rolled out of the WAL, recorded in the poison sidecar, and
    /// skipped. The engine still expects timestamp `t` — the next batch
    /// takes the poisoned batch's place.
    Poisoned {
        /// Timestamp the batch would have covered.
        t: u64,
        /// Attempts made before giving up.
        attempts: u32,
        /// Rendering of the last fault.
        fault: String,
    },
}

/// Cumulative counters kept by a [`Supervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorStats {
    /// Steps that completed (first-attempt or after recovery).
    pub steps: u64,
    /// Steps that needed at least one crash-recovery before succeeding.
    pub recovered: u64,
    /// Batches quarantined as poison.
    pub poisoned: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
}

/// Default number of attempts per batch (one retry after the first
/// crash).
const DEFAULT_MAX_ATTEMPTS: u32 = 2;

/// Runs a [`StreamingEngine`] under crash supervision. See the
/// [module docs](self) for the step state machine.
#[derive(Debug)]
pub struct Supervisor<E> {
    engine: E,
    wal: WalWriter,
    wal_path: PathBuf,
    checkpointer: Option<Checkpointer>,
    max_attempts: u32,
    stats: SupervisorStats,
    poison_path: PathBuf,
}

impl<E: StreamingEngine> Supervisor<E> {
    /// Supervise `engine` over a fresh WAL created at `wal_path` (see
    /// [`WalWriter::create`]; `seed` is recorded in the header alongside
    /// the engine fingerprint). The engine must be fresh
    /// (`next_timestamp() == 0`).
    pub fn create(
        engine: E,
        wal_path: impl AsRef<Path>,
        seed: u64,
        policy: FsyncPolicy,
    ) -> Result<Self, WalError> {
        assert_eq!(
            engine.next_timestamp(),
            0,
            "a fresh WAL requires a fresh engine; use Supervisor::resume to continue a session"
        );
        let wal_path = wal_path.as_ref().to_path_buf();
        let wal = WalWriter::create(&wal_path, seed, engine.fingerprint(), policy)?;
        Ok(Supervisor {
            engine,
            wal,
            poison_path: Self::poison_sidecar(&wal_path),
            wal_path,
            checkpointer: None,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            stats: SupervisorStats::default(),
        })
    }

    /// Supervise a session recovered from an existing WAL: replay it into
    /// `engine` (which must be constructed exactly as the logged session
    /// was — fingerprints are checked) and continue appending to the same
    /// log.
    pub fn resume(
        engine: E,
        wal_path: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> Result<(Self, Recovery), WalError> {
        let wal_path = wal_path.as_ref().to_path_buf();
        let mut engine = engine;
        let recovery = engine.recover(&wal_path)?;
        let contents = WalContents::read(&wal_path)?;
        let wal = WalWriter::reopen(&contents, &wal_path, policy)?;
        let supervisor = Supervisor {
            engine,
            wal,
            poison_path: Self::poison_sidecar(&wal_path),
            wal_path,
            checkpointer: None,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            stats: SupervisorStats::default(),
        };
        Ok((supervisor, recovery))
    }

    /// The conventional poison sidecar path for a WAL: `<wal>.poison`.
    pub fn poison_sidecar(wal_path: impl AsRef<Path>) -> PathBuf {
        let mut os = wal_path.as_ref().as_os_str().to_os_string();
        os.push(".poison");
        PathBuf::from(os)
    }

    /// Checkpoint the engine every `every` timestamps (`every ≥ 1`) into
    /// the WAL's conventional sidecar, bounding recovery replay time.
    pub fn with_checkpoints(mut self, every: u64) -> Self {
        self.checkpointer = Some(Checkpointer::new(&self.wal_path, every));
        self
    }

    /// Attempts per batch before it is quarantined as poison (`n ≥ 1`;
    /// default 2 — one retry after the first crash).
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        assert!(n >= 1, "at least one attempt per batch is required");
        self.max_attempts = n;
        self
    }

    /// The supervised engine (read-only: stepping it directly would
    /// bypass the WAL and void the recovery guarantee).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Cumulative supervision counters.
    pub fn stats(&self) -> &SupervisorStats {
        &self.stats
    }

    /// The WAL this supervisor appends to.
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// The poison sidecar records are appended to (one line per
    /// quarantined batch; the file exists only if a batch was poisoned).
    pub fn poison_path(&self) -> &Path {
        &self.poison_path
    }

    /// Ingest the next batch under supervision. The timestamp is implied:
    /// always [`next_timestamp`](StreamingEngine::next_timestamp), so a
    /// poisoned batch's successor slides into its place.
    ///
    /// Returns the [`StepVerdict`]; `Err` only for faults of the
    /// supervision machinery itself (WAL/checkpoint/sidecar I/O), after
    /// which the session should be abandoned or
    /// [`resume`](Supervisor::resume)d from the log.
    pub fn step(&mut self, events: &[UserEvent]) -> Result<StepVerdict, SuperviseError> {
        let t = self.engine.next_timestamp();
        let base = self.wal.offset();
        self.wal.append_batch(t, events)?;
        let mut fault = String::new();
        for attempt in 1..=self.max_attempts {
            // Unwind safety: if the closure panics, the engine is rebuilt
            // from the WAL below before anything observes it.
            let result = panic::catch_unwind(AssertUnwindSafe(|| self.engine.try_step(t, events)));
            match result {
                Ok(Ok(outcome)) => {
                    self.stats.steps += 1;
                    if let Some(ck) = &self.checkpointer {
                        if ck.maybe_save(&self.engine)? {
                            self.stats.checkpoints += 1;
                        }
                    }
                    if attempt == 1 {
                        return Ok(StepVerdict::Stepped(outcome));
                    }
                    self.stats.recovered += 1;
                    return Ok(StepVerdict::Recovered { outcome, attempts: attempt, fault });
                }
                Ok(Err(e)) => fault = e.to_string(),
                Err(payload) => fault = panic_message(payload.as_ref()),
            }
            // The step crashed or errored: roll the suspect batch out of
            // the durable log and rebuild the session from the prefix.
            self.wal.truncate_to(base, t)?;
            self.engine.recover(&self.wal_path)?;
            debug_assert_eq!(self.engine.next_timestamp(), t);
            if attempt < self.max_attempts {
                self.wal.append_batch(t, events)?;
            }
        }
        self.record_poison(t, events.len(), &fault)?;
        self.stats.poisoned += 1;
        Ok(StepVerdict::Poisoned { t, attempts: self.max_attempts, fault })
    }

    /// Drive the session from `source` until it is exhausted, then
    /// [`release`](Supervisor::release). Poisoned batches are skipped
    /// (check [`stats`](Supervisor::stats) afterwards); machinery faults
    /// abort.
    pub fn drive<S: EventSource>(
        &mut self,
        mut source: S,
    ) -> Result<GriddedDataset, SuperviseError> {
        while let Some(batch) = source.next_batch() {
            self.step(batch)?;
        }
        self.release()
    }

    /// Sync the WAL and terminate the session, handing out everything
    /// synthesized so far.
    pub fn release(&mut self) -> Result<GriddedDataset, SuperviseError> {
        self.wal.sync()?;
        Ok(self.engine.try_release()?)
    }

    /// Dissolve the supervisor, returning the engine. The WAL is synced
    /// first so the log matches the engine's ingested prefix.
    pub fn into_engine(mut self) -> Result<E, SuperviseError> {
        self.wal.sync()?;
        Ok(self.engine)
    }

    /// Append one quarantine record to the poison sidecar and sync it:
    /// `t=<t> attempts=<n> events=<len> fault=<message>`, newline
    /// terminated (newlines inside the fault are flattened).
    fn record_poison(&mut self, t: u64, events: usize, fault: &str) -> Result<(), SuperviseError> {
        let fault: String =
            fault.chars().map(|c| if c == '\n' || c == '\r' { ' ' } else { c }).collect();
        let mut file = fs::OpenOptions::new().create(true).append(true).open(&self.poison_path)?;
        writeln!(file, "t={t} attempts={} events={events} fault={fault}", self.max_attempts)?;
        file.sync_data()?;
        Ok(())
    }
}

/// Best-effort rendering of a panic payload (panics via `panic!("{e}")`
/// and string literals cover everything this crate raises).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
